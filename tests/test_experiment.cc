/**
 * @file
 * Tests for the experiment harness (miss and perf experiments,
 * normalization, tables, subsets).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/experiment.hh"

namespace gippr
{
namespace
{

SuiteParams
tinySuite()
{
    SuiteParams p;
    p.llcBlocks = 512;
    p.accessesPerSimpoint = 12000;
    p.baseSeed = 7;
    return p;
}

ExperimentConfig
tinyConfig()
{
    ExperimentConfig cfg;
    cfg.system.hier.l1 = {"L1", 4 * 1024, 8, 64};   // 64 blocks
    cfg.system.hier.l2 = {"L2", 8 * 1024, 8, 64};   // 128 blocks
    cfg.system.hier.llc = {"LLC", 32 * 1024, 16, 64}; // 512 blocks
    cfg.threads = 4;
    return cfg;
}

class ExperimentTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // One shared miss experiment across tests (it is the slow
        // part); computed once.
        suite_ = new SyntheticSuite(tinySuite());
        ExperimentConfig cfg = tinyConfig();
        cfg.includeMin = true;
        std::vector<PolicyDef> policies = {
            policyByName("LRU"), policyByName("DRRIP"),
            policyByName("DGIPPR2")};
        result_ = new ExperimentResult(
            runMissExperiment(*suite_, policies, cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        delete suite_;
        result_ = nullptr;
        suite_ = nullptr;
    }

    static SyntheticSuite *suite_;
    static ExperimentResult *result_;
};

SyntheticSuite *ExperimentTest::suite_ = nullptr;
ExperimentResult *ExperimentTest::result_ = nullptr;

TEST_F(ExperimentTest, OneRowPerWorkload)
{
    EXPECT_EQ(result_->rows.size(), suite_->specs().size());
    for (size_t i = 0; i < result_->rows.size(); ++i)
        EXPECT_EQ(result_->rows[i].workload, suite_->specs()[i].name);
}

TEST_F(ExperimentTest, ColumnsIncludeMin)
{
    ASSERT_EQ(result_->columns.size(), 4u);
    EXPECT_EQ(result_->columns.back(), "MIN");
    EXPECT_EQ(result_->columnIndex("DRRIP"), 1u);
    EXPECT_THROW(result_->columnIndex("nope"), std::runtime_error);
}

TEST_F(ExperimentTest, MinNeverExceedsAnyPolicy)
{
    size_t min_col = result_->columnIndex("MIN");
    for (const auto &row : result_->rows) {
        for (size_t c = 0; c < min_col; ++c) {
            EXPECT_LE(row.values[min_col], row.values[c] + 1e-9)
                << row.workload << " vs " << result_->columns[c];
        }
    }
}

TEST_F(ExperimentTest, BaselineNormalizesToOne)
{
    size_t lru = result_->columnIndex("LRU");
    auto norm = result_->normalized(lru, lru, false);
    for (double v : norm)
        EXPECT_NEAR(v, 1.0, 1e-9);
    EXPECT_NEAR(result_->geomeanNormalized(lru, lru, false), 1.0,
                1e-9);
}

TEST_F(ExperimentTest, MpkiValuesAreFinite)
{
    for (const auto &row : result_->rows)
        for (double v : row.values) {
            EXPECT_GE(v, 0.0) << row.workload;
            EXPECT_LT(v, 1000.0) << row.workload;
        }
}

TEST_F(ExperimentTest, MinGeomeanClearlyBelowLru)
{
    size_t lru = result_->columnIndex("LRU");
    size_t min_col = result_->columnIndex("MIN");
    double g = result_->geomeanNormalized(min_col, lru, false);
    EXPECT_LT(g, 0.95);
}

TEST_F(ExperimentTest, NormalizedTableHasGeomeanFooter)
{
    size_t lru = result_->columnIndex("LRU");
    Table t = result_->toNormalizedTable(lru, false, 1);
    EXPECT_EQ(t.rows(), result_->rows.size() + 1);
    EXPECT_EQ(t.cell(t.rows() - 1, 0), "geomean");
}

TEST_F(ExperimentTest, SortColumnOrdersRowsAscending)
{
    size_t lru = result_->columnIndex("LRU");
    size_t drrip = result_->columnIndex("DRRIP");
    Table t = result_->toNormalizedTable(lru, false, drrip);
    double prev = -1.0;
    for (size_t r = 0; r + 1 < t.rows(); ++r) { // skip footer
        double v = std::stod(t.cell(r, 2));     // DRRIP column
        EXPECT_GE(v, prev - 1e-9);
        prev = v;
    }
}

TEST_F(ExperimentTest, SubsetSelectsThrashyWorkloads)
{
    // Workloads where DRRIP beats LRU by >1% in misses: normalized
    // MPKI < 0.99 -> use speedup=false and threshold inverted via
    // the raw interface.
    size_t lru = result_->columnIndex("LRU");
    size_t drrip = result_->columnIndex("DRRIP");
    auto norm = result_->normalized(drrip, lru, false);
    std::vector<size_t> manual;
    for (size_t i = 0; i < norm.size(); ++i)
        if (norm[i] < 0.99)
            manual.push_back(i);
    EXPECT_FALSE(manual.empty());
}

TEST_F(ExperimentTest, RawTableRendersCsv)
{
    Table t = result_->toRawTable();
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("MPKI"), std::string::npos);
}

TEST(PerfExperiment, SpeedupOrderingSanity)
{
    // Small perf experiment on a 6-workload subset: DGIPPR2 must not
    // be slower than LRU overall, and every IPC must be positive.
    SuiteParams sp = tinySuite();
    SyntheticSuite suite(sp);
    ExperimentConfig cfg = tinyConfig();
    std::vector<PolicyDef> policies = {policyByName("LRU"),
                                       policyByName("DGIPPR2")};
    ExperimentResult r = runPerfExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    size_t dg = r.columnIndex("2-DGIPPR");
    for (const auto &row : r.rows)
        for (double v : row.values)
            EXPECT_GT(v, 0.0) << row.workload;
    double g = r.geomeanNormalized(dg, lru, true);
    EXPECT_GT(g, 0.99);
}

TEST(PerfExperiment, PerWorkloadPoliciesRun)
{
    SuiteParams sp = tinySuite();
    sp.accessesPerSimpoint = 4000;
    SyntheticSuite suite(sp);
    ExperimentConfig cfg = tinyConfig();
    auto policies_for = [](const std::string &workload) {
        // Trivial per-workload selection: everyone gets LRU + PLRU,
        // proving the plumbing works.
        (void)workload;
        return std::vector<PolicyDef>{policyByName("LRU"),
                                      policyByName("PLRU")};
    };
    ExperimentResult r = runPerfExperimentPerWorkload(
        suite, {"LRU", "PLRU"}, policies_for, cfg);
    EXPECT_EQ(r.rows.size(), suite.specs().size());
    for (const auto &row : r.rows)
        EXPECT_EQ(row.values.size(), 2u);
}

} // namespace
} // namespace gippr
