/**
 * @file
 * Tests for the shared worker-thread loop (util/parallel.hh).
 *
 * Doubles as the ThreadSanitizer CI job's main workload: every test
 * here runs the pool with more threads than cores and hammers shared
 * state through the patterns the harnesses actually use (per-index
 * slot writes, atomic accumulation), so a race in the pool or a
 * misuse pattern in a test shows up as a TSan report.
 */

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

TEST(ResolveThreads, ExplicitRequestWins)
{
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(7), 7u);
}

TEST(ResolveThreads, ZeroMeansHardware)
{
    // Can't know the machine, but the contract is "never zero".
    EXPECT_GE(resolveThreads(0), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    const size_t n = 10'000;
    std::vector<std::atomic<uint32_t>> hits(n);
    parallelFor(n, 8, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, PerIndexSlotWritesArePublished)
{
    // The idiom the experiment harness and GA evaluator rely on:
    // worker i writes only results[i]; after join, the caller reads
    // them all without further synchronization.
    const size_t n = 4096;
    std::vector<uint64_t> results(n, 0);
    parallelFor(n, 16, [&](size_t i) { results[i] = i * i; });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(results[i], i * i);
}

TEST(ParallelFor, AtomicAccumulation)
{
    const size_t n = 50'000;
    std::atomic<uint64_t> sum{0};
    parallelFor(n, 8, [&](size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ParallelFor, InlineWhenSingleThreaded)
{
    // threads <= 1 must run on the calling thread, in order.
    std::vector<size_t> order;
    parallelFor(100, 1, [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 100u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, MoreThreadsThanWork)
{
    std::vector<std::atomic<uint32_t>> hits(3);
    parallelFor(3, 64, [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
}

TEST(ParallelFor, ZeroItemsIsNoop)
{
    bool called = false;
    parallelFor(0, 8, [&](size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SplitRngStreamsAreIndependent)
{
    // The GA evaluates individuals with per-worker Rngs split off a
    // parent; reproduce that pattern so TSan sees the split + use.
    const size_t n = 256;
    Rng parent(42);
    std::vector<Rng> rngs;
    rngs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        rngs.push_back(parent.split());
    std::vector<uint64_t> draws(n, 0);
    parallelFor(n, 8, [&](size_t i) { draws[i] = rngs[i].next(); });
    // Spot-check the streams didn't collapse to one value.
    const uint64_t first = draws[0];
    bool all_equal = true;
    for (uint64_t d : draws)
        all_equal = all_equal && d == first;
    EXPECT_FALSE(all_equal);
}

TEST(ParallelFor, WorkerExceptionReachesCaller)
{
    // A fitness evaluation that throws (e.g. an I/O error in a
    // streamed trace) must surface on the calling thread, not
    // std::terminate the process.
    EXPECT_THROW(parallelFor(1000, 8,
                             [&](size_t i) {
                                 if (i == 137)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, ExceptionCancelsRemainingWork)
{
    // After a worker throws, the pool stops handing out new indices;
    // far fewer than all items should run.
    std::atomic<uint64_t> ran{0};
    EXPECT_THROW(parallelFor(1'000'000, 4,
                             [&](size_t) {
                                 ran.fetch_add(
                                     1, std::memory_order_relaxed);
                                 throw std::runtime_error("first");
                             }),
                 std::runtime_error);
    EXPECT_LT(ran.load(), 1'000'000u);
}

TEST(ParallelFor, InlineExceptionPropagates)
{
    // threads <= 1 runs inline; the exception must pass through
    // unchanged there too.
    EXPECT_THROW(parallelFor(10, 1,
                             [&](size_t i) {
                                 if (i == 3)
                                     throw std::runtime_error("inline");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, RepeatedPoolsDontInterfere)
{
    // Back-to-back pools reusing the same buffers, as the experiment
    // harness does per workload.
    const size_t n = 2048;
    std::vector<uint64_t> buf(n, 0);
    for (int round = 1; round <= 4; ++round) {
        parallelFor(n, 8, [&](size_t i) {
            buf[i] += static_cast<uint64_t>(round);
        });
    }
    const uint64_t want = 1 + 2 + 3 + 4;
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(buf[i], want);
}

} // namespace
} // namespace gippr
