/**
 * @file
 * Tests for the synthetic benchmark suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workloads/suite.hh"

namespace gippr
{
namespace
{

SuiteParams
tinyParams()
{
    SuiteParams p;
    p.llcBlocks = 512;
    p.accessesPerSimpoint = 4000;
    p.baseSeed = 99;
    return p;
}

TEST(Suite, HasExpectedBreadth)
{
    SyntheticSuite suite(tinyParams());
    EXPECT_GE(suite.specs().size(), 24u);
}

TEST(Suite, NamesAreUnique)
{
    SyntheticSuite suite(tinyParams());
    std::set<std::string> names;
    for (const auto &n : suite.names())
        EXPECT_TRUE(names.insert(n).second) << n;
}

TEST(Suite, SpecLookupByName)
{
    SyntheticSuite suite(tinyParams());
    const WorkloadSpec &s = suite.spec("loop_thrash");
    EXPECT_EQ(s.name, "loop_thrash");
    EXPECT_THROW(suite.spec("no_such_workload"), std::runtime_error);
}

TEST(Suite, MaterializeProducesRequestedAccesses)
{
    SyntheticSuite suite(tinyParams());
    Workload w = SyntheticSuite::materialize(suite.spec("stream_pure"));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w.simpoints()[0].trace->size(), 4000u);
}

TEST(Suite, MaterializeIsDeterministic)
{
    SyntheticSuite suite(tinyParams());
    Workload a = SyntheticSuite::materialize(suite.spec("zipf_hot"));
    Workload b = SyntheticSuite::materialize(suite.spec("zipf_hot"));
    ASSERT_EQ(a.simpoints()[0].trace->size(),
              b.simpoints()[0].trace->size());
    for (size_t i = 0; i < a.simpoints()[0].trace->size(); ++i)
        ASSERT_TRUE((*a.simpoints()[0].trace)[i] ==
                    (*b.simpoints()[0].trace)[i]);
}

TEST(Suite, MultiSimpointWorkloadsHaveWeights)
{
    SyntheticSuite suite(tinyParams());
    const WorkloadSpec &s = suite.spec("multiphase_mix");
    EXPECT_EQ(s.simpoints.size(), 3u);
    double total = 0.0;
    for (const auto &sp : s.simpoints)
        total += sp.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Suite, WorkloadsUseDisjointRegions)
{
    SyntheticSuite suite(tinyParams());
    Workload a = SyntheticSuite::materialize(suite.spec("loop_fit"));
    Workload b = SyntheticSuite::materialize(suite.spec("loop_thrash"));
    std::set<uint64_t> blocks_a;
    for (const auto &r : *a.simpoints()[0].trace)
        blocks_a.insert(r.addr / 64);
    for (const auto &r : *b.simpoints()[0].trace)
        EXPECT_EQ(blocks_a.count(r.addr / 64), 0u);
}

TEST(Suite, ThrashWorkloadExceedsLlcCapacity)
{
    SuiteParams p = tinyParams();
    SyntheticSuite suite(p);
    Workload w = SyntheticSuite::materialize(suite.spec("loop_thrash"));
    EXPECT_GT(w.simpoints()[0].trace->footprintBlocks(),
              static_cast<size_t>(p.llcBlocks));
}

TEST(Suite, FitWorkloadStaysUnderCapacity)
{
    SuiteParams p = tinyParams();
    SyntheticSuite suite(p);
    Workload w = SyntheticSuite::materialize(suite.spec("loop_fit"));
    EXPECT_LT(w.simpoints()[0].trace->footprintBlocks(),
              static_cast<size_t>(p.llcBlocks));
}

TEST(Suite, SeedChangesTraces)
{
    SuiteParams p1 = tinyParams();
    SuiteParams p2 = tinyParams();
    p2.baseSeed = p1.baseSeed + 1;
    SyntheticSuite s1(p1), s2(p2);
    Workload a = SyntheticSuite::materialize(s1.spec("zipf_hot"));
    Workload b = SyntheticSuite::materialize(s2.spec("zipf_hot"));
    size_t same = 0, n = a.simpoints()[0].trace->size();
    for (size_t i = 0; i < n; ++i)
        if ((*a.simpoints()[0].trace)[i] == (*b.simpoints()[0].trace)[i])
            ++same;
    EXPECT_LT(same, n / 2);
}

TEST(Suite, CoversKeyArchetypes)
{
    SyntheticSuite suite(tinyParams());
    auto names = suite.names();
    auto has = [&](const std::string &n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("stream_pure"));
    EXPECT_TRUE(has("loop_thrash"));
    EXPECT_TRUE(has("chase_large"));
    EXPECT_TRUE(has("zipf_hot"));
    EXPECT_TRUE(has("hotcold_stream"));
    EXPECT_TRUE(has("sd_bimodal"));
    EXPECT_TRUE(has("phase_loopstream"));
}

} // namespace
} // namespace gippr
