/**
 * @file
 * Tests for the SHiP-PC extension baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "policies/ship.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
addrOf(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

constexpr uint64_t kStreamPc = 0x400100;
constexpr uint64_t kHotPc = 0x400200;

TEST(Ship, LearnsDeadPcAndInsertsDistant)
{
    CacheConfig c = cfg(16, 4);
    SetAssocCache cache(c, std::make_unique<ShipPolicy>(c));
    // Phase 1: stream thousands of never-reused blocks from one PC so
    // the SHCT learns the signature is dead.
    for (uint64_t t = 0; t < 4000; ++t)
        cache.access(addrOf(c, t % 16, 100 + t), AccessType::Load,
                     kStreamPc);
    // Phase 2: establish a hot set from another PC.
    for (int rep = 0; rep < 5; ++rep)
        for (uint64_t s = 0; s < 16; ++s)
            for (uint64_t t = 0; t < 3; ++t)
                cache.access(addrOf(c, s, t), AccessType::Load,
                             kHotPc);
    cache.clearStats();
    // Phase 3: interleave hot reuse with dead-PC pollution; the hot
    // blocks must survive because pollution inserts distant.
    for (int i = 0; i < 3000; ++i) {
        uint64_t s = static_cast<uint64_t>(i) % 16;
        cache.access(addrOf(c, s, static_cast<uint64_t>(i) % 3),
                     AccessType::Load, kHotPc);
        cache.access(addrOf(c, s, 5000 + static_cast<uint64_t>(i)),
                     AccessType::Load, kStreamPc);
    }
    // Hot accesses: ~3000, almost all hits.
    EXPECT_GT(cache.stats().hits, 2700u);
}

TEST(Ship, ReusedPcInsertsLong)
{
    // Without any training, SHCT counters start weakly reused (1):
    // insertions are "long" (max-1), same as SRRIP.
    CacheConfig c = cfg(16, 4);
    ShipPolicy p(c);
    AccessInfo info;
    info.set = 0;
    info.pc = kHotPc;
    p.onInsert(0, info);
    // Insertion RRPV is not directly exported; the dead-PC behaviour
    // is covered by LearnsDeadPcAndInsertsDistant.  Check the
    // per-line metadata accounting here.
    EXPECT_EQ(p.stateBitsPerSet(),
              4u * (2u + 14u + 1u)); // rrpv + sig + outcome per line
}

TEST(Ship, GlobalStateIsShct)
{
    CacheConfig c = cfg(16, 4);
    ShipPolicy p(c, 14, 2);
    EXPECT_EQ(p.globalStateBits(), (size_t{1} << 14) * 2);
}

TEST(Ship, SignatureStableForSamePc)
{
    // Same PC, different blocks: eviction training must hit the same
    // SHCT entry, which we observe via behaviour convergence (dead PC
    // streams stop polluting).  Smoke-check: long random run keeps
    // invariants (no crash, sane stats).
    CacheConfig c = cfg(32, 8);
    SetAssocCache cache(c, std::make_unique<ShipPolicy>(c));
    for (uint64_t t = 0; t < 20000; ++t)
        cache.access(addrOf(c, t % 32, t), AccessType::Load,
                     0x400000 + (t % 7) * 4);
    EXPECT_EQ(cache.stats().accesses, 20000u);
    EXPECT_GT(cache.stats().misses, 0u);
}

TEST(Ship, WritebacksUseZeroPcSignature)
{
    CacheConfig c = cfg(16, 4);
    SetAssocCache cache(c, std::make_unique<ShipPolicy>(c));
    EXPECT_NO_THROW(
        cache.access(addrOf(c, 0, 1), AccessType::Writeback, 0));
}

} // namespace
} // namespace gippr
