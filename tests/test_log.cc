/**
 * @file
 * Tests for the logging/error facilities.
 */

#include <gtest/gtest.h>

#include "util/log.hh"

namespace gippr
{
namespace
{

TEST(Log, FatalThrowsRuntimeError)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
    try {
        fatal("specific message");
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
    setLogLevel(before);
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant broken"), "invariant broken");
}

TEST(Log, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(before);
}

TEST(Log, InformWarnDebugDoNotThrow)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_NO_THROW(inform("hello"));
    EXPECT_NO_THROW(warn("careful"));
    EXPECT_NO_THROW(debug("details"));
    setLogLevel(before);
}

} // namespace
} // namespace gippr
