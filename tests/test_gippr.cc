/**
 * @file
 * Tests for GIPPR (IPV-driven tree PseudoLRU).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "core/giplr.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "core/vectors.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
addrOf(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

TEST(Gippr, RejectsMismatchedArity)
{
    CacheConfig c = cfg(4, 8);
    EXPECT_THROW(GipprPolicy(c, Ipv::lru(16)), std::runtime_error);
}

TEST(Gippr, AllZeroVectorMatchesPlruExactly)
{
    // GIPPR with PMRU insertion and promotion (the all-zero IPV) must
    // reproduce classic tree PseudoLRU decision-for-decision: both
    // promote via a path write that makes the block position 0.
    CacheConfig c = cfg(8, 16);
    SetAssocCache plru(c, std::make_unique<PlruPolicy>(c));
    SetAssocCache gip(c,
                      std::make_unique<GipprPolicy>(c, Ipv::lru(16)));
    Rng rng(17);
    for (int i = 0; i < 40000; ++i) {
        uint64_t addr = addrOf(c, rng.nextBounded(8),
                               rng.nextBounded(48));
        AccessResult a = plru.access(addr, AccessType::Load);
        AccessResult b = gip.access(addr, AccessType::Load);
        ASSERT_EQ(a.hit, b.hit) << "access " << i;
        if (a.evictedBlock) {
            ASSERT_EQ(*a.evictedBlock, *b.evictedBlock);
        }
    }
    EXPECT_EQ(plru.stats().misses, gip.stats().misses);
}

TEST(Gippr, VictimIsPlruBlock)
{
    CacheConfig c = cfg(4, 16);
    GipprPolicy *raw;
    auto p = std::make_unique<GipprPolicy>(c, paper_vectors::wiGippr());
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    Rng rng(23);
    // Fill and churn, then check that evictions always hit the
    // all-ones-position block.
    for (int i = 0; i < 5000; ++i) {
        uint64_t set = rng.nextBounded(4);
        uint64_t tag = rng.nextBounded(64);
        uint64_t addr = addrOf(c, set, tag);
        unsigned predicted = raw->tree(set).findPlru();
        bool full = cache.validCount(set) == 16;
        bool present = cache.probe(addr);
        AccessResult r = cache.access(addr, AccessType::Load);
        if (full && !present && !r.hit) {
            ASSERT_TRUE(r.evictedBlock.has_value());
            ASSERT_EQ(r.way, predicted);
        }
    }
}

TEST(Gippr, InsertionPositionHonored)
{
    // Insertion at the PLRU position: a zero-reuse stream never
    // displaces the established working set.
    CacheConfig c = cfg(2, 16);
    auto lip_ipv = Ipv::lruInsertion(16);
    SetAssocCache cache(c, std::make_unique<GipprPolicy>(c, lip_ipv));
    // Establish 16 resident blocks and touch them MRU-wards.
    for (uint64_t t = 0; t < 16; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    for (uint64_t t = 0; t < 15; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // Stream 100 cold blocks through; they churn in one slot.
    for (uint64_t t = 100; t < 200; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // At least 15 of the original blocks must survive.
    unsigned survivors = 0;
    for (uint64_t t = 0; t < 16; ++t)
        if (cache.probe(addrOf(c, 0, t)))
            ++survivors;
    EXPECT_GE(survivors, 15u);
}

TEST(Gippr, HitPromotionUsesStackPosition)
{
    // Vector that promotes position-15 hits to position 0 but leaves
    // everything else in place; verify via the tree accessor.
    CacheConfig c = cfg(2, 16);
    std::vector<uint8_t> entries(17, 0);
    for (unsigned i = 0; i < 16; ++i)
        entries[i] = static_cast<uint8_t>(i); // identity promotions
    entries[15] = 0;                          // except PLRU -> PMRU
    entries[16] = 15;                         // insert at PLRU
    GipprPolicy *raw;
    auto p = std::make_unique<GipprPolicy>(c, Ipv(entries));
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (uint64_t t = 0; t < 16; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    unsigned victim_way = raw->tree(0).findPlru();
    auto victim_block = cache.blockAt(0, victim_way);
    ASSERT_TRUE(victim_block.has_value());
    // Touch the PLRU block: it must become PMRU (position 0).
    cache.access(*victim_block << c.blockShift(), AccessType::Load);
    EXPECT_EQ(raw->tree(0).position(victim_way), 0u);
}

TEST(Gippr, StateBitsAreTreeBits)
{
    CacheConfig c = CacheConfig::paperLlc();
    GipprPolicy p(c, paper_vectors::wiGippr());
    // 15 bits per 16-way set: less than one bit per block.
    EXPECT_EQ(p.stateBitsPerSet(), 15u);
    EXPECT_EQ(p.globalStateBits(), 0u);
}

TEST(Gippr, PositionsRemainPermutationUnderPaperVector)
{
    CacheConfig c = cfg(4, 16);
    GipprPolicy *raw;
    auto p = std::make_unique<GipprPolicy>(c, paper_vectors::wiGippr());
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    Rng rng(41);
    for (int i = 0; i < 30000; ++i) {
        cache.access(addrOf(c, rng.nextBounded(4), rng.nextBounded(40)),
                     AccessType::Load);
        if (i % 997 == 0) {
            for (uint64_t s = 0; s < 4; ++s) {
                unsigned sum = 0;
                for (unsigned w = 0; w < 16; ++w)
                    sum += raw->tree(s).position(w);
                ASSERT_EQ(sum, 120u);
            }
        }
    }
}

TEST(Gippr, SetPositionSideEffectsDifferFromTrueLru)
{
    // The paper's Section 3.4 point: a GIPPR path write moves *other*
    // blocks more drastically than the LRU shift.  Demonstrate that
    // the same IPV produces different eviction sequences on the two
    // substrates for some stream.
    CacheConfig c = cfg(2, 16);
    Ipv v = paper_vectors::giplr();
    SetAssocCache stack_based(
        c, std::make_unique<GiplrPolicy>(c, v));
    SetAssocCache tree_based(
        c, std::make_unique<GipprPolicy>(c, v));
    Rng rng(53);
    bool diverged = false;
    for (int i = 0; i < 20000 && !diverged; ++i) {
        uint64_t addr = addrOf(c, rng.nextBounded(2),
                               rng.nextBounded(24));
        AccessResult a = stack_based.access(addr, AccessType::Load);
        AccessResult b = tree_based.access(addr, AccessType::Load);
        if (a.hit != b.hit ||
            a.evictedBlock.has_value() != b.evictedBlock.has_value() ||
            (a.evictedBlock && *a.evictedBlock != *b.evictedBlock)) {
            diverged = true;
        }
    }
    EXPECT_TRUE(diverged);
}

} // namespace
} // namespace gippr
