/**
 * @file
 * Tests for the Dynamic Insertion Policy baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "policies/dip.hh"
#include "policies/lru.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

TEST(Dip, VictimIsAlwaysLruPosition)
{
    CacheConfig c = cfg(64, 4);
    DipPolicy p(c);
    AccessInfo info;
    info.set = 5;
    // Without any accesses, identity layout: way 3 holds position 3.
    EXPECT_EQ(p.victim(info), 3u);
}

TEST(Dip, BeatsLruOnThrashingLoop)
{
    CacheConfig c = cfg(64, 4); // 256-block cache
    SetAssocCache dip(c, std::make_unique<DipPolicy>(c, 32, 4, 9));
    SetAssocCache lru(c, std::make_unique<LruPolicy>(c));
    for (int rep = 0; rep < 60; ++rep) {
        for (uint64_t b = 0; b < 320; ++b) {
            dip.access(b * 64, AccessType::Load);
            lru.access(b * 64, AccessType::Load);
        }
    }
    EXPECT_EQ(lru.stats().hits, 0u);
    EXPECT_GT(dip.stats().hits, lru.stats().hits + 1000);
    EXPECT_TRUE(dip.policy().name() == "DIP");
}

TEST(Dip, FollowsBipUnderThrash)
{
    CacheConfig c = cfg(64, 4);
    DipPolicy *raw;
    auto p = std::make_unique<DipPolicy>(c, 32, 4, 9);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (int rep = 0; rep < 40; ++rep)
        for (uint64_t b = 0; b < 320; ++b)
            cache.access(b * 64, AccessType::Load);
    EXPECT_TRUE(raw->followersUseBip());
}

TEST(Dip, MatchesLruOnRecencyFriendlyPattern)
{
    // Working set fits: both policies should service it with hits
    // after the cold pass.
    CacheConfig c = cfg(64, 4);
    SetAssocCache dip(c, std::make_unique<DipPolicy>(c, 32, 4, 9));
    uint64_t misses_cold = 0;
    for (int rep = 0; rep < 20; ++rep) {
        for (uint64_t b = 0; b < 128; ++b) { // half capacity
            AccessResult r = dip.access(b * 64, AccessType::Load);
            if (!r.hit && rep > 0)
                ++misses_cold;
        }
    }
    // After the first pass everything is resident for both policies.
    EXPECT_EQ(misses_cold, 0u);
}

TEST(Dip, StateCostsFullLruPlusPsel)
{
    CacheConfig c = CacheConfig::paperLlc();
    DipPolicy p(c);
    EXPECT_EQ(p.stateBitsPerSet(), 64u);
    EXPECT_EQ(p.globalStateBits(), 11u);
}

TEST(Dip, WritebackMissesDoNotTrain)
{
    CacheConfig c = cfg(64, 4);
    DipPolicy p(c, 32, 4, 9);
    bool before = p.followersUseBip();
    AccessInfo info;
    info.type = AccessType::Writeback;
    // Flood every set with writeback misses.
    for (uint64_t s = 0; s < 64; ++s) {
        info.set = s;
        for (int i = 0; i < 200; ++i)
            p.onMiss(info);
    }
    EXPECT_EQ(p.followersUseBip(), before);
}

} // namespace
} // namespace gippr
