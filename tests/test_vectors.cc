/**
 * @file
 * Regression tests pinning the shipped vector sets: the published
 * paper vectors and the locally evolved defaults must stay
 * structurally sound and keep their qualitative behaviour, so a
 * future re-evolution that regresses them is caught here.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cache/cache.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "core/vectors.hh"

namespace gippr
{
namespace
{

TEST(Vectors, PaperVectorsMatchPublishedText)
{
    // Section 2.5 and 5.3 verbatim.
    EXPECT_EQ(paper_vectors::giplr().toString(),
              "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]");
    EXPECT_EQ(paper_vectors::wiGippr().toString(),
              "[ 0 0 2 8 4 1 4 1 8 0 14 8 12 13 14 9 5 ]");
    EXPECT_EQ(paper_vectors::wn1Perlbench().toString(),
              "[ 12 8 14 1 4 4 2 1 8 12 6 4 0 0 10 12 11 ]");
}

TEST(Vectors, PaperTwoVectorSetDuelsInsertionExtremes)
{
    // Section 5.3.2: the WI-2 set "clearly duels between PLRU and
    // PMRU insertion".
    auto set = paper_vectors::wi2Dgippr();
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0].insertion(), 15u); // PLRU insertion
    EXPECT_EQ(set[1].insertion(), 0u);  // PMRU insertion
}

TEST(Vectors, DuelSetsAreNestedPrefixes)
{
    auto two = local_vectors::dgippr2();
    auto four = local_vectors::dgippr4();
    auto eight = local_vectors::dgippr8();
    ASSERT_EQ(two.size(), 2u);
    ASSERT_EQ(four.size(), 4u);
    ASSERT_EQ(eight.size(), 8u);
    for (size_t i = 0; i < 2; ++i)
        EXPECT_TRUE(two[i] == four[i]) << i;
    for (size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(four[i] == eight[i]) << i;
}

TEST(Vectors, DuelSetMembersAreDistinct)
{
    auto eight = local_vectors::dgippr8();
    std::set<std::string> rendered;
    for (const Ipv &v : eight)
        rendered.insert(v.toString());
    EXPECT_EQ(rendered.size(), eight.size());
}

TEST(Vectors, ShippedVectorsAreNotDegenerate)
{
    EXPECT_FALSE(local_vectors::giplr().isDegenerate());
    EXPECT_FALSE(local_vectors::gippr().isDegenerate());
    for (const Ipv &v : local_vectors::dgippr8())
        EXPECT_FALSE(v.isDegenerate()) << v.toString();
}

TEST(Vectors, DuelSetCoversInsertionDiversity)
{
    // A useful duel set must offer at least two different insertion
    // points (otherwise set-dueling has nothing to choose between).
    auto four = local_vectors::dgippr4();
    std::set<unsigned> insertions;
    for (const Ipv &v : four)
        insertions.insert(v.insertion());
    EXPECT_GE(insertions.size(), 2u);
}

TEST(Vectors, EvolvedGipprBeatsPlruOnThrashLoop)
{
    // Behaviour regression: the shipped evolved vector must keep its
    // thrash resistance (the reason it was selected).
    CacheConfig c;
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 64 * 16 * 64; // 1024 blocks
    SetAssocCache evolved(
        c, std::make_unique<GipprPolicy>(c, local_vectors::gippr()));
    SetAssocCache plru(c, std::make_unique<PlruPolicy>(c));
    for (int rep = 0; rep < 30; ++rep) {
        for (uint64_t b = 0; b < 1280; ++b) { // 1.25x capacity
            evolved.access(b * 64, AccessType::Load);
            plru.access(b * 64, AccessType::Load);
        }
    }
    EXPECT_GT(evolved.stats().hits, plru.stats().hits + 5000);
}

TEST(Vectors, AllSixteenWayVectorsParseAtArity16)
{
    for (const Ipv &v : paper_vectors::wi4Dgippr())
        EXPECT_EQ(v.ways(), 16u);
    for (const Ipv &v : paper_vectors::wi2Dgippr())
        EXPECT_EQ(v.ways(), 16u);
}

} // namespace
} // namespace gippr
