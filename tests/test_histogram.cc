/**
 * @file
 * Unit tests for util/histogram.hh.
 */

#include <gtest/gtest.h>

#include "util/histogram.hh"

namespace gippr
{
namespace
{

TEST(Histogram, StartsEmpty)
{
    Histogram h(8);
    EXPECT_EQ(h.total(), 0u);
    for (size_t i = 0; i <= 8; ++i)
        EXPECT_EQ(h.bucket(i), 0u);
}

TEST(Histogram, AddInRange)
{
    Histogram h(4);
    h.add(0);
    h.add(3);
    h.add(3);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(4);
    h.add(100);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, AddWithCount)
{
    Histogram h(4);
    h.add(2, 7);
    EXPECT_EQ(h.bucket(2), 7u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, Cumulative)
{
    Histogram h(8);
    h.add(1, 2);
    h.add(3, 5);
    h.add(6, 1);
    EXPECT_EQ(h.cumulative(0), 0u);
    EXPECT_EQ(h.cumulative(1), 2u);
    EXPECT_EQ(h.cumulative(3), 7u);
    EXPECT_EQ(h.cumulative(100), 8u); // clamps, excludes overflow
}

TEST(Histogram, CumulativeExcludesOverflow)
{
    Histogram h(4);
    h.add(0);
    h.add(9); // overflow
    EXPECT_EQ(h.cumulative(3), 1u);
}

TEST(Histogram, WeightedCumulative)
{
    Histogram h(8);
    h.add(2, 3); // contributes 6
    h.add(5, 2); // contributes 10
    EXPECT_EQ(h.weightedCumulative(2), 6u);
    EXPECT_EQ(h.weightedCumulative(5), 16u);
    EXPECT_EQ(h.weightedCumulative(1), 0u);
}

TEST(Histogram, Clear)
{
    Histogram h(4);
    h.add(1, 10);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, DecayHalves)
{
    Histogram h(4);
    h.add(1, 8);
    h.add(2, 5);
    h.decay();
    EXPECT_EQ(h.bucket(1), 4u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, DecayToZero)
{
    Histogram h(2);
    h.add(0, 1);
    h.decay();
    EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, ToStringFormat)
{
    Histogram h(2);
    h.add(0);
    h.add(5); // overflow
    EXPECT_EQ(h.toString(), "1 0 1");
}

} // namespace
} // namespace gippr
