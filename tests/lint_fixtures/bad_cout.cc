/**
 * @file
 * Lint fixture: std::cout/std::cerr in library code — reporting goes
 * through util/log.hh so callers control the stream.
 */
// gippr-lint: as=src/telemetry/fixture_cout.cc
// expect-lint: no-cout
#include <iostream>

namespace gippr {

void
reportProgress(int pct) {
  std::cout << "progress: " << pct << "%\n";
  std::cerr << "still going\n";
}

}  // namespace gippr
