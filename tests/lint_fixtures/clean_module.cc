/**
 * @file
 * Lint fixture (clean): seeded randomness, steady_clock durations,
 * GIPPR_DCHECK invariants — the compliant twin of the bad fixtures.
 */
// gippr-lint: as=src/core/fixture_clean.cc
#include <chrono>
#include <cstdint>

#define GIPPR_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))

namespace gippr {

uint64_t
elapsedNs(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  GIPPR_DCHECK(now >= start);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
          .count());
}

}  // namespace gippr
