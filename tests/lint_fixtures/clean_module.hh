/**
 * @file
 * Lint fixture (clean): canonical guard, doxygen header, no banned
 * constructs — every rule must stay silent on this file.
 */
// gippr-lint: as=src/core/fixture_clean.hh

#ifndef GIPPR_CORE_FIXTURE_CLEAN_HH_
#define GIPPR_CORE_FIXTURE_CLEAN_HH_

#include <cstdint>

namespace gippr {

/// Mixes a tag into a set index, deterministically.
inline uint64_t mixTag(uint64_t set, uint64_t tag) {
  return set ^ (tag * 0x9E3779B97F4A7C15ull);
}

}  // namespace gippr

#endif // GIPPR_CORE_FIXTURE_CLEAN_HH_
