/**
 * @file
 * Lint fixture: bare assert() — invariants use GIPPR_CHECK /
 * GIPPR_DCHECK so sanitizer CI can force them on in NDEBUG builds.
 */
// gippr-lint: as=src/core/fixture_assert.cc
// expect-lint: no-bare-assert
#include <cassert>

namespace gippr {

int
half(int x) {
  assert(x % 2 == 0);
  return x / 2;
}

}  // namespace gippr
