// gippr-lint: as=src/core/fixture_doxygen.cc
// expect-lint: doxygen-file
// (intentionally no leading /** ... @file ... */ comment)

namespace gippr {

inline int answer() { return 42; }

}  // namespace gippr
