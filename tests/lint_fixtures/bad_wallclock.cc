/**
 * @file
 * Lint fixture: std::chrono::system_clock and clock_gettime() read
 * the wall clock — results that fold them in differ per run.
 */
// gippr-lint: as=src/sim/fixture_wallclock.cc
// expect-lint: determinism
#include <chrono>
#include <cstdint>
#include <ctime>

namespace gippr {

uint64_t
stampResult(uint64_t value) {
  auto now = std::chrono::system_clock::now();
  timespec ts = {};
  clock_gettime(CLOCK_REALTIME, &ts);
  return value ^ static_cast<uint64_t>(
      now.time_since_epoch().count() + ts.tv_nsec);
}

}  // namespace gippr
