/**
 * @file
 * Lint fixture: getenv() outside the audited config-knob allowlist —
 * an environment variable seeding an experiment makes runs
 * irreproducible without anyone noticing.
 */
// gippr-lint: as=src/ga/fixture_getenv.cc
// expect-lint: determinism
#include <cstdlib>

namespace gippr {

unsigned
pickSeed() {
  if (const char *s = std::getenv("GIPPR_SECRET_SEED"))
    return static_cast<unsigned>(std::atoi(s));
  return 1u;
}

}  // namespace gippr
