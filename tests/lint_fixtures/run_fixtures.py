#!/usr/bin/env python3
"""Self-test for tools/lint.py: every rule must catch its fixture.

Each bad_*.{hh,cc} in this directory declares the rule it must trip
via an "// expect-lint: <rule>" directive and carries a "// gippr-lint:
as=<virtual-path>" directive so src-scoped rules apply despite the
file living under tests/.  Every clean_* file must lint clean.
Registered in ctest as lint_selftest.
"""

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "tools" / "lint.py"

_EXPECT = re.compile(r"//\s*expect-lint:\s*(\S+)")


def lint(path):
    proc = subprocess.run(
        [sys.executable, str(LINT), str(path)],
        capture_output=True, text=True, cwd=str(REPO))
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []
    bad = sorted(HERE.glob("bad_*.hh")) + sorted(HERE.glob("bad_*.cc"))
    clean = sorted(HERE.glob("clean_*.hh")) \
        + sorted(HERE.glob("clean_*.cc"))

    for path in bad:
        m = _EXPECT.search(path.read_text())
        if not m:
            failures.append(f"{path.name}: missing "
                            f"'// expect-lint:' directive")
            continue
        rule = m.group(1)
        rc, out = lint(path)
        if rc == 0:
            failures.append(f"{path.name}: expected [{rule}] error, "
                            f"got a clean run")
        elif f"[{rule}]" not in out:
            failures.append(f"{path.name}: exited {rc} but no "
                            f"[{rule}] error:\n{out}")
        else:
            print(f"ok   {path.name} -> {rule}")

    for path in clean:
        rc, out = lint(path)
        if rc != 0:
            failures.append(f"{path.name}: clean fixture should pass "
                            f"but exited {rc}:\n{out}")
        else:
            print(f"ok   {path.name} -> clean")

    # The linter must also still pass on the real tree.
    rc, out = lint_tree()
    if rc != 0:
        failures.append(f"tree lint should be clean but exited "
                        f"{rc}:\n{out}")
    else:
        print("ok   tree lint clean")

    if failures:
        print(f"\nlint selftest: {len(failures)} failure(s)")
        for f in failures:
            print(f"FAIL {f}")
        return 1
    print(f"\nlint selftest: {len(bad)} bad + {len(clean)} clean "
          f"fixtures + tree lint — all ok")
    return 0


def lint_tree():
    proc = subprocess.run(
        [sys.executable, str(LINT)],
        capture_output=True, text=True, cwd=str(REPO))
    return proc.returncode, proc.stdout + proc.stderr


if __name__ == "__main__":
    sys.exit(main())
