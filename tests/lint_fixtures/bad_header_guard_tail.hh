/**
 * @file
 * Lint fixture: correct guard open, but the file does not end with
 * the matching "#endif // <guard>" comment.
 */
// gippr-lint: as=src/core/fixture_guard_tail.hh
// expect-lint: header-guard

#ifndef GIPPR_CORE_FIXTURE_GUARD_TAIL_HH_
#define GIPPR_CORE_FIXTURE_GUARD_TAIL_HH_

namespace gippr {
inline int answer() { return 42; }
}  // namespace gippr

#endif
