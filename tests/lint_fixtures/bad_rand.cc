/**
 * @file
 * Lint fixture: libc rand()/time(nullptr) outside src/util/rng — the
 * replay gates require all randomness to flow through the seeded Rng.
 */
// gippr-lint: as=src/ga/fixture_rand.cc
// expect-lint: determinism
#include <cstdlib>
#include <ctime>

namespace gippr {

unsigned
rollDice() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  return static_cast<unsigned>(rand() % 6u) + 1u;
}

}  // namespace gippr
