/**
 * @file
 * Lint fixture: the guard name does not match the canonical
 * GIPPR_<DIR>_<FILE>_HH_ derived from the (virtual) path.
 */
// gippr-lint: as=src/core/fixture_guard.hh
// expect-lint: header-guard

#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace gippr {
inline int answer() { return 42; }
}  // namespace gippr

#endif // WRONG_GUARD_NAME_H
