/**
 * @file
 * Tests for WN1 / WI vector evolution (leave-one-out methodology).
 */

#include <gtest/gtest.h>

#include "ga/crossval.hh"

namespace gippr
{
namespace
{

CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 16 * 16 * 64; // 16 sets, 256 blocks
    return c;
}

Trace
loopTrace(uint64_t blocks, int reps, uint64_t base)
{
    Trace t;
    for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t b = 0; b < blocks; ++b) {
            MemRecord r;
            r.addr = (base + b) * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
        }
    }
    return t;
}

WorkloadTraces
workloadOf(const std::string &name, uint64_t blocks, uint64_t base)
{
    WorkloadTraces w;
    w.name = name;
    FitnessTrace ft;
    ft.name = name + "/0";
    ft.llcTrace = std::make_shared<Trace>(loopTrace(blocks, 24, base));
    ft.instructions = ft.llcTrace->instructions();
    w.traces.push_back(std::move(ft));
    return w;
}

std::vector<WorkloadTraces>
tinyWorkloads()
{
    // Three thrashy loops of different sizes: any held-out pair still
    // teaches anti-thrash insertion, so WN1 vectors transfer.
    return {
        workloadOf("thrash_a", 320, 0),
        workloadOf("thrash_b", 384, 1 << 16),
        workloadOf("thrash_c", 448, 1 << 17),
    };
}

GaParams
tinyParams()
{
    GaParams p;
    p.initialPopulation = 16;
    p.population = 10;
    p.generations = 3;
    p.threads = 1;
    p.seed = 5;
    p.seedIpvs = {Ipv::lruInsertion(16)};
    return p;
}

TEST(CrossVal, WiProducesRequestedSetSize)
{
    auto sets = evolveWi(llcCfg(), tinyWorkloads(), IpvFamily::Gippr,
                         2, tinyParams());
    EXPECT_EQ(sets.size(), 2u);
    for (const Ipv &v : sets)
        EXPECT_EQ(v.ways(), 16u);
}

TEST(CrossVal, WiSingleVectorBeatsLruOnThrash)
{
    auto sets = evolveWi(llcCfg(), tinyWorkloads(), IpvFamily::Gippr,
                         1, tinyParams());
    ASSERT_EQ(sets.size(), 1u);
    // Evaluate the WI vector on the full training set: must beat LRU
    // (the seeded LIP vector already does).
    std::vector<FitnessTrace> all;
    for (const auto &w : tinyWorkloads())
        all.insert(all.end(), w.traces.begin(), w.traces.end());
    FitnessEvaluator fitness(llcCfg(), std::move(all));
    EXPECT_GT(fitness.evaluate(sets[0], IpvFamily::Gippr), 1.2);
}

TEST(CrossVal, Wn1ProducesOneEntryPerWorkload)
{
    auto folds = evolveWn1(llcCfg(), tinyWorkloads(), IpvFamily::Gippr,
                           1, tinyParams());
    EXPECT_EQ(folds.size(), 3u);
    EXPECT_TRUE(folds.count("thrash_a"));
    EXPECT_TRUE(folds.count("thrash_b"));
    EXPECT_TRUE(folds.count("thrash_c"));
    for (const auto &kv : folds)
        EXPECT_EQ(kv.second.size(), 1u);
}

TEST(CrossVal, Wn1VectorsTransferToHeldOutWorkload)
{
    auto workloads = tinyWorkloads();
    auto folds = evolveWn1(llcCfg(), workloads, IpvFamily::Gippr, 1,
                           tinyParams());
    // Each fold's vector, trained without its workload, must still
    // beat LRU on that workload (the behaviours are similar, which
    // is the paper's cross-validation premise).
    for (const auto &w : workloads) {
        std::vector<FitnessTrace> held = w.traces;
        FitnessEvaluator fitness(llcCfg(), std::move(held));
        double f = fitness.evaluate(folds.at(w.name)[0],
                                    IpvFamily::Gippr);
        EXPECT_GT(f, 1.1) << w.name;
    }
}

TEST(CrossVal, Wn1RequiresTwoWorkloads)
{
    std::vector<WorkloadTraces> one = {workloadOf("solo", 320, 0)};
    EXPECT_THROW(
        evolveWn1(llcCfg(), one, IpvFamily::Gippr, 1, tinyParams()),
        std::runtime_error);
}

TEST(CrossVal, WiRequiresWorkloads)
{
    EXPECT_THROW(
        evolveWi(llcCfg(), {}, IpvFamily::Gippr, 1, tinyParams()),
        std::runtime_error);
}

} // namespace
} // namespace gippr
