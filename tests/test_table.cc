/**
 * @file
 * Unit tests for util/table.hh.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace gippr
{
namespace
{

TEST(Table, DimensionsTrackRows)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.rows(), 0u);
    t.newRow().add("x").add("y");
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CellAccess)
{
    Table t({"a", "b", "c"});
    t.newRow().add("r0c0").add(1.5, 1).add(uint64_t{42});
    EXPECT_EQ(t.cell(0, 0), "r0c0");
    EXPECT_EQ(t.cell(0, 1), "1.5");
    EXPECT_EQ(t.cell(0, 2), "42");
}

TEST(Table, NumericPrecision)
{
    Table t({"v"});
    t.newRow().add(3.14159, 3);
    EXPECT_EQ(t.cell(0, 0), "3.142");
}

TEST(Table, PrintAlignsColumns)
{
    Table t({"name", "value"});
    t.newRow().add("longest_name_here").add("1");
    t.newRow().add("x").add("22");
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header, separator, two rows.
    int lines = 0;
    for (char c : out)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, 4);
    EXPECT_NE(out.find("longest_name_here"), std::string::npos);
}

TEST(Table, CsvBasic)
{
    Table t({"a", "b"});
    t.newRow().add("x").add("y");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"a"});
    t.newRow().add("has,comma");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a\n\"has,comma\"\n");
}

TEST(Table, CsvEscapesQuotes)
{
    Table t({"a"});
    t.newRow().add("say \"hi\",ok");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a\n\"say \"\"hi\"\",ok\"\n");
}

TEST(Table, IntAndDoubleOverloads)
{
    Table t({"a", "b", "c"});
    t.newRow().add(-5).add(uint64_t{7}).add(0.125, 3);
    EXPECT_EQ(t.cell(0, 0), "-5");
    EXPECT_EQ(t.cell(0, 1), "7");
    EXPECT_EQ(t.cell(0, 2), "0.125");
}

} // namespace
} // namespace gippr
