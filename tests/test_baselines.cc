/**
 * @file
 * Tests for the simple baseline policies: LRU, Random, FIFO.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "policies/fifo.hh"
#include "policies/lru.hh"
#include "policies/random.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
setAddr(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    CacheConfig c = cfg(2, 4);
    SetAssocCache cache(c, std::make_unique<LruPolicy>(c));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(setAddr(c, 0, t), AccessType::Load);
    // Touch tags 0..2; tag 3 becomes LRU.
    for (uint64_t t = 0; t < 3; ++t)
        cache.access(setAddr(c, 0, t), AccessType::Load);
    AccessResult r = cache.access(setAddr(c, 0, 9), AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, (3ull << c.setShift()) | 0u);
}

TEST(Lru, HitOrderIsExactStackOrder)
{
    CacheConfig c = cfg(2, 4);
    LruPolicy *lru_raw;
    auto lru = std::make_unique<LruPolicy>(c);
    lru_raw = lru.get();
    SetAssocCache cache(c, std::move(lru));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(setAddr(c, 0, t), AccessType::Load);
    // Most recent is tag 3 at way 3.
    EXPECT_EQ(lru_raw->position(0, 3), 0u);
    EXPECT_EQ(lru_raw->position(0, 0), 3u);
    cache.access(setAddr(c, 0, 0), AccessType::Load);
    EXPECT_EQ(lru_raw->position(0, 0), 0u);
    EXPECT_EQ(lru_raw->position(0, 3), 1u);
}

TEST(Lru, StateBitsMatchPaper)
{
    CacheConfig c = CacheConfig::paperLlc();
    LruPolicy lru(c);
    // 16 ways * log2(16) = 64 bits per set.
    EXPECT_EQ(lru.stateBitsPerSet(), 64u);
}

TEST(Lru, InvalidatedWayIsNextVictim)
{
    CacheConfig c = cfg(2, 4);
    SetAssocCache cache(c, std::make_unique<LruPolicy>(c));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(setAddr(c, 0, t), AccessType::Load);
    cache.invalidate(setAddr(c, 0, 2));
    // Next fill goes into the invalidated way (no eviction).
    AccessResult r = cache.access(setAddr(c, 0, 8), AccessType::Load);
    EXPECT_FALSE(r.evictedBlock.has_value());
}

TEST(Random, DeterministicWithSeed)
{
    CacheConfig c = cfg(4, 4);
    auto run = [&](uint64_t seed) {
        SetAssocCache cache(c,
                            std::make_unique<RandomPolicy>(c, seed));
        uint64_t evictions_sig = 0;
        for (uint64_t t = 0; t < 100; ++t) {
            AccessResult r =
                cache.access(setAddr(c, 0, t), AccessType::Load);
            if (r.evictedBlock)
                evictions_sig = evictions_sig * 31 + *r.evictedBlock;
        }
        return evictions_sig;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Random, ZeroStateBits)
{
    CacheConfig c = cfg(4, 4);
    RandomPolicy p(c, 1);
    EXPECT_EQ(p.stateBitsPerSet(), 0u);
}

TEST(Random, VictimsCoverAllWays)
{
    CacheConfig c = cfg(2, 8);
    RandomPolicy p(c, 3);
    AccessInfo info;
    info.set = 0;
    std::vector<bool> seen(8, false);
    for (int i = 0; i < 1000; ++i)
        seen[p.victim(info)] = true;
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_TRUE(seen[w]) << w;
}

TEST(Fifo, EvictsInsertionOrderRegardlessOfHits)
{
    CacheConfig c = cfg(2, 4);
    SetAssocCache cache(c, std::make_unique<FifoPolicy>(c));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(setAddr(c, 0, t), AccessType::Load);
    // Hit tag 0 repeatedly; FIFO must still evict tag 0 first.
    for (int i = 0; i < 10; ++i)
        cache.access(setAddr(c, 0, 0), AccessType::Load);
    AccessResult r = cache.access(setAddr(c, 0, 9), AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, 0u);
}

TEST(Fifo, RoundRobinOrder)
{
    CacheConfig c = cfg(2, 2);
    SetAssocCache cache(c, std::make_unique<FifoPolicy>(c));
    cache.access(setAddr(c, 0, 0), AccessType::Load);
    cache.access(setAddr(c, 0, 1), AccessType::Load);
    AccessResult r1 = cache.access(setAddr(c, 0, 2), AccessType::Load);
    ASSERT_TRUE(r1.evictedBlock.has_value());
    EXPECT_EQ(*r1.evictedBlock, 0u);
    AccessResult r2 = cache.access(setAddr(c, 0, 3), AccessType::Load);
    ASSERT_TRUE(r2.evictedBlock.has_value());
    EXPECT_EQ(*r2.evictedBlock, 1ull << c.setShift());
}

TEST(Fifo, StateBitsLogarithmic)
{
    CacheConfig c = cfg(2, 16);
    FifoPolicy p(c);
    EXPECT_EQ(p.stateBitsPerSet(), 4u);
}

} // namespace
} // namespace gippr
