/**
 * @file
 * Regression tests pinning the synthetic suite's generated contents
 * and the shared LLC trace memo.
 *
 * The bench/example harnesses materialize each workload once and
 * reuse the traces across repetitions and experiments.  That hoist is
 * only sound if (a) materializing a spec is deterministic, and (b) the
 * shared LlcTraceCache returns the same filtered traces an unshared
 * run would build.  A golden FNV-1a digest over every record of every
 * workload pins the suite contents so an accidental generator change
 * (which would silently shift every result table) fails loudly here.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace gippr
{
namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
foldU64(uint64_t h, uint64_t v)
{
    return fnv1a(h, &v, sizeof(v));
}

uint64_t
foldDouble(uint64_t h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return foldU64(h, bits);
}

/** Digest of one materialized workload (weights and every record). */
uint64_t
digestOf(const Workload &w, uint64_t h)
{
    for (const Simpoint &sp : w.simpoints()) {
        h = foldDouble(h, sp.weight);
        h = foldU64(h, sp.trace->size());
        for (const MemRecord &rec : sp.trace->records()) {
            h = foldU64(h, rec.instGap);
            h = foldU64(h, rec.addr);
            h = foldU64(h, rec.pc);
            h = foldU64(h, rec.isWrite ? 1 : 0);
        }
    }
    return h;
}

SuiteParams
pinnedParams()
{
    SuiteParams p;
    p.llcBlocks = 256;
    p.accessesPerSimpoint = 2000;
    p.baseSeed = 0x5eed;
    return p;
}

uint64_t
suiteDigest(const SuiteParams &params)
{
    SyntheticSuite suite(params);
    uint64_t h = kFnvOffset;
    for (const WorkloadSpec &spec : suite.specs()) {
        h = fnv1a(h, spec.name.data(), spec.name.size());
        h = digestOf(SyntheticSuite::materialize(spec), h);
    }
    return h;
}

HierarchyConfig
tinyHier()
{
    HierarchyConfig hier;
    hier.l1 = {"L1", 4 * 1024, 8, 64};
    hier.l2 = {"L2", 8 * 1024, 8, 64};
    hier.llc = {"LLC", 32 * 1024, 16, 64};
    return hier;
}

} // namespace

TEST(SuiteDigest, MaterializationIsDeterministic)
{
    const SyntheticSuite suite(pinnedParams());
    const WorkloadSpec &spec = suite.spec("zipf_twophase");
    const uint64_t once =
        digestOf(SyntheticSuite::materialize(spec), kFnvOffset);
    const uint64_t again =
        digestOf(SyntheticSuite::materialize(spec), kFnvOffset);
    EXPECT_EQ(once, again);
}

TEST(SuiteDigest, GoldenDigestPinned)
{
    // Golden value computed from the suite at the pinned params above.
    // If a generator change is INTENTIONAL, rerun this test and update
    // the constant; an unexpected mismatch means every published table
    // silently changed.
    constexpr uint64_t kGolden = 0x9358339984f6f65full;
    EXPECT_EQ(suiteDigest(pinnedParams()), kGolden);
}

TEST(SuiteDigest, TraceCacheMemoizesEntries)
{
    const SyntheticSuite suite(pinnedParams());
    const HierarchyConfig hier = tinyHier();
    LlcTraceCache cache;
    const auto first = cache.get(suite.spec("loop_fit"), hier, nullptr);
    const auto second = cache.get(suite.spec("loop_fit"), hier, nullptr);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_FALSE(first->empty());
    for (const LlcTraceCache::Entry &entry : *first) {
        EXPECT_GT(entry.instructions, 0u);
        EXPECT_GT(entry.weight, 0.0);
    }
}

TEST(SuiteDigest, TraceCacheKeysOnCapacityAndGeometry)
{
    SuiteParams small = pinnedParams();
    SuiteParams big = pinnedParams();
    big.llcBlocks = 512; // same seeds, differently scaled generators
    const SyntheticSuite a(small);
    const SyntheticSuite b(big);
    const HierarchyConfig hier = tinyHier();
    LlcTraceCache cache;
    const auto ea = cache.get(a.spec("stream_pure"), hier, nullptr);
    const auto eb = cache.get(b.spec("stream_pure"), hier, nullptr);
    EXPECT_NE(ea.get(), eb.get());
    EXPECT_EQ(cache.misses(), 2u);

    // Same spec through a different hierarchy is a distinct entry too.
    HierarchyConfig wider = hier;
    wider.llc.sizeBytes = 64 * 1024;
    const auto ec = cache.get(a.spec("stream_pure"), wider, nullptr);
    EXPECT_NE(ea.get(), ec.get());
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(SuiteDigest, SharedCacheLeavesExperimentRowsUnchanged)
{
    SuiteParams sp = pinnedParams();
    sp.accessesPerSimpoint = 6000;
    const SyntheticSuite suite(sp);

    ExperimentConfig cfg;
    cfg.system.hier = tinyHier();
    cfg.threads = 4;
    const std::vector<PolicyDef> policies = {policyByName("LRU"),
                                             policyByName("DGIPPR2")};

    const ExperimentResult plain =
        runMissExperiment(suite, policies, cfg);

    LlcTraceCache shared;
    cfg.traceCache = &shared;
    const ExperimentResult cached =
        runMissExperiment(suite, policies, cfg);
    EXPECT_GT(shared.misses(), 0u);

    ASSERT_EQ(plain.rows.size(), cached.rows.size());
    EXPECT_EQ(plain.columns, cached.columns);
    for (size_t i = 0; i < plain.rows.size(); ++i) {
        EXPECT_EQ(plain.rows[i].workload, cached.rows[i].workload);
        EXPECT_EQ(plain.rows[i].values, cached.rows[i].values);
    }

    // A second experiment through the same cache is all hits.
    const uint64_t misses_before = shared.misses();
    const ExperimentResult again =
        runMissExperiment(suite, policies, cfg);
    EXPECT_EQ(shared.misses(), misses_before);
    EXPECT_GT(shared.hits(), 0u);
    for (size_t i = 0; i < plain.rows.size(); ++i)
        EXPECT_EQ(plain.rows[i].values, again.rows[i].values);
}

} // namespace gippr
