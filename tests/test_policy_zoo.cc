/**
 * @file
 * Tests for the policy zoo (named factories).
 */

#include <gtest/gtest.h>

#include "sim/policy_zoo.hh"

namespace gippr
{
namespace
{

TEST(PolicyZoo, BaselineNamesRoundTrip)
{
    const char *names[] = {"LRU",   "PLRU",  "Random", "FIFO", "DIP",
                           "SRRIP", "BRRIP", "DRRIP",  "PDP",  "SHiP"};
    CacheConfig cfg = CacheConfig::benchLlc();
    for (const char *n : names) {
        PolicyDef def = policyByName(n);
        EXPECT_EQ(def.name, n);
        auto policy = def.make(cfg);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), n);
    }
}

TEST(PolicyZoo, UnknownNameThrows)
{
    EXPECT_THROW(policyByName("NotAPolicy"), std::runtime_error);
    EXPECT_THROW(policyByName("BOGUS:1 2 3"), std::runtime_error);
}

TEST(PolicyZoo, GipprWithInlineVector)
{
    PolicyDef def =
        policyByName("GIPPR:0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13");
    auto policy = def.make(CacheConfig::benchLlc());
    EXPECT_EQ(policy->name(), "GIPPR");
    EXPECT_EQ(policy->stateBitsPerSet(), 15u);
}

TEST(PolicyZoo, GiplrWithInlineVector)
{
    PolicyDef def =
        policyByName("GIPLR:0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15");
    auto policy = def.make(CacheConfig::benchLlc());
    EXPECT_EQ(policy->name(), "GIPLR");
    EXPECT_EQ(policy->stateBitsPerSet(), 64u);
}

TEST(PolicyZoo, DgipprShortcuts)
{
    for (const char *n : {"DGIPPR2", "DGIPPR4", "DGIPPR8"}) {
        PolicyDef def = policyByName(n);
        auto policy = def.make(CacheConfig::benchLlc());
        EXPECT_EQ(policy->stateBitsPerSet(), 15u);
        EXPECT_GT(policy->globalStateBits(), 0u);
    }
}

TEST(PolicyZoo, FactoriesAreReusableAcrossGeometries)
{
    PolicyDef def = policyByName("DRRIP");
    CacheConfig small;
    small.sizeBytes = 64 * 4 * 64;
    small.assoc = 4;
    small.blockBytes = 64;
    auto a = def.make(CacheConfig::benchLlc());
    auto b = def.make(small);
    EXPECT_EQ(a->stateBitsPerSet(), 32u);
    EXPECT_EQ(b->stateBitsPerSet(), 8u);
}

TEST(PolicyZoo, OverheadComparisonMatchesPaperTable)
{
    // The paper's storage argument at 16 ways / 4MB:
    //   LRU 64 b/set, DGIPPR 15 b/set, DRRIP 32 b/set, PDP 64+ b/set.
    CacheConfig cfg = CacheConfig::paperLlc();
    EXPECT_EQ(policyByName("LRU").make(cfg)->stateBitsPerSet(), 64u);
    EXPECT_EQ(policyByName("DGIPPR4").make(cfg)->stateBitsPerSet(),
              15u);
    EXPECT_EQ(policyByName("DRRIP").make(cfg)->stateBitsPerSet(), 32u);
    EXPECT_GE(policyByName("PDP").make(cfg)->stateBitsPerSet(), 64u);
}

} // namespace
} // namespace gippr
