/**
 * @file
 * Tests for Belady's MIN: exactness on hand-worked examples and the
 * optimality property (MIN never misses more than any online policy).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "cache/replay.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "core/vectors.hh"
#include "policies/belady.hh"
#include "policies/fifo.hh"
#include "policies/lru.hh"
#include "policies/random.hh"
#include "policies/rrip.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

Trace
traceOfBlocks(const std::vector<uint64_t> &blocks)
{
    Trace t;
    for (uint64_t b : blocks) {
        MemRecord r;
        r.addr = b * 64;
        r.pc = 0x400000;
        t.append(r);
    }
    return t;
}

uint64_t
missesUnder(const CacheConfig &c,
            std::unique_ptr<ReplacementPolicy> policy, const Trace &t)
{
    SetAssocCache cache(c, std::move(policy));
    replayTrace(cache, t);
    return cache.stats().demandMisses;
}

TEST(Belady, ClassicTextbookExample)
{
    // Fully-associative 3-entry cache (1 set x 3 ways), the classic
    // reference string 2 3 2 1 5 2 4 5 3 2 5 2: MIN takes 3 cold +
    // ... worked by hand below.
    CacheConfig c = cfg(1, 3);
    Trace t = traceOfBlocks({2, 3, 2, 1, 5, 2, 4, 5, 3, 2, 5, 2});
    // Hand-worked MIN:
    //  2 miss {2}            3 miss {2,3}        2 hit
    //  1 miss {2,3,1}        5 miss evict 1 or 3 (next use of 3 is
    //  pos 8, 1 never)  -> evict 1 {2,3,5}       2 hit
    //  4 miss evict 3? next uses: 2@9, 5@7, 3@8 -> evict 2? No:
    //  farthest next use among {2(9),3(8),5(7)} is 2 -> evict 2
    //  {4,3,5}               5 hit               3 hit
    //  2 miss evict 4 (never used again) {2,3,5} 5 hit   2 hit
    // Total misses: 6.
    uint64_t min_misses = runMinMisses(c, t);
    EXPECT_EQ(min_misses, 6u);
}

TEST(Belady, AllDistinctBlocksAllMiss)
{
    CacheConfig c = cfg(2, 2);
    Trace t = traceOfBlocks({1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_EQ(runMinMisses(c, t), 8u);
}

TEST(Belady, RepeatedBlockOnlyFirstMisses)
{
    CacheConfig c = cfg(2, 2);
    Trace t = traceOfBlocks({7, 7, 7, 7, 7});
    EXPECT_EQ(runMinMisses(c, t), 1u);
}

TEST(Belady, CyclicPatternKeepsMaximalSubset)
{
    // 1 set x 4 ways, cyclic over 5 blocks, 10 cycles: MIN keeps 3
    // fixed blocks plus rotates; classic result: after the 5 cold
    // misses, MIN misses exactly once per ... at most 2 per cycle.
    CacheConfig c = cfg(1, 4);
    std::vector<uint64_t> blocks;
    for (int rep = 0; rep < 10; ++rep)
        for (uint64_t b = 0; b < 5; ++b)
            blocks.push_back(b);
    Trace t = traceOfBlocks(blocks);
    uint64_t min_misses = runMinMisses(c, t);
    // LRU would miss all 50; MIN misses the 5 cold + 1 per remaining
    // reuse window.
    EXPECT_LT(min_misses, 20u);
    uint64_t lru_misses =
        missesUnder(c, std::make_unique<LruPolicy>(c), t);
    EXPECT_EQ(lru_misses, 50u);
}

class BeladyOptimality : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BeladyOptimality, NoOnlinePolicyBeatsMin)
{
    // Property test: on a random trace, MIN's miss count lower-bounds
    // every implementable policy's.
    const uint64_t seed = GetParam();
    CacheConfig c = cfg(8, 4);
    Rng rng(seed);
    std::vector<uint64_t> blocks;
    // Mix of hot blocks, loops and cold streams.
    uint64_t cold = 10000;
    for (int i = 0; i < 8000; ++i) {
        switch (rng.nextBounded(3)) {
          case 0:
            blocks.push_back(rng.nextBounded(24)); // hot region
            break;
          case 1:
            blocks.push_back(100 + (static_cast<uint64_t>(i) % 80));
            break;
          default:
            blocks.push_back(cold++);
        }
    }
    Trace t = traceOfBlocks(blocks);
    uint64_t min_misses = runMinMisses(c, t);

    EXPECT_LE(min_misses,
              missesUnder(c, std::make_unique<LruPolicy>(c), t));
    EXPECT_LE(min_misses,
              missesUnder(c, std::make_unique<FifoPolicy>(c), t));
    EXPECT_LE(min_misses,
              missesUnder(c, std::make_unique<RandomPolicy>(c, seed), t));
    EXPECT_LE(min_misses, missesUnder(c, makeSrrip(c), t));
    EXPECT_LE(min_misses, missesUnder(c, makeDrrip(c, 2, 2, seed), t));
    EXPECT_LE(min_misses,
              missesUnder(c, std::make_unique<PlruPolicy>(c), t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimality,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(Belady, WarmupExcludesEarlyMisses)
{
    CacheConfig c = cfg(2, 2);
    Trace t = traceOfBlocks({1, 2, 3, 4, 1, 2, 3, 4});
    uint64_t all = runMinMisses(c, t, 0);
    uint64_t measured = runMinMisses(c, t, 4);
    EXPECT_LT(measured, all);
}

TEST(Belady, SequenceContractEnforced)
{
    // Replaying more accesses than the trace it was built from is a
    // programming error the policy must catch.
    CacheConfig c = cfg(2, 2);
    Trace t = traceOfBlocks({1, 2});
    SetAssocCache cache(c, std::make_unique<BeladyPolicy>(c, t));
    cache.access(64, AccessType::Load);
    cache.access(128, AccessType::Load);
    EXPECT_DEATH(cache.access(192, AccessType::Load), "beyond");
}

TEST(Belady, MuchBetterThanLruOnThrash)
{
    // The headline MIN property the paper reports (67.5% of LRU
    // misses on SPEC): on a pure thrash loop the gap is dramatic.
    CacheConfig c = cfg(4, 4); // 16 blocks
    std::vector<uint64_t> blocks;
    for (int rep = 0; rep < 50; ++rep)
        for (uint64_t b = 0; b < 24; ++b) // 1.5x capacity
            blocks.push_back(b);
    Trace t = traceOfBlocks(blocks);
    uint64_t min_misses = runMinMisses(c, t);
    uint64_t lru_misses =
        missesUnder(c, std::make_unique<LruPolicy>(c), t);
    EXPECT_LT(min_misses * 2, lru_misses);
}

} // namespace
} // namespace gippr
