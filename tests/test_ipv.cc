/**
 * @file
 * Tests for the IPV abstraction: construction, parsing, canonical
 * vectors, degeneracy analysis and shift-edge computation.
 */

#include <gtest/gtest.h>

#include "core/ipv.hh"
#include "core/vectors.hh"

namespace gippr
{
namespace
{

TEST(Ipv, LruVectorAllZeros)
{
    Ipv v = Ipv::lru(16);
    EXPECT_EQ(v.ways(), 16u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(v.promotion(i), 0u);
    EXPECT_EQ(v.insertion(), 0u);
}

TEST(Ipv, LruInsertionVector)
{
    Ipv v = Ipv::lruInsertion(16);
    EXPECT_EQ(v.insertion(), 15u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(v.promotion(i), 0u);
}

TEST(Ipv, ParsePaperGiplrVector)
{
    Ipv v = paper_vectors::giplr();
    EXPECT_EQ(v.ways(), 16u);
    // Section 2.5: incoming blocks inserted into position 13.
    EXPECT_EQ(v.insertion(), 13u);
    // A block referenced in the LRU position moves to position 11.
    EXPECT_EQ(v.promotion(15), 11u);
    // A block referenced in position 2 moves to position 1.
    EXPECT_EQ(v.promotion(2), 1u);
}

TEST(Ipv, ParseAcceptsCommasAndBrackets)
{
    Ipv a = Ipv::parse("[0, 0, 1, 2]");
    EXPECT_EQ(a.ways(), 3u);
    EXPECT_EQ(a.insertion(), 2u);
}

TEST(Ipv, ParseRejectsOutOfRangeEntries)
{
    // k = 3 ways implies entries < 3.
    EXPECT_THROW(Ipv::parse("0 1 3 0"), std::runtime_error);
}

TEST(Ipv, ParseRejectsTooShort)
{
    EXPECT_THROW(Ipv::parse("0 0"), std::runtime_error);
}

TEST(Ipv, ToStringRoundTrip)
{
    Ipv v = paper_vectors::wiGippr();
    Ipv u = Ipv::parse(v.toString());
    EXPECT_TRUE(v == u);
}

TEST(Ipv, ParseRejectsEmptyInput)
{
    EXPECT_THROW(Ipv::parse(""), std::runtime_error);
    EXPECT_THROW(Ipv::parse("   "), std::runtime_error);
    EXPECT_THROW(Ipv::parse("[]"), std::runtime_error);
}

TEST(Ipv, ParseRejectsNonNumericTokens)
{
    EXPECT_THROW(Ipv::parse("0 x 1 2"), std::runtime_error);
    EXPECT_THROW(Ipv::parse("a b c d"), std::runtime_error);
    // Trailing garbage after a well-formed prefix must not be
    // silently dropped.
    EXPECT_THROW(Ipv::parse("0 0 1 2 junk"), std::runtime_error);
}

TEST(Ipv, ParseAllowsTrailingWhitespace)
{
    Ipv v = Ipv::parse("  0 0 1 2  \n");
    EXPECT_EQ(v.ways(), 3u);
}

TEST(Ipv, ParseRejectsNegativeEntries)
{
    EXPECT_THROW(Ipv::parse("0 0 -1 2"), std::runtime_error);
}

TEST(Ipv, ParseRejectsEntriesAbove255)
{
    EXPECT_THROW(Ipv::parse("0 0 1 999"), std::runtime_error);
}

TEST(Ipv, ParsePaper16WayVectorRoundTrips)
{
    // The paper's offline-evolved 16-way GIPPR vector (Section 2.5).
    Ipv paper = paper_vectors::wiGippr();
    ASSERT_EQ(paper.ways(), 16u);
    Ipv reparsed = Ipv::parse(paper.toString());
    EXPECT_TRUE(paper == reparsed);
    EXPECT_EQ(reparsed.toString(), paper.toString());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(reparsed.promotion(i), paper.promotion(i)) << i;
    EXPECT_EQ(reparsed.insertion(), paper.insertion());
}

TEST(Ipv, ValidationBoundsWays)
{
    // k = 1 (two entries) is below the smallest real cache.
    EXPECT_FALSE(Ipv::isValidVector({0, 0}));
    // k = 2 is the floor...
    EXPECT_TRUE(Ipv::isValidVector({0, 1, 1}));
    // ...and k = 256 the ceiling, matching PlruTree's constructor.
    EXPECT_TRUE(
        Ipv::isValidVector(std::vector<uint8_t>(257, 0)));
    EXPECT_FALSE(
        Ipv::isValidVector(std::vector<uint8_t>(258, 0)));
    EXPECT_FALSE(
        Ipv::isValidVector(std::vector<uint8_t>(300, 0)));
}

TEST(Ipv, ValidationCatchesBadVectors)
{
    EXPECT_FALSE(Ipv::isValidVector({0, 1}));        // too short
    EXPECT_FALSE(Ipv::isValidVector({0, 0, 0, 3}));  // value == k
    EXPECT_TRUE(Ipv::isValidVector({0, 0, 0, 2}));
}

TEST(Ipv, LruIsNotDegenerate)
{
    EXPECT_FALSE(Ipv::lru(16).isDegenerate());
}

TEST(Ipv, LruInsertionIsNotDegenerate)
{
    // LIP inserts at k-1 but promotion from there reaches MRU.
    EXPECT_FALSE(Ipv::lruInsertion(16).isDegenerate());
}

TEST(Ipv, PaperVectorsAreNotDegenerate)
{
    EXPECT_FALSE(paper_vectors::giplr().isDegenerate());
    EXPECT_FALSE(paper_vectors::wiGippr().isDegenerate());
    for (const Ipv &v : paper_vectors::wi2Dgippr())
        EXPECT_FALSE(v.isDegenerate());
    for (const Ipv &v : paper_vectors::wi4Dgippr())
        EXPECT_FALSE(v.isDegenerate());
}

TEST(Ipv, DegenerateVectorDetected)
{
    // 4 ways: insertion at 3; promotions from 1..3 all land at 1, no
    // promotion targets 0, and since V[0] == 0 no move ever shifts a
    // block upward into MRU -> position 0 unreachable.
    Ipv v = Ipv::parse("0 1 1 1 3");
    EXPECT_TRUE(v.isDegenerate());
}

TEST(Ipv, AllDemotionsWithUpShiftsIsNotDegenerate)
{
    // Every promotion demotes to 3, but the demotion move 0 -> 3
    // shifts blocks at 1..3 *up*, so a block can ride shifts to MRU:
    // not degenerate under the paper's induced-graph definition.
    Ipv v = Ipv::parse("3 3 3 3 3");
    EXPECT_FALSE(v.isDegenerate());
}

TEST(Ipv, SelfLoopInsertionWithNoPromotionIsDegenerate)
{
    // Insert at 2; blocks bounce between 2 and 3 (via the 3 -> 2
    // move's down-shift) but nothing ever reaches 1 or 0.
    Ipv v = Ipv::parse("0 1 2 2 2");
    EXPECT_TRUE(v.isDegenerate());
}

TEST(Ipv, ReachabilityViaShiftEdges)
{
    // 4 ways: insertion at 3; promotion from 3 to 1 shifts blocks at
    // positions 1..2 down and never promotes them, but a block at 2
    // shifted down... Construct: V = [0 1 2 1 3]: insert at 3, promote
    // 3 -> 1. The shift of the move 3->1 pushes 1,2 down. From 1 the
    // promotion goes to 1 (stays); position 0 reachable only via
    // promotion 1 -> ... V[1] = 1, V[2] = 2. So from insertion: 3 ->
    // 1 -> stuck; 0 unreachable by promotion. But no upward shifts
    // exist, so degenerate.
    Ipv stuck = Ipv::parse("0 1 2 1 3");
    EXPECT_TRUE(stuck.isDegenerate());
    // Now allow promotion 1 -> 0: path exists.
    Ipv ok = Ipv::parse("0 0 2 1 3");
    EXPECT_FALSE(ok.isDegenerate());
}

TEST(Ipv, ShiftEdgesForLru)
{
    // LRU: every move i -> 0 shifts positions 0..i-1 down.
    Ipv v = Ipv::lru(4);
    Ipv::ShiftEdges e = v.shiftEdges();
    EXPECT_TRUE(e.down[0]);
    EXPECT_TRUE(e.down[1]);
    EXPECT_TRUE(e.down[2]);
    // No move has a target above its source, so no upward shifts.
    EXPECT_FALSE(e.up[1]);
    EXPECT_FALSE(e.up[2]);
    EXPECT_FALSE(e.up[3]);
}

TEST(Ipv, ShiftEdgesForDownwardMove)
{
    // V[0] = 3 (demotion): blocks at 1..3 shift up.
    Ipv v = Ipv::parse("3 1 2 3 0");
    Ipv::ShiftEdges e = v.shiftEdges();
    EXPECT_TRUE(e.up[1]);
    EXPECT_TRUE(e.up[2]);
    EXPECT_TRUE(e.up[3]);
}

TEST(Ipv, ReachableFromInsertionLru)
{
    Ipv v = Ipv::lru(8);
    std::vector<bool> r = v.reachableFromInsertion();
    // Insertion at 0; every position reachable by being shifted down.
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_TRUE(r[p]) << p;
}

TEST(Ipv, LocalVectorSetsAreWellFormed)
{
    EXPECT_EQ(local_vectors::giplr().ways(), 16u);
    EXPECT_EQ(local_vectors::gippr().ways(), 16u);
    EXPECT_EQ(local_vectors::dgippr2().size(), 2u);
    EXPECT_EQ(local_vectors::dgippr4().size(), 4u);
    EXPECT_EQ(local_vectors::dgippr8().size(), 8u);
    for (const Ipv &v : local_vectors::dgippr8()) {
        EXPECT_EQ(v.ways(), 16u);
        EXPECT_FALSE(v.isDegenerate());
    }
}

TEST(Ipv, EqualityComparesEntries)
{
    EXPECT_TRUE(Ipv::lru(4) == Ipv::parse("0 0 0 0 0"));
    EXPECT_FALSE(Ipv::lru(4) == Ipv::lruInsertion(4));
}

} // namespace
} // namespace gippr
