/**
 * @file
 * Determinism tests for the sharded fast replay engine.
 *
 * The engine's contract is that sharding is an implementation detail:
 * any shard count must produce bit-identical ReplayStats (counter
 * banks, duel counters, leader misses, final winner), and two runs
 * with the same seed must produce byte-identical RunReport artifacts
 * once the timestamp is pinned.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/config.hh"
#include "core/vectors.hh"
#include "sim/fastpath/engine.hh"
#include "telemetry/report.hh"
#include "trace/trace.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
smallLlc()
{
    CacheConfig cfg;
    cfg.name = "llc";
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

std::vector<fastpath::ReplaySpec>
coreSpecs()
{
    return {fastpath::lruSpec(),
            fastpath::lipSpec(),
            fastpath::giplrSpec(local_vectors::giplr()),
            fastpath::plruSpec(),
            fastpath::gipprSpec(local_vectors::gippr()),
            fastpath::dgipprSpec(local_vectors::dgippr2()),
            fastpath::dgipprSpec(local_vectors::dgippr4())};
}

Trace
mixedStream(uint64_t n, uint64_t seed, const CacheConfig &cfg)
{
    Rng rng(seed);
    Trace trace;
    trace.reserve(n);
    const uint64_t block = cfg.blockBytes;
    const uint64_t blocks = cfg.sets() * cfg.assoc * 4;
    for (uint64_t i = 0; i < n; ++i) {
        MemRecord rec;
        rec.instGap = 1;
        rec.addr = rng.nextBounded(blocks) * block;
        if (rng.nextBool(0.1)) {
            rec.isWrite = true;
            rec.pc = 0; // writeback
        } else {
            rec.isWrite = rng.nextBool(0.25);
            rec.pc = 0x400000 + rng.nextBounded(64) * 4;
        }
        trace.append(rec);
    }
    return trace;
}

/** Deterministic RunReport built from one fast replay. */
std::string
reportFor(const Trace &trace, unsigned shards)
{
    const CacheConfig cfg = smallLlc();
    telemetry::RunReport report("bench", "determinism_probe");
    report.setTimestamp("2000-01-01T00:00:00Z");
    report.setConfig("shards",
                     telemetry::JsonValue(uint64_t{shards}));
    const fastpath::FastReplayEngine engine(shards);
    telemetry::ResultTable table;
    table.title = "counters";
    table.metric = "count";
    table.columns = {"hits", "demand_misses", "evictions",
                     "writebacks"};
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        const fastpath::ReplayStats stats =
            engine.replay(spec, cfg, trace, trace.size() / 3);
        table.rows.push_back(
            {spec.name(),
             {static_cast<double>(stats.measured.hits),
              static_cast<double>(stats.measured.demandMisses),
              static_cast<double>(stats.measured.evictions),
              static_cast<double>(stats.measured.writebacks)}});
    }
    report.addTable(std::move(table));
    return report.toJson().dump(2);
}

} // namespace

TEST(FastpathDeterminism, ShardCountNeverChangesAnyCounter)
{
    const CacheConfig cfg = smallLlc();
    const Trace trace = mixedStream(120'000, 0xd373, cfg);
    const size_t warmup = trace.size() / 3;
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        const fastpath::FastReplayEngine one(1);
        const fastpath::ReplayStats want =
            one.replay(spec, cfg, trace, warmup);
        for (unsigned shards : {2u, 4u, 16u}) {
            const fastpath::FastReplayEngine engine(shards);
            const fastpath::ReplayStats got =
                engine.replay(spec, cfg, trace, warmup);
            EXPECT_EQ(want, got)
                << spec.name() << " with " << shards << " shards:\n"
                << want.toString() << "\nvs\n" << got.toString();
        }
    }
}

TEST(FastpathDeterminism, ShardCountBeyondSetsClamps)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024; // 16 sets at 16 ways
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    const Trace trace = mixedStream(30'000, 0xc1a4, cfg);
    const fastpath::FastReplayEngine one(1);
    const fastpath::FastReplayEngine many(64); // > sets
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        EXPECT_EQ(one.replay(spec, cfg, trace, 0),
                  many.replay(spec, cfg, trace, 0))
            << spec.name();
    }
}

TEST(FastpathDeterminism, RepeatedRunsYieldByteIdenticalReports)
{
    const Trace trace = mixedStream(60'000, 0x5eed, smallLlc());
    const std::string first = reportFor(trace, 4);
    const std::string second = reportFor(trace, 4);
    EXPECT_EQ(first, second);
    // And the artifact is shard-invariant, not merely run-invariant
    // (the "shards" config key is the only allowed difference).
    std::string one = reportFor(trace, 1);
    std::string four = first;
    const auto strip = [](std::string &s) {
        const size_t at = s.find("\"shards\"");
        ASSERT_NE(at, std::string::npos);
        const size_t end = s.find('\n', at);
        s.erase(at, end - at);
    };
    strip(one);
    strip(four);
    EXPECT_EQ(one, four);
}

TEST(FastpathDeterminism, EngineFactoryResolvesBackends)
{
    EXPECT_EQ(fastpath::makeReplayEngine("scalar")->name(), "scalar");
    EXPECT_EQ(fastpath::makeReplayEngine("fast", 3)->name(), "fast");
    auto fast = fastpath::makeReplayEngine("fast", 3);
    EXPECT_EQ(
        dynamic_cast<const fastpath::FastReplayEngine &>(*fast).shards(),
        3u);
    // shards == 0 resolves to the hardware concurrency (at least 1).
    auto hw = fastpath::makeReplayEngine("fast", 0);
    EXPECT_GE(
        dynamic_cast<const fastpath::FastReplayEngine &>(*hw).shards(),
        1u);
    EXPECT_THROW(fastpath::makeReplayEngine("simd"), std::runtime_error);
}

} // namespace gippr
