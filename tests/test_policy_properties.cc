/**
 * @file
 * Cross-policy property tests: every policy in the zoo must satisfy
 * the ReplacementPolicy contract under the same randomized workloads.
 * Parameterized over policy names so each (policy, property) pair is
 * an individual test case.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "sim/policy_zoo.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
testConfig()
{
    CacheConfig c;
    c.name = "prop";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 64 * 16 * 64; // 64 sets
    return c;
}

class PolicyProperty : public ::testing::TestWithParam<const char *>
{
  protected:
    SetAssocCache
    makeCache()
    {
        CacheConfig c = testConfig();
        return SetAssocCache(c, policyByName(GetParam()).make(c));
    }
};

TEST_P(PolicyProperty, SurvivesRandomizedMixedTraffic)
{
    SetAssocCache cache = makeCache();
    CacheConfig c = testConfig();
    Rng rng(101);
    for (int i = 0; i < 60000; ++i) {
        uint64_t block = rng.nextBounded(4096);
        AccessType type;
        uint64_t pc = 0x400000 + (block % 13) * 4;
        switch (rng.nextBounded(10)) {
          case 0:
            type = AccessType::Writeback;
            pc = 0;
            break;
          case 1:
          case 2:
            type = AccessType::Store;
            break;
          default:
            type = AccessType::Load;
        }
        AccessResult r = cache.access(block * 64, type, pc);
        // Contract: way in range unless bypassed.
        if (!r.bypassed) {
            ASSERT_LT(r.way, c.assoc);
        }
    }
    EXPECT_EQ(cache.stats().accesses, 60000u);
}

TEST_P(PolicyProperty, DeterministicReplay)
{
    auto run = [&]() {
        SetAssocCache cache = makeCache();
        Rng rng(202);
        uint64_t signature = 0;
        for (int i = 0; i < 30000; ++i) {
            uint64_t block = rng.nextBounded(2048);
            AccessResult r = cache.access(block * 64, AccessType::Load,
                                          0x400000);
            signature = signature * 31 + (r.hit ? 1 : 0);
        }
        return std::make_pair(signature, cache.stats().misses);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST_P(PolicyProperty, ResidentBlockHitsUntilEvicted)
{
    // After an access, an immediate re-access must hit (no policy may
    // evict the just-touched block as a side effect of its own
    // bookkeeping), except policies that bypassed the fill.
    SetAssocCache cache = makeCache();
    Rng rng(303);
    for (int i = 0; i < 20000; ++i) {
        uint64_t block = rng.nextBounded(4096);
        AccessResult first =
            cache.access(block * 64, AccessType::Load, 0x400400);
        if (first.bypassed)
            continue;
        AccessResult again =
            cache.access(block * 64, AccessType::Load, 0x400400);
        ASSERT_TRUE(again.hit) << "iteration " << i;
    }
}

TEST_P(PolicyProperty, InvalidateThenRefill)
{
    SetAssocCache cache = makeCache();
    // Fill one set completely.
    CacheConfig c = testConfig();
    for (uint64_t t = 0; t < c.assoc; ++t)
        cache.access(((t << c.setShift()) | 3) << c.blockShift(),
                     AccessType::Load, 0x400000);
    // Invalidate two lines and re-access: must refill without
    // evicting valid lines.
    cache.invalidate(((2ull << c.setShift()) | 3) << c.blockShift());
    cache.invalidate(((5ull << c.setShift()) | 3) << c.blockShift());
    EXPECT_EQ(cache.validCount(3), c.assoc - 2);
    AccessResult r = cache.access(
        ((20ull << c.setShift()) | 3) << c.blockShift(),
        AccessType::Load, 0x400000);
    if (!r.bypassed) {
        EXPECT_FALSE(r.evictedBlock.has_value());
    }
}

TEST_P(PolicyProperty, StorageAccountingIsStable)
{
    CacheConfig c = testConfig();
    auto p1 = policyByName(GetParam()).make(c);
    auto p2 = policyByName(GetParam()).make(c);
    EXPECT_EQ(p1->stateBitsPerSet(), p2->stateBitsPerSet());
    EXPECT_EQ(p1->globalStateBits(), p2->globalStateBits());
    // Exercising the policy must not change its declared storage.
    SetAssocCache cache(c, policyByName(GetParam()).make(c));
    size_t before = cache.policy().stateBitsPerSet();
    Rng rng(404);
    for (int i = 0; i < 5000; ++i)
        cache.access(rng.nextBounded(4096) * 64, AccessType::Load,
                     0x400000);
    EXPECT_EQ(cache.policy().stateBitsPerSet(), before);
}

TEST_P(PolicyProperty, HitRateSaneOnResidentWorkingSet)
{
    // A working set of half the cache, touched round-robin: every
    // non-bypassing policy must eventually hit nearly always.
    SetAssocCache cache = makeCache();
    CacheConfig c = testConfig();
    const uint64_t blocks = c.sets() * c.assoc / 2;
    for (int rep = 0; rep < 4; ++rep)
        for (uint64_t b = 0; b < blocks; ++b)
            cache.access(b * 64, AccessType::Load, 0x400000);
    cache.clearStats();
    for (int rep = 0; rep < 4; ++rep)
        for (uint64_t b = 0; b < blocks; ++b)
            cache.access(b * 64, AccessType::Load, 0x400000);
    double hit_rate = static_cast<double>(cache.stats().hits) /
                      static_cast<double>(cache.stats().accesses);
    // 0.85, not ~1.0: dueling policies dedicate leader sets to their
    // losing member (on this small test cache up to 12.5% of sets),
    // and B-GIPPR's bypass-side leaders barely cache at all.
    EXPECT_GT(hit_rate, 0.85);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PolicyProperty,
    ::testing::Values("LRU", "PLRU", "Random", "FIFO", "DIP", "SRRIP",
                      "BRRIP", "DRRIP", "PDP", "SHiP", "DGIPPR2",
                      "DGIPPR4", "DGIPPR8", "BGIPPR", "RRIPIPV",
                      "GIPPR:0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13",
                      "GIPLR:0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13"),
    [](const ::testing::TestParamInfo<const char *> &param_info) {
        std::string name = param_info.param;
        auto colon = name.find(':');
        if (colon != std::string::npos)
            name = name.substr(0, colon) + "Vec";
        return name;
    });

} // namespace
} // namespace gippr
