/**
 * @file
 * Tests for the fault-tolerance layer: CRC-32, atomic file
 * replacement, deterministic retry backoff, fault injection, graceful
 * shutdown and the checkpoint envelope.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "robust/atomic_io.hh"
#include "robust/checkpoint.hh"
#include "robust/fault_inject.hh"
#include "robust/lease.hh"
#include "robust/shutdown.hh"

namespace gippr::robust
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory for one test. */
fs::path
scratchDir(const std::string &leaf)
{
    fs::path dir = fs::path(testing::TempDir()) / ("gippr_" + leaf);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** True when @p dir holds any leftover atomic-write temp file. */
bool
hasTempFiles(const fs::path &dir)
{
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos)
            return true;
    return false;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(Crc32, KnownVector)
{
    // The canonical CRC-32 check value (IEEE 802.3, as in zlib).
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox jumps over";
    uint32_t whole = crc32(data.data(), data.size());
    uint32_t part = crc32(data.data(), 10);
    part = crc32(data.data() + 10, data.size() - 10, part);
    EXPECT_EQ(part, whole);
}

TEST(AtomicWrite, RoundTripAndReplace)
{
    fs::path dir = scratchDir("atomic_rt");
    const std::string path = (dir / "artifact.json").string();
    writeFileAtomic(path, "first contents\n");
    EXPECT_EQ(readFileBytes(path), "first contents\n");
    writeFileAtomic(path, "second contents\n");
    EXPECT_EQ(readFileBytes(path), "second contents\n");
    EXPECT_FALSE(hasTempFiles(dir));
}

TEST(AtomicWrite, UnwritableDirectoryReportsError)
{
    EXPECT_THROW(writeFileAtomic(
                     "/nonexistent-gippr-dir/artifact.json", "x"),
                 std::runtime_error);
}

TEST(ReadFileBytes, MissingFileReportsError)
{
    EXPECT_THROW(readFileBytes("/nonexistent-gippr-dir/nope.bin"),
                 std::runtime_error);
}

TEST(FaultInjection, EveryFailureLeavesNoTornFile)
{
    fs::path dir = scratchDir("fault_sweep");
    const std::string path = (dir / "target.bin").string();
    writeFileAtomic(path, "old contents");

    const char *specs[] = {"open=1",  "write=1", "short_write=1",
                           "enospc=1", "rename=1", "fsync=1",
                           "close=1"};
    for (const char *spec : specs) {
        FaultInjector::instance().configure(spec);
        EXPECT_THROW(writeFileAtomic(path, "new contents"),
                     std::runtime_error)
            << "spec " << spec;
        FaultInjector::instance().reset();
        // The destination keeps its old contents whole; no temp file
        // survives the failure.
        EXPECT_EQ(slurp(path), "old contents") << "spec " << spec;
        EXPECT_FALSE(hasTempFiles(dir)) << "spec " << spec;
    }

    // Disarmed, the same write goes through.
    writeFileAtomic(path, "new contents");
    EXPECT_EQ(slurp(path), "new contents");
}

TEST(FaultInjection, FiresOnlyOnNthOccurrence)
{
    fs::path dir = scratchDir("fault_nth");
    const std::string path = (dir / "t.bin").string();
    // First write (one open) succeeds; second trips open=2.
    FaultInjector::instance().configure("open=2");
    writeFileAtomic(path, "a");
    EXPECT_THROW(writeFileAtomic(path, "b"), std::runtime_error);
    FaultInjector::instance().reset();
    EXPECT_EQ(slurp(path), "a");
}

TEST(FaultInjection, MalformedSpecRejected)
{
    EXPECT_THROW(FaultInjector::instance().configure("bogus=1"),
                 std::runtime_error);
    EXPECT_THROW(FaultInjector::instance().configure("open"),
                 std::runtime_error);
    EXPECT_THROW(FaultInjector::instance().configure("open=zero"),
                 std::runtime_error);
    FaultInjector::instance().reset();
}

TEST(Retry, DeterministicJitterSchedule)
{
    const auto delaysFor = [](unsigned failures) {
        std::vector<unsigned> delays;
        RetryPolicy policy;
        policy.attempts = 3;
        policy.baseDelayMs = 10;
        policy.sleeper = [&](unsigned ms) { delays.push_back(ms); };
        unsigned calls = 0;
        bool ok = retryWithBackoff(policy, [&]() {
            return ++calls > failures;
        });
        EXPECT_EQ(ok, failures < policy.attempts);
        return delays;
    };

    std::vector<unsigned> first = delaysFor(2);
    std::vector<unsigned> second = delaysFor(2);
    ASSERT_EQ(first.size(), 2u);
    // Same policy, same seed: the jittered schedule replays exactly.
    EXPECT_EQ(first, second);
    // Exponential window: retry k waits in [base/2 * 2^(k-1), ...).
    EXPECT_GE(first[0], 5u);
    EXPECT_LT(first[0], 10u);
    EXPECT_GE(first[1], 10u);
    EXPECT_LT(first[1], 20u);

    // Exhaustion: attempts bounded, one sleep between each pair.
    EXPECT_EQ(delaysFor(99).size(), 2u);
    // Immediate success never sleeps.
    EXPECT_TRUE(delaysFor(0).empty());
}

TEST(Retry, MaxDelayCapsTheExponentialSchedule)
{
    std::vector<unsigned> delays;
    RetryPolicy policy;
    policy.attempts = 6;
    policy.baseDelayMs = 10;
    policy.maxDelayMs = 15;
    policy.sleeper = [&](unsigned ms) { delays.push_back(ms); };
    EXPECT_FALSE(retryWithBackoff(policy, []() { return false; }));
    ASSERT_EQ(delays.size(), 5u);
    for (unsigned d : delays)
        EXPECT_LE(d, 15u);
    // The cap turns the tail into steady polling, not ever-longer
    // doubled sleeps: the last delays all sit at the cap.
    EXPECT_EQ(delays.back(), 15u);
}

TEST(Retry, DeadlineBudgetStopsRetrying)
{
    // A generous attempt count but a tight deadline: retrying must
    // stop once the next scheduled delay would exceed the budget.
    std::vector<unsigned> delays;
    RetryPolicy policy;
    policy.attempts = 1000;
    policy.baseDelayMs = 10;
    policy.maxDelayMs = 10;
    policy.deadlineMs = 35;
    policy.sleeper = [&](unsigned ms) { delays.push_back(ms); };
    unsigned calls = 0;
    EXPECT_FALSE(retryWithBackoff(policy, [&]() {
        ++calls;
        return false;
    }));
    // Delays are in [5, 10] each (jittered, capped at 10), so at most
    // 7 sleeps fit a 35 ms budget — nowhere near 1000 attempts.
    unsigned total = 0;
    for (unsigned d : delays)
        total += d;
    EXPECT_LE(total, 35u);
    EXPECT_EQ(calls, delays.size() + 1);
    EXPECT_LT(calls, 10u);

    // The deadline counts *scheduled* delays, so the schedule (and
    // attempt count) replays exactly.
    std::vector<unsigned> replay;
    policy.sleeper = [&](unsigned ms) { replay.push_back(ms); };
    EXPECT_FALSE(retryWithBackoff(policy, []() { return false; }));
    EXPECT_EQ(replay, delays);

    // A deadline smaller than any first delay still allows the
    // initial attempt (attempts >= 1 semantics).
    policy.deadlineMs = 1;
    calls = 0;
    EXPECT_TRUE(retryWithBackoff(policy, [&]() {
        ++calls;
        return true;
    }));
    EXPECT_EQ(calls, 1u);
}

TEST(Retry, DefaultPolicyReadsEnvKnobDeterministically)
{
    const auto scheduleFor = [](const char *base_ms) {
        if (base_ms)
            ::setenv("GIPPR_IO_RETRY_BASE_MS", base_ms, 1);
        else
            ::unsetenv("GIPPR_IO_RETRY_BASE_MS");
        RetryPolicy policy = defaultRetryPolicy();
        std::vector<unsigned> delays;
        policy.sleeper = [&](unsigned ms) { delays.push_back(ms); };
        EXPECT_FALSE(retryWithBackoff(policy, []() { return false; }));
        ::unsetenv("GIPPR_IO_RETRY_BASE_MS");
        return delays;
    };

    // The env knob is re-read per call and the jitter is seeded: the
    // same setting replays the same schedule.
    const std::vector<unsigned> fast = scheduleFor("2");
    EXPECT_EQ(fast, scheduleFor("2"));
    ASSERT_EQ(fast.size(), 2u); // default attempts = 3
    for (unsigned d : fast)
        EXPECT_LT(d, 5u); // base 2: delays in [1,2] then [2,4]

    const std::vector<unsigned> dflt = scheduleFor(nullptr);
    ASSERT_EQ(dflt.size(), 2u);
    EXPECT_GE(dflt[0], 5u); // base 10: first delay in [5,10)
}

TEST(FaultInjection, ReadFaultFiresAndFileSurvives)
{
    fs::path dir = scratchDir("fault_read");
    const std::string path = (dir / "data.bin").string();
    writeFileAtomic(path, "payload");

    FaultInjector::instance().configure("read=1");
    EXPECT_THROW(readFileBytes(path), std::runtime_error);
    FaultInjector::instance().reset();
    // The injected EIO is a read-side fault: the file itself is whole.
    EXPECT_EQ(readFileBytes(path), "payload");

    // The non-throwing reader reports the same fault as false.
    FaultInjector::instance().configure("read=1");
    std::string out = "untouched";
    EXPECT_FALSE(tryReadFileBytes(path, out));
    EXPECT_EQ(out, "untouched");
    FaultInjector::instance().reset();
    EXPECT_TRUE(tryReadFileBytes(path, out));
    EXPECT_EQ(out, "payload");
}

TEST(TryReadFileBytes, MissingFileIsFalseNotFatal)
{
    std::string out = "untouched";
    EXPECT_FALSE(
        tryReadFileBytes("/nonexistent-gippr-dir/nope.bin", out));
    EXPECT_EQ(out, "untouched");
}

TEST(PublishExclusive, FirstWinsSecondLosesContentsKept)
{
    fs::path dir = scratchDir("publish_excl");
    const std::string path = (dir / "claim").string();
    EXPECT_TRUE(publishFileExclusive(path, "winner"));
    EXPECT_FALSE(publishFileExclusive(path, "loser"));
    EXPECT_EQ(readFileBytes(path), "winner");
    EXPECT_FALSE(hasTempFiles(dir));
}

TEST(PublishExclusive, ConcurrentRaceHasExactlyOneWinner)
{
    fs::path dir = scratchDir("publish_race");
    const std::string path = (dir / "claim").string();
    constexpr int kContenders = 8;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    threads.reserve(kContenders);
    for (int t = 0; t < kContenders; ++t)
        threads.emplace_back([&, t]() {
            if (publishFileExclusive(path,
                                     "contender " + std::to_string(t)))
                ++winners;
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(winners.load(), 1);
    // The surviving contents are one whole payload, never a mix.
    const std::string body = readFileBytes(path);
    EXPECT_EQ(body.rfind("contender ", 0), 0u);
    EXPECT_FALSE(hasTempFiles(dir));
}

TEST(Lease, CodecRoundTripAndCorruptionRejected)
{
    LeaseInfo info;
    info.island = 3;
    info.pid = 12345;
    info.incarnation = 2;
    info.seq = 99;
    const std::string line = encodeLease(info);

    LeaseInfo out;
    ASSERT_TRUE(decodeLease(line, out));
    EXPECT_EQ(out.island, 3u);
    EXPECT_EQ(out.pid, 12345);
    EXPECT_EQ(out.incarnation, 2u);
    EXPECT_EQ(out.seq, 99u);

    // Any single-character damage trips the CRC (or the grammar).
    for (size_t i = 0; i < line.size() - 1; ++i) {
        std::string bad = line;
        bad[i] = bad[i] == 'x' ? 'y' : 'x';
        LeaseInfo ignored;
        EXPECT_FALSE(decodeLease(bad, ignored)) << "flip at " << i;
    }
    EXPECT_FALSE(decodeLease("", out));
    EXPECT_FALSE(decodeLease("gippr-lease v1 island=1", out));
}

TEST(Lease, WriterBeatsAdvanceSeqDurably)
{
    fs::path dir = scratchDir("lease_writer");
    const std::string path = (dir / "lease.0").string();
    LeaseWriter writer(path, 0, 4242, 1);
    writer.beat();
    writer.beat();

    LeaseInfo info;
    std::string body;
    ASSERT_TRUE(tryReadFileBytes(path, body));
    ASSERT_TRUE(decodeLease(body, info));
    EXPECT_EQ(info.seq, 2u);
    EXPECT_EQ(info.pid, 4242);
    EXPECT_EQ(info.incarnation, 1u);
    EXPECT_FALSE(hasTempFiles(dir));
}

TEST(LeaseMonitor, StalenessIsObserverClockOnly)
{
    // All times below are the OBSERVER's fake clock; the lease itself
    // carries no timestamp, so arbitrary worker clock skew is
    // irrelevant by construction.
    LeaseMonitor monitor(100);

    // Never-observed islands are not stale.
    EXPECT_FALSE(monitor.stale(0, 1000000));

    // A worker that has not yet managed a first beat (slow startup)
    // is not stale either — process death is waitpid's job.
    monitor.observe(0, false, 0, 0, 0);
    EXPECT_FALSE(monitor.stale(0, 1000000));

    // Heartbeats advancing: never stale.
    monitor.observe(0, true, 1, 0, 10);
    monitor.observe(0, true, 2, 0, 80);
    monitor.observe(0, true, 3, 0, 150);
    EXPECT_FALSE(monitor.stale(0, 220));

    // Counter frozen at 3: stale once 100 ms of observer time pass.
    monitor.observe(0, true, 3, 0, 200);
    EXPECT_FALSE(monitor.stale(0, 249));
    EXPECT_TRUE(monitor.stale(0, 250));

    // A fresh beat un-stales.
    monitor.observe(0, true, 4, 0, 260);
    EXPECT_FALSE(monitor.stale(0, 300));

    // A vanished lease file keeps the silence clock running.
    monitor.observe(0, false, 0, 0, 320);
    EXPECT_TRUE(monitor.stale(0, 360));

    // Same seq but a new incarnation is a change (replacement worker).
    monitor.observe(0, true, 4, 1, 365);
    EXPECT_FALSE(monitor.stale(0, 400));

    // forget() wipes history: the island needs a fresh first lease.
    monitor.forget(0);
    EXPECT_FALSE(monitor.stale(0, 1000000));
    monitor.observe(0, false, 0, 0, 1000001);
    EXPECT_FALSE(monitor.stale(0, 2000000));
}

TEST(Shutdown, FlagLifecycle)
{
    ShutdownGuard::clear();
    EXPECT_FALSE(ShutdownGuard::requested());
    ShutdownGuard::requestShutdown();
    EXPECT_TRUE(ShutdownGuard::requested());
    ShutdownGuard::clear();
    EXPECT_FALSE(ShutdownGuard::requested());
}

TEST(Shutdown, SignalSetsFlagUnderGuard)
{
    ShutdownGuard::clear();
    {
        ShutdownGuard guard;
        EXPECT_FALSE(ShutdownGuard::requested());
        std::raise(SIGTERM);
        EXPECT_TRUE(ShutdownGuard::requested());
    }
    ShutdownGuard::clear();
}

TEST(ByteCodec, RoundTripAllTypes)
{
    ByteWriter w;
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(1.0 / 3.0);
    w.str("hello");
    w.bytes({1, 2, 3});

    ByteReader r(w.data(), "test");
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    // Bit-exact round trip, not merely approximate.
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.bytes(), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_TRUE(r.atEnd());
    r.expectEnd();
}

TEST(ByteCodec, TruncationAndTrailingBytesRejected)
{
    ByteWriter w;
    w.u64(42);
    ByteReader trunc(std::string_view(w.data()).substr(0, 4), "test");
    EXPECT_THROW(trunc.u64(), std::runtime_error);

    ByteReader leftover(w.data(), "test");
    leftover.u32();
    EXPECT_THROW(leftover.expectEnd(), std::runtime_error);
}

TEST(Envelope, RoundTrip)
{
    fs::path dir = scratchDir("envelope_rt");
    const std::string path = (dir / "ck.gpck").string();
    EXPECT_FALSE(checkpointExists(path));
    writeCheckpointFile(path, "test-kind", 3, "payload bytes");
    EXPECT_TRUE(checkpointExists(path));
    EXPECT_EQ(readCheckpointFile(path, "test-kind", 3),
              "payload bytes");
}

TEST(Envelope, RejectsCorruptionAndMismatches)
{
    fs::path dir = scratchDir("envelope_bad");
    const std::string path = (dir / "ck.gpck").string();
    writeCheckpointFile(path, "test-kind", 3, "payload bytes");

    // Wrong kind / wrong payload version.
    EXPECT_THROW(readCheckpointFile(path, "other-kind", 3),
                 std::runtime_error);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 4),
                 std::runtime_error);

    const std::string good = readFileBytes(path);

    // Flip one payload byte: checksum must catch it.
    std::string corrupt = good;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x40);
    writeFileAtomic(path, corrupt);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Truncate mid-payload.
    writeFileAtomic(path, good.substr(0, good.size() - 5));
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Truncate mid-header.
    writeFileAtomic(path, good.substr(0, 6));
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Bad magic.
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    writeFileAtomic(path, bad_magic);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Unsupported envelope version (bytes 4..7, little-endian).
    std::string bad_env = good;
    bad_env[4] = 99;
    writeFileAtomic(path, bad_env);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);
}

} // namespace
} // namespace gippr::robust
