/**
 * @file
 * Tests for the fault-tolerance layer: CRC-32, atomic file
 * replacement, deterministic retry backoff, fault injection, graceful
 * shutdown and the checkpoint envelope.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "robust/atomic_io.hh"
#include "robust/checkpoint.hh"
#include "robust/fault_inject.hh"
#include "robust/shutdown.hh"

namespace gippr::robust
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory for one test. */
fs::path
scratchDir(const std::string &leaf)
{
    fs::path dir = fs::path(testing::TempDir()) / ("gippr_" + leaf);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** True when @p dir holds any leftover atomic-write temp file. */
bool
hasTempFiles(const fs::path &dir)
{
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos)
            return true;
    return false;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(Crc32, KnownVector)
{
    // The canonical CRC-32 check value (IEEE 802.3, as in zlib).
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox jumps over";
    uint32_t whole = crc32(data.data(), data.size());
    uint32_t part = crc32(data.data(), 10);
    part = crc32(data.data() + 10, data.size() - 10, part);
    EXPECT_EQ(part, whole);
}

TEST(AtomicWrite, RoundTripAndReplace)
{
    fs::path dir = scratchDir("atomic_rt");
    const std::string path = (dir / "artifact.json").string();
    writeFileAtomic(path, "first contents\n");
    EXPECT_EQ(readFileBytes(path), "first contents\n");
    writeFileAtomic(path, "second contents\n");
    EXPECT_EQ(readFileBytes(path), "second contents\n");
    EXPECT_FALSE(hasTempFiles(dir));
}

TEST(AtomicWrite, UnwritableDirectoryReportsError)
{
    EXPECT_THROW(writeFileAtomic(
                     "/nonexistent-gippr-dir/artifact.json", "x"),
                 std::runtime_error);
}

TEST(ReadFileBytes, MissingFileReportsError)
{
    EXPECT_THROW(readFileBytes("/nonexistent-gippr-dir/nope.bin"),
                 std::runtime_error);
}

TEST(FaultInjection, EveryFailureLeavesNoTornFile)
{
    fs::path dir = scratchDir("fault_sweep");
    const std::string path = (dir / "target.bin").string();
    writeFileAtomic(path, "old contents");

    const char *specs[] = {"open=1",  "write=1", "short_write=1",
                           "enospc=1", "rename=1", "fsync=1",
                           "close=1"};
    for (const char *spec : specs) {
        FaultInjector::instance().configure(spec);
        EXPECT_THROW(writeFileAtomic(path, "new contents"),
                     std::runtime_error)
            << "spec " << spec;
        FaultInjector::instance().reset();
        // The destination keeps its old contents whole; no temp file
        // survives the failure.
        EXPECT_EQ(slurp(path), "old contents") << "spec " << spec;
        EXPECT_FALSE(hasTempFiles(dir)) << "spec " << spec;
    }

    // Disarmed, the same write goes through.
    writeFileAtomic(path, "new contents");
    EXPECT_EQ(slurp(path), "new contents");
}

TEST(FaultInjection, FiresOnlyOnNthOccurrence)
{
    fs::path dir = scratchDir("fault_nth");
    const std::string path = (dir / "t.bin").string();
    // First write (one open) succeeds; second trips open=2.
    FaultInjector::instance().configure("open=2");
    writeFileAtomic(path, "a");
    EXPECT_THROW(writeFileAtomic(path, "b"), std::runtime_error);
    FaultInjector::instance().reset();
    EXPECT_EQ(slurp(path), "a");
}

TEST(FaultInjection, MalformedSpecRejected)
{
    EXPECT_THROW(FaultInjector::instance().configure("bogus=1"),
                 std::runtime_error);
    EXPECT_THROW(FaultInjector::instance().configure("open"),
                 std::runtime_error);
    EXPECT_THROW(FaultInjector::instance().configure("open=zero"),
                 std::runtime_error);
    FaultInjector::instance().reset();
}

TEST(Retry, DeterministicJitterSchedule)
{
    const auto delaysFor = [](unsigned failures) {
        std::vector<unsigned> delays;
        RetryPolicy policy;
        policy.attempts = 3;
        policy.baseDelayMs = 10;
        policy.sleeper = [&](unsigned ms) { delays.push_back(ms); };
        unsigned calls = 0;
        bool ok = retryWithBackoff(policy, [&]() {
            return ++calls > failures;
        });
        EXPECT_EQ(ok, failures < policy.attempts);
        return delays;
    };

    std::vector<unsigned> first = delaysFor(2);
    std::vector<unsigned> second = delaysFor(2);
    ASSERT_EQ(first.size(), 2u);
    // Same policy, same seed: the jittered schedule replays exactly.
    EXPECT_EQ(first, second);
    // Exponential window: retry k waits in [base/2 * 2^(k-1), ...).
    EXPECT_GE(first[0], 5u);
    EXPECT_LT(first[0], 10u);
    EXPECT_GE(first[1], 10u);
    EXPECT_LT(first[1], 20u);

    // Exhaustion: attempts bounded, one sleep between each pair.
    EXPECT_EQ(delaysFor(99).size(), 2u);
    // Immediate success never sleeps.
    EXPECT_TRUE(delaysFor(0).empty());
}

TEST(Shutdown, FlagLifecycle)
{
    ShutdownGuard::clear();
    EXPECT_FALSE(ShutdownGuard::requested());
    ShutdownGuard::requestShutdown();
    EXPECT_TRUE(ShutdownGuard::requested());
    ShutdownGuard::clear();
    EXPECT_FALSE(ShutdownGuard::requested());
}

TEST(Shutdown, SignalSetsFlagUnderGuard)
{
    ShutdownGuard::clear();
    {
        ShutdownGuard guard;
        EXPECT_FALSE(ShutdownGuard::requested());
        std::raise(SIGTERM);
        EXPECT_TRUE(ShutdownGuard::requested());
    }
    ShutdownGuard::clear();
}

TEST(ByteCodec, RoundTripAllTypes)
{
    ByteWriter w;
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.f64(1.0 / 3.0);
    w.str("hello");
    w.bytes({1, 2, 3});

    ByteReader r(w.data(), "test");
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    // Bit-exact round trip, not merely approximate.
    EXPECT_EQ(r.f64(), 1.0 / 3.0);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.bytes(), (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_TRUE(r.atEnd());
    r.expectEnd();
}

TEST(ByteCodec, TruncationAndTrailingBytesRejected)
{
    ByteWriter w;
    w.u64(42);
    ByteReader trunc(std::string_view(w.data()).substr(0, 4), "test");
    EXPECT_THROW(trunc.u64(), std::runtime_error);

    ByteReader leftover(w.data(), "test");
    leftover.u32();
    EXPECT_THROW(leftover.expectEnd(), std::runtime_error);
}

TEST(Envelope, RoundTrip)
{
    fs::path dir = scratchDir("envelope_rt");
    const std::string path = (dir / "ck.gpck").string();
    EXPECT_FALSE(checkpointExists(path));
    writeCheckpointFile(path, "test-kind", 3, "payload bytes");
    EXPECT_TRUE(checkpointExists(path));
    EXPECT_EQ(readCheckpointFile(path, "test-kind", 3),
              "payload bytes");
}

TEST(Envelope, RejectsCorruptionAndMismatches)
{
    fs::path dir = scratchDir("envelope_bad");
    const std::string path = (dir / "ck.gpck").string();
    writeCheckpointFile(path, "test-kind", 3, "payload bytes");

    // Wrong kind / wrong payload version.
    EXPECT_THROW(readCheckpointFile(path, "other-kind", 3),
                 std::runtime_error);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 4),
                 std::runtime_error);

    const std::string good = readFileBytes(path);

    // Flip one payload byte: checksum must catch it.
    std::string corrupt = good;
    corrupt.back() = static_cast<char>(corrupt.back() ^ 0x40);
    writeFileAtomic(path, corrupt);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Truncate mid-payload.
    writeFileAtomic(path, good.substr(0, good.size() - 5));
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Truncate mid-header.
    writeFileAtomic(path, good.substr(0, 6));
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Bad magic.
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    writeFileAtomic(path, bad_magic);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);

    // Unsupported envelope version (bytes 4..7, little-endian).
    std::string bad_env = good;
    bad_env[4] = 99;
    writeFileAtomic(path, bad_env);
    EXPECT_THROW(readCheckpointFile(path, "test-kind", 3),
                 std::runtime_error);
}

} // namespace
} // namespace gippr::robust
