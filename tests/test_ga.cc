/**
 * @file
 * Tests for the search machinery: random search, the genetic
 * algorithm, hill climbing and duel-set selection.
 */

#include <gtest/gtest.h>

#include "ga/genetic.hh"
#include "ga/hill_climb.hh"
#include "ga/random_search.hh"

namespace gippr
{
namespace
{

CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 32 * 16 * 64; // 32 sets, 512 blocks
    return c;
}

Trace
loopTrace(uint64_t blocks, int reps, uint64_t base = 0)
{
    Trace t;
    for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t b = 0; b < blocks; ++b) {
            MemRecord r;
            r.addr = (base + b) * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
        }
    }
    return t;
}

FitnessEvaluator
makeEvaluator()
{
    std::vector<FitnessTrace> traces;
    FitnessTrace thrash;
    thrash.name = "thrash/0";
    thrash.llcTrace = std::make_shared<Trace>(loopTrace(640, 20));
    thrash.instructions = thrash.llcTrace->instructions();
    traces.push_back(thrash);
    return FitnessEvaluator(llcCfg(), std::move(traces), {});
}

TEST(RandomSearch, ProducesSortedFitness)
{
    FitnessEvaluator fe = makeEvaluator();
    auto samples = randomSearch(fe, IpvFamily::Gippr, 30, 5, 2);
    ASSERT_EQ(samples.size(), 30u);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_LE(samples[i - 1].fitness, samples[i].fitness);
}

TEST(RandomSearch, DeterministicForSeed)
{
    FitnessEvaluator fe = makeEvaluator();
    auto a = randomSearch(fe, IpvFamily::Gippr, 10, 7, 1);
    auto b = randomSearch(fe, IpvFamily::Gippr, 10, 7, 1);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].ipv == b[i].ipv);
        EXPECT_DOUBLE_EQ(a[i].fitness, b[i].fitness);
    }
}

TEST(RandomSearch, MostRandomVectorsLoseToLru)
{
    // The paper's Figure 1 observation: on recency-friendly traffic,
    // the bulk of the random design space underperforms LRU.  Build a
    // hot loop that LRU serves almost perfectly, lightly polluted by
    // a cold stream so replacement decisions actually happen.
    Trace t;
    Rng gen(123);
    uint64_t cold = 1 << 20;
    for (int rep = 0; rep < 40; ++rep) {
        for (uint64_t b = 0; b < 384; ++b) {
            MemRecord r;
            r.addr = b * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
            if (gen.nextBool(0.25)) {
                MemRecord cr;
                cr.addr = (cold++) * 64;
                cr.pc = 0x400400;
                cr.instGap = 10;
                t.append(cr);
            }
        }
    }
    FitnessTrace ft;
    ft.name = "friendly/0";
    ft.llcTrace = std::make_shared<Trace>(std::move(t));
    ft.instructions = ft.llcTrace->instructions();
    std::vector<FitnessTrace> traces{ft};
    FitnessEvaluator fe(llcCfg(), std::move(traces), {});

    auto samples = randomSearch(fe, IpvFamily::Gippr, 40, 11, 2);
    size_t below_parity = 0;
    for (const auto &s : samples)
        if (s.fitness < 1.0)
            ++below_parity;
    EXPECT_GT(below_parity, samples.size() / 2);
}

TEST(RandomSearch, RandomIpvIsValid)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        Ipv v = randomIpv(16, rng);
        EXPECT_EQ(v.ways(), 16u);
        EXPECT_TRUE(Ipv::isValidVector(v.entries()));
    }
}

TEST(Genetic, ImprovesOverGenerations)
{
    FitnessEvaluator fe = makeEvaluator();
    GaParams params;
    params.initialPopulation = 24;
    params.population = 16;
    params.generations = 6;
    params.threads = 2;
    params.seed = 17;
    GaResult r = evolveIpv(fe, IpvFamily::Gippr, params);
    ASSERT_EQ(r.history.size(), 7u);
    EXPECT_GE(r.history.back(), r.history.front());
    EXPECT_DOUBLE_EQ(r.bestFitness, r.history.back());
}

TEST(Genetic, FindsThrashResistantVector)
{
    // On a pure thrash fitness, the GA must discover a vector that
    // clearly beats LRU (LIP-like insertion exists in the space).
    FitnessEvaluator fe = makeEvaluator();
    GaParams params;
    params.initialPopulation = 40;
    params.population = 24;
    params.generations = 10;
    params.threads = 2;
    params.seed = 23;
    GaResult r = evolveIpv(fe, IpvFamily::Gippr, params);
    EXPECT_GT(r.bestFitness, 1.3);
}

TEST(Genetic, SeedVectorsJoinPopulation)
{
    FitnessEvaluator fe = makeEvaluator();
    GaParams params;
    params.initialPopulation = 10;
    params.population = 8;
    params.generations = 1;
    params.threads = 1;
    params.seed = 29;
    params.seedIpvs = {Ipv::lruInsertion(16)};
    GaResult r = evolveIpv(fe, IpvFamily::Gippr, params);
    // The seeded LIP vector dominates a thrash-only fitness, so the
    // result must be at least as good as LIP.
    double lip = fe.evaluate(Ipv::lruInsertion(16), IpvFamily::Gippr);
    EXPECT_GE(r.bestFitness, lip - 1e-9);
}

TEST(Genetic, DeterministicForSeed)
{
    FitnessEvaluator fe = makeEvaluator();
    GaParams params;
    params.initialPopulation = 12;
    params.population = 8;
    params.generations = 3;
    params.threads = 1;
    params.seed = 31;
    GaResult a = evolveIpv(fe, IpvFamily::Gippr, params);
    GaResult b = evolveIpv(fe, IpvFamily::Gippr, params);
    EXPECT_TRUE(a.best == b.best);
    EXPECT_DOUBLE_EQ(a.bestFitness, b.bestFitness);
}

TEST(HillClimb, NeverWorsens)
{
    FitnessEvaluator fe = makeEvaluator();
    Ipv start = Ipv::lru(16);
    HillClimbResult r =
        hillClimb(fe, IpvFamily::Gippr, start, 200);
    double base = fe.evaluate(start, IpvFamily::Gippr);
    EXPECT_GE(r.bestFitness, base);
}

TEST(HillClimb, ImprovesLruOnThrash)
{
    // From the all-zero vector, flipping the insertion entry to the
    // PLRU position is a single hill-climbing move with a big payoff.
    FitnessEvaluator fe = makeEvaluator();
    HillClimbResult r =
        hillClimb(fe, IpvFamily::Gippr, Ipv::lru(16), 2000);
    EXPECT_GT(r.bestFitness, 1.05);
    EXPECT_GT(r.steps, 0u);
}

TEST(HillClimb, RespectsEvaluationBudget)
{
    FitnessEvaluator fe = makeEvaluator();
    HillClimbResult r = hillClimb(fe, IpvFamily::Gippr,
                                  Ipv::lru(16), 25);
    EXPECT_LE(r.evaluations, 25u);
}

TEST(DuelSet, FirstPickIsBestOverall)
{
    FitnessEvaluator fe = makeEvaluator();
    std::vector<Ipv> candidates = {Ipv::lru(16), Ipv::lruInsertion(16)};
    std::vector<Ipv> set =
        selectDuelSet(fe, IpvFamily::Gippr, candidates, 2);
    ASSERT_EQ(set.size(), 2u);
    // LIP wins the thrash fitness, so it must come first.
    EXPECT_TRUE(set[0] == Ipv::lruInsertion(16));
}

TEST(DuelSet, PadsWhenFewCandidates)
{
    FitnessEvaluator fe = makeEvaluator();
    std::vector<Ipv> set = selectDuelSet(fe, IpvFamily::Gippr,
                                         {Ipv::lru(16)}, 4);
    EXPECT_EQ(set.size(), 4u);
}

} // namespace
} // namespace gippr
