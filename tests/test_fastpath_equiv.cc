/**
 * @file
 * Differential equivalence tests for the fast replay backend.
 *
 * Three layers, from primitive to end-to-end:
 *
 *  1. The packed single-word PLRU kernels are checked exhaustively
 *     against PlruTree over every internal-node state.
 *  2. FastpathOracle replays the scalar simulator and the SoA model
 *     in lock-step over randomized and workload-suite streams,
 *     comparing every access's outcome (hit, way, victim, dirtiness)
 *     and, periodically, the full per-set recency state and duel
 *     winner.  The first divergence is dumped with both models' set
 *     state.
 *  3. The engines themselves (scalar, fast x1 shard, fast x4 shards)
 *     must return identical ReplayStats — measured and total banks,
 *     duel counters, leader misses — for every core policy on suite
 *     workloads.
 *
 * Scale knobs (the CI equivalence job turns both up):
 *   GIPPR_FASTPATH_EQUIV_ACCESSES  lock-step stream length per policy
 *                                  (default 200000)
 *   GIPPR_FASTPATH_EQUIV_FULL=1    sweep all suite workloads in the
 *                                  engine-equality test (default: a
 *                                  representative archetype subset)
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/plru_tree.hh"
#include "core/vectors.hh"
#include "sim/fastpath/engine.hh"
#include "sim/fastpath/soa_cache.hh"
#include "sim/system.hh"
#include "trace/trace.hh"
#include "util/rng.hh"
#include "verify/fastpath_oracle.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

uint64_t
equivAccesses()
{
    const char *env = std::getenv("GIPPR_FASTPATH_EQUIV_ACCESSES");
    return env ? std::strtoull(env, nullptr, 10) : 200'000;
}

bool
fullSweep()
{
    const char *env = std::getenv("GIPPR_FASTPATH_EQUIV_FULL");
    return env && std::string(env) == "1";
}

/** Small LLC so streams wrap the set space and evict constantly. */
CacheConfig
smallLlc()
{
    CacheConfig cfg;
    cfg.name = "llc";
    cfg.sizeBytes = 64 * 1024; // 64 sets at 16 ways
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

/** The seven core policies the fast path covers, at 16 ways. */
std::vector<fastpath::ReplaySpec>
coreSpecs()
{
    return {fastpath::lruSpec(),
            fastpath::lipSpec(),
            fastpath::giplrSpec(local_vectors::giplr()),
            fastpath::plruSpec(),
            fastpath::gipprSpec(local_vectors::gippr()),
            fastpath::dgipprSpec(local_vectors::dgippr2()),
            fastpath::dgipprSpec(local_vectors::dgippr4())};
}

/**
 * Mixed-phase randomized stream: a hot working set (hits), streaming
 * sweeps (evictions), and occasional writebacks (pc == 0 stores), so
 * every transition in the access path is exercised.
 */
Trace
randomStream(uint64_t n, uint64_t seed, const CacheConfig &cfg)
{
    Rng rng(seed);
    Trace trace;
    trace.reserve(n);
    const uint64_t block = cfg.blockBytes;
    const uint64_t hot_blocks = cfg.sets() * cfg.assoc / 2;
    const uint64_t cold_blocks = cfg.sets() * cfg.assoc * 8;
    uint64_t stream_pos = 0;
    for (uint64_t i = 0; i < n; ++i) {
        MemRecord rec;
        rec.instGap = 1 + static_cast<uint32_t>(rng.nextBounded(4));
        const double r = rng.nextDouble();
        if (r < 0.45) {
            rec.addr = rng.nextBounded(hot_blocks) * block;
        } else if (r < 0.85) {
            rec.addr = (hot_blocks + stream_pos++ % cold_blocks) * block;
        } else {
            rec.addr = rng.nextBounded(cold_blocks) * block;
        }
        rec.addr += rng.nextBounded(block); // sub-block offsets
        if (rng.nextBool(0.08)) {
            rec.isWrite = true; // writeback convention: store, pc 0
            rec.pc = 0;
        } else {
            rec.isWrite = rng.nextBool(0.3);
            rec.pc = 0x400000 + rng.nextBounded(512) * 4;
        }
        trace.append(rec);
    }
    return trace;
}

uint64_t
treeWord(const PlruTree &tree)
{
    uint64_t word = 0;
    for (unsigned b = 0; b < tree.numBits(); ++b)
        word |= uint64_t{tree.bit(b)} << b;
    return word;
}

PlruTree
treeFromWord(unsigned ways, uint64_t word)
{
    PlruTree tree(ways);
    for (unsigned b = 0; b < ways - 1; ++b)
        tree.setBit(b, (word >> b) & 1);
    return tree;
}

} // namespace

TEST(FastpathKernels, MatchPlruTreeExhaustively)
{
    for (unsigned ways : {2u, 4u, 8u}) {
        const uint64_t states = uint64_t{1} << (ways - 1);
        for (uint64_t word = 0; word < states; ++word) {
            PlruTree tree = treeFromWord(ways, word);
            ASSERT_EQ(fastpath::packedFindPlru(word, ways),
                      tree.findPlru())
                << "ways " << ways << " word " << word;
            for (unsigned w = 0; w < ways; ++w) {
                ASSERT_EQ(fastpath::packedPosition(word, ways, w),
                          tree.position(w))
                    << "ways " << ways << " word " << word << " way "
                    << w;
                PlruTree promoted = treeFromWord(ways, word);
                promoted.promoteMru(w);
                ASSERT_EQ(fastpath::packedPromoteMru(word, ways, w),
                          treeWord(promoted));
                for (unsigned x = 0; x < ways; ++x) {
                    PlruTree moved = treeFromWord(ways, word);
                    moved.setPosition(w, x);
                    ASSERT_EQ(
                        fastpath::packedSetPosition(word, ways, w, x),
                        treeWord(moved))
                        << "ways " << ways << " word " << word << " way "
                        << w << " pos " << x;
                }
            }
        }
    }
}

TEST(FastpathKernels, MatchPlruTreeAt16Ways)
{
    const unsigned ways = 16;
    const uint64_t states = uint64_t{1} << (ways - 1);
    // findPlru/position over every state; the write kernels over a
    // deterministic sample (full coverage lives in the <= 8-way sweep,
    // which exercises every tree level shape).
    for (uint64_t word = 0; word < states; ++word) {
        PlruTree tree = treeFromWord(ways, word);
        ASSERT_EQ(fastpath::packedFindPlru(word, ways), tree.findPlru());
        for (unsigned w = 0; w < ways; ++w)
            ASSERT_EQ(fastpath::packedPosition(word, ways, w),
                      tree.position(w));
    }
    Rng rng(0xfa57);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t word = rng.nextBounded(states);
        const unsigned w = static_cast<unsigned>(rng.nextBounded(ways));
        const unsigned x = static_cast<unsigned>(rng.nextBounded(ways));
        PlruTree promoted = treeFromWord(ways, word);
        promoted.promoteMru(w);
        ASSERT_EQ(fastpath::packedPromoteMru(word, ways, w),
                  treeWord(promoted));
        PlruTree moved = treeFromWord(ways, word);
        moved.setPosition(w, x);
        ASSERT_EQ(fastpath::packedSetPosition(word, ways, w, x),
                  treeWord(moved));
    }
}

TEST(FastpathEquiv, ScalarPolicyNamesMatchSpecNames)
{
    const CacheConfig cfg = smallLlc();
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        // LIP has no dedicated scalar class: it is realized as GIPLR
        // with the LRU-insertion vector (paper Section 2).
        const std::string want =
            spec.kind == fastpath::FastPolicyKind::Lip ? "GIPLR"
                                                       : spec.name();
        EXPECT_EQ(fastpath::makeScalarPolicy(spec, cfg)->name(), want);
    }
}

TEST(FastpathEquiv, LockStepOnRandomizedStreams)
{
    const CacheConfig cfg = smallLlc();
    const uint64_t n = equivAccesses();
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        verify::FastpathOracle oracle(spec, cfg);
        const Trace trace = randomStream(n, 0x1ee7 + spec.ipvs.size(),
                                         cfg);
        verify::FastpathResult result =
            oracle.run(trace, "randomized", 997);
        EXPECT_TRUE(result.ok()) << result.toString();
        EXPECT_EQ(result.accesses, n);
    }
}

TEST(FastpathEquiv, LockStepOnWorkloadStreams)
{
    // Small suite so materialize+filter stays test-sized; archetypes
    // chosen to cover streaming, thrashing, skew and phase changes.
    SuiteParams params;
    params.llcBlocks = 1024; // 64KB at 64B lines, matching smallLlc
    params.accessesPerSimpoint = 30'000;
    SyntheticSuite suite(params);
    HierarchyConfig hier;
    hier.llc = smallLlc();

    const std::vector<std::string> names = {
        "stream_pure", "loop_thrash", "zipf_hot", "phase_thrashzipf"};
    for (const std::string &name : names) {
        const Workload w = SyntheticSuite::materialize(suite.spec(name));
        for (const fastpath::ReplaySpec &spec : coreSpecs()) {
            verify::FastpathOracle oracle(spec, hier.llc);
            for (const Simpoint &sp : w.simpoints()) {
                const Trace llc = Hierarchy::filterToLlc(
                    *sp.trace, hier, lruFactory(), lruFactory());
                verify::FastpathResult result =
                    oracle.run(llc, name, 499);
                EXPECT_TRUE(result.ok())
                    << name << ": " << result.toString();
            }
        }
    }
}

TEST(FastpathEquiv, EnginesAgreeOnSuiteWorkloads)
{
    SuiteParams params;
    params.llcBlocks = 1024;
    params.accessesPerSimpoint = fullSweep() ? 60'000 : 30'000;
    SyntheticSuite suite(params);
    HierarchyConfig hier;
    hier.llc = smallLlc();

    std::vector<std::string> names;
    if (fullSweep()) {
        names = suite.names();
    } else {
        names = {"stream_pure", "loop_fit", "loop_thrash", "zipf_hot",
                 "hotcold_scan", "phase_thrashzipf"};
    }

    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast1(1);
    const fastpath::FastReplayEngine fast4(4);

    for (const std::string &name : names) {
        const Workload w = SyntheticSuite::materialize(suite.spec(name));
        for (const Simpoint &sp : w.simpoints()) {
            const Trace llc = Hierarchy::filterToLlc(
                *sp.trace, hier, lruFactory(), lruFactory());
            const size_t warmup = llc.size() / 3;
            for (const fastpath::ReplaySpec &spec : coreSpecs()) {
                const fastpath::ReplayStats want =
                    scalar.replay(spec, hier.llc, llc, warmup);
                const fastpath::ReplayStats got1 =
                    fast1.replay(spec, hier.llc, llc, warmup);
                const fastpath::ReplayStats got4 =
                    fast4.replay(spec, hier.llc, llc, warmup);
                EXPECT_EQ(want, got1)
                    << name << "/" << spec.name() << " 1-shard:\n"
                    << want.toString() << "\nvs\n" << got1.toString();
                EXPECT_EQ(want, got4)
                    << name << "/" << spec.name() << " 4-shard:\n"
                    << want.toString() << "\nvs\n" << got4.toString();
            }
        }
    }
}

TEST(FastpathEquiv, EnginesAgreeWithFullTraceWarmupEdge)
{
    // warmup == trace.size(): everything is warmup, measured bank
    // empty; warmup == 0: everything measured.
    const CacheConfig cfg = smallLlc();
    const Trace trace = randomStream(20'000, 0xed9e, cfg);
    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast(4);
    for (const fastpath::ReplaySpec &spec : coreSpecs()) {
        for (size_t warmup : {size_t{0}, trace.size()}) {
            const fastpath::ReplayStats want =
                scalar.replay(spec, cfg, trace, warmup);
            const fastpath::ReplayStats got =
                fast.replay(spec, cfg, trace, warmup);
            EXPECT_EQ(want, got)
                << spec.name() << " warmup " << warmup << ":\n"
                << want.toString() << "\nvs\n" << got.toString();
        }
    }
}

TEST(FastpathEquiv, FastFallsBackForUnsupportedGeometry)
{
    // 3-way LLC: trees need a power of two, so PLRU/GIPPR specs are
    // unsupported and replay() must transparently match the scalar
    // engine via fallback.
    CacheConfig cfg;
    cfg.sizeBytes = 3 * 64 * 64;
    cfg.assoc = 3;
    cfg.blockBytes = 64;
    const fastpath::ReplaySpec spec = fastpath::plruSpec();
    EXPECT_FALSE(fastpath::FastReplayEngine::supports(spec, cfg));
    const Trace trace = randomStream(5'000, 0xfa11, cfg);
    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast(2);
    EXPECT_EQ(scalar.replay(spec, cfg, trace, 1000),
              fast.replay(spec, cfg, trace, 1000));
}

} // namespace gippr
