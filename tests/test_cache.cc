/**
 * @file
 * Unit tests for the set-associative cache model and geometry.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/replay.hh"
#include "policies/lru.hh"

namespace gippr
{
namespace
{

CacheConfig
tinyConfig(unsigned sets = 4, unsigned ways = 2)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.blockBytes = 64;
    cfg.assoc = ways;
    cfg.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return cfg;
}

SetAssocCache
makeLruCache(const CacheConfig &cfg)
{
    return SetAssocCache(cfg, std::make_unique<LruPolicy>(cfg));
}

TEST(CacheConfig, GeometryDerivation)
{
    CacheConfig cfg = CacheConfig::paperLlc();
    EXPECT_EQ(cfg.sets(), 4096u);
    EXPECT_EQ(cfg.blockShift(), 6u);
    EXPECT_EQ(cfg.setShift(), 12u);
}

TEST(CacheConfig, AddressDecomposition)
{
    CacheConfig cfg = tinyConfig(4, 2); // 4 sets, 64B blocks
    uint64_t addr = (0x5u << 8) | (3u << 6) | 17u; // tag 5, set 3
    EXPECT_EQ(cfg.blockAddr(addr), (0x5u << 2) | 3u);
    EXPECT_EQ(cfg.setIndex(addr), 3u);
    EXPECT_EQ(cfg.tag(addr), 0x5u);
}

TEST(CacheConfig, ValidateAcceptsPaperConfigs)
{
    EXPECT_NO_THROW(CacheConfig::paperLlc().validate());
    EXPECT_NO_THROW(CacheConfig::paperL1d().validate());
    EXPECT_NO_THROW(CacheConfig::paperL2().validate());
    EXPECT_NO_THROW(CacheConfig::benchLlc().validate());
}

TEST(CacheConfig, ValidateRejectsNonPow2Block)
{
    CacheConfig cfg = tinyConfig();
    cfg.blockBytes = 48;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(CacheConfig, ValidateRejectsNonPow2Sets)
{
    CacheConfig cfg;
    cfg.sizeBytes = 3 * 2 * 64; // 3 sets
    cfg.assoc = 2;
    cfg.blockBytes = 64;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(CacheConfig, ValidateRejectsIndivisibleSize)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1000;
    cfg.assoc = 2;
    cfg.blockBytes = 64;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(Cache, ColdMissThenHit)
{
    auto cache = makeLruCache(tinyConfig());
    AccessResult r1 = cache.access(0x1000, AccessType::Load);
    EXPECT_FALSE(r1.hit);
    AccessResult r2 = cache.access(0x1000, AccessType::Load);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameBlockDifferentOffsetsHit)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Load);
    EXPECT_TRUE(cache.access(0x103F, AccessType::Load).hit);
}

TEST(Cache, FillsInvalidWaysBeforeEvicting)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    // Two blocks in the same set: no eviction.
    cache.access(0x0000, AccessType::Load);            // set 0
    AccessResult r = cache.access(0x0400, AccessType::Load); // set 0
    EXPECT_FALSE(r.evictedBlock.has_value());
    EXPECT_EQ(cache.validCount(0), 2u);
}

TEST(Cache, EvictsWhenSetFull)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Load);
    cache.access(0x0400, AccessType::Load);
    AccessResult r = cache.access(0x0800, AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    // LRU victim is the first block.
    EXPECT_EQ(*r.evictedBlock, 0u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, LruOrderRespectsHits)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Load); // A
    cache.access(0x0400, AccessType::Load); // B
    cache.access(0x0000, AccessType::Load); // touch A -> B is LRU
    AccessResult r = cache.access(0x0800, AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, 0x0400u >> 6);
}

TEST(Cache, DirtyEvictionReported)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Store);
    cache.access(0x0400, AccessType::Load);
    AccessResult r = cache.access(0x0800, AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNotDirty)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Load);
    cache.access(0x0400, AccessType::Load);
    AccessResult r = cache.access(0x0800, AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_FALSE(r.evictedDirty);
}

TEST(Cache, StoreHitMarksDirty)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Load);
    cache.access(0x0000, AccessType::Store); // hit, dirties
    cache.access(0x0400, AccessType::Load);
    AccessResult r = cache.access(0x0800, AccessType::Load);
    // 0x0400 is LRU? No: order A(0), A(0) hit, B. LRU is B? A touched
    // twice then B loaded: LRU is A.
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, 0u);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, WritebackAccessesNotDemand)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Writeback);
    EXPECT_EQ(cache.stats().accesses, 1u);
    EXPECT_EQ(cache.stats().demandAccesses, 0u);
    EXPECT_EQ(cache.stats().demandMisses, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    cache.access(0x0000, AccessType::Load);
    cache.access(0x0400, AccessType::Load);
    EXPECT_TRUE(cache.probe(0x0000));
    EXPECT_FALSE(cache.probe(0x0800));
    uint64_t hits_before = cache.stats().hits;
    cache.probe(0x0000);
    EXPECT_EQ(cache.stats().hits, hits_before);
    // Probing A must not refresh recency: B..A order unchanged means
    // victim is still A.
    AccessResult r = cache.access(0x0800, AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_EQ(*r.evictedBlock, 0u);
}

TEST(Cache, InvalidateRemovesBlock)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Load);
    cache.invalidate(0x1000);
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.access(0x1000, AccessType::Load).hit);
}

TEST(Cache, InvalidateMissingBlockIsNoop)
{
    auto cache = makeLruCache(tinyConfig());
    EXPECT_NO_THROW(cache.invalidate(0xFFFF000));
}

TEST(Cache, ResetClearsEverything)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Store);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.probe(0x1000));
}

TEST(Cache, ClearStatsKeepsContents)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Load);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.access(0x1000, AccessType::Load).hit);
}

TEST(Cache, BlockAtReportsResidents)
{
    CacheConfig cfg = tinyConfig(4, 2);
    auto cache = makeLruCache(cfg);
    cache.access(0x0000, AccessType::Load);
    auto blk = cache.blockAt(0, 0);
    ASSERT_TRUE(blk.has_value());
    EXPECT_EQ(*blk, 0u);
    EXPECT_FALSE(cache.blockAt(0, 1).has_value());
}

TEST(Cache, MissRateAndMpki)
{
    auto cache = makeLruCache(tinyConfig());
    cache.access(0x1000, AccessType::Load);
    cache.access(0x1000, AccessType::Load);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
    EXPECT_DOUBLE_EQ(cache.stats().mpki(1000), 1.0);
}

TEST(Cache, DistinctSetsDoNotInterfere)
{
    auto cache = makeLruCache(tinyConfig(4, 2));
    // Fill set 0 thrice; set 1 resident block must survive.
    cache.access(0x0040, AccessType::Load); // set 1
    cache.access(0x0000, AccessType::Load); // set 0
    cache.access(0x0400, AccessType::Load); // set 0
    cache.access(0x0800, AccessType::Load); // set 0, evicts in set 0
    EXPECT_TRUE(cache.probe(0x0040));
}

TEST(CacheReplay, RecordTypeConvention)
{
    MemRecord demand_load;
    demand_load.pc = 0x400;
    EXPECT_EQ(recordType(demand_load), AccessType::Load);

    MemRecord demand_store;
    demand_store.pc = 0x400;
    demand_store.isWrite = true;
    EXPECT_EQ(recordType(demand_store), AccessType::Store);

    MemRecord writeback;
    writeback.pc = 0;
    writeback.isWrite = true;
    EXPECT_EQ(recordType(writeback), AccessType::Writeback);
}

TEST(CacheReplay, WarmupExcludedFromStats)
{
    Trace t;
    for (int i = 0; i < 10; ++i) {
        MemRecord r;
        r.addr = static_cast<uint64_t>(i) * 64;
        r.pc = 0x400;
        t.append(r);
    }
    auto cache = makeLruCache(tinyConfig(16, 2));
    replayTrace(cache, t, 6);
    EXPECT_EQ(cache.stats().demandAccesses, 4u);
}

} // namespace
} // namespace gippr
