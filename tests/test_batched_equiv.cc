/**
 * @file
 * Equivalence tests for batched multi-genome replay.
 *
 * The batched kernel's contract is that batching is an implementation
 * detail: ReplayEngine::replayMany must return exactly what per-spec
 * replay() returns for any spec mix and shard count, and the
 * FitnessEvaluator batch API (evaluateAll / missesForAll) must return
 * exactly what per-genome evaluation returns at any batch width, with
 * the memo cache changing replay counts but never values.  On top of
 * the kernel checks, a same-seed evolveIpv run must produce a
 * byte-identical pinned-timestamp RunReport with the batch engine on
 * and off.
 *
 * Scale knobs (shared with the fastpath-equiv CI job):
 *   GIPPR_FASTPATH_EQUIV_ACCESSES  stream length scale (default
 *                                  200000; this file uses a fifth of
 *                                  it per trace)
 *   GIPPR_FASTPATH_EQUIV_FULL=1    larger populations and one more
 *                                  trace per evaluator
 */

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/config.hh"
#include "core/vectors.hh"
#include "ga/fitness.hh"
#include "ga/genetic.hh"
#include "ga/random_search.hh"
#include "sim/fastpath/engine.hh"
#include "telemetry/metrics.hh"
#include "telemetry/report.hh"
#include "trace/trace.hh"
#include "util/check.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

uint64_t
traceAccesses()
{
    const char *env = std::getenv("GIPPR_FASTPATH_EQUIV_ACCESSES");
    return (env ? std::strtoull(env, nullptr, 10) : 200'000) / 5;
}

bool
fullSweep()
{
    const char *env = std::getenv("GIPPR_FASTPATH_EQUIV_FULL");
    return env && std::string(env) == "1";
}

/** Small LLC so streams wrap the set space and evict constantly. */
CacheConfig
smallLlc()
{
    CacheConfig cfg;
    cfg.name = "llc";
    cfg.sizeBytes = 64 * 1024; // 64 sets at 16 ways
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

/** Mixed demand/writeback stream over 4x the cache's capacity. */
Trace
mixedStream(uint64_t n, uint64_t seed, const CacheConfig &cfg)
{
    Rng rng(seed);
    Trace trace;
    trace.reserve(n);
    const uint64_t block = cfg.blockBytes;
    const uint64_t blocks = cfg.sets() * cfg.assoc * 4;
    for (uint64_t i = 0; i < n; ++i) {
        MemRecord rec;
        rec.instGap = 1;
        rec.addr = rng.nextBounded(blocks) * block;
        if (rng.nextBool(0.1)) {
            rec.isWrite = true;
            rec.pc = 0; // writeback
        } else {
            rec.isWrite = rng.nextBool(0.25);
            rec.pc = 0x400000 + rng.nextBounded(64) * 4;
        }
        trace.append(rec);
    }
    return trace;
}

/** Training traces with distinct contents (and thus behaviours). */
std::vector<FitnessTrace>
trainingTraces()
{
    const CacheConfig cfg = smallLlc();
    const uint64_t n = traceAccesses();
    std::vector<uint64_t> seeds = {0xba7c, 0x5eed};
    if (fullSweep())
        seeds.push_back(0xfeed);
    std::vector<FitnessTrace> out;
    for (size_t i = 0; i < seeds.size(); ++i) {
        FitnessTrace ft;
        ft.name = "stream/" + std::to_string(i);
        ft.llcTrace =
            std::make_shared<Trace>(mixedStream(n, seeds[i], cfg));
        ft.instructions = ft.llcTrace->instructions();
        out.push_back(std::move(ft));
    }
    return out;
}

std::vector<Ipv>
randomPopulation(size_t count, unsigned ways, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Ipv> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(randomIpv(ways, rng));
    return out;
}

/**
 * Deterministic RunReport from one GA run: pinned timestamp, the
 * convergence history, best vector and final-population fitnesses —
 * everything a result artifact derives from the search except
 * wall-clock seconds.
 */
std::string
reportFor(const FitnessEvaluator &fitness, IpvFamily family,
          const GaParams &params)
{
    const GaResult ga = evolveIpv(fitness, family, params);
    telemetry::RunReport report("ga", "batched_equiv_probe");
    report.setTimestamp("2000-01-01T00:00:00Z");
    report.setConfig("best_vector",
                     telemetry::JsonValue(ga.best.toString()));
    report.setConfig(
        "best_fitness",
        telemetry::JsonValue(std::to_string(ga.bestFitness)));
    telemetry::ResultTable table;
    table.title = "convergence";
    table.metric = "fitness";
    table.columns = {"best"};
    for (size_t g = 0; g < ga.history.size(); ++g)
        table.rows.push_back({std::to_string(g), {ga.history[g]}});
    report.addTable(std::move(table));
    telemetry::ResultTable pop;
    pop.title = "final_population";
    pop.metric = "fitness";
    pop.columns = {"fitness"};
    for (const SampledIpv &s : ga.finalPopulation)
        pop.rows.push_back({s.ipv.toString(), {s.fitness}});
    report.addTable(std::move(pop));
    return report.toJson().dump(2);
}

TEST(BatchedEquiv, ReplayManyMatchesPerSpecReplay)
{
    const CacheConfig cfg = smallLlc();
    const Trace trace = mixedStream(traceAccesses(), 0xabcd, cfg);
    const size_t warmup = trace.size() / 3;

    // A deliberately mixed batch: every core policy (including both
    // DGIPPR variants) plus random per-genome vectors.  At 4 shards
    // the duel specs take the per-spec fallback inside replayMany, so
    // both partitions of the batch are exercised.
    Rng rng(0x77);
    std::vector<fastpath::ReplaySpec> specs = {
        fastpath::lruSpec(),
        fastpath::lipSpec(),
        fastpath::giplrSpec(local_vectors::giplr()),
        fastpath::plruSpec(),
        fastpath::gipprSpec(local_vectors::gippr()),
        fastpath::dgipprSpec(local_vectors::dgippr2()),
        fastpath::dgipprSpec(local_vectors::dgippr4()),
    };
    for (int i = 0; i < 6; ++i) {
        specs.push_back(fastpath::gipprSpec(randomIpv(16, rng)));
        specs.push_back(fastpath::giplrSpec(randomIpv(16, rng)));
    }

    const fastpath::ScalarReplayEngine scalar;
    for (unsigned shards : {1u, 4u}) {
        const fastpath::FastReplayEngine fast(shards);
        const std::vector<fastpath::ReplayStats> batched =
            fast.replayMany(specs, cfg, trace, warmup);
        ASSERT_EQ(batched.size(), specs.size());
        for (size_t s = 0; s < specs.size(); ++s) {
            EXPECT_EQ(batched[s],
                      fast.replay(specs[s], cfg, trace, warmup))
                << specs[s].name() << " at " << shards << " shards";
            EXPECT_EQ(batched[s],
                      scalar.replay(specs[s], cfg, trace, warmup))
                << specs[s].name() << " vs scalar";
        }
    }

    // The default (base-class) implementation is the per-spec loop.
    const std::vector<fastpath::ReplayStats> via_scalar =
        scalar.replayMany(specs, cfg, trace, warmup);
    for (size_t s = 0; s < specs.size(); ++s)
        EXPECT_EQ(via_scalar[s],
                  scalar.replay(specs[s], cfg, trace, warmup));
}

/** Restores the process-wide dispatch width a test pinned. */
struct KernelGuard
{
    fastpath::ReplayKernel saved = fastpath::activeReplayKernel();
    ~KernelGuard() { fastpath::setReplayKernel(saved); }
};

TEST(BatchedEquiv, EveryKernelWidthIsBitIdenticalAtEveryShardCount)
{
    const KernelGuard guard;
    const CacheConfig cfg = smallLlc();
    const Trace trace = mixedStream(traceAccesses(), 0x32e0, cfg);
    const size_t warmup = trace.size() / 3;

    // Enough tree-IPV genomes that the 32-wide dispatch exercises the
    // quad pass, the pair pass AND the batch16 leftover (4+2+1), plus
    // every other family (recency, PLRU, duel) in the same batch.
    Rng rng(0x320);
    std::vector<fastpath::ReplaySpec> specs = {
        fastpath::lruSpec(),
        fastpath::lipSpec(),
        fastpath::plruSpec(),
        fastpath::dgipprSpec(local_vectors::dgippr2()),
    };
    for (int i = 0; i < 4; ++i)
        specs.push_back(fastpath::gipprSpec(randomIpv(16, rng)));
    for (int i = 0; i < 3; ++i)
        specs.push_back(fastpath::giplrSpec(randomIpv(16, rng)));

    // Reference: the scalar object-based engine, one spec at a time.
    const fastpath::ScalarReplayEngine scalar;
    std::vector<fastpath::ReplayStats> want;
    for (const fastpath::ReplaySpec &spec : specs)
        want.push_back(scalar.replay(spec, cfg, trace, warmup));

    for (fastpath::ReplayKernel k :
         {fastpath::ReplayKernel::Scalar, fastpath::ReplayKernel::Batch16,
          fastpath::ReplayKernel::Batch32}) {
        if (fastpath::setReplayKernel(k) != k)
            continue; // wider than this host; the clamp test covers it
        for (unsigned shards : {1u, 2u, 4u, 16u}) {
            const fastpath::FastReplayEngine fast(shards);
            const std::vector<fastpath::ReplayStats> got =
                fast.replayMany(specs, cfg, trace, warmup);
            ASSERT_EQ(got.size(), want.size());
            for (size_t s = 0; s < want.size(); ++s)
                EXPECT_EQ(got[s], want[s])
                    << specs[s].name() << " under "
                    << fastpath::replayKernelName(k) << " at " << shards
                    << " shards";
        }
    }
}

TEST(BatchedEquiv, KernelRequestsClampToTheHostAndRoundTrip)
{
    const KernelGuard guard;
    const fastpath::ReplayKernel widest =
        fastpath::widestSupportedReplayKernel();

    // Narrower requests are honoured exactly; wider ones clamp.
    EXPECT_EQ(fastpath::setReplayKernel(fastpath::ReplayKernel::Scalar),
              fastpath::ReplayKernel::Scalar);
    EXPECT_EQ(fastpath::activeReplayKernel(),
              fastpath::ReplayKernel::Scalar);
    EXPECT_EQ(fastpath::setReplayKernel(fastpath::ReplayKernel::Batch32),
              widest <= fastpath::ReplayKernel::Batch32
                  ? widest
                  : fastpath::ReplayKernel::Batch32);
    EXPECT_LE(static_cast<int>(fastpath::activeReplayKernel()),
              static_cast<int>(widest));

    // Names round-trip through the GIPPR_REPLAY_KERNEL spelling.
    for (fastpath::ReplayKernel k :
         {fastpath::ReplayKernel::Scalar, fastpath::ReplayKernel::Batch16,
          fastpath::ReplayKernel::Batch32})
        EXPECT_EQ(fastpath::parseReplayKernel(
                      fastpath::replayKernelName(k)),
                  k);
    EXPECT_THROW(fastpath::parseReplayKernel("batch64"),
                 std::runtime_error);
    EXPECT_THROW(fastpath::parseReplayKernel(""), std::runtime_error);
}

TEST(BatchedEquiv, EnvironmentOverrideSelectsTheDispatchWidth)
{
    // Each gtest case is its own ctest process, so the first
    // activeReplayKernel() call in this test observes the lazy
    // GIPPR_REPLAY_KERNEL read.  The fastpath-equiv CI job reruns the
    // suite with the variable forced to each width; without it the
    // default must be the widest kernel the host supports.
    const char *env = std::getenv("GIPPR_REPLAY_KERNEL");
    const fastpath::ReplayKernel active = fastpath::activeReplayKernel();
    if (env) {
        const fastpath::ReplayKernel want =
            fastpath::parseReplayKernel(env);
        const fastpath::ReplayKernel widest =
            fastpath::widestSupportedReplayKernel();
        EXPECT_EQ(active, static_cast<int>(want) <=
                                  static_cast<int>(widest)
                              ? want
                              : widest);
    } else {
        EXPECT_EQ(active, fastpath::widestSupportedReplayKernel());
    }
}

TEST(BatchedEquiv, BatchWidthsProduceIdenticalMissCounts)
{
    const fastpath::ScalarReplayEngine scalar_engine;
    FitnessEvaluator fast(smallLlc(), trainingTraces());
    FitnessEvaluator reference(smallLlc(), trainingTraces(), {},
                               nullptr, &scalar_engine);
    fast.setMemoCapacity(0);      // force real replays per width
    reference.setMemoCapacity(0);

    const size_t count = fullSweep() ? 48 : 32;
    for (IpvFamily family : {IpvFamily::Giplr, IpvFamily::Gippr}) {
        const std::vector<Ipv> pop =
            randomPopulation(count, 16, 0x9a0 + count);
        const std::vector<std::vector<uint64_t>> want =
            reference.missesForAll(pop, family);
        for (unsigned width : {1u, 2u, 7u, 32u}) {
            fast.setBatchWidth(width);
            EXPECT_EQ(fast.missesForAll(pop, family), want)
                << "family " << static_cast<int>(family) << " width "
                << width;
        }
    }
}

TEST(BatchedEquiv, RripFamilyBatchesThroughScalarReplay)
{
    FitnessEvaluator fe(smallLlc(), trainingTraces());
    const std::vector<Ipv> pop = randomPopulation(6, 4, 0x44);
    const std::vector<double> batched =
        fe.evaluateAll(pop, IpvFamily::RripIpv, 2);
    ASSERT_EQ(batched.size(), pop.size());
    for (size_t i = 0; i < pop.size(); ++i)
        EXPECT_DOUBLE_EQ(batched[i],
                         fe.evaluate(pop[i], IpvFamily::RripIpv))
            << i;
}

#ifndef GIPPR_DISABLE_TELEMETRY

TEST(BatchedEquiv, MemoServesRepeatsWithoutReplaying)
{
    telemetry::MetricRegistry registry;
    FitnessEvaluator fe(smallLlc(), trainingTraces());
    fe.attachTelemetry(registry, "fitness");
    const telemetry::Counter &replays =
        registry.counter("fitness.replays");
    const telemetry::Counter &hits =
        registry.counter("fitness.memo_hits");

    const std::vector<Ipv> pop = randomPopulation(8, 16, 0x111);
    const std::vector<double> first =
        fe.evaluateAll(pop, IpvFamily::Gippr);
    const uint64_t replays_after_first = replays.value();
    EXPECT_EQ(replays_after_first, pop.size() * fe.traceCount());

    // Same vectors again: served from the memo, zero new replays.
    EXPECT_EQ(fe.evaluateAll(pop, IpvFamily::Gippr), first);
    EXPECT_EQ(replays.value(), replays_after_first);
    EXPECT_EQ(hits.value(), pop.size());

    // Single-vector paths share the cache (elites, duel candidates).
    EXPECT_EQ(fe.evaluate(pop[3], IpvFamily::Gippr), first[3]);
    EXPECT_EQ(replays.value(), replays_after_first);

    // Same bytes under another family is a different key.
    fe.evaluateAll(pop, IpvFamily::Giplr);
    EXPECT_EQ(replays.value(),
              2 * pop.size() * fe.traceCount());

    // Disabling the cache forces replays again, values unchanged.
    fe.setMemoCapacity(0);
    EXPECT_EQ(fe.evaluateAll(pop, IpvFamily::Gippr), first);
    EXPECT_EQ(replays.value(),
              3 * pop.size() * fe.traceCount());
}

TEST(BatchedEquiv, DuplicateVectorsCollapseToOneReplay)
{
    telemetry::MetricRegistry registry;
    FitnessEvaluator fe(smallLlc(), trainingTraces());
    fe.setMemoCapacity(0); // dedup works even with the cache off
    fe.attachTelemetry(registry, "fitness");
    const telemetry::Counter &replays =
        registry.counter("fitness.replays");

    Rng rng(0x222);
    const Ipv twin = randomIpv(16, rng);
    const std::vector<Ipv> pop = {twin, randomIpv(16, rng), twin,
                                  twin};
    const std::vector<double> scores =
        fe.evaluateAll(pop, IpvFamily::Gippr);
    EXPECT_EQ(replays.value(), 2 * fe.traceCount());
    EXPECT_DOUBLE_EQ(scores[0], scores[2]);
    EXPECT_DOUBLE_EQ(scores[0], scores[3]);
}

TEST(BatchedEquiv, ElitesAreNeverReEvaluated)
{
    telemetry::MetricRegistry registry;
    FitnessEvaluator fe(smallLlc(), trainingTraces());
    fe.attachTelemetry(registry, "fitness");
    const telemetry::Counter &evals =
        registry.counter("fitness.evaluations");
    const telemetry::Counter &replays =
        registry.counter("fitness.replays");

    // All-elite generations: after generation zero there are no
    // children, so a run that skips elites evaluates nothing further
    // (the checks-build elite audit calls evaluate(), which the memo
    // serves without replaying).
    GaParams params;
    params.initialPopulation = 8;
    params.population = 4;
    params.elites = 4;
    params.generations = 3;
    params.threads = 2;
    params.seed = 0x333;
    const GaResult ga = evolveIpv(fe, IpvFamily::Gippr, params);
    EXPECT_EQ(ga.history.size(), params.generations + 1);

    uint64_t expected_evals = params.initialPopulation;
#if GIPPR_CHECKS_ENABLED
    expected_evals += params.generations * params.elites;
#endif
    EXPECT_EQ(evals.value(), expected_evals);
    // Replays happen for the 8 distinct gen-0 vectors only.
    EXPECT_EQ(replays.value(),
              params.initialPopulation * fe.traceCount());
}

TEST(BatchedEquiv, DuelSetSelectionReusesCachedSpeedups)
{
    telemetry::MetricRegistry registry;
    FitnessEvaluator fe(smallLlc(), trainingTraces());
    fe.attachTelemetry(registry, "fitness");
    const telemetry::Counter &replays =
        registry.counter("fitness.replays");

    const std::vector<Ipv> pop = randomPopulation(10, 16, 0x555);
    fe.evaluateAll(pop, IpvFamily::Gippr);
    const uint64_t replays_after_eval = replays.value();
    const std::vector<Ipv> duel =
        selectDuelSet(fe, IpvFamily::Gippr, pop, 4);
    EXPECT_EQ(duel.size(), 4u);
    EXPECT_EQ(replays.value(), replays_after_eval);
}

#endif // GIPPR_DISABLE_TELEMETRY

TEST(BatchedEquiv, SameSeedReportsAreByteIdenticalBatchOnOrOff)
{
    GaParams params;
    params.initialPopulation = 24;
    params.population = 12;
    params.elites = 3;
    params.generations = fullSweep() ? 4 : 3;
    params.threads = 2;
    params.seed = 0x777;
    params.seedIpvs = {Ipv::lru(16), Ipv::lruInsertion(16)};

    FitnessEvaluator batched(smallLlc(), trainingTraces());
    batched.setBatchWidth(32);
    const std::string want =
        reportFor(batched, IpvFamily::Gippr, params);

    FitnessEvaluator per_genome(smallLlc(), trainingTraces());
    per_genome.setBatchWidth(1);
    per_genome.setMemoCapacity(0);
    EXPECT_EQ(reportFor(per_genome, IpvFamily::Gippr, params), want);

    FitnessEvaluator odd_width(smallLlc(), trainingTraces());
    odd_width.setBatchWidth(7);
    EXPECT_EQ(reportFor(odd_width, IpvFamily::Gippr, params), want);
}

} // namespace
} // namespace gippr
