/**
 * @file
 * Fuzz-style robustness tests for the binary trace reader and the
 * replay engines' edge inputs.
 *
 * The reader's contract: malformed files — truncated at ANY byte
 * offset, wrong magic, unknown version, record counts that overflow
 * the file, trailing garbage — raise std::runtime_error naming the
 * path, and never crash or return a silently partial trace.  The
 * engines' contract: degenerate traces (empty, duplicate-heavy,
 * max-address records) replay cleanly and identically on both
 * backends.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/config.hh"
#include "core/vectors.hh"
#include "robust/fault_inject.hh"
#include "sim/fastpath/engine.hh"
#include "sim/select/engine.hh"
#include "sim/select/select.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "util/rng.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + leaf;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

Trace
sampleTrace(size_t n)
{
    Rng rng(0xf022);
    Trace trace;
    for (size_t i = 0; i < n; ++i) {
        MemRecord rec;
        rec.instGap = 1 + static_cast<uint32_t>(rng.nextBounded(3));
        rec.addr = rng.nextBounded(1 << 20) * 64;
        rec.pc = 0x400000 + rng.nextBounded(32) * 4;
        rec.isWrite = rng.nextBool(0.3);
        trace.append(rec);
    }
    return trace;
}

CacheConfig
tinyLlc()
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

} // namespace

TEST(TraceFuzz, EveryTruncationPrefixErrorsCleanly)
{
    const std::string path = tempPath("trunc.gptr");
    writeTrace(sampleTrace(12), path);
    const std::vector<char> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 16u);

    // A round-trip of the intact file works...
    EXPECT_EQ(readTrace(path).size(), 12u);

    // ...and every strict prefix is rejected, never crashes.
    const std::string cut = tempPath("trunc_cut.gptr");
    for (size_t len = 0; len < bytes.size(); ++len) {
        writeAll(cut,
                 std::vector<char>(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<ptrdiff_t>(len)));
        EXPECT_THROW(readTrace(cut), std::runtime_error)
            << "prefix of " << len << " bytes was accepted";
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(TraceFuzz, TrailingGarbageRejected)
{
    const std::string path = tempPath("trailing.gptr");
    writeTrace(sampleTrace(5), path);
    std::vector<char> bytes = readAll(path);
    bytes.push_back('\0');
    writeAll(path, bytes);
    EXPECT_THROW(readTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFuzz, BadMagicVersionAndOverflowingCountRejected)
{
    const std::string path = tempPath("header.gptr");
    writeTrace(sampleTrace(3), path);
    const std::vector<char> good = readAll(path);

    std::vector<char> bad_magic = good;
    bad_magic[0] = 'X';
    writeAll(path, bad_magic);
    EXPECT_THROW(readTrace(path), std::runtime_error);

    std::vector<char> bad_version = good;
    bad_version[4] = 99;
    writeAll(path, bad_version);
    EXPECT_THROW(readTrace(path), std::runtime_error);

    // Record count far beyond the file size (and near UINT64_MAX, so
    // a naive count * record_size computation would overflow).
    std::vector<char> bad_count = good;
    for (size_t i = 8; i < 16; ++i)
        bad_count[i] = static_cast<char>(0xff);
    writeAll(path, bad_count);
    EXPECT_THROW(readTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFuzz, PayloadBitFlipCaughtByChecksum)
{
    // The v2 footer CRC must catch single-byte corruption anywhere in
    // the record payload — damage the reader's size checks alone
    // cannot see.
    const std::string path = tempPath("bitflip.gptr");
    writeTrace(sampleTrace(16), path);
    const std::vector<char> good = readAll(path);
    ASSERT_GT(good.size(), 24u);

    // Flip one bit in a handful of payload offsets (past the 16-byte
    // header, before the 4-byte footer).
    for (size_t offset : {size_t(16), size_t(24), good.size() / 2,
                          good.size() - 5}) {
        std::vector<char> corrupt = good;
        corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
        writeAll(path, corrupt);
        EXPECT_THROW(readTrace(path), std::runtime_error)
            << "flip at offset " << offset << " was accepted";
    }

    writeAll(path, good);
    EXPECT_EQ(readTrace(path).size(), 16u);
    std::remove(path.c_str());
}

TEST(TraceFuzz, MissingFileRejected)
{
    EXPECT_THROW(readTrace(tempPath("does_not_exist.gptr")),
                 std::runtime_error);
}

// The zero-copy loader shares the buffered reader's rejection
// contract: the mapped validation path reproduces the same checks
// (and sub-header files fall back to the buffered reader), so every
// malformed input throws from the MappedTrace constructor too and a
// partially-validated mapping is never handed to replay.

TEST(TraceFuzz, MappedEveryTruncationPrefixErrorsCleanly)
{
    const std::string path = tempPath("mmap_trunc.gptr");
    writeTrace(sampleTrace(12), path);
    const std::vector<char> bytes = readAll(path);

    EXPECT_EQ(MappedTrace(path).size(), 12u);

    const std::string cut = tempPath("mmap_trunc_cut.gptr");
    for (size_t len = 0; len < bytes.size(); ++len) {
        writeAll(cut,
                 std::vector<char>(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<ptrdiff_t>(len)));
        EXPECT_THROW(MappedTrace m(cut), std::runtime_error)
            << "prefix of " << len << " bytes was accepted";
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(TraceFuzz, MappedPayloadBitFlipCaughtByChecksum)
{
    const std::string path = tempPath("mmap_bitflip.gptr");
    writeTrace(sampleTrace(16), path);
    const std::vector<char> good = readAll(path);
    ASSERT_GT(good.size(), 24u);

    for (size_t offset : {size_t(16), size_t(24), good.size() / 2,
                          good.size() - 5}) {
        std::vector<char> corrupt = good;
        corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
        writeAll(path, corrupt);
        EXPECT_THROW(MappedTrace m(path), std::runtime_error)
            << "flip at offset " << offset << " was accepted";
    }

    writeAll(path, good);
    EXPECT_EQ(MappedTrace(path).size(), 16u);
    std::remove(path.c_str());
}

TEST(TraceFuzz, MappedRejectsBadHeadersAndTrailingGarbage)
{
    const std::string path = tempPath("mmap_header.gptr");
    writeTrace(sampleTrace(3), path);
    const std::vector<char> good = readAll(path);

    std::vector<char> bad_magic = good;
    bad_magic[0] = 'X';
    writeAll(path, bad_magic);
    EXPECT_THROW(MappedTrace m(path), std::runtime_error);

    std::vector<char> bad_version = good;
    bad_version[4] = 99;
    writeAll(path, bad_version);
    EXPECT_THROW(MappedTrace m(path), std::runtime_error);

    std::vector<char> bad_count = good;
    for (size_t i = 8; i < 16; ++i)
        bad_count[i] = static_cast<char>(0xff);
    writeAll(path, bad_count);
    EXPECT_THROW(MappedTrace m(path), std::runtime_error);

    std::vector<char> trailing = good;
    trailing.push_back('\0');
    writeAll(path, trailing);
    EXPECT_THROW(MappedTrace m(path), std::runtime_error);

    EXPECT_THROW(MappedTrace m(tempPath("mmap_missing.gptr")),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFuzz, MappedZeroLengthTraceStreamsZeroRecords)
{
    // An empty trace still carries a full header + CRC footer, so the
    // zero-copy path maps it rather than falling back.
    const std::string path = tempPath("mmap_empty.gptr");
    writeTrace(Trace(), path);
    const MappedTrace m(path);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);

    const CacheConfig cfg = tinyLlc();
    const fastpath::FastReplayEngine fast(2);
    const fastpath::ReplayStats stats =
        fast.replay(fastpath::gipprSpec(local_vectors::gippr()), cfg,
                    m, 0);
    EXPECT_EQ(stats.total.accesses, 0u);
    std::remove(path.c_str());
}

TEST(TraceFuzz, InjectedReadFaultErrorsCleanly)
{
    // A mid-file read(2)/fread(3) failure (flaky NFS, dying disk) must
    // surface as a clean runtime_error from the buffered reader, never
    // a partial trace.
    const std::string path = tempPath("readfault.gptr");
    writeTrace(sampleTrace(8), path);

    for (const char *spec : {"read=1", "read=2"}) {
        robust::FaultInjector::instance().configure(spec);
        EXPECT_THROW(readTrace(path), std::runtime_error)
            << "spec " << spec;
        robust::FaultInjector::instance().reset();
    }
    EXPECT_EQ(readTrace(path).size(), 8u);
    std::remove(path.c_str());
}

TEST(TraceFuzz, InjectedMmapFailureFallsBackToBufferedRead)
{
    // When mmap(2) fails (address-space pressure, filesystem without
    // mmap support), MappedTrace must degrade to the buffered reader
    // and stream the identical records.
    const std::string path = tempPath("mmapfault.gptr");
    const Trace reference = sampleTrace(32);
    writeTrace(reference, path);

    robust::FaultInjector::instance().configure("mmap=1");
    const MappedTrace fallback(path);
    robust::FaultInjector::instance().reset();
    const MappedTrace mapped(path);

    ASSERT_EQ(fallback.size(), reference.size());
    ASSERT_EQ(mapped.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(fallback[i], reference[i]) << "record " << i;
        EXPECT_EQ(mapped[i], reference[i]) << "record " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, EmptyTraceReplaysToZeroStatsOnBothBackends)
{
    const Trace empty;
    const CacheConfig cfg = tinyLlc();
    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast(4);
    for (const auto &spec :
         {fastpath::lruSpec(), fastpath::plruSpec(),
          fastpath::gipprSpec(local_vectors::gippr()),
          fastpath::dgipprSpec(local_vectors::dgippr2())}) {
        const fastpath::ReplayStats a =
            scalar.replay(spec, cfg, empty, 0);
        const fastpath::ReplayStats b = fast.replay(spec, cfg, empty, 0);
        EXPECT_EQ(a, b) << spec.name();
        EXPECT_EQ(a.total.accesses, 0u);
        EXPECT_EQ(a.measured.accesses, 0u);
    }
}

TEST(TraceFuzz, ZeroLengthSimpointMaterializesAndReplays)
{
    // A simpoint spec asking for zero accesses must produce an empty
    // trace, not crash the generator or the replay path.
    SuiteParams params;
    params.llcBlocks = 256;
    params.accessesPerSimpoint = 0;
    SyntheticSuite suite(params);
    const Workload w =
        SyntheticSuite::materialize(suite.spec("stream_pure"));
    ASSERT_FALSE(w.simpoints().empty());
    for (const Simpoint &sp : w.simpoints())
        EXPECT_EQ(sp.trace->size(), 0u);
}

TEST(TraceFuzz, DuplicateAndMaxAddressRecordsReplayIdentically)
{
    Trace trace;
    // Degenerate stream: one duplicated block, UINT64_MAX addresses
    // and pcs, zero pc demand records, interleaved writebacks.
    for (int i = 0; i < 2000; ++i) {
        MemRecord rec;
        rec.instGap = 1;
        switch (i % 5) {
          case 0:
            rec.addr = 0x1000;
            rec.pc = 0x400000;
            break;
          case 1:
            rec.addr = UINT64_MAX;
            rec.pc = UINT64_MAX;
            break;
          case 2:
            rec.addr = UINT64_MAX - 64;
            rec.isWrite = true;
            rec.pc = 0; // writeback of the max-address region
            break;
          case 3:
            rec.addr = 0x1000;
            rec.isWrite = true;
            rec.pc = 0x400004;
            break;
          default:
            rec.addr = static_cast<uint64_t>(i) * 64;
            rec.pc = 0x400008;
            break;
        }
        trace.append(rec);
    }
    const CacheConfig cfg = tinyLlc();
    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast(4);
    for (const auto &spec :
         {fastpath::lruSpec(), fastpath::lipSpec(),
          fastpath::plruSpec(),
          fastpath::gipprSpec(local_vectors::gippr()),
          fastpath::dgipprSpec(local_vectors::dgippr4())}) {
        EXPECT_EQ(scalar.replay(spec, cfg, trace, 500),
                  fast.replay(spec, cfg, trace, 500))
            << spec.name();
    }
}

TEST(TraceFuzz, PhaseShiftSelectEdgeGeometryMatchesAcrossBackends)
{
    // Phase-shift family traces through the policy selector under
    // adversarial epoch/warmup geometry: an epoch of 1 access (a
    // bandit decision at every record), an epoch longer than the
    // whole trace (one partial epoch, no decision at all), an odd
    // length that never divides the trace, warmup 0 and warmup ==
    // trace size.  Every combination must replay bit-identically on
    // the scalar and fastpath backends.
    SuiteParams params;
    params.llcBlocks = 256; // scaled to tinyLlc()
    params.accessesPerSimpoint = 3000;
    params.baseSeed = 0x5eed;
    const CacheConfig cfg = tinyLlc();
    const auto lib = select::parseLibrary("LRU,LIP,GIPPR");
    for (const WorkloadSpec &spec : phaseShiftFamily(params)) {
        if (spec.name != "ps_quad" && spec.name != "ps_calm_storm")
            continue;
        const Workload w = SyntheticSuite::materialize(spec);
        const auto &trace = *w.simpoints().front().trace;
        for (const uint64_t epoch :
             {uint64_t{1}, uint64_t{257}, uint64_t{1} << 20}) {
            for (const size_t warmup :
                 {size_t{0}, trace.size() / 3, trace.size()}) {
                select::SelectConfig scfg;
                scfg.epochLength = epoch;
                const select::SelectResult fast_res =
                    select::runSelect(lib, scfg, cfg, trace, warmup,
                                      select::Backend::Fast);
                const select::SelectResult scalar_res =
                    select::runSelect(lib, scfg, cfg, trace, warmup,
                                      select::Backend::Scalar);
                EXPECT_EQ(fast_res, scalar_res)
                    << spec.name << " epoch=" << epoch
                    << " warmup=" << warmup;
            }
        }
    }
}

} // namespace gippr
