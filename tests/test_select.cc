/**
 * @file
 * Tests for the online policy-selection subsystem (sim/select).
 *
 * Covers the determinism contract (same seed -> byte-identical
 * reports; scalar vs fastpath lock-step equality; shared 1-core vs
 * single-trace bit-identity), the degenerate single-arm case (bit-
 * identical to a static replay), drift detection (fires on synthetic
 * change-points, stays quiet on stationary traffic), the phase-shift
 * workload family (golden digest + regime-boundary invariants), and
 * the headline acceptance claims: on the phase-shift family the dUCB
 * selector beats every static library policy in aggregate, and on
 * stationary workloads it stays within 2% of the best static choice.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/config.hh"
#include "sim/fastpath/engine.hh"
#include "sim/multicore/mix.hh"
#include "sim/multicore/schedule.hh"
#include "sim/select/engine.hh"
#include "sim/select/report.hh"
#include "sim/select/select.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

using select::Backend;
using select::SelectConfig;
using select::SelectResult;
using select::StaticOracleRow;

/** 64 KB, 16-way, 64 B blocks: 1024 blocks over 64 sets. */
CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.sizeBytes = 64 * 1024;
    c.assoc = 16;
    c.blockBytes = 64;
    return c;
}

constexpr uint64_t kAccesses = 48'000;

SuiteParams
testParams()
{
    SuiteParams p;
    p.llcBlocks = 1024; // generators scaled to llcCfg()
    p.accessesPerSimpoint = kAccesses;
    p.baseSeed = 0x5eed;
    return p;
}

/** Materialized first-simpoint trace of a suite or family workload. */
std::shared_ptr<const Trace>
rawTrace(const std::string &name,
         const SuiteParams &params = testParams())
{
    auto find = [&](const std::vector<WorkloadSpec> &specs)
        -> const WorkloadSpec * {
        for (const WorkloadSpec &s : specs)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    const SyntheticSuite suite(params);
    const WorkloadSpec *spec = find(suite.specs());
    const std::vector<WorkloadSpec> kv = kvCacheFamily(params);
    if (spec == nullptr)
        spec = find(kv);
    const std::vector<WorkloadSpec> ps = phaseShiftFamily(params);
    if (spec == nullptr)
        spec = find(ps);
    if (spec == nullptr)
        throw std::runtime_error("no such workload: " + name);
    const Workload w = SyntheticSuite::materialize(*spec);
    return w.simpoints().front().trace;
}

const std::vector<std::string> &
phaseShiftNames()
{
    static const std::vector<std::string> names = {
        "ps_quad", "ps_loop_zipf", "ps_zipf_drift", "ps_calm_storm"};
    return names;
}

/** The selector config the behavioural tests run. */
SelectConfig
testConfig()
{
    SelectConfig cfg;
    cfg.epochLength = 1024;
    return cfg;
}

std::vector<PolicyDef>
testLibrary()
{
    return select::parseLibrary("LRU,LIP,PLRU,GIPPR");
}

size_t
warmupOf(const Trace &trace)
{
    return trace.size() / 8;
}

std::string
reportDump(const std::string &workload, const SelectConfig &cfg,
           const SelectResult &res,
           const std::vector<StaticOracleRow> &oracle)
{
    select::SelectReportInputs in;
    in.binary = "test_select";
    in.workload = workload;
    in.coreWorkloads = {workload};
    in.cfg = cfg;
    in.llc = llcCfg();
    in.result = res;
    in.oracle = oracle;
    in.deterministic = true;
    return select::buildSelectReport(in).toJson().dump();
}

TEST(Select, SingleArmBitIdenticalToStaticReplay)
{
    const auto trace = rawTrace("ps_quad");
    const size_t warmup = warmupOf(*trace);
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = select::parseLibrary("GIPPR");
    const SelectConfig cfg = testConfig();

    const SelectResult fast = select::runSelect(
        lib, cfg, llc, *trace, warmup, Backend::Fast);
    const SelectResult scalar = select::runSelect(
        lib, cfg, llc, *trace, warmup, Backend::Scalar);
    EXPECT_EQ(fast, scalar);
    EXPECT_EQ(fast.switches, 0u);
    EXPECT_EQ(fast.driftResets, 0u);

    const fastpath::ReplayStats replay =
        fastpath::defaultReplayEngine().replay(
            *lib[0].fastSpec, llc, *trace, warmup);
    EXPECT_EQ(fast.measured, replay.measured);
    EXPECT_EQ(fast.total, replay.total);
}

TEST(Select, DeterministicSameSeedByteIdenticalReports)
{
    const auto trace = rawTrace("ps_loop_zipf");
    const size_t warmup = warmupOf(*trace);
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    for (const char *bandit : {"ducb", "egreedy"}) {
        SelectConfig cfg = testConfig();
        cfg.kind = select::parseBanditKind(bandit);
        const SelectResult once =
            select::runSelect(lib, cfg, llc, *trace, warmup);
        const SelectResult again =
            select::runSelect(lib, cfg, llc, *trace, warmup);
        EXPECT_EQ(once, again) << bandit;
        const auto oracle =
            select::staticOracle(lib, llc, *trace, warmup);
        EXPECT_EQ(reportDump("ps_loop_zipf", cfg, once, oracle),
                  reportDump("ps_loop_zipf", cfg, again, oracle))
            << bandit;
    }
}

TEST(SelectFastpathEquiv, ScalarVsFastLockStep)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    for (const std::string &name : phaseShiftNames()) {
        const auto trace = rawTrace(name);
        const size_t warmup = warmupOf(*trace);
        for (const char *bandit : {"ducb", "egreedy"}) {
            SelectConfig cfg = testConfig();
            cfg.kind = select::parseBanditKind(bandit);
            const SelectResult fast = select::runSelect(
                lib, cfg, llc, *trace, warmup, Backend::Fast);
            const SelectResult scalar = select::runSelect(
                lib, cfg, llc, *trace, warmup, Backend::Scalar);
            EXPECT_EQ(fast, scalar) << name << " " << bandit;
        }
    }
}

TEST(SelectFastpathEquiv, ReportByteIdentityAcrossBackends)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const auto trace = rawTrace("ps_quad");
    const size_t warmup = warmupOf(*trace);
    const SelectConfig cfg = testConfig();
    const SelectResult fast = select::runSelect(
        lib, cfg, llc, *trace, warmup, Backend::Fast);
    const SelectResult scalar = select::runSelect(
        lib, cfg, llc, *trace, warmup, Backend::Scalar);
    const auto oracle_fast = select::staticOracle(
        lib, llc, *trace, warmup, Backend::Fast);
    const auto oracle_scalar = select::staticOracle(
        lib, llc, *trace, warmup, Backend::Scalar);
    EXPECT_EQ(reportDump("ps_quad", cfg, fast, oracle_fast),
              reportDump("ps_quad", cfg, scalar, oracle_scalar));
}

TEST(SelectMulticore, OneCoreSharedBitIdenticalToSingle)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();
    const double fraction = 1.0 / 3.0;

    multicore::CoreStream cs;
    cs.workload = "ps_quad";
    cs.trace = rawTrace("ps_quad");
    const std::vector<multicore::CoreStream> streams = {cs};

    for (const auto schedule : {multicore::Schedule::RoundRobin,
                                multicore::Schedule::Weighted}) {
        const SelectResult shared = select::runSelectShared(
            streams, schedule, lib, cfg, llc, fraction);
        const Trace merged = select::mergedTrace(streams, schedule);
        const auto warmup = static_cast<size_t>(
            static_cast<double>(merged.size()) * fraction);
        const SelectResult single = select::runSelect(
            lib, cfg, llc, merged, warmup);
        EXPECT_EQ(shared, single);
    }
}

TEST(SelectMulticore, MultiCoreDeterministicAcrossBackends)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();

    multicore::CoreStream a;
    a.workload = "ps_quad";
    a.trace = rawTrace("ps_quad");
    a.weight = 2;
    multicore::CoreStream b;
    b.workload = "zipf_hot";
    b.trace = rawTrace("zipf_hot");
    const std::vector<multicore::CoreStream> streams = {a, b};

    for (const auto schedule : {multicore::Schedule::RoundRobin,
                                multicore::Schedule::Weighted}) {
        const SelectResult fast = select::runSelectShared(
            streams, schedule, lib, cfg, llc, 1.0 / 3.0,
            Backend::Fast);
        const SelectResult scalar = select::runSelectShared(
            streams, schedule, lib, cfg, llc, 1.0 / 3.0,
            Backend::Scalar);
        EXPECT_EQ(fast, scalar);
        ASSERT_EQ(fast.coreMeasured.size(), 2u);
        // Per-core attribution must add up to the totals.
        fastpath::CounterBank sum;
        sum += fast.coreMeasured[0];
        sum += fast.coreMeasured[1];
        EXPECT_EQ(sum, fast.measured);
    }
}

TEST(Select, DriftResetFiresOnChangePointNotOnStationary)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();

    // Regime changes (including ps_zipf_drift's pure region shift,
    // where only the working-set signature moves) must fire at least
    // one reset each.
    for (const std::string &name :
         {std::string("ps_quad"), std::string("ps_zipf_drift")}) {
        const auto trace = rawTrace(name);
        const SelectResult res = select::runSelect(
            lib, cfg, llc, *trace, warmupOf(*trace));
        EXPECT_GE(res.driftResets, 1u) << name;
    }

    // Stationary traffic must not: single-regime suite workloads.
    for (const std::string &name :
         {std::string("zipf_hot"), std::string("loop_thrash"),
          std::string("stream_pure")}) {
        const auto trace = rawTrace(name);
        const SelectResult res = select::runSelect(
            lib, cfg, llc, *trace, warmupOf(*trace));
        EXPECT_EQ(res.driftResets, 0u) << name;
    }
}

TEST(Select, RegretBoundedOnPhaseShiftFamily)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();
    for (const std::string &name : phaseShiftNames()) {
        const auto trace = rawTrace(name);
        const size_t warmup = warmupOf(*trace);
        const SelectResult res =
            select::runSelect(lib, cfg, llc, *trace, warmup);
        const auto oracle =
            select::staticOracle(lib, llc, *trace, warmup);
        const size_t best = select::bestStaticIndex(oracle);
        const double best_misses = static_cast<double>(
            oracle[best].measured.demandMisses);
        // Regret stays within 10% of the best static policy's misses
        // on every family member (it is often negative; the aggregate
        // test below demands the win).
        EXPECT_LE(static_cast<double>(res.measured.demandMisses),
                  1.10 * best_misses)
            << name << " best=" << oracle[best].name;
    }
}

TEST(Select, DUcbBeatsEveryStaticAggregateOnPhaseShiftFamily)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();

    uint64_t selector = 0;
    std::vector<uint64_t> statics(lib.size(), 0);
    for (const std::string &name : phaseShiftNames()) {
        const auto trace = rawTrace(name);
        const size_t warmup = warmupOf(*trace);
        const SelectResult res =
            select::runSelect(lib, cfg, llc, *trace, warmup);
        selector += res.measured.demandMisses;
        const auto oracle =
            select::staticOracle(lib, llc, *trace, warmup);
        for (size_t a = 0; a < oracle.size(); ++a)
            statics[a] += oracle[a].measured.demandMisses;
    }
    for (size_t a = 0; a < lib.size(); ++a) {
        EXPECT_LT(selector, statics[a])
            << "selector " << selector << " vs static " << lib[a].name
            << " " << statics[a];
    }
}

TEST(Select, WithinTwoPercentOfBestStaticOnStationaryWorkloads)
{
    const CacheConfig llc = llcCfg();
    const std::vector<PolicyDef> lib = testLibrary();
    const SelectConfig cfg = testConfig();
    for (const std::string &name :
         {std::string("zipf_hot"), std::string("loop_thrash"),
          std::string("stream_pure"), std::string("hotcold_stream")}) {
        // Steady-state claim, so run longer than the other tests and
        // measure past the CLI's default 1/3 warmup: the selector
        // pays a one-time cost when it commits (its incoming main
        // model starts empty and converges toward the static-replay
        // content over many epochs), and that transient is the regret
        // test's business, not this one's.
        SuiteParams params = testParams();
        params.accessesPerSimpoint = 4 * kAccesses;
        const auto trace = rawTrace(name, params);
        const size_t warmup = trace->size() / 3;
        const SelectResult res =
            select::runSelect(lib, cfg, llc, *trace, warmup);
        const auto oracle =
            select::staticOracle(lib, llc, *trace, warmup);
        const size_t best = select::bestStaticIndex(oracle);
        EXPECT_LE(static_cast<double>(res.measured.demandMisses),
                  1.02 * static_cast<double>(
                             oracle[best].measured.demandMisses))
            << name << " best=" << oracle[best].name;
    }
}

// --- Phase-shift family pinning (satellite: suite-digest riding) ---

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
foldU64(uint64_t h, uint64_t v)
{
    return fnv1a(h, &v, sizeof(v));
}

SuiteParams
pinnedParams()
{
    SuiteParams p;
    p.llcBlocks = 256;
    p.accessesPerSimpoint = 2000;
    p.baseSeed = 0x5eed;
    return p;
}

TEST(PhaseShiftSuiteDigest, GoldenDigestPinned)
{
    // Pins the family contents like SuiteDigest.GoldenDigestPinned
    // pins the 30-workload suite: an unintentional generator change
    // shifts every selector result silently, so it must fail here.
    uint64_t h = kFnvOffset;
    for (const WorkloadSpec &spec : phaseShiftFamily(pinnedParams())) {
        h = fnv1a(h, spec.name.data(), spec.name.size());
        const Workload w = SyntheticSuite::materialize(spec);
        for (const Simpoint &sp : w.simpoints()) {
            h = foldU64(h, sp.trace->size());
            for (const MemRecord &rec : sp.trace->records()) {
                h = foldU64(h, rec.instGap);
                h = foldU64(h, rec.addr);
                h = foldU64(h, rec.pc);
                h = foldU64(h, rec.isWrite ? 1 : 0);
            }
        }
    }
    constexpr uint64_t kGolden = 0xf760937e939d4f6aull;
    EXPECT_EQ(h, kGolden);
}

TEST(PhaseShiftSuiteDigest, FamilyIsStableAndDisjointFromSuite)
{
    const SuiteParams params = pinnedParams();
    const auto once = phaseShiftFamily(params);
    ASSERT_EQ(once.size(), 4u);
    const SyntheticSuite suite(params);
    const auto kv = kvCacheFamily(params);
    for (const WorkloadSpec &spec : once) {
        for (const WorkloadSpec &s : suite.specs())
            EXPECT_NE(spec.name, s.name);
        for (const WorkloadSpec &k : kv)
            EXPECT_NE(spec.name, k.name);
        EXPECT_EQ(spec.capacityBlocks, params.llcBlocks);
        ASSERT_EQ(spec.simpoints.size(), 1u);
    }
}

TEST(PhaseShiftSuiteDigest, RegimeBoundariesChangeAddressRegion)
{
    // Every phase lives in its own region: the block addresses of the
    // first quarter and the second quarter of ps_quad must not
    // overlap at all (which is what feeds the working-set trigger).
    const SuiteParams params = testParams();
    const WorkloadSpec *quad = nullptr;
    const auto ps = phaseShiftFamily(params);
    for (const WorkloadSpec &s : ps)
        if (s.name == "ps_quad")
            quad = &s;
    ASSERT_NE(quad, nullptr);
    const Workload w = SyntheticSuite::materialize(*quad);
    const Trace &trace = *w.simpoints().front().trace;
    const size_t quarter = trace.size() / 4;
    const CacheConfig llc = llcCfg();

    auto blockRange = [&](size_t begin, size_t end) {
        uint64_t lo = ~uint64_t{0};
        uint64_t hi = 0;
        for (size_t i = begin; i < end; ++i) {
            const uint64_t b = llc.blockAddr(trace[i].addr);
            lo = std::min(lo, b);
            hi = std::max(hi, b);
        }
        return std::pair<uint64_t, uint64_t>(lo, hi);
    };
    const auto p0 = blockRange(0, quarter);
    const auto p1 = blockRange(quarter, 2 * quarter);
    const auto p2 = blockRange(2 * quarter, 3 * quarter);
    EXPECT_LT(p0.second, p1.first);
    EXPECT_LT(p1.second, p2.first);
}

} // namespace
} // namespace gippr
