/**
 * @file
 * Tests for the policy verification layer (src/verify): the exhaustive
 * PLRU model checker, the reference oracles, and the differential
 * harness — including a deliberately mismatched pairing to prove the
 * harness actually detects divergence.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "core/ipv.hh"
#include "policies/lru.hh"
#include "util/rng.hh"
#include "verify/differential.hh"
#include "verify/model_check.hh"
#include "verify/oracle.hh"

namespace gippr
{
namespace
{

CacheConfig
smallConfig(unsigned assoc = 16, uint64_t sets = 16)
{
    CacheConfig cfg;
    cfg.name = "verify-test";
    cfg.blockBytes = 64;
    cfg.assoc = assoc;
    cfg.sizeBytes = sets * assoc * cfg.blockBytes;
    return cfg;
}

Trace
randomTrace(const CacheConfig &cfg, uint64_t n, uint64_t blocks,
            uint64_t seed)
{
    Rng rng(seed);
    Trace t;
    t.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        MemRecord rec;
        rec.addr = rng.nextBounded(blocks) * cfg.blockBytes;
        rec.isWrite = rng.nextBool(0.25);
        // Mix writeback records (pc == 0 stores) with demand traffic.
        if (!rec.isWrite || rng.nextBool(0.5))
            rec.pc = 0x1000 + rng.nextBounded(16) * 4;
        t.append(rec);
    }
    return t;
}

// --- model checker --------------------------------------------------

TEST(ModelCheck, ProvesInvariantsForSmallTrees)
{
    for (unsigned ways : {2u, 4u, 8u}) {
        verify::ModelCheckResult r = verify::modelCheckPlruTree(ways);
        EXPECT_TRUE(r.ok()) << ways << "-way: "
                            << (r.failures.empty()
                                    ? ""
                                    : r.failures.front().toString());
        EXPECT_EQ(r.statesChecked, uint64_t{1} << (ways - 1));
        // k*k setPosition transitions plus k promoteMru per state.
        EXPECT_EQ(r.transitionsChecked,
                  r.statesChecked * ways * (ways + 1));
        EXPECT_GT(r.checksPassed, r.transitionsChecked);
    }
}

TEST(ModelCheck, ProvesInvariantsFor16Way)
{
    verify::ModelCheckResult r = verify::modelCheckPlruTree(16);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.statesChecked, uint64_t{1} << 15);
    EXPECT_EQ(r.transitionsChecked, (uint64_t{1} << 15) * 16 * 17);
}

TEST(ModelCheck, SweepCoversPaperAssociativities)
{
    std::vector<verify::ModelCheckResult> sweep =
        verify::modelCheckSweep({2, 4});
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep[0].ways, 2u);
    EXPECT_EQ(sweep[1].ways, 4u);
    EXPECT_TRUE(sweep[0].ok());
    EXPECT_TRUE(sweep[1].ok());
}

// --- oracles --------------------------------------------------------

TEST(Oracle, RecencyStackStartsAsIdentityInsertion)
{
    verify::RecencyStackOracle oracle(2, 4, Ipv::lru(4));
    // MRU-insert ways 0..3 in order: last inserted is most recent.
    for (unsigned w = 0; w < 4; ++w)
        oracle.onInsert(0, w);
    std::vector<unsigned> pos = oracle.positions(0);
    EXPECT_EQ(pos[3], 0u);
    EXPECT_EQ(pos[0], 3u);
    EXPECT_EQ(oracle.victim(0), 0u);
}

TEST(Oracle, PlruTreePositionRoundTrip)
{
    // The static helpers must agree for every (bits, way, pos) of a
    // small tree — a miniature of what the model checker proves for
    // the production tree.
    const unsigned ways = 8;
    for (uint64_t bits = 0; bits < (1u << (ways - 1)); ++bits) {
        for (unsigned way = 0; way < ways; ++way) {
            for (unsigned pos = 0; pos < ways; ++pos) {
                uint64_t nb = verify::PlruTreeOracle::withPosition(
                    bits, ways, way, pos);
                EXPECT_EQ(
                    verify::PlruTreeOracle::positionOf(nb, ways, way),
                    pos);
            }
        }
    }
}

// --- differential harness -------------------------------------------

TEST(Differential, AllMirrorsMatchOnRandomStream)
{
    const CacheConfig cfg = smallConfig();
    const Trace trace =
        randomTrace(cfg, 20'000, 2 * cfg.sizeBytes / cfg.blockBytes,
                    0xd1ff);
    for (const std::string &policy : verify::mirrorNames()) {
        verify::DifferentialResult r =
            verify::replayDifferential(policy, cfg, trace);
        EXPECT_TRUE(r.ok()) << policy << ": "
                            << (r.divergence ? r.divergence->toString()
                                             : "");
        EXPECT_EQ(r.accesses, trace.size());
        EXPECT_GT(r.comparisons, 0u);
    }
}

TEST(Differential, MatchesUnderInvalidation)
{
    const CacheConfig cfg = smallConfig();
    const Trace trace =
        randomTrace(cfg, 10'000, cfg.sizeBytes / cfg.blockBytes / 2,
                    0xcafe);
    verify::ReplayOptions opts;
    opts.invalidateEvery = 53;
    for (const std::string &policy : verify::mirrorNames()) {
        verify::DifferentialResult r =
            verify::replayDifferential(policy, cfg, trace, opts);
        EXPECT_TRUE(r.ok()) << policy;
        EXPECT_GT(r.invalidates, 0u) << policy;
    }
}

TEST(Differential, NonPowerOfTwoFriendlyGeometries)
{
    // 4- and 8-way mirrors use synthesized vectors; they must still
    // agree with their oracles.
    for (unsigned assoc : {4u, 8u}) {
        const CacheConfig cfg = smallConfig(assoc, 32);
        const Trace trace = randomTrace(
            cfg, 8'000, 2 * cfg.sizeBytes / cfg.blockBytes, assoc);
        for (const std::string &policy : verify::mirrorNames()) {
            verify::DifferentialResult r =
                verify::replayDifferential(policy, cfg, trace);
            EXPECT_TRUE(r.ok())
                << policy << " at " << assoc << " ways: "
                << (r.divergence ? r.divergence->toString() : "");
        }
    }
}

TEST(Differential, DetectsInjectedMismatch)
{
    // Pair a production LRU with a LIP oracle: same structure, wrong
    // insertion position.  The harness must flag the very first
    // comparison after an insertion into a full set.
    const CacheConfig cfg = smallConfig(4, 4);
    auto inner = std::make_unique<LruPolicy>(cfg);
    auto oracle = std::make_unique<verify::RecencyStackOracle>(
        cfg.sets(), cfg.assoc, Ipv::lruInsertion(cfg.assoc));
    verify::PositionProbe probe = [](const ReplacementPolicy &p,
                                     uint64_t set) {
        const auto &lru = dynamic_cast<const LruPolicy &>(p);
        std::vector<unsigned> pos;
        for (unsigned w = 0; w < 4; ++w)
            pos.push_back(lru.position(set, w));
        return pos;
    };
    verify::DifferentialChecker checker(std::move(inner),
                                        std::move(oracle),
                                        std::move(probe));
    AccessInfo info;
    info.set = 0;
    info.type = AccessType::Load;
    checker.onInsert(0, info); // LRU says pos 0, LIP oracle says k-1
    ASSERT_TRUE(checker.divergence().has_value());
    EXPECT_EQ(checker.divergence()->kind, "positions");
    EXPECT_EQ(checker.divergence()->eventIndex, 0u);
    // The report names both models' state dumps.
    EXPECT_NE(checker.divergence()->detail.find("RecencyStackOracle"),
              std::string::npos);
}

TEST(Differential, FirstDivergenceIsSticky)
{
    const CacheConfig cfg = smallConfig(4, 4);
    auto inner = std::make_unique<LruPolicy>(cfg);
    auto oracle = std::make_unique<verify::RecencyStackOracle>(
        cfg.sets(), cfg.assoc, Ipv::lruInsertion(cfg.assoc));
    verify::PositionProbe probe = [](const ReplacementPolicy &p,
                                     uint64_t set) {
        const auto &lru = dynamic_cast<const LruPolicy &>(p);
        std::vector<unsigned> pos;
        for (unsigned w = 0; w < 4; ++w)
            pos.push_back(lru.position(set, w));
        return pos;
    };
    verify::DifferentialChecker checker(std::move(inner),
                                        std::move(oracle),
                                        std::move(probe));
    AccessInfo info;
    info.set = 0;
    info.type = AccessType::Load;
    checker.onInsert(0, info);
    ASSERT_TRUE(checker.divergence().has_value());
    const uint64_t at = checker.divergence()->eventIndex;
    checker.onInsert(1, info);
    checker.onInsert(2, info);
    // Still reporting the first divergence, not a later one.
    EXPECT_EQ(checker.divergence()->eventIndex, at);
}

TEST(Differential, MirrorNamesRoundTripThroughFactory)
{
    const CacheConfig cfg = smallConfig();
    for (const std::string &name : verify::mirrorNames()) {
        auto mirror = verify::makeMirror(name, cfg);
        ASSERT_NE(mirror, nullptr) << name;
        EXPECT_FALSE(mirror->divergence().has_value()) << name;
    }
    EXPECT_THROW(verify::makeMirror("NOSUCH", cfg),
                 std::runtime_error);
}

} // namespace
} // namespace gippr
