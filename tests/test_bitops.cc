/**
 * @file
 * Unit tests for util/bitops.hh.
 */

#include <gtest/gtest.h>

#include "util/bitops.hh"

namespace gippr
{
namespace
{

TEST(Bitops, IsPow2RecognizesPowers)
{
    for (unsigned shift = 0; shift < 63; ++shift)
        EXPECT_TRUE(isPow2(uint64_t{1} << shift)) << shift;
}

TEST(Bitops, IsPow2RejectsZero)
{
    EXPECT_FALSE(isPow2(0));
}

TEST(Bitops, IsPow2RejectsComposites)
{
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(6));
    EXPECT_FALSE(isPow2(12));
    EXPECT_FALSE(isPow2(255));
    EXPECT_FALSE(isPow2((uint64_t{1} << 40) + 1));
}

TEST(Bitops, FloorLog2Exact)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(16), 4u);
    EXPECT_EQ(floorLog2(uint64_t{1} << 40), 40u);
}

TEST(Bitops, FloorLog2Rounding)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(17), 4u);
    EXPECT_EQ(floorLog2(31), 4u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(9), 4u);
    EXPECT_EQ(ceilLog2(16), 4u);
    EXPECT_EQ(ceilLog2(17), 5u);
}

TEST(Bitops, GetBit)
{
    EXPECT_EQ(getBit(0b1010, 0), 0u);
    EXPECT_EQ(getBit(0b1010, 1), 1u);
    EXPECT_EQ(getBit(0b1010, 3), 1u);
    EXPECT_EQ(getBit(uint64_t{1} << 63, 63), 1u);
}

TEST(Bitops, SetBit)
{
    EXPECT_EQ(setBit(0, 3, 1), 0b1000u);
    EXPECT_EQ(setBit(0b1111, 1, 0), 0b1101u);
    EXPECT_EQ(setBit(0b1000, 3, 1), 0b1000u);
}

TEST(Bitops, SetBitThenGetBitRoundTrip)
{
    uint64_t x = 0;
    for (unsigned i = 0; i < 64; i += 7)
        x = setBit(x, i, 1);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(getBit(x, i), (i % 7 == 0) ? 1u : 0u) << i;
}

TEST(Bitops, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(4), 0xFu);
    EXPECT_EQ(lowMask(64), ~uint64_t{0});
}

} // namespace
} // namespace gippr
