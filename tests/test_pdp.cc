/**
 * @file
 * Tests for the Protecting Distance based Policy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "policies/lru.hh"
#include "policies/pdp.hh"
#include "util/histogram.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

TEST(PdpSolver, PicksDistanceCoveringReuseMass)
{
    // All reuse at distance 10: protecting for 10 is optimal; any
    // longer only wastes occupancy, any shorter forfeits all hits.
    Histogram rd(64);
    rd.add(10, 1000);
    unsigned dp = PdpPolicy::solveDp(rd, 64);
    EXPECT_EQ(dp, 10u);
}

TEST(PdpSolver, IgnoresUnreachableTail)
{
    // Mass at 4 plus mass in the overflow bucket (beyond max): the
    // solver must protect to 4 only.
    Histogram rd(32);
    rd.add(4, 500);
    rd.add(100, 400); // overflow
    EXPECT_EQ(PdpPolicy::solveDp(rd, 32), 4u);
}

TEST(PdpSolver, BalancesTwoModes)
{
    // Strong near mode and weak far mode: E(dp) peaks at the near
    // mode when the far mode is thin.
    Histogram rd(64);
    rd.add(3, 900);
    rd.add(60, 10);
    EXPECT_EQ(PdpPolicy::solveDp(rd, 64), 3u);
    // When the far mode dominates overwhelmingly, protecting to it
    // pays despite the occupancy cost.
    Histogram rd2(64);
    rd2.add(3, 10);
    rd2.add(60, 990);
    EXPECT_EQ(PdpPolicy::solveDp(rd2, 64), 60u);
}

TEST(PdpSolver, EmptyHistogramGivesDefault)
{
    Histogram rd(64);
    unsigned dp = PdpPolicy::solveDp(rd, 64);
    EXPECT_GE(dp, 1u);
    EXPECT_LE(dp, 64u);
}

TEST(Pdp, ProtectedLinesSurviveUnprotectedEvictFirst)
{
    CacheConfig c = cfg(4, 4);
    PdpParams params;
    params.counterBits = 4;
    params.initialDp = 8;
    params.epochAccesses = 1u << 30; // never recompute in this test
    auto policy = std::make_unique<PdpPolicy>(c, params);
    PdpPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    EXPECT_EQ(raw->protectingDistance(), 8u);
    // Fill the set: all protected.
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(((t << c.setShift()) | 0) << c.blockShift(),
                     AccessType::Load);
    // A burst of misses: victims must rotate through the ways whose
    // protection has expired first (oldest-inserted).
    AccessResult r =
        cache.access((uint64_t{10} << c.setShift()) << c.blockShift(),
                     AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
}

TEST(Pdp, ThrashResistanceBeatsLru)
{
    // Cyclic set 1.5x capacity: LRU gets zero hits; PDP's protection
    // plus forced eviction of the least-protected line keeps part of
    // the working set resident.
    CacheConfig c = cfg(64, 4); // 256 blocks
    PdpParams params;
    params.epochAccesses = 2048;
    params.maxDistance = 64;
    SetAssocCache pdp(c, std::make_unique<PdpPolicy>(c, params));
    SetAssocCache lru(c, std::make_unique<LruPolicy>(c));
    for (int rep = 0; rep < 80; ++rep) {
        for (uint64_t b = 0; b < 384; ++b) {
            pdp.access(b * 64, AccessType::Load);
            lru.access(b * 64, AccessType::Load);
        }
    }
    EXPECT_EQ(lru.stats().hits, 0u);
    EXPECT_GT(pdp.stats().hits, 2000u);
}

TEST(Pdp, KeepsHotSetUnderPollution)
{
    CacheConfig c = cfg(16, 4);
    PdpParams params;
    params.epochAccesses = 1024;
    SetAssocCache cache(c, std::make_unique<PdpPolicy>(c, params));
    // Alternate: hot block per set touched every iteration, cold
    // stream pollutes.
    uint64_t cold = 1000;
    uint64_t hits_late = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t set = static_cast<uint64_t>(i) % 16;
        AccessResult h = cache.access(
            ((uint64_t{1} << c.setShift()) | set) << c.blockShift(),
            AccessType::Load);
        if (i > 10000 && h.hit)
            ++hits_late;
        cache.access(((cold++ << c.setShift()) | set)
                         << c.blockShift(),
                     AccessType::Load);
    }
    // The hot block must be essentially always resident late in the
    // run.
    EXPECT_GT(hits_late, 4500u);
}

TEST(Pdp, StateBitsMatchConfiguredWidth)
{
    CacheConfig c = CacheConfig::paperLlc();
    PdpParams params;
    params.counterBits = 4;
    PdpPolicy p(c, params);
    // 4-bit protection counter + reuse bit per line, 16 ways, plus
    // the per-set tick counter.
    EXPECT_EQ(p.stateBitsPerSet(), 16u * 5u + 8u);
    EXPECT_GT(p.globalStateBits(), 0u);
}

TEST(Pdp, EpochRecomputesProtectingDistance)
{
    CacheConfig c = cfg(16, 4);
    PdpParams params;
    params.epochAccesses = 512;
    params.initialDp = 3;
    params.sampleShift = 0; // sample every set
    params.maxDistance = 32;
    auto policy = std::make_unique<PdpPolicy>(c, params);
    PdpPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    // Reuse at per-set distance ~8: loop 8 blocks per set repeatedly.
    for (int rep = 0; rep < 200; ++rep)
        for (uint64_t t = 0; t < 8; ++t)
            for (uint64_t s = 0; s < 16; ++s)
                cache.access(((t << c.setShift()) | s)
                                 << c.blockShift(),
                             AccessType::Load);
    EXPECT_NE(raw->protectingDistance(), 3u);
    EXPECT_GE(raw->protectingDistance(), 7u);
    EXPECT_LE(raw->protectingDistance(), 9u);
}

} // namespace
} // namespace gippr
