/**
 * @file
 * End-to-end integration tests: the paper's qualitative claims on a
 * scaled-down system — who beats whom, and by roughly what shape.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/replay.hh"
#include "core/dgippr.hh"
#include "core/vectors.hh"
#include "ga/fitness.hh"
#include "policies/belady.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

SuiteParams
tinySuite()
{
    SuiteParams p;
    p.llcBlocks = 512;
    p.accessesPerSimpoint = 16000;
    p.baseSeed = 13;
    return p;
}

SystemParams
tinySystem()
{
    SystemParams p;
    p.hier.l1 = {"L1", 4 * 1024, 8, 64};
    p.hier.l2 = {"L2", 8 * 1024, 8, 64};
    p.hier.llc = {"LLC", 32 * 1024, 16, 64};
    return p;
}

TEST(Integration, ThrashWorkloadRanking)
{
    // On the LRU-hostile loop, the adaptive policies must clearly
    // beat LRU in end-to-end IPC.
    SyntheticSuite suite(tinySuite());
    Workload w = SyntheticSuite::materialize(suite.spec("loop_thrash"));
    SystemParams sys = tinySystem();

    SimResult lru = simulateWorkload(w, policyByName("LRU").make, sys);
    SimResult drrip =
        simulateWorkload(w, policyByName("DRRIP").make, sys);
    SimResult dgippr =
        simulateWorkload(w, policyByName("DGIPPR2").make, sys);

    EXPECT_GT(drrip.ipc, lru.ipc * 1.05);
    EXPECT_GT(dgippr.ipc, lru.ipc * 1.05);
}

TEST(Integration, FriendlyWorkloadNoRegression)
{
    // Where LRU is already fine, DGIPPR must not lose measurably
    // (the paper: >99% of LRU on all but one workload).
    SyntheticSuite suite(tinySuite());
    Workload w = SyntheticSuite::materialize(suite.spec("loop_fit"));
    SystemParams sys = tinySystem();
    SimResult lru = simulateWorkload(w, policyByName("LRU").make, sys);
    SimResult dgippr =
        simulateWorkload(w, policyByName("DGIPPR4").make, sys);
    EXPECT_GT(dgippr.ipc, lru.ipc * 0.97);
}

TEST(Integration, PlruTracksLruClosely)
{
    // Section 3.1: PLRU performs almost equivalently to full LRU.
    SyntheticSuite suite(tinySuite());
    SystemParams sys = tinySystem();
    for (const char *name : {"zipf_hot", "chase_small", "loop_fit"}) {
        Workload w = SyntheticSuite::materialize(suite.spec(name));
        SimResult lru =
            simulateWorkload(w, policyByName("LRU").make, sys);
        SimResult plru =
            simulateWorkload(w, policyByName("PLRU").make, sys);
        EXPECT_NEAR(plru.ipc / lru.ipc, 1.0, 0.05) << name;
    }
}

TEST(Integration, MinDominatesEveryPolicyOnLlcTraces)
{
    SyntheticSuite suite(tinySuite());
    SystemParams sys = tinySystem();
    auto lru_f = lruFactory();
    for (const char *name : {"loop_thrash", "zipf_hot", "sd_bimodal"}) {
        Workload w = SyntheticSuite::materialize(suite.spec(name));
        const Trace &cpu = *w.simpoints()[0].trace;
        Trace llc = demandOnlyTrace(
            Hierarchy::filterToLlc(cpu, sys.hier, lru_f, lru_f));
        uint64_t min_misses = runMinMisses(sys.hier.llc, llc);
        for (const char *p :
             {"LRU", "PLRU", "DRRIP", "PDP", "DGIPPR4"}) {
            SetAssocCache cache(sys.hier.llc,
                                policyByName(p).make(sys.hier.llc));
            replayTrace(cache, llc);
            EXPECT_LE(min_misses, cache.stats().demandMisses)
                << name << "/" << p;
        }
    }
}

TEST(Integration, GipprMatchesPlruStorageBudget)
{
    // The paper's storage claim: GIPPR-family policies cost exactly
    // PLRU (15 bits/set, < 1 bit/block at 16 ways), while achieving
    // DRRIP-class miss rates on the adaptive workloads.
    CacheConfig llc = tinySystem().hier.llc;
    auto plru = policyByName("PLRU").make(llc);
    auto dgippr = policyByName("DGIPPR4").make(llc);
    EXPECT_EQ(dgippr->stateBitsPerSet(), plru->stateBitsPerSet());
    auto drrip = policyByName("DRRIP").make(llc);
    EXPECT_GT(drrip->stateBitsPerSet(),
              2 * dgippr->stateBitsPerSet() - 2);
}

TEST(Integration, FitnessTracesBuildFromSuite)
{
    SuiteParams sp = tinySuite();
    sp.accessesPerSimpoint = 6000;
    SyntheticSuite suite(sp);
    std::vector<Workload> workloads;
    workloads.push_back(
        SyntheticSuite::materialize(suite.spec("loop_thrash")));
    workloads.push_back(
        SyntheticSuite::materialize(suite.spec("stream_pure")));
    auto traces = buildFitnessTraces(workloads, tinySystem().hier);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].name, "loop_thrash/0");
    EXPECT_GT(traces[0].llcTrace->size(), 0u);
    EXPECT_GT(traces[0].instructions, 0u);
    // The filtered trace contains at most the CPU demand references
    // plus the L2 writeback stream.
    EXPECT_LE(traces[0].llcTrace->size(),
              2 * workloads[0].simpoints()[0].trace->size());
}

TEST(Integration, DgipprAdaptsPerWorkload)
{
    // The paper's adaptivity claim: a *single* DGIPPR configuration
    // must track whichever static vector suits each workload —
    // LIP-like on the thrashing loop, PMRU-like on the recency
    // friendly pattern — landing near the better static choice on
    // both, which no single static vector does.
    // This test needs a paper-like *leader fraction* (~1.6% of sets)
    // for the duel's overhead to be representative, so it runs on a
    // 128-set LLC with a correspondingly larger workload; the PSEL is
    // narrowed since we have 48k accesses, not a billion.
    SuiteParams sp;
    sp.llcBlocks = 2048;
    sp.accessesPerSimpoint = 48000;
    sp.baseSeed = 13;
    SyntheticSuite suite(sp);
    SystemParams sys;
    sys.hier.l1 = {"L1", 4 * 1024, 8, 64};
    sys.hier.l2 = {"L2", 16 * 1024, 8, 64};
    sys.hier.llc = {"LLC", 128 * 1024, 16, 64};
    auto pmru =
        policyByName("GIPPR:0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0");
    auto lip =
        policyByName("GIPPR:0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15");
    // Duel exactly the two archetypes this test reasons about.
    std::vector<Ipv> pair = {Ipv::lru(16), Ipv::lruInsertion(16)};
    PolicyDef duel{"2-DGIPPR",
                   [pair](const CacheConfig &cfg) {
                       return std::unique_ptr<ReplacementPolicy>(
                           std::make_unique<DgipprPolicy>(cfg, pair, 1,
                                                          7));
                   },
                   fastpath::dgipprSpec(pair, 1, 7)};

    Workload thrash =
        SyntheticSuite::materialize(suite.spec("loop_thrash"));
    double pmru_thrash = simulateWorkload(thrash, pmru.make, sys).ipc;
    double lip_thrash = simulateWorkload(thrash, lip.make, sys).ipc;
    double duel_thrash = simulateWorkload(thrash, duel.make, sys).ipc;
    EXPECT_GT(lip_thrash, pmru_thrash); // premise: LIP wins here
    EXPECT_GT(duel_thrash, pmru_thrash);
    EXPECT_GT(duel_thrash, lip_thrash * 0.8);

    Workload friendly =
        SyntheticSuite::materialize(suite.spec("zipf_hot"));
    double pmru_zipf = simulateWorkload(friendly, pmru.make, sys).ipc;
    double duel_zipf = simulateWorkload(friendly, duel.make, sys).ipc;
    EXPECT_GT(duel_zipf, pmru_zipf * 0.95);
}

TEST(Integration, StreamWorkloadInsertionPolicyMatters)
{
    // Pure streaming: everything misses regardless; miss counts tie,
    // but LIP-style insertion must not be *worse* than LRU.
    SyntheticSuite suite(tinySuite());
    Workload w = SyntheticSuite::materialize(suite.spec("stream_pure"));
    SystemParams sys = tinySystem();
    SimResult lru = simulateWorkload(w, policyByName("LRU").make, sys);
    SimResult dgippr =
        simulateWorkload(w, policyByName("DGIPPR2").make, sys);
    EXPECT_NEAR(dgippr.ipc / lru.ipc, 1.0, 0.02);
}

} // namespace
} // namespace gippr
