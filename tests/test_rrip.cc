/**
 * @file
 * Tests for SRRIP / BRRIP / DRRIP.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "policies/rrip.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
addrOf(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

TEST(Srrip, InsertsWithLongPrediction)
{
    CacheConfig c = cfg(64, 4);
    auto policy = makeSrrip(c);
    RripPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    cache.access(addrOf(c, 0, 1), AccessType::Load);
    // SRRIP inserts at max-1 = 2 for 2-bit RRPVs.
    EXPECT_EQ(raw->rrpv(0, 0), 2u);
}

TEST(Srrip, HitPromotesToZero)
{
    CacheConfig c = cfg(64, 4);
    auto policy = makeSrrip(c);
    RripPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    cache.access(addrOf(c, 0, 1), AccessType::Load);
    cache.access(addrOf(c, 0, 1), AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 0u);
}

TEST(Srrip, VictimIsDistantBlock)
{
    CacheConfig c = cfg(2, 4);
    auto policy = makeSrrip(c);
    RripPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // Touch tag 0 so its RRPV is 0; all others are 2.
    cache.access(addrOf(c, 0, 0), AccessType::Load);
    // Next miss: aging raises everyone until a 3 appears; tags 1-3
    // reach 3 first.  Victim must not be way 0.
    AccessResult r = cache.access(addrOf(c, 0, 9), AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    EXPECT_NE(r.way, 0u);
    // Aging left way 0 at RRPV 1.
    EXPECT_EQ(raw->rrpv(0, 0), 1u);
}

TEST(Srrip, AgingTerminates)
{
    // All blocks at RRPV 0: victim search must still find one after
    // three aging rounds.
    CacheConfig c = cfg(2, 4);
    auto policy = makeSrrip(c);
    SetAssocCache cache(c, std::move(policy));
    for (uint64_t t = 0; t < 4; ++t) {
        cache.access(addrOf(c, 0, t), AccessType::Load);
        cache.access(addrOf(c, 0, t), AccessType::Load); // promote to 0
    }
    AccessResult r = cache.access(addrOf(c, 0, 9), AccessType::Load);
    EXPECT_TRUE(r.evictedBlock.has_value());
}

TEST(Srrip, ScanResistance)
{
    // An established, re-referenced working set survives a one-pass
    // scan under SRRIP but not under plain recency insertion.
    CacheConfig c = cfg(4, 8);
    auto policy = makeSrrip(c);
    SetAssocCache cache(c, std::move(policy));
    // Establish 4 hot blocks per set, re-referenced (RRPV 0).
    for (int rep = 0; rep < 3; ++rep)
        for (uint64_t t = 0; t < 4; ++t)
            for (uint64_t s = 0; s < 4; ++s)
                cache.access(addrOf(c, s, t), AccessType::Load);
    // One-pass scan of 8 cold blocks per set (short enough that the
    // aging sweeps cannot lift the re-referenced blocks to distant).
    for (uint64_t t = 100; t < 132; ++t)
        cache.access(addrOf(c, t % 4, t), AccessType::Load);
    // Hot set must still be fully resident.
    unsigned resident = 0;
    for (uint64_t t = 0; t < 4; ++t)
        for (uint64_t s = 0; s < 4; ++s)
            if (cache.probe(addrOf(c, s, t)))
                ++resident;
    EXPECT_EQ(resident, 16u);
}

TEST(Brrip, MostInsertionsAreDistant)
{
    CacheConfig c = cfg(64, 4);
    auto policy = makeBrrip(c, 2, 7);
    RripPolicy *raw = policy.get();
    SetAssocCache cache(c, std::move(policy));
    unsigned distant = 0, total = 0;
    for (uint64_t t = 0; t < 256; ++t) {
        uint64_t set = t % 64;
        cache.access(addrOf(c, set, 1000 + t), AccessType::Load);
        // Find the way just filled (first fills go in way order).
        if (t < 64) {
            if (raw->rrpv(set, 0) == 3u)
                ++distant;
            ++total;
        }
    }
    EXPECT_GT(distant, total * 8 / 10);
    EXPECT_LT(distant, total); // the 1/32 long insertions exist
}

TEST(Drrip, ConvergesToBrripOnThrash)
{
    // Cyclic working set larger than the cache: SRRIP leader sets
    // thrash (all blocks inserted at 2 age together), BRRIP leaders
    // keep part of the set; DRRIP followers must behave like BRRIP
    // and produce hits.
    CacheConfig c = cfg(64, 4); // 256 blocks
    auto drrip_cache = SetAssocCache(c, makeDrrip(c, 2, 4, 7));
    auto srrip_cache = SetAssocCache(c, makeSrrip(c));
    for (int rep = 0; rep < 60; ++rep) {
        for (uint64_t b = 0; b < 320; ++b) { // 1.25x capacity
            drrip_cache.access(b * 64, AccessType::Load);
            srrip_cache.access(b * 64, AccessType::Load);
        }
    }
    EXPECT_GT(drrip_cache.stats().hits,
              srrip_cache.stats().hits * 2);
}

TEST(Drrip, GlobalStateIsOnePsel)
{
    CacheConfig c = CacheConfig::paperLlc();
    auto drrip = makeDrrip(c);
    EXPECT_EQ(drrip->globalStateBits(), 11u);
}

TEST(Rrip, StateBitsPerSetMatchPaper)
{
    CacheConfig c = CacheConfig::paperLlc();
    // 2 bits per block * 16 ways = 32 bits per set (twice DGIPPR's 15).
    EXPECT_EQ(makeDrrip(c)->stateBitsPerSet(), 32u);
    EXPECT_EQ(makeSrrip(c)->globalStateBits(), 0u);
}

TEST(Rrip, NamesDistinguishModes)
{
    CacheConfig c = cfg(64, 4);
    EXPECT_EQ(makeSrrip(c)->name(), "SRRIP");
    EXPECT_EQ(makeBrrip(c)->name(), "BRRIP");
    EXPECT_EQ(makeDrrip(c)->name(), "DRRIP");
}

TEST(Rrip, InvalidateMakesWayVictimNext)
{
    CacheConfig c = cfg(2, 4);
    auto policy = makeSrrip(c);
    SetAssocCache cache(c, std::move(policy));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    cache.invalidate(addrOf(c, 0, 2));
    AccessResult r = cache.access(addrOf(c, 0, 9), AccessType::Load);
    EXPECT_FALSE(r.evictedBlock.has_value()); // filled invalid way 2
    EXPECT_EQ(r.way, 2u);
}

TEST(Rrip, ThreeBitRrpvWorks)
{
    CacheConfig c = cfg(64, 8);
    RripPolicy p(c, RripPolicy::Mode::Static, 3);
    AccessInfo info;
    info.set = 0;
    p.onInsert(0, info);
    EXPECT_EQ(p.rrpv(0, 0), 6u); // max-1 = 2^3 - 2
}

} // namespace
} // namespace gippr
