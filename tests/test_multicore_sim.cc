/**
 * @file
 * Tests for the shared-LLC multi-core serving simulator.
 *
 * Four layers:
 *
 *  1. Unit tests of the deterministic plumbing — interleaving
 *     schedules, mix parsing, way-mask construction, the UCP utility
 *     monitor and the analytic fairness metrics (hand-computed
 *     expectations).
 *  2. The 1-core bit-identity gate: a 1-core mix replayed through the
 *     shared model (either backend, either duel scope, either
 *     schedule) must return per-core ReplayStats bit-identical to the
 *     existing single-core ReplayEngine on the same trace and warmup
 *     boundary.  This is what makes the multicore mode a strict
 *     generalization of the single-core experiments.
 *  3. The scalar-vs-fast differential oracle on real 2- and 4-core
 *     mixes: the packed SharedLlcModel and the scalar ScalarSharedLlc
 *     replay the identical interleaved stream and must agree on every
 *     core's full statistics (counters, duel state) across policies,
 *     schedules, duel scopes and partitioning modes.
 *  4. End-to-end properties: run-to-run determinism, utility
 *     repartitioning activity, and full way masks degenerating to the
 *     unpartitioned transition.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "core/vectors.hh"
#include "sim/fastpath/engine.hh"
#include "sim/multicore/engine.hh"
#include "sim/multicore/fairness.hh"
#include "sim/multicore/mix.hh"
#include "sim/multicore/partition.hh"
#include "sim/multicore/schedule.hh"
#include "sim/multicore/shared_model.hh"
#include "sim/trace_cache.hh"
#include "util/rng.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

using namespace gippr::multicore;

/** Small LLC so streams wrap the set space and evict constantly. */
CacheConfig
smallLlc()
{
    CacheConfig cfg;
    cfg.name = "llc";
    cfg.sizeBytes = 64 * 1024; // 64 sets at 16 ways
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

/** The seven replayable core policies at 16 ways. */
std::vector<std::pair<std::string, fastpath::ReplaySpec>>
allSpecs()
{
    return {{"LRU", fastpath::lruSpec()},
            {"LIP", fastpath::lipSpec()},
            {"GIPLR", fastpath::giplrSpec(local_vectors::giplr())},
            {"PLRU", fastpath::plruSpec()},
            {"GIPPR", fastpath::gipprSpec(local_vectors::gippr())},
            {"DGIPPR2", fastpath::dgipprSpec(local_vectors::dgippr2())},
            {"DGIPPR4", fastpath::dgipprSpec(local_vectors::dgippr4())}};
}

/** Shared suite + trace memo so every test reuses filtered traces. */
const SyntheticSuite &
testSuite()
{
    static SyntheticSuite suite([] {
        SuiteParams p;
        p.llcBlocks = 16384;
        p.accessesPerSimpoint = 60'000;
        p.baseSeed = 0x5eed;
        return p;
    }());
    return suite;
}

std::vector<CoreStream>
streamsFor(const std::string &mix_text, unsigned cores)
{
    static LlcTraceCache cache;
    HierarchyConfig hier;
    hier.llc = CacheConfig::benchLlc();
    return buildCoreStreams(parseMixSpec(mix_text, cores), testSuite(),
                            hier, &cache);
}

RunParams
baseParams(const fastpath::ReplaySpec &spec)
{
    RunParams params;
    params.llc = smallLlc();
    params.policy = spec;
    return params;
}

// ---------------------------------------------------------------- 1.

TEST(MulticoreSchedule, RoundRobinSkipsFinishedStreams)
{
    Interleaver il(Schedule::RoundRobin, {3, 1, 2}, {1, 1, 1});
    std::vector<int> order;
    for (int c; (c = il.next()) >= 0;)
        order.push_back(c);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 2, 0}));
    EXPECT_EQ(il.next(), -1);
}

TEST(MulticoreSchedule, WeightedStrideFavorsHeavyCores)
{
    // Virtual times (issued+1)/weight with weights {2, 1}: core 0
    // issues twice per core-1 issue, ties to the lower core id.
    Interleaver il(Schedule::Weighted, {4, 2}, {2, 1});
    std::vector<int> order;
    for (int c; (c = il.next()) >= 0;)
        order.push_back(c);
    EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 0, 0, 1}));
    EXPECT_EQ(il.issued(0), 4u);
    EXPECT_EQ(il.issued(1), 2u);
}

TEST(MulticoreSchedule, SingleCoreDegeneratesToSequential)
{
    for (Schedule s : {Schedule::RoundRobin, Schedule::Weighted}) {
        Interleaver il(s, {5}, {3});
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(il.next(), 0);
        EXPECT_EQ(il.next(), -1);
    }
}

TEST(MulticoreSchedule, ParseNames)
{
    EXPECT_EQ(parseSchedule("rr"), Schedule::RoundRobin);
    EXPECT_EQ(parseSchedule("round-robin"), Schedule::RoundRobin);
    EXPECT_EQ(parseSchedule("weighted"), Schedule::Weighted);
    EXPECT_THROW(parseSchedule("fifo"), std::runtime_error);
}

TEST(MulticoreMix, PresetsHaveFourTenants)
{
    const std::vector<MixSpec> &presets = presetMixes();
    ASSERT_EQ(presets.size(), 5u);
    for (const MixSpec &m : presets)
        EXPECT_EQ(m.tenants.size(), 4u) << m.name;
    const MixSpec kv = parseMixSpec("kv-serving", 4);
    ASSERT_EQ(kv.tenants.size(), 4u);
    EXPECT_EQ(kv.tenants[0].workload, "kv_zipf_4t");
    EXPECT_EQ(kv.tenants[0].weight, 2u);
    EXPECT_EQ(kv.tenants[1].weight, 4u);
}

TEST(MulticoreMix, CustomListsCycleAndTruncate)
{
    const MixSpec cycled = parseMixSpec("loop_thrash:2,zipf_hot", 3);
    ASSERT_EQ(cycled.tenants.size(), 3u);
    EXPECT_EQ(cycled.tenants[0].workload, "loop_thrash");
    EXPECT_EQ(cycled.tenants[0].weight, 2u);
    EXPECT_EQ(cycled.tenants[1].workload, "zipf_hot");
    EXPECT_EQ(cycled.tenants[2].workload, "loop_thrash");
    EXPECT_EQ(cycled.tenants[2].weight, 2u);

    const MixSpec truncated = parseMixSpec("balanced", 2);
    EXPECT_EQ(truncated.tenants.size(), 2u);

    EXPECT_THROW(parseMixSpec("", 2), std::runtime_error);
    EXPECT_THROW(parseMixSpec("loop_thrash:0", 2), std::runtime_error);
}

TEST(MulticoreMix, UnknownWorkloadIsFatal)
{
    EXPECT_THROW(streamsFor("no_such_workload", 1), std::runtime_error);
}

TEST(MulticoreMix, ResolvesSuiteAndKvFamily)
{
    const std::vector<CoreStream> streams =
        streamsFor("zipf_hot,kv_zipf_4t", 2);
    ASSERT_EQ(streams.size(), 2u);
    EXPECT_EQ(streams[0].workload, "zipf_hot");
    EXPECT_EQ(streams[1].workload, "kv_zipf_4t");
    for (const CoreStream &s : streams) {
        ASSERT_NE(s.trace, nullptr);
        EXPECT_GT(s.trace->size(), 0u);
        EXPECT_GT(s.instructions, 0u);
    }
}

TEST(MulticorePartition, MasksFromCountsAreContiguousAndDisjoint)
{
    const std::vector<uint64_t> masks = masksFromCounts({8, 4, 2, 2}, 16);
    ASSERT_EQ(masks.size(), 4u);
    EXPECT_EQ(masks[0], 0x00FFull);
    EXPECT_EQ(masks[1], 0x0F00ull);
    EXPECT_EQ(masks[2], 0x3000ull);
    EXPECT_EQ(masks[3], 0xC000ull);

    // Leftover ways join the last core so the cache stays allocatable.
    const std::vector<uint64_t> slack = masksFromCounts({8, 4}, 16);
    EXPECT_EQ(slack[0], 0x00FFull);
    EXPECT_EQ(slack[1], 0xFF00ull);

    // Overcommitted or degenerate counts are hard errors even in
    // builds without GIPPR_CHECK (the sum would wrap the leftover
    // arithmetic otherwise).
    EXPECT_THROW(masksFromCounts({9, 9}, 16), std::runtime_error);
    EXPECT_THROW(masksFromCounts({0, 4}, 16), std::runtime_error);
    EXPECT_THROW(masksFromCounts({}, 16), std::runtime_error);
}

TEST(MulticorePartition, EvenSplitCoversAllWays)
{
    EXPECT_EQ(evenSplit(4, 16), (std::vector<unsigned>{4, 4, 4, 4}));
    EXPECT_EQ(evenSplit(3, 16), (std::vector<unsigned>{6, 5, 5}));
}

TEST(MulticorePartition, ParseSpecs)
{
    EXPECT_EQ(parsePartition("none", 4).mode, PartitionMode::None);
    const PartitionConfig st = parsePartition("static:8,4,2,2", 4);
    EXPECT_EQ(st.mode, PartitionMode::Static);
    EXPECT_EQ(st.staticWays, (std::vector<unsigned>{8, 4, 2, 2}));
    const PartitionConfig ut = parsePartition("utility:4096", 4);
    EXPECT_EQ(ut.mode, PartitionMode::Utility);
    EXPECT_EQ(ut.repartitionEvery, 4096u);
    EXPECT_THROW(parsePartition("static:8,4", 4), std::runtime_error);
    EXPECT_THROW(parsePartition("bogus", 4), std::runtime_error);
}

TEST(MulticorePartition, UtilityMonitorHistogramsAndAllocation)
{
    UtilityMonitor monitor(/*sets=*/64, /*assoc=*/4, /*cores=*/2,
                           /*sample_every=*/32);
    EXPECT_TRUE(monitor.sampled(0));
    EXPECT_FALSE(monitor.sampled(1));
    EXPECT_TRUE(monitor.sampled(32));

    // Core 0: tags 1, 2, 1 -> miss, miss, hit at stack position 1.
    monitor.observe(0, 0, 1);
    monitor.observe(0, 0, 2);
    monitor.observe(0, 0, 1);
    EXPECT_EQ(monitor.shadowMisses(0), 2u);
    EXPECT_EQ(monitor.hitHistogram(0)[1], 1u);

    // Core 0 has all the utility, so it gets every contested way.
    const std::vector<unsigned> counts = monitor.allocate();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0] + counts[1], 4u);
    EXPECT_GE(counts[0], counts[1]);
    EXPECT_GE(counts[1], 1u);

    // With 1 way core 0 still misses the position-1 hit; with 2 it
    // captures it.
    EXPECT_EQ(monitor.missesAt(0, 1), 3u);
    EXPECT_EQ(monitor.missesAt(0, 2), 2u);

    monitor.decay();
    EXPECT_EQ(monitor.shadowMisses(0), 1u);
    EXPECT_EQ(monitor.hitHistogram(0)[1], 0u);
}

TEST(MulticoreFairness, HandComputedMetrics)
{
    const LatencyModel model; // 0.25 CPI, 35-cycle hit, 200-cycle miss
    fastpath::CounterBank solo;
    solo.demandAccesses = 100;
    solo.demandMisses = 10;
    fastpath::CounterBank shared = solo;
    shared.demandMisses = 20;

    // solo: 1000*0.25 + 90*35 + 10*200 = 5400 cycles
    // shared: 1000*0.25 + 80*35 + 20*200 = 7050 cycles
    EXPECT_DOUBLE_EQ(modelCycles(model, 1000, solo), 5400.0);
    EXPECT_DOUBLE_EQ(modelCycles(model, 1000, shared), 7050.0);

    const FairnessReport report =
        computeFairness(model, {1000}, {shared}, {solo});
    ASSERT_EQ(report.cores.size(), 1u);
    EXPECT_DOUBLE_EQ(report.cores[0].soloIpc, 1000.0 / 5400.0);
    EXPECT_DOUBLE_EQ(report.cores[0].sharedIpc, 1000.0 / 7050.0);
    EXPECT_DOUBLE_EQ(report.cores[0].slowdown, 7050.0 / 5400.0);
    EXPECT_DOUBLE_EQ(report.cores[0].mpki, 20.0);
    EXPECT_DOUBLE_EQ(report.weightedSpeedup, 5400.0 / 7050.0);
    EXPECT_DOUBLE_EQ(report.maxSlowdown, 7050.0 / 5400.0);
    EXPECT_DOUBLE_EQ(report.throughput, 1000.0 / 7050.0);
}

// ---------------------------------------------------------------- 2.

TEST(MulticoreIdentity, SharedModelMatchesReplayEngine)
{
    const std::vector<CoreStream> streams = streamsFor("zipf_hot", 1);
    ASSERT_EQ(streams.size(), 1u);
    const size_t warmup = static_cast<size_t>(
        static_cast<double>(streams[0].trace->size()) * (1.0 / 3.0));

    for (const auto &[name, spec] : allSpecs()) {
        const fastpath::FastReplayEngine fast(1);
        const fastpath::ScalarReplayEngine scalar;
        const fastpath::ReplayStats fast_ref =
            fast.replay(spec, smallLlc(), *streams[0].trace, warmup);
        const fastpath::ReplayStats scalar_ref =
            scalar.replay(spec, smallLlc(), *streams[0].trace, warmup);

        for (Backend backend : {Backend::Fast, Backend::Scalar}) {
            const fastpath::ReplayStats &ref =
                backend == Backend::Fast ? fast_ref : scalar_ref;
            for (DuelScope scope :
                 {DuelScope::Global, DuelScope::PerCore}) {
                for (Schedule sched :
                     {Schedule::RoundRobin, Schedule::Weighted}) {
                    RunParams params = baseParams(spec);
                    params.backend = backend;
                    params.duelScope = scope;
                    params.schedule = sched;
                    const RunResult res =
                        runSharedLlc(streams, params);
                    ASSERT_EQ(res.cores.size(), 1u);
                    EXPECT_EQ(res.cores[0].stats, ref)
                        << name << " backend=" << backendName(backend)
                        << " duel=" << duelScopeName(scope)
                        << " sched=" << scheduleName(sched);
                    // Solo baseline replays the same trace: identical.
                    EXPECT_EQ(res.cores[0].solo, ref) << name;
                    EXPECT_DOUBLE_EQ(res.fairness.weightedSpeedup, 1.0)
                        << name;
                    EXPECT_DOUBLE_EQ(res.fairness.maxSlowdown, 1.0)
                        << name;
                }
            }
            // The CLI's --reference-single path must sit exactly on
            // the ReplayEngine result too.
            RunParams params = baseParams(spec);
            params.backend = backend;
            const RunResult ref_res =
                runSingleCoreReference(streams[0], params);
            EXPECT_EQ(ref_res.cores[0].stats, ref) << name;
            EXPECT_EQ(ref_res.cores[0].solo, ref) << name;
        }
    }
}

TEST(MulticoreIdentity, MeasuredInstructionWindow)
{
    const std::vector<CoreStream> streams = streamsFor("loop_fit", 1);
    RunParams params = baseParams(fastpath::lruSpec());
    const RunResult res = runSharedLlc(streams, params);
    const uint64_t len = streams[0].trace->size();
    const auto warm = static_cast<uint64_t>(
        static_cast<double>(len) * params.warmupFraction);
    const uint64_t expect = static_cast<uint64_t>(
        static_cast<unsigned __int128>(streams[0].instructions) *
        (len - warm) / len);
    EXPECT_EQ(res.cores[0].measuredInstructions, expect);
    EXPECT_EQ(res.cores[0].instructions, streams[0].instructions);
}

// ---------------------------------------------------------------- 3.

void
expectBackendsAgree(const std::vector<CoreStream> &streams,
                    RunParams params, const std::string &label)
{
    params.computeSolo = false; // solo paths are covered elsewhere
    params.backend = Backend::Fast;
    const RunResult fast = runSharedLlc(streams, params);
    params.backend = Backend::Scalar;
    const RunResult scalar = runSharedLlc(streams, params);
    ASSERT_EQ(fast.cores.size(), scalar.cores.size());
    for (size_t c = 0; c < fast.cores.size(); ++c)
        EXPECT_EQ(fast.cores[c].stats, scalar.cores[c].stats)
            << label << " core " << c;
    EXPECT_EQ(fast.wayCounts, scalar.wayCounts) << label;
    EXPECT_EQ(fast.repartitions, scalar.repartitions) << label;
}

TEST(MulticoreOracle, ScalarVsFastOnMultiCoreMixes)
{
    const std::vector<std::pair<std::string, unsigned>> mixes = {
        {"balanced", 2}, {"kv-serving", 4}};
    for (const auto &[mix, cores] : mixes) {
        const std::vector<CoreStream> streams = streamsFor(mix, cores);
        for (const auto &[name, spec] : allSpecs()) {
            const std::string label = mix + "/" + name;
            // Free-for-all, strict round-robin, one global duel.
            expectBackendsAgree(streams, baseParams(spec),
                                label + "/rr-global-none");

            // Weighted arrivals, per-core duels, static partition.
            RunParams contended = baseParams(spec);
            contended.schedule = Schedule::Weighted;
            contended.duelScope = DuelScope::PerCore;
            contended.partition.mode = PartitionMode::Static;
            contended.partition.staticWays =
                evenSplit(cores, contended.llc.assoc);
            expectBackendsAgree(streams, contended,
                                label + "/weighted-percore-static");
        }
        // Utility repartitioning exercises the monitor + mask flips
        // on both backends at the same ticks.
        RunParams utility =
            baseParams(fastpath::dgipprSpec(local_vectors::dgippr2()));
        utility.duelScope = DuelScope::PerCore;
        utility.partition.mode = PartitionMode::Utility;
        utility.partition.repartitionEvery = 8192;
        expectBackendsAgree(streams, utility, mix + "/utility");
    }
}

// ---------------------------------------------------------------- 4.

TEST(MulticoreEndToEnd, RunToRunDeterminism)
{
    const std::vector<CoreStream> streams = streamsFor("kv-serving", 4);
    RunParams params =
        baseParams(fastpath::dgipprSpec(local_vectors::dgippr4()));
    params.schedule = Schedule::Weighted;
    params.duelScope = DuelScope::PerCore;
    const RunResult a = runSharedLlc(streams, params);
    const RunResult b = runSharedLlc(streams, params);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].stats, b.cores[c].stats);
        EXPECT_EQ(a.cores[c].solo, b.cores[c].solo);
        EXPECT_EQ(a.cores[c].measuredInstructions,
                  b.cores[c].measuredInstructions);
    }
    EXPECT_EQ(a.fairness.weightedSpeedup, b.fairness.weightedSpeedup);
    EXPECT_EQ(a.fairness.maxSlowdown, b.fairness.maxSlowdown);
}

TEST(MulticoreEndToEnd, UtilityRepartitioningActivates)
{
    const std::vector<CoreStream> streams = streamsFor("balanced", 4);
    RunParams params = baseParams(fastpath::lruSpec());
    params.computeSolo = false;
    params.partition.mode = PartitionMode::Utility;
    params.partition.repartitionEvery = 4096;
    const RunResult res = runSharedLlc(streams, params);
    EXPECT_GT(res.repartitions, 0u);
    ASSERT_EQ(res.wayCounts.size(), 4u);
    unsigned total = 0;
    for (unsigned w : res.wayCounts) {
        EXPECT_GE(w, 1u);
        total += w;
    }
    EXPECT_LE(total, params.llc.assoc);
}

TEST(MulticoreEndToEnd, FullMasksMatchUnpartitionedTransition)
{
    const fastpath::ReplaySpec spec =
        fastpath::gipprSpec(local_vectors::gippr());
    const CacheConfig llc = smallLlc();
    SharedLlcModel plain(spec, llc, 2, DuelScope::Global);
    SharedLlcModel masked(spec, llc, 2, DuelScope::Global);
    const uint64_t full = (1ull << llc.assoc) - 1;
    masked.setWayMask(0, full);
    masked.setWayMask(1, full);

    Rng rng(0xfeed);
    for (int i = 0; i < 200'000; ++i) {
        const auto core = static_cast<unsigned>(rng.nextBounded(2));
        const uint64_t addr = rng.nextBounded(1 << 20) * 64ull;
        const AccessType type = rng.nextBool(0.2) ? AccessType::Store
                                                  : AccessType::Load;
        plain.access(core, addr, type);
        masked.access(core, addr, type);
    }
    for (unsigned core = 0; core < 2; ++core)
        EXPECT_EQ(plain.coreStats(core), masked.coreStats(core))
            << "core " << core;
}

} // namespace
} // namespace gippr
