/**
 * @file
 * Unit tests for the trace module (trace, IO, simpoints).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "trace/simpoint.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace gippr
{
namespace
{

MemRecord
rec(uint64_t addr, uint32_t gap = 1, bool write = false,
    uint64_t pc = 0x400000)
{
    MemRecord r;
    r.addr = addr;
    r.instGap = gap;
    r.isWrite = write;
    r.pc = pc;
    return r;
}

TEST(Trace, AppendTracksTotals)
{
    Trace t;
    t.append(rec(0x100, 5));
    t.append(rec(0x200, 3, true));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.instructions(), 8u);
    EXPECT_EQ(t.writes(), 1u);
}

TEST(Trace, ConstructFromVector)
{
    std::vector<MemRecord> recs{rec(0x100, 2), rec(0x140, 4, true)};
    Trace t(recs);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.instructions(), 6u);
    EXPECT_EQ(t.writes(), 1u);
}

TEST(Trace, FootprintCountsDistinctBlocks)
{
    Trace t;
    t.append(rec(0));
    t.append(rec(63));  // same 64B block
    t.append(rec(64));  // next block
    t.append(rec(128)); // third block
    t.append(rec(64));  // repeat
    EXPECT_EQ(t.footprintBlocks(64), 3u);
}

TEST(Trace, FootprintRespectsBlockSize)
{
    Trace t;
    t.append(rec(0));
    t.append(rec(64));
    EXPECT_EQ(t.footprintBlocks(128), 1u);
    EXPECT_EQ(t.footprintBlocks(64), 2u);
}

TEST(Trace, AccessesPerKiloInst)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(rec(static_cast<uint64_t>(i) * 64, 100));
    EXPECT_DOUBLE_EQ(t.accessesPerKiloInst(), 10.0);
}

TEST(Trace, EmptyTraceSafeAccessors)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.instructions(), 0u);
    EXPECT_DOUBLE_EQ(t.accessesPerKiloInst(), 0.0);
    EXPECT_EQ(t.footprintBlocks(), 0u);
}

TEST(Trace, IterationOrderPreserved)
{
    Trace t;
    for (uint64_t i = 0; i < 5; ++i)
        t.append(rec(i * 64));
    uint64_t expect = 0;
    for (const auto &r : t) {
        EXPECT_EQ(r.addr, expect * 64);
        ++expect;
    }
}

class TraceIoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath()
    {
        // Unique per test: ctest runs each discovered test as its own
        // process in parallel, so a shared file name races.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return ::testing::TempDir() + "gippr_trace_test_" +
               info->name() + ".bin";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }
};

TEST_F(TraceIoTest, RoundTrip)
{
    Trace t;
    t.append(rec(0x1000, 3, false, 0x400100));
    t.append(rec(0x2040, 7, true, 0x400104));
    t.append(rec(0xdeadbeef00, 1, false, 0));
    writeTrace(t, tempPath());
    Trace u = readTrace(tempPath());
    ASSERT_EQ(u.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_TRUE(t[i] == u[i]) << i;
    EXPECT_EQ(u.instructions(), t.instructions());
    EXPECT_EQ(u.writes(), t.writes());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrip)
{
    Trace t;
    writeTrace(t, tempPath());
    Trace u = readTrace(tempPath());
    EXPECT_TRUE(u.empty());
}

TEST_F(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(readTrace("/nonexistent/path/xyz.bin"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, GarbageFileThrows)
{
    std::FILE *f = std::fopen(tempPath().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_THROW(readTrace(tempPath()), std::runtime_error);
}

TEST_F(TraceIoTest, MappedMatchesBufferedRecordForRecord)
{
    Trace t;
    t.append(rec(0x1000, 3, false, 0x400100));
    t.append(rec(0x2040, 7, true, 0x400104));
    t.append(rec(0xdeadbeef00, 1, false, 0));
    t.append(rec(UINT64_MAX, 2, true, UINT64_MAX));
    writeTrace(t, tempPath());

    const Trace buffered = readTrace(tempPath());
    const MappedTrace mapped(tempPath());
    ASSERT_EQ(mapped.size(), buffered.size());
    for (size_t i = 0; i < buffered.size(); ++i)
        EXPECT_TRUE(mapped[i] == buffered[i]) << i;

    // Both loaders feed replay through the same non-owning view.
    const TraceSource from_buffered(buffered);
    const TraceSource from_mapped(mapped);
    ASSERT_EQ(from_mapped.size(), from_buffered.size());
    for (size_t i = 0; i < from_buffered.size(); ++i)
        EXPECT_TRUE(from_mapped[i] == from_buffered[i]) << i;
}

TEST_F(TraceIoTest, MappedHonoursBufferedFallbackKnob)
{
    Trace t;
    for (uint64_t i = 0; i < 32; ++i)
        t.append(rec(i * 64, 1, (i & 3) == 0));
    writeTrace(t, tempPath());

    setenv("GIPPR_TRACE_MMAP", "0", 1);
    const MappedTrace forced(tempPath());
    unsetenv("GIPPR_TRACE_MMAP");
    EXPECT_FALSE(forced.mapped());

    const MappedTrace mapped(tempPath());
    ASSERT_EQ(forced.size(), t.size());
    ASSERT_EQ(mapped.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_TRUE(forced[i] == t[i]) << i;
        EXPECT_TRUE(mapped[i] == t[i]) << i;
    }
}

TEST_F(TraceIoTest, MappedReadsLegacyV1Files)
{
    Trace t;
    t.append(rec(0x100, 2));
    t.append(rec(0x940, 5, true, 0x400200));
    writeTrace(t, tempPath());

    // Rewrite the v2 file as its v1 equivalent: version byte 1, no
    // CRC footer.  Both loaders must still accept it identically.
    std::ifstream in(tempPath(), std::ios::binary);
    std::vector<char> bytes(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>{});
    in.close();
    ASSERT_GE(bytes.size(), 20u);
    bytes[4] = 1;
    bytes.resize(bytes.size() - 4);
    std::ofstream out(tempPath(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();

    const Trace buffered = readTrace(tempPath());
    const MappedTrace mapped(tempPath());
    ASSERT_EQ(buffered.size(), t.size());
    ASSERT_EQ(mapped.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_TRUE(buffered[i] == t[i]) << i;
        EXPECT_TRUE(mapped[i] == t[i]) << i;
    }
}

TEST(Workload, AddAndCombine)
{
    Workload w("bench");
    auto t1 = std::make_shared<Trace>();
    auto t2 = std::make_shared<Trace>();
    w.addSimpoint(t1, 3.0);
    w.addSimpoint(t2, 1.0);
    EXPECT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w.totalWeight(), 4.0);
    // Weighted mean of per-simpoint metrics.
    EXPECT_DOUBLE_EQ(w.combine({1.0, 5.0}), 2.0);
}

TEST(Workload, NamePreserved)
{
    Workload w("429.mcf-like");
    EXPECT_EQ(w.name(), "429.mcf-like");
}

TEST(Workload, SingleSimpointCombineIsIdentity)
{
    Workload w("x");
    w.addSimpoint(std::make_shared<Trace>(), 0.37);
    EXPECT_DOUBLE_EQ(w.combine({42.0}), 42.0);
}

} // namespace
} // namespace gippr
