/**
 * @file
 * Tests for the telemetry subsystem: metric instruments, JSON model,
 * run reports (round-trip + golden schema), phase timers, and the
 * hardened trace reader error paths that telemetry-driven artifact
 * pipelines rely on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <thread>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "telemetry/report.hh"
#include "telemetry/timer.hh"
#include "trace/trace_io.hh"

namespace gippr
{
namespace
{

using telemetry::FixedHistogram;
using telemetry::JsonValue;
using telemetry::MetricRegistry;
using telemetry::PhaseTimings;
using telemetry::RunReport;
using telemetry::ScopedTimer;

#ifndef GIPPR_DISABLE_TELEMETRY

// ---------------------------------------------------------------- metrics

TEST(MetricRegistry, CounterSemantics)
{
    MetricRegistry reg;
    telemetry::Counter &c = reg.counter("hits");
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name returns the same instrument.
    EXPECT_EQ(&reg.counter("hits"), &c);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, GaugeKeepsLastValue)
{
    MetricRegistry reg;
    telemetry::Gauge &g = reg.gauge("winner");
    g.set(3.0);
    g.set(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(MetricRegistry, HistogramBucketing)
{
    MetricRegistry reg;
    FixedHistogram &h = reg.histogram("lat", {1.0, 10.0, 100.0});
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(1.0);   // bucket 0 (bound inclusive)
    h.observe(5.0);   // bucket 1
    h.observe(100.0); // bucket 2
    h.observe(1e6);   // overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricRegistry, HistogramReboundsRejected)
{
    MetricRegistry reg;
    reg.histogram("lat", {1.0, 2.0});
    EXPECT_NO_THROW(reg.histogram("lat", {1.0, 2.0}));
    EXPECT_THROW(reg.histogram("lat", {1.0, 3.0}), std::runtime_error);
}

TEST(MetricRegistry, ConcurrentIncrementStress)
{
    MetricRegistry reg;
    telemetry::Counter &c = reg.counter("stress");
    FixedHistogram &h = reg.histogram("hist", {0.5});
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&]() {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.increment();
                h.observe(1.0);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_EQ(h.bucketCount(1), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(),
                     static_cast<double>(kThreads * kPerThread));
}

TEST(MetricRegistry, ConcurrentLookupStress)
{
    MetricRegistry reg;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg]() {
            for (int i = 0; i < 500; ++i)
                reg.counter("shared." + std::to_string(i % 10))
                    .increment();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(reg.size(), 10u);
    uint64_t total = 0;
    for (int i = 0; i < 10; ++i)
        total += reg.counter("shared." + std::to_string(i)).value();
    EXPECT_EQ(total, kThreads * 500u);
}

TEST(MetricRegistry, SnapshotShape)
{
    MetricRegistry reg;
    reg.counter("c").increment(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", {1.0}).observe(0.25);
    JsonValue snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.at("c").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("g").asNumber(), 2.5);
    const JsonValue &h = snap.at("h");
    EXPECT_DOUBLE_EQ(h.at("bounds").at(0).asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(h.at("counts").at(0).asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(h.at("count").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(h.at("sum").asNumber(), 0.25);
}

#endif // GIPPR_DISABLE_TELEMETRY

// ------------------------------------------------------------------ json

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(JsonValue::parse("true").asBool(), true);
    EXPECT_EQ(JsonValue::parse("null").isNull(), true);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(JsonValue::parse("\"a\\nb\\u0041\"").asString(), "a\nbA");
}

TEST(Json, IntegersPrintWithoutExponent)
{
    EXPECT_EQ(JsonValue(uint64_t{123456789}).dump(0), "123456789");
    EXPECT_EQ(JsonValue(0).dump(0), "0");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zeta", JsonValue(1));
    obj.set("alpha", JsonValue(2));
    obj.set("mid", JsonValue(3));
    EXPECT_EQ(obj.dump(0), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
    obj.set("zeta", JsonValue(9)); // overwrite keeps position
    EXPECT_EQ(obj.dump(0), "{\"zeta\":9,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NestedRoundTrip)
{
    const std::string doc =
        "{\"a\":[1,2,{\"b\":\"x\\\"y\"}],\"c\":{\"d\":null,"
        "\"e\":false}}";
    JsonValue v = JsonValue::parse(doc);
    EXPECT_EQ(v.dump(0), doc);
    // Pretty form parses back to the same compact form.
    EXPECT_EQ(JsonValue::parse(v.dump(2)).dump(0), doc);
}

TEST(Json, MalformedInputRejected)
{
    EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

// ----------------------------------------------------------------- timer

TEST(PhaseTimings, AccumulatesAcrossTimers)
{
    PhaseTimings timings;
    {
        ScopedTimer t(&timings, "phase");
    }
    {
        ScopedTimer t(&timings, "phase");
    }
    auto phases = timings.phases();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].name, "phase");
    EXPECT_EQ(phases[0].count, 2u);
    EXPECT_GE(phases[0].seconds, 0.0);
}

TEST(PhaseTimings, NullSinkIsInert)
{
    ScopedTimer t(nullptr, "nothing");
    EXPECT_GE(t.elapsed(), 0.0);
    t.stop(); // must not crash
}

TEST(PhaseTimings, StopDetaches)
{
    PhaseTimings timings;
    ScopedTimer t(&timings, "once");
    t.stop();
    t.stop(); // second stop is a no-op
    EXPECT_EQ(timings.phases().size(), 1u);
    EXPECT_EQ(timings.phases()[0].count, 1u);
}

// ---------------------------------------------------------------- report

/** A small fully-deterministic report used by the schema tests. */
RunReport
makeReport()
{
    RunReport report("experiment", "unit");
    report.setTimestamp("2026-01-02T03:04:05Z");
    report.setConfig("threads", JsonValue(uint64_t{4}));
    report.setConfig("policy", JsonValue("LRU"));
    telemetry::ResultTable table;
    table.title = "t";
    table.metric = "MPKI";
    table.columns = {"LRU", "GIPPR"};
    table.rows.push_back({"w0", {1.5, 1.25}});
    table.rows.push_back({"w1", {2.0, 1.0}});
    report.addTable(std::move(table));
    return report;
}

TEST(RunReport, JsonRoundTrip)
{
    PhaseTimings timings;
    {
        ScopedTimer t(&timings, "replay");
    }
    MetricRegistry reg;
    reg.counter("llc.LRU.hits").increment(10);

    RunReport report = makeReport();
    report.setPhases(timings);
    report.setMetrics(reg);

    JsonValue parsed = JsonValue::parse(report.toJson().dump(2));
    EXPECT_EQ(parsed.at("schema").asString(), RunReport::kSchemaName);
    EXPECT_DOUBLE_EQ(parsed.at("version").asNumber(),
                     RunReport::kSchemaVersion);
    EXPECT_EQ(parsed.at("kind").asString(), "experiment");
    EXPECT_EQ(parsed.at("name").asString(), "unit");
    EXPECT_EQ(parsed.at("timestamp").asString(), "2026-01-02T03:04:05Z");
    EXPECT_DOUBLE_EQ(parsed.at("config").at("threads").asNumber(), 4.0);
    const JsonValue &t = parsed.at("results").at(0);
    EXPECT_EQ(t.at("title").asString(), "t");
    EXPECT_EQ(t.at("metric").asString(), "MPKI");
    EXPECT_EQ(t.at("columns").at(1).asString(), "GIPPR");
    EXPECT_EQ(t.at("rows").at(1).at("workload").asString(), "w1");
    EXPECT_DOUBLE_EQ(t.at("rows").at(0).at("values").at(1).asNumber(),
                     1.25);
    EXPECT_EQ(parsed.at("phases").at(0).at("name").asString(), "replay");
#ifndef GIPPR_DISABLE_TELEMETRY
    EXPECT_DOUBLE_EQ(parsed.at("metrics").at("llc.LRU.hits").asNumber(),
                     10.0);
#endif
}

TEST(RunReport, WriteFileRoundTrip)
{
    RunReport report = makeReport();
    std::string path = ::testing::TempDir() + "gippr_report.json";
    report.writeFile(path);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(JsonValue::parse(text).dump(0),
              report.toJson().dump(0));
}

/**
 * Golden-schema lock: this is the exact serialized form of version 1.
 * If this test fails, the artifact format changed — either revert the
 * change or bump RunReport::kSchemaVersion and update this golden
 * (downstream artifact consumers key off the version field).
 */
TEST(RunReport, GoldenSchemaV1)
{
    const char *golden = "{"
                         "\"schema\":\"gippr-run-report\","
                         "\"version\":1,"
                         "\"kind\":\"experiment\","
                         "\"name\":\"unit\","
                         "\"timestamp\":\"2026-01-02T03:04:05Z\","
                         "\"config\":{\"threads\":4,\"policy\":\"LRU\"},"
                         "\"results\":[{"
                         "\"title\":\"t\","
                         "\"metric\":\"MPKI\","
                         "\"columns\":[\"LRU\",\"GIPPR\"],"
                         "\"rows\":["
                         "{\"workload\":\"w0\",\"values\":[1.5,1.25]},"
                         "{\"workload\":\"w1\",\"values\":[2,1]}"
                         "]}],"
                         "\"phases\":[],"
                         "\"metrics\":{}"
                         "}";
    EXPECT_EQ(makeReport().toJson().dump(0), golden);
}

TEST(RunReport, TimestampStampedWhenUnset)
{
    RunReport report("bench", "b");
    std::string ts = report.toJson().at("timestamp").asString();
    // "YYYY-MM-DDTHH:MM:SSZ"
    ASSERT_EQ(ts.size(), 20u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts.back(), 'Z');
}

// -------------------------------------------------------------- progress

TEST(Progress, StreamSinkFormatsLine)
{
    std::string path = ::testing::TempDir() + "gippr_progress.txt";
    std::FILE *f = std::fopen(path.c_str(), "w+b");
    ASSERT_NE(f, nullptr);
    telemetry::StreamProgressSink sink(f);
    sink.onProgress({"evolve", 3, 12, 1.0421, 2.31});
    std::fflush(f);
    std::rewind(f);
    char buf[256] = {0};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    std::remove(path.c_str());
    std::string line(buf);
    EXPECT_NE(line.find("evolve"), std::string::npos);
    EXPECT_NE(line.find("3/12"), std::string::npos);
    EXPECT_NE(line.find("1.0421"), std::string::npos);
}

// -------------------------------------------------- trace reader hardening

/** Write @p bytes to a temp file and return its path. */
std::string
writeBytes(const std::string &name, const std::string &bytes)
{
    std::string path = ::testing::TempDir() + name;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!bytes.empty()) {
        EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
    return path;
}

/** A valid serialized trace with @p records records. */
std::string
validTraceBytes(uint64_t records)
{
    Trace t;
    for (uint64_t i = 0; i < records; ++i)
        t.append({1, 0x1000 + 64 * i, 0x400000, false});
    // Unique per test: ctest runs each discovered test as its own
    // process in parallel, and a shared scratch name races (one
    // process removes the file while another is reading it back).
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string path = ::testing::TempDir() + "gippr_valid_" +
                       info->name() + ".gptr";
    writeTrace(t, path);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    return bytes;
}

TEST(TraceIo, RoundTripStillWorks)
{
    std::string path =
        writeBytes("gippr_roundtrip.gptr", validTraceBytes(3));
    Trace t = readTrace(path);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.records()[2].addr, 0x1000u + 128u);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedHeaderRejected)
{
    std::string bytes = validTraceBytes(1).substr(0, 10);
    std::string path = writeBytes("gippr_trunc_header.gptr", bytes);
    try {
        readTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordsRejected)
{
    std::string bytes = validTraceBytes(4);
    bytes.resize(bytes.size() - 5); // chop into the last record
    std::string path = writeBytes("gippr_trunc_records.gptr", bytes);
    try {
        readTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("truncated"), std::string::npos);
        EXPECT_NE(msg.find("4 records"), std::string::npos);
        EXPECT_NE(msg.find(path), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, OverflowingRecordCountRejected)
{
    std::string bytes = validTraceBytes(1);
    // Overwrite the u64 record count (bytes 8..15) with UINT64_MAX,
    // which would overflow any expected-size computation.
    for (size_t i = 8; i < 16; ++i)
        bytes[i] = static_cast<char>(0xff);
    std::string path = writeBytes("gippr_overflow.gptr", bytes);
    try {
        readTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("overflows"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, TrailingGarbageRejected)
{
    std::string bytes = validTraceBytes(2) + "garbage";
    std::string path = writeBytes("gippr_trailing.gptr", bytes);
    try {
        readTrace(path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("trailing"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, BadMagicRejected)
{
    std::string bytes = validTraceBytes(1);
    bytes[0] = 'X';
    std::string path = writeBytes("gippr_magic.gptr", bytes);
    EXPECT_THROW(readTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace gippr
