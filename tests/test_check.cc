/**
 * @file
 * Tests for the GIPPR_CHECK / GIPPR_DCHECK invariant macros.
 *
 * Forces the checks on regardless of the build type so the death
 * tests are meaningful even in NDEBUG (RelWithDebInfo/Release) CI
 * configurations.
 */

#define GIPPR_FORCE_CHECKS 1
#include "util/check.hh"

#include <gtest/gtest.h>

namespace gippr
{
namespace
{

TEST(Check, EnabledUnderForceFlag)
{
    EXPECT_EQ(GIPPR_CHECKS_ENABLED, 1);
}

TEST(Check, PassingCheckIsSilent)
{
    GIPPR_CHECK(1 + 1 == 2);
    GIPPR_DCHECK(true);
    SUCCEED();
}

TEST(Check, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    auto touch = [&]() {
        ++calls;
        return true;
    };
    GIPPR_CHECK(touch());
    EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, FailingCheckPanics)
{
    EXPECT_DEATH(GIPPR_CHECK(2 + 2 == 5),
                 "GIPPR_CHECK failed at .*test_check.cc.*2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailingDcheckPanics)
{
    const unsigned ways = 4;
    EXPECT_DEATH(GIPPR_DCHECK(ways > 8),
                 "GIPPR_DCHECK failed at .*ways > 8");
}

TEST(Check, UsableInConstexprAdjacentContexts)
{
    // The macros must be statements usable wherever a call is; the
    // classic pitfall is an unbraced if/else swallowing the macro.
    if (true)
        GIPPR_CHECK(true);
    else
        GIPPR_CHECK(false);
    SUCCEED();
}

} // namespace
} // namespace gippr
