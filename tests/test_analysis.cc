/**
 * @file
 * Tests for the stack-distance profiler and trace profiles.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "trace/analysis.hh"
#include "util/rng.hh"
#include "workloads/generators.hh"

namespace gippr
{
namespace
{

constexpr uint64_t kCold = StackDistanceProfiler::kCold;

TEST(StackDistance, FirstTouchIsCold)
{
    StackDistanceProfiler p;
    EXPECT_EQ(p.access(10), kCold);
    EXPECT_EQ(p.access(20), kCold);
    EXPECT_EQ(p.distinctBlocks(), 2u);
}

TEST(StackDistance, ImmediateReuseIsZero)
{
    StackDistanceProfiler p;
    p.access(5);
    EXPECT_EQ(p.access(5), 0u);
}

TEST(StackDistance, CountsDistinctIntervening)
{
    StackDistanceProfiler p;
    p.access(1);
    p.access(2);
    p.access(3);
    // One distinct block (2, 3) touched since 1... two blocks.
    EXPECT_EQ(p.access(1), 2u);
}

TEST(StackDistance, DuplicatesDoNotInflateDistance)
{
    StackDistanceProfiler p;
    p.access(1);
    p.access(2);
    p.access(2);
    p.access(2);
    // Only one distinct block since the last access to 1.
    EXPECT_EQ(p.access(1), 1u);
}

TEST(StackDistance, ClassicSequence)
{
    // a b c b a: distance(b)=1? No: a b c, then b -> distinct {c} = 1,
    // then a -> distinct {b, c} = 2.
    StackDistanceProfiler p;
    EXPECT_EQ(p.access('a'), kCold);
    EXPECT_EQ(p.access('b'), kCold);
    EXPECT_EQ(p.access('c'), kCold);
    EXPECT_EQ(p.access('b'), 1u);
    EXPECT_EQ(p.access('a'), 2u);
}

TEST(StackDistance, MatchesNaiveReferenceImplementation)
{
    // Property test against an O(n) list-based LRU stack.
    StackDistanceProfiler fast;
    std::list<uint64_t> stack; // front = most recent
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where;
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        uint64_t block = rng.nextBounded(300);
        uint64_t expect;
        auto it = where.find(block);
        if (it == where.end()) {
            expect = kCold;
        } else {
            expect = 0;
            for (auto pos = stack.begin(); pos != it->second; ++pos)
                ++expect;
            stack.erase(it->second);
        }
        stack.push_front(block);
        where[block] = stack.begin();
        ASSERT_EQ(fast.access(block), expect) << "access " << i;
    }
}

TEST(TraceProfile, LoopProfileIsExact)
{
    // A loop over W blocks has every non-cold access at distance W-1.
    GenParams gp;
    gp.writeFrac = 0.0;
    LoopGenerator gen(gp, 32);
    Rng rng(3);
    Trace t = generateTrace(gen, 32 * 10, rng);
    TraceProfile prof = profileTrace(t, 64, 1024);
    EXPECT_EQ(prof.coldAccesses, 32u);
    EXPECT_EQ(prof.footprint, 32u);
    EXPECT_EQ(prof.stackDistance.bucket(31), 32u * 9);
}

TEST(TraceProfile, LruHitRateFromProfile)
{
    GenParams gp;
    gp.writeFrac = 0.0;
    LoopGenerator gen(gp, 32);
    Rng rng(4);
    Trace t = generateTrace(gen, 3200, rng);
    TraceProfile prof = profileTrace(t, 64, 1024);
    // Capacity 32 holds the loop: everything but cold hits.
    EXPECT_NEAR(prof.lruHitRate(32), 1.0 - 32.0 / 3200.0, 1e-9);
    // Capacity 31 < loop: LRU gets zero hits.
    EXPECT_DOUBLE_EQ(prof.lruHitRate(31), 0.0);
}

TEST(TraceProfile, StreamIsAllCold)
{
    GenParams gp;
    StreamGenerator gen(gp, 1, 1 << 30);
    Rng rng(5);
    Trace t = generateTrace(gen, 2000, rng);
    TraceProfile prof = profileTrace(t, 64, 1024);
    EXPECT_EQ(prof.coldAccesses, 2000u);
    EXPECT_EQ(prof.footprint, 2000u);
}

TEST(TraceProfile, MissRateCurveMonotone)
{
    GenParams gp;
    ZipfGenerator gen(gp, 4096, 0.9, 11);
    Rng rng(6);
    Trace t = generateTrace(gen, 20000, rng);
    TraceProfile prof = profileTrace(t, 64, 1 << 16);
    std::vector<uint64_t> caps = {16, 64, 256, 1024, 4096};
    std::vector<double> curve = missRateCurve(prof, caps);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i], curve[i - 1] + 1e-12) << i;
}

TEST(TraceProfile, BlockGranularityMerges)
{
    Trace t;
    for (int i = 0; i < 10; ++i) {
        MemRecord r;
        r.addr = static_cast<uint64_t>(i) * 7; // 0..63: one 64B block
        t.append(r);
    }
    TraceProfile prof = profileTrace(t, 64, 64);
    EXPECT_EQ(prof.footprint, 1u);
    EXPECT_EQ(prof.coldAccesses, 1u);
    EXPECT_EQ(prof.stackDistance.bucket(0), 9u);
}

} // namespace
} // namespace gippr
