/**
 * @file
 * Checkpoint/resume tests for the search drivers: a run interrupted
 * at a boundary and resumed from its checkpoint must be bit-identical
 * to an uninterrupted run, and damaged or mismatched checkpoints must
 * be rejected with a clear error instead of crashing or silently
 * restarting.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "ga/crossval.hh"
#include "ga/genetic.hh"
#include "ga/hill_climb.hh"
#include "ga/random_search.hh"
#include "robust/atomic_io.hh"

namespace gippr
{
namespace
{

namespace fs = std::filesystem;

CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 32 * 16 * 64; // 32 sets, 512 blocks
    return c;
}

Trace
loopTrace(uint64_t blocks, int reps, uint64_t base = 0)
{
    Trace t;
    for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t b = 0; b < blocks; ++b) {
            MemRecord r;
            r.addr = (base + b) * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
        }
    }
    return t;
}

FitnessEvaluator
makeEvaluator(uint64_t blocks = 640)
{
    std::vector<FitnessTrace> traces;
    FitnessTrace thrash;
    thrash.name = "thrash/0";
    thrash.llcTrace = std::make_shared<Trace>(loopTrace(blocks, 20));
    thrash.instructions = thrash.llcTrace->instructions();
    traces.push_back(thrash);
    return FitnessEvaluator(llcCfg(), std::move(traces), {});
}

std::string
ckptPath(const std::string &leaf)
{
    const std::string path = testing::TempDir() + "gippr_" + leaf;
    fs::remove(path);
    return path;
}

GaParams
smallGa(uint64_t seed = 31)
{
    GaParams params;
    params.initialPopulation = 12;
    params.population = 8;
    params.generations = 6;
    params.threads = 1;
    params.seed = seed;
    return params;
}

void
expectSameGaResult(const GaResult &a, const GaResult &b)
{
    EXPECT_TRUE(a.best == b.best);
    EXPECT_EQ(a.bestFitness, b.bestFitness); // bit-exact, not approx
    ASSERT_EQ(a.history.size(), b.history.size());
    for (size_t i = 0; i < a.history.size(); ++i)
        EXPECT_EQ(a.history[i], b.history[i]);
    ASSERT_EQ(a.finalPopulation.size(), b.finalPopulation.size());
    for (size_t i = 0; i < a.finalPopulation.size(); ++i) {
        EXPECT_TRUE(a.finalPopulation[i].ipv ==
                    b.finalPopulation[i].ipv);
        EXPECT_EQ(a.finalPopulation[i].fitness,
                  b.finalPopulation[i].fitness);
    }
}

TEST(GaCheckpoint, InterruptedResumeIsBitIdentical)
{
    FitnessEvaluator fe = makeEvaluator();
    const GaResult baseline =
        evolveIpv(fe, IpvFamily::Gippr, smallGa());

    const std::string path = ckptPath("ga_resume.gpck");
    GaParams killed = smallGa();
    killed.checkpoint.path = path;
    unsigned polls = 0;
    killed.checkpoint.stopHook = [&]() { return ++polls > 3; };
    const GaResult partial = evolveIpv(fe, IpvFamily::Gippr, killed);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.history.size(), baseline.history.size());
    ASSERT_TRUE(robust::checkpointExists(path));

    GaParams resumed_params = smallGa();
    resumed_params.checkpoint.path = path;
    resumed_params.checkpoint.resume = true;
    const GaResult resumed =
        evolveIpv(fe, IpvFamily::Gippr, resumed_params);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GT(resumed.resumedGenerations, 0u);
    expectSameGaResult(resumed, baseline);
}

TEST(GaCheckpoint, ResumingCompletedRunReproducesIt)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("ga_complete.gpck");
    GaParams params = smallGa();
    params.checkpoint.path = path;
    const GaResult first = evolveIpv(fe, IpvFamily::Gippr, params);
    EXPECT_FALSE(first.interrupted);

    params.checkpoint.resume = true;
    const GaResult again = evolveIpv(fe, IpvFamily::Gippr, params);
    EXPECT_EQ(again.resumedGenerations, params.generations);
    expectSameGaResult(again, first);
}

TEST(GaCheckpoint, DifferentConfigRejected)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("ga_config.gpck");
    GaParams params = smallGa(31);
    params.checkpoint.path = path;
    unsigned polls = 0;
    params.checkpoint.stopHook = [&]() { return ++polls > 2; };
    (void)evolveIpv(fe, IpvFamily::Gippr, params);

    GaParams other = smallGa(32); // different seed
    other.checkpoint.path = path;
    other.checkpoint.resume = true;
    EXPECT_THROW((void)evolveIpv(fe, IpvFamily::Gippr, other),
                 std::runtime_error);
}

TEST(GaCheckpoint, DifferentSuiteRejected)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("ga_suite.gpck");
    GaParams params = smallGa();
    params.checkpoint.path = path;
    unsigned polls = 0;
    params.checkpoint.stopHook = [&]() { return ++polls > 2; };
    (void)evolveIpv(fe, IpvFamily::Gippr, params);

    FitnessEvaluator other = makeEvaluator(512); // different traces
    GaParams resume = smallGa();
    resume.checkpoint.path = path;
    resume.checkpoint.resume = true;
    EXPECT_THROW((void)evolveIpv(other, IpvFamily::Gippr, resume),
                 std::runtime_error);
}

TEST(GaCheckpoint, CorruptAndTruncatedFilesRejected)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("ga_corrupt.gpck");
    GaParams params = smallGa();
    params.checkpoint.path = path;
    unsigned polls = 0;
    params.checkpoint.stopHook = [&]() { return ++polls > 2; };
    (void)evolveIpv(fe, IpvFamily::Gippr, params);

    const std::string good = robust::readFileBytes(path);
    GaParams resume = smallGa();
    resume.checkpoint.path = path;
    resume.checkpoint.resume = true;

    std::string corrupt = good;
    corrupt[corrupt.size() / 2] =
        static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
    robust::writeFileAtomic(path, corrupt);
    EXPECT_THROW((void)evolveIpv(fe, IpvFamily::Gippr, resume),
                 std::runtime_error);

    robust::writeFileAtomic(path, good.substr(0, good.size() / 2));
    EXPECT_THROW((void)evolveIpv(fe, IpvFamily::Gippr, resume),
                 std::runtime_error);

    // The intact checkpoint still resumes after the bad ones.
    robust::writeFileAtomic(path, good);
    const GaResult ok = evolveIpv(fe, IpvFamily::Gippr, resume);
    EXPECT_GT(ok.resumedGenerations, 0u);
}

TEST(GaCheckpoint, WrongKindRejected)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("ga_kind.gpck");
    GaParams params = smallGa();
    params.checkpoint.path = path;
    unsigned polls = 0;
    params.checkpoint.stopHook = [&]() { return ++polls > 2; };
    (void)evolveIpv(fe, IpvFamily::Gippr, params);

    // A GA checkpoint fed to the hill climber is a kind mismatch.
    robust::CheckpointOptions hc;
    hc.path = path;
    hc.resume = true;
    EXPECT_THROW((void)hillClimb(fe, IpvFamily::Gippr, Ipv::lru(16),
                                 200, hc),
                 std::runtime_error);
}

TEST(RandomSearchCheckpoint, InterruptedResumeIsBitIdentical)
{
    FitnessEvaluator fe = makeEvaluator();
    const size_t count = 100; // > one 64-sample chunk
    const auto baseline =
        randomSearch(fe, IpvFamily::Gippr, count, 7, 1);

    const std::string path = ckptPath("rs_resume.gpck");
    robust::CheckpointOptions ckpt;
    ckpt.path = path;
    unsigned polls = 0;
    ckpt.stopHook = [&]() { return ++polls > 1; };
    EXPECT_THROW((void)randomSearch(fe, IpvFamily::Gippr, count, 7, 1,
                                    ckpt),
                 robust::Interrupted);
    ASSERT_TRUE(robust::checkpointExists(path));

    robust::CheckpointOptions resume;
    resume.path = path;
    resume.resume = true;
    const auto resumed =
        randomSearch(fe, IpvFamily::Gippr, count, 7, 1, resume);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (size_t i = 0; i < resumed.size(); ++i) {
        EXPECT_TRUE(resumed[i].ipv == baseline[i].ipv);
        EXPECT_EQ(resumed[i].fitness, baseline[i].fitness);
    }
}

TEST(RandomSearchCheckpoint, DifferentCountRejected)
{
    FitnessEvaluator fe = makeEvaluator();
    const std::string path = ckptPath("rs_count.gpck");
    robust::CheckpointOptions ckpt;
    ckpt.path = path;
    unsigned polls = 0;
    ckpt.stopHook = [&]() { return ++polls > 1; };
    EXPECT_THROW((void)randomSearch(fe, IpvFamily::Gippr, 100, 7, 1,
                                    ckpt),
                 robust::Interrupted);

    robust::CheckpointOptions resume;
    resume.path = path;
    resume.resume = true;
    EXPECT_THROW((void)randomSearch(fe, IpvFamily::Gippr, 80, 7, 1,
                                    resume),
                 std::runtime_error);
}

TEST(HillClimbCheckpoint, InterruptedResumeIsBitIdentical)
{
    FitnessEvaluator fe = makeEvaluator();
    const Ipv start = Ipv::lru(16);
    const HillClimbResult baseline =
        hillClimb(fe, IpvFamily::Gippr, start, 2000);

    const std::string path = ckptPath("hc_resume.gpck");
    robust::CheckpointOptions ckpt;
    ckpt.path = path;
    unsigned polls = 0;
    // The second boundary poll happens as soon as one move is
    // accepted, which the thrash fitness guarantees.
    ckpt.stopHook = [&]() { return ++polls > 1; };
    const HillClimbResult partial =
        hillClimb(fe, IpvFamily::Gippr, start, 2000, ckpt);
    EXPECT_TRUE(partial.interrupted);
    ASSERT_TRUE(robust::checkpointExists(path));

    robust::CheckpointOptions resume;
    resume.path = path;
    resume.resume = true;
    const HillClimbResult resumed =
        hillClimb(fe, IpvFamily::Gippr, start, 2000, resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_TRUE(resumed.best == baseline.best);
    EXPECT_EQ(resumed.bestFitness, baseline.bestFitness);
    EXPECT_EQ(resumed.evaluations, baseline.evaluations);
    EXPECT_EQ(resumed.steps, baseline.steps);
}

TEST(Wn1Checkpoint, InterruptedResumeIsBitIdentical)
{
    const auto makeWorkloads = []() {
        std::vector<WorkloadTraces> workloads;
        for (int w = 0; w < 2; ++w) {
            WorkloadTraces wt;
            wt.name = "wl" + std::to_string(w);
            FitnessTrace ft;
            ft.name = wt.name + "/0";
            ft.llcTrace = std::make_shared<Trace>(
                loopTrace(w == 0 ? 640 : 200, 12,
                          static_cast<uint64_t>(w) * 100000));
            ft.instructions = ft.llcTrace->instructions();
            wt.traces.push_back(std::move(ft));
            workloads.push_back(std::move(wt));
        }
        return workloads;
    };

    GaParams params;
    params.initialPopulation = 10;
    params.population = 8;
    params.generations = 3;
    params.threads = 1;
    params.seed = 5;
    const Wn1Vectors baseline = evolveWn1(
        llcCfg(), makeWorkloads(), IpvFamily::Gippr, 2, params);

    const std::string path = ckptPath("wn1_resume.gpck");
    fs::remove(path + ".fold-wl0");
    fs::remove(path + ".fold-wl1");
    GaParams killed = params;
    killed.checkpoint.path = path;
    unsigned polls = 0;
    // Interrupt inside the second fold's GA (each fold polls several
    // times: once at the fold boundary, once per generation).
    killed.checkpoint.stopHook = [&]() { return ++polls > 7; };
    EXPECT_THROW((void)evolveWn1(llcCfg(), makeWorkloads(),
                                 IpvFamily::Gippr, 2, killed),
                 robust::Interrupted);

    GaParams resumed_params = params;
    resumed_params.checkpoint.path = path;
    resumed_params.checkpoint.resume = true;
    const Wn1Vectors resumed = evolveWn1(
        llcCfg(), makeWorkloads(), IpvFamily::Gippr, 2, resumed_params);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (const auto &[name, vectors] : baseline) {
        const auto it = resumed.find(name);
        ASSERT_NE(it, resumed.end());
        ASSERT_EQ(it->second.size(), vectors.size());
        for (size_t i = 0; i < vectors.size(); ++i)
            EXPECT_TRUE(it->second[i] == vectors[i]);
    }
}

} // namespace
} // namespace gippr
