/**
 * @file
 * Tests for the three-level hierarchy and LLC trace filtering.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/hierarchy.hh"
#include "policies/lru.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

PolicyFactory
lruF()
{
    return [](const CacheConfig &cfg) {
        return std::unique_ptr<ReplacementPolicy>(
            std::make_unique<LruPolicy>(cfg));
    };
}

HierarchyConfig
tinyHier()
{
    HierarchyConfig h;
    h.l1 = {"L1", 4 * 2 * 64, 2, 64};    // 4 sets x 2 ways
    h.l2 = {"L2", 16 * 4 * 64, 4, 64};   // 16 sets x 4 ways
    h.llc = {"LLC", 64 * 8 * 64, 8, 64}; // 64 sets x 8 ways
    return h;
}

TEST(Hierarchy, FirstAccessMissesEverywhere)
{
    Hierarchy h(tinyHier(), lruF(), lruF(), lruF());
    EXPECT_EQ(h.access(0x1000, false), HitLevel::Memory);
    EXPECT_EQ(h.l1().stats().misses, 1u);
    EXPECT_EQ(h.l2().stats().misses, 1u);
    EXPECT_EQ(h.llc().stats().misses, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    Hierarchy h(tinyHier(), lruF(), lruF(), lruF());
    h.access(0x1000, false);
    EXPECT_EQ(h.access(0x1000, false), HitLevel::L1);
    EXPECT_EQ(h.l2().stats().accesses, 1u);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    HierarchyConfig cfg = tinyHier();
    Hierarchy h(cfg, lruF(), lruF(), lruF());
    // Three blocks mapping to L1 set 0 (L1 has 4 sets): strides of
    // 4*64 = 256 bytes.
    h.access(0x0000, false);
    h.access(0x0100, false);
    h.access(0x0200, false); // evicts 0x0000 from L1
    EXPECT_EQ(h.access(0x0000, false), HitLevel::L2);
}

TEST(Hierarchy, DirtyL1VictimWritesBackToL2)
{
    Hierarchy h(tinyHier(), lruF(), lruF(), lruF());
    h.access(0x0000, true); // dirty in L1
    h.access(0x0100, false);
    h.access(0x0200, false); // evicts dirty 0x0000 -> L2 writeback
    // L2 saw: three demand misses + one writeback access.
    EXPECT_EQ(h.l2().stats().accesses, 4u);
    EXPECT_EQ(h.l2().stats().demandAccesses, 3u);
}

TEST(Hierarchy, ClearStatsZeroesAllLevels)
{
    Hierarchy h(tinyHier(), lruF(), lruF(), lruF());
    h.access(0x1000, false);
    h.clearStats();
    EXPECT_EQ(h.l1().stats().accesses, 0u);
    EXPECT_EQ(h.l2().stats().accesses, 0u);
    EXPECT_EQ(h.llc().stats().accesses, 0u);
}

Trace
sequentialTrace(size_t blocks, uint32_t gap = 10)
{
    Trace t;
    for (size_t i = 0; i < blocks; ++i) {
        MemRecord r;
        r.addr = i * 64;
        r.pc = 0x400000 + i % 4;
        r.instGap = gap;
        t.append(r);
    }
    return t;
}

TEST(HierarchyFilter, ColdStreamPassesThrough)
{
    // Every block distinct: every reference reaches the LLC.
    Trace cpu = sequentialTrace(100);
    Trace llc = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    EXPECT_EQ(llc.size(), 100u);
}

TEST(HierarchyFilter, L1HitsAreFiltered)
{
    // Same block over and over: only the first reference reaches LLC.
    Trace cpu;
    for (int i = 0; i < 50; ++i) {
        MemRecord r;
        r.addr = 0x1000;
        r.pc = 0x400000;
        r.instGap = 2;
        cpu.append(r);
    }
    Trace llc = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    EXPECT_EQ(llc.size(), 1u);
}

TEST(HierarchyFilter, InstructionGapsAccumulate)
{
    // Filtered records carry the instruction gaps of the references
    // they absorbed, so instruction totals are preserved up to the
    // trailing references after the last LLC access.
    Trace cpu = sequentialTrace(100, 7);
    Trace llc = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    EXPECT_EQ(llc.instructions(), cpu.instructions());
}

TEST(HierarchyFilter, SmallLoopGeneratesNoSteadyLlcTraffic)
{
    // A loop that fits in the L1 only touches the LLC during warmup.
    Trace cpu;
    for (int rep = 0; rep < 20; ++rep) {
        for (int b = 0; b < 4; ++b) {
            MemRecord r;
            r.addr = static_cast<uint64_t>(b) * 64 * 4; // 4 L1 sets
            r.pc = 0x400000;
            r.instGap = 1;
            cpu.append(r);
        }
    }
    Trace llc = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    EXPECT_EQ(llc.size(), 4u);
}

TEST(HierarchyFilter, WritebacksAppearAsPcZeroWrites)
{
    HierarchyConfig cfg = tinyHier();
    // Dirty a lot of distinct blocks so L2 eventually evicts dirty
    // lines into the LLC stream.
    Trace cpu;
    for (int i = 0; i < 200; ++i) {
        MemRecord r;
        r.addr = static_cast<uint64_t>(i) * 64;
        r.pc = 0x400000;
        r.isWrite = true;
        r.instGap = 1;
        cpu.append(r);
    }
    Trace llc = Hierarchy::filterToLlc(cpu, cfg, lruF(), lruF());
    bool saw_writeback = false;
    for (const auto &r : llc)
        if (r.pc == 0 && r.isWrite)
            saw_writeback = true;
    EXPECT_TRUE(saw_writeback);
}

TEST(HierarchyInclusive, InvariantHoldsUnderChurn)
{
    // Property: in inclusive mode, every block resident in the L1 or
    // L2 must also be resident in the LLC, at every point of a
    // churning workload whose footprint exceeds the LLC.
    HierarchyConfig cfg = tinyHier();
    cfg.inclusiveLlc = true;
    Hierarchy h(cfg, lruF(), lruF(), lruF());
    Rng rng(314);
    auto check_inclusion = [&]() {
        for (auto *upper : {&h.l1(), &h.l2()}) {
            const CacheConfig &ucfg = upper->config();
            for (uint64_t s = 0; s < ucfg.sets(); ++s) {
                for (unsigned w = 0; w < ucfg.assoc; ++w) {
                    auto blk = upper->blockAt(s, w);
                    if (blk) {
                        ASSERT_TRUE(h.llc().probe(
                            *blk << ucfg.blockShift()))
                            << ucfg.name << " set " << s;
                    }
                }
            }
        }
    };
    for (int i = 0; i < 5000; ++i) {
        h.access(rng.nextBounded(2048) * 64, rng.nextBool(0.3));
        if (i % 500 == 0)
            check_inclusion();
    }
    check_inclusion();
}

TEST(HierarchyInclusive, BackInvalidationCausesUpperMiss)
{
    // Force an LLC eviction of a block that is L1-resident and check
    // the next access to it misses all the way down.
    HierarchyConfig cfg = tinyHier();
    cfg.inclusiveLlc = true;
    Hierarchy h(cfg, lruF(), lruF(), lruF());
    // Fill one LLC set (8 ways; LLC has 64 sets).  Victim will be the
    // first block.
    uint64_t stride = 64ull * 64; // same LLC set, different tags
    for (uint64_t t = 0; t < 8; ++t)
        h.access(t * stride, false);
    // Block 0 is L1-resident? It may have been evicted from tiny L1;
    // re-touch to make it resident everywhere, then push LLC to evict
    // a different known victim... simpler: touch block 0, then insert
    // 8 new tags so block 0 is eventually the LLC victim, and verify
    // it then misses in L1 (back-invalidated) rather than hitting.
    h.access(0, false);
    EXPECT_EQ(h.access(0, false), HitLevel::L1);
    for (uint64_t t = 8; t < 17; ++t)
        h.access(t * stride, false);
    EXPECT_FALSE(h.llc().probe(0));
    EXPECT_NE(h.access(0, false), HitLevel::L1);
}

TEST(HierarchyInclusive, NonInclusiveAllowsUpperOnlyResidency)
{
    // Sanity contrast: without inclusion, a block evicted from the
    // LLC can remain resident above.  Geometry with more L1 sets than
    // LLC sets so same-LLC-set blocks land in distinct L1 sets.
    HierarchyConfig cfg;
    cfg.l1 = {"L1", 32 * 2 * 64, 2, 64}; // 32 sets x 2 ways
    cfg.l2 = {"L2", 32 * 4 * 64, 4, 64}; // 32 sets x 4 ways
    cfg.llc = {"LLC", 8 * 4 * 64, 4, 64}; // 8 sets x 4 ways
    cfg.inclusiveLlc = false;
    Hierarchy h(cfg, lruF(), lruF(), lruF());
    h.access(0, false); // block 0: LLC set 0, L1 set 0
    // Five more blocks in LLC set 0 but other L1 sets: evict block 0
    // from the 4-way LLC set while it stays in the L1.
    for (uint64_t b : {8u, 16u, 24u, 40u, 48u})
        h.access(b * 64, false);
    EXPECT_FALSE(h.llc().probe(0));
    EXPECT_TRUE(h.l1().probe(0));
    EXPECT_EQ(h.access(0, false), HitLevel::L1);

    // The same sequence under inclusion back-invalidates block 0.
    cfg.inclusiveLlc = true;
    Hierarchy hi(cfg, lruF(), lruF(), lruF());
    hi.access(0, false);
    for (uint64_t b : {8u, 16u, 24u, 40u, 48u})
        hi.access(b * 64, false);
    EXPECT_FALSE(hi.llc().probe(0));
    EXPECT_FALSE(hi.l1().probe(0));
}

TEST(HierarchyFilter, DeterministicForSameInput)
{
    Trace cpu = sequentialTrace(500);
    Trace a = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    Trace b = Hierarchy::filterToLlc(cpu, tinyHier(), lruF(), lruF());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i] == b[i]) << i;
}

} // namespace
} // namespace gippr
