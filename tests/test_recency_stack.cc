/**
 * @file
 * Tests for the generalized recency stack (IPV move semantics).
 */

#include <gtest/gtest.h>

#include "policies/recency_stack.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

TEST(RecencyStack, StartsAsIdentity)
{
    RecencyStack s(4);
    for (unsigned w = 0; w < 4; ++w) {
        EXPECT_EQ(s.position(w), w);
        EXPECT_EQ(s.wayAt(w), w);
    }
    EXPECT_TRUE(s.isPermutation());
}

TEST(RecencyStack, MoveToMruShiftsOthersDown)
{
    RecencyStack s(4);
    // Way 2 (position 2) moves to MRU: positions 0,1 shift down.
    s.moveTo(2, 0);
    EXPECT_EQ(s.position(2), 0u);
    EXPECT_EQ(s.position(0), 1u);
    EXPECT_EQ(s.position(1), 2u);
    EXPECT_EQ(s.position(3), 3u); // below the move, untouched
}

TEST(RecencyStack, MoveDownShiftsOthersUp)
{
    RecencyStack s(4);
    // Way 0 (position 0) moves to position 3: 1..3 shift up.
    s.moveTo(0, 3);
    EXPECT_EQ(s.position(0), 3u);
    EXPECT_EQ(s.position(1), 0u);
    EXPECT_EQ(s.position(2), 1u);
    EXPECT_EQ(s.position(3), 2u);
}

TEST(RecencyStack, MoveToSamePositionIsNoop)
{
    RecencyStack s(8);
    s.moveTo(3, 3);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(s.position(w), w);
}

TEST(RecencyStack, PartialMoveOnlyShiftsRange)
{
    RecencyStack s(8);
    // Way 5 (pos 5) to pos 2: positions 2,3,4 shift down; 0,1,6,7 stay.
    s.moveTo(5, 2);
    EXPECT_EQ(s.position(5), 2u);
    EXPECT_EQ(s.position(0), 0u);
    EXPECT_EQ(s.position(1), 1u);
    EXPECT_EQ(s.position(2), 3u);
    EXPECT_EQ(s.position(3), 4u);
    EXPECT_EQ(s.position(4), 5u);
    EXPECT_EQ(s.position(6), 6u);
    EXPECT_EQ(s.position(7), 7u);
}

TEST(RecencyStack, LruWayTracksBottom)
{
    RecencyStack s(4);
    EXPECT_EQ(s.lruWay(), 3u);
    s.moveTo(3, 0);
    EXPECT_EQ(s.lruWay(), 2u);
}

TEST(RecencyStack, LruSequenceMatchesClassicBehaviour)
{
    // Simulate accesses under plain LRU (always move to 0) and check
    // the eviction order is reference order.
    RecencyStack s(3);
    s.moveTo(0, 0);
    s.moveTo(1, 0);
    s.moveTo(2, 0);
    EXPECT_EQ(s.lruWay(), 0u);
    s.moveTo(0, 0); // touch 0 again
    EXPECT_EQ(s.lruWay(), 1u);
}

class RecencyStackRandomMoves
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RecencyStackRandomMoves, PermutationInvariantHolds)
{
    const unsigned ways = GetParam();
    RecencyStack s(ways);
    Rng rng(1000 + ways);
    for (int step = 0; step < 2000; ++step) {
        unsigned way = static_cast<unsigned>(rng.nextBounded(ways));
        unsigned pos = static_cast<unsigned>(rng.nextBounded(ways));
        s.moveTo(way, pos);
        ASSERT_TRUE(s.isPermutation()) << "step " << step;
        ASSERT_EQ(s.position(way), pos);
    }
}

TEST_P(RecencyStackRandomMoves, WayAtInvertsPosition)
{
    const unsigned ways = GetParam();
    RecencyStack s(ways);
    Rng rng(77 + ways);
    for (int step = 0; step < 500; ++step) {
        s.moveTo(static_cast<unsigned>(rng.nextBounded(ways)),
                 static_cast<unsigned>(rng.nextBounded(ways)));
        for (unsigned p = 0; p < ways; ++p)
            ASSERT_EQ(s.position(s.wayAt(p)), p);
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, RecencyStackRandomMoves,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u, 32u));

} // namespace
} // namespace gippr
