/**
 * @file
 * Unit and statistical tests for util/rng.hh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hh"

namespace gippr
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBoundedInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, NextBoundedOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, NextBoundedCoversAllValues)
{
    Rng rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBoundedRoughlyUniform)
{
    Rng rng(11);
    const unsigned buckets = 10;
    const int n = 100000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (unsigned b = 0; b < buckets; ++b) {
        EXPECT_NEAR(counts[b], n / buckets, n / buckets * 0.1) << b;
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoolProbability)
{
    Rng rng(23);
    int trues = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.nextBool(0.25))
            ++trues;
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.01);
}

TEST(Rng, NextBoolZeroAndOne)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(31);
    const double p = 0.2;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // Mean of failures before success = (1-p)/p = 4.
    EXPECT_NEAR(sum / n, (1 - p) / p, 0.15);
}

TEST(Rng, GeometricPOneIsZero)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(41);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(43);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    int moved = 0;
    for (int i = 0; i < 100; ++i)
        if (v[i] != i)
            ++moved;
    EXPECT_GT(moved, 50);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng a(47);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, StateRoundTripContinuesStream)
{
    // Checkpoint/resume captures the engine state mid-stream; a
    // restored Rng must produce the exact continuation.
    Rng a(73);
    for (int i = 0; i < 100; ++i)
        (void)a.next();
    const auto snapshot = a.state();
    std::vector<uint64_t> expected;
    for (int i = 0; i < 50; ++i)
        expected.push_back(a.next());

    Rng b(1); // different seed, then overwritten
    b.setState(snapshot);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(b.next(), expected[static_cast<size_t>(i)]);
}

TEST(Rng, StateOfFreshSeedMatchesReseed)
{
    // state() right after seeding equals the state a fresh Rng with
    // the same seed holds — the checkpoint never depends on history.
    Rng a(83), b(83);
    EXPECT_EQ(a.state(), b.state());
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Rng rng(53);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(59);
    ZipfSampler z(1000, 0.9);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(z.sample(rng), 1000u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(61);
    ZipfSampler z(1000, 0.99);
    const int n = 50000;
    int low = 0;
    for (int i = 0; i < n; ++i)
        if (z.sample(rng) < 10)
            ++low;
    // Under uniform sampling, ranks < 10 get ~1%; Zipf 0.99 gives far
    // more.
    EXPECT_GT(low, n / 5);
}

TEST(Zipf, HigherThetaMoreSkew)
{
    Rng rng(67);
    ZipfSampler mild(1000, 0.5), strong(1000, 1.2);
    const int n = 30000;
    int mild_low = 0, strong_low = 0;
    for (int i = 0; i < n; ++i) {
        if (mild.sample(rng) < 10)
            ++mild_low;
        if (strong.sample(rng) < 10)
            ++strong_low;
    }
    EXPECT_GT(strong_low, mild_low);
}

TEST(Zipf, SingleItemAlwaysZero)
{
    Rng rng(71);
    ZipfSampler z(1, 0.9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

} // namespace
} // namespace gippr
