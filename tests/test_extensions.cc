/**
 * @file
 * Tests for the future-work extensions: cache bypass (BypassGippr),
 * the RRIP generalization of IPVs, and the multicore shared-LLC
 * simulator.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "core/bypass_gippr.hh"
#include "core/rrip_ipv.hh"
#include "sim/multicore/system_sim.hh"
#include "sim/policy_zoo.hh"
#include "util/rng.hh"
#include "workloads/generators.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

// ---------------------------------------------------------------- bypass

TEST(CacheBypass, BypassedMissDoesNotAllocate)
{
    // Exercise the cache-side bypass plumbing with a minimal policy
    // that bypasses every demand miss.
    struct Bypasser : public ReplacementPolicy
    {
        unsigned victim(const AccessInfo &) override { return 0; }
        void onInsert(unsigned, const AccessInfo &) override {}
        void onHit(unsigned, const AccessInfo &) override {}
        bool shouldBypass(const AccessInfo &) override { return true; }
        std::string name() const override { return "Bypasser"; }
        size_t stateBitsPerSet() const override { return 0; }
    };
    CacheConfig c = cfg(4, 2);
    SetAssocCache cache(c, std::make_unique<Bypasser>());
    AccessResult r = cache.access(0x1000, AccessType::Load);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.bypassed);
    EXPECT_EQ(cache.stats().bypasses, 1u);
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_EQ(cache.validCount(c.setIndex(0x1000)), 0u);
}

TEST(CacheBypass, WritebacksNeverBypass)
{
    struct Bypasser : public ReplacementPolicy
    {
        unsigned victim(const AccessInfo &) override { return 0; }
        void onInsert(unsigned, const AccessInfo &) override {}
        void onHit(unsigned, const AccessInfo &) override {}
        bool shouldBypass(const AccessInfo &) override { return true; }
        std::string name() const override { return "Bypasser"; }
        size_t stateBitsPerSet() const override { return 0; }
    };
    CacheConfig c = cfg(4, 2);
    SetAssocCache cache(c, std::make_unique<Bypasser>());
    AccessResult r = cache.access(0x1000, AccessType::Writeback);
    EXPECT_FALSE(r.bypassed);
    EXPECT_TRUE(cache.probe(0x1000));
}

TEST(BypassGippr, RejectsMismatchedArity)
{
    CacheConfig c = cfg(64, 8);
    EXPECT_THROW(BypassGipprPolicy(c, Ipv::lru(16)),
                 std::runtime_error);
}

TEST(BypassGippr, StorageStaysAtTreeBitsPlusOnePsel)
{
    CacheConfig c = CacheConfig::paperLlc();
    BypassGipprPolicy p(c, Ipv::lru(16));
    EXPECT_EQ(p.stateBitsPerSet(), 15u);
    EXPECT_EQ(p.globalStateBits(), 11u);
}

TEST(BypassGippr, StreamConvergesToBypass)
{
    // Pure streaming: inserting never helps, bypassing avoids
    // disturbing the (empty of reuse) cache; the insert-side leader
    // sets miss exactly as often, so the duel is decided by... both
    // sides miss every access on a pure stream, so instead use a
    // hot-set + stream mix: bypass protects the hot set from
    // pollution and wins.
    CacheConfig c = cfg(64, 16); // 1024 blocks
    BypassGipprPolicy *raw;
    auto p = std::make_unique<BypassGipprPolicy>(c, Ipv::lru(16), 32,
                                                 4, 9, 7);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    Rng rng(9);
    uint64_t cold = 1 << 20;
    for (int i = 0; i < 400000; ++i) {
        // Hot block re-referenced at distance ~ 1.5x assoc within its
        // set; cold pollution in between.
        uint64_t hot = rng.nextBounded(1024);
        cache.access(hot * 64, AccessType::Load);
        cache.access((cold++) * 64, AccessType::Load);
    }
    EXPECT_TRUE(raw->followersBypass());
    EXPECT_GT(cache.stats().bypasses, 0u);
}

TEST(BypassGippr, ReuseFriendlyStaysOnInsert)
{
    // Every block re-referenced shortly after insertion: bypassing
    // forfeits those hits, so the duel must stay on the insert side.
    CacheConfig c = cfg(64, 16);
    BypassGipprPolicy *raw;
    auto p = std::make_unique<BypassGipprPolicy>(c, Ipv::lru(16), 32,
                                                 4, 9, 7);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    uint64_t b = 0;
    for (int i = 0; i < 300000; ++i) {
        cache.access(b * 64, AccessType::Load);
        if (b >= 128)
            cache.access((b - 128) * 64, AccessType::Load);
        ++b;
    }
    EXPECT_FALSE(raw->followersBypass());
}

// ------------------------------------------------------------- RRIP IPV

TEST(RripIpv, SrripVectorMatchesSrrip)
{
    // The SRRIP point of the IPV-RRIP space must reproduce SRRIP's
    // decisions exactly.
    CacheConfig c = cfg(16, 8);
    SetAssocCache a(c, std::make_unique<RripIpvPolicy>(
                           c, RripIpvPolicy::srripVector(), 2));
    SetAssocCache b(c, policyByName("SRRIP").make(c));
    Rng rng(11);
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.nextBounded(256) * 64;
        AccessResult ra = a.access(addr, AccessType::Load);
        AccessResult rb = b.access(addr, AccessType::Load);
        ASSERT_EQ(ra.hit, rb.hit) << i;
        if (ra.evictedBlock) {
            ASSERT_TRUE(rb.evictedBlock.has_value());
            ASSERT_EQ(*ra.evictedBlock, *rb.evictedBlock);
        }
    }
}

TEST(RripIpv, RejectsWrongArity)
{
    CacheConfig c = cfg(16, 8);
    // 2-bit RRPVs need 5 entries; an associativity-sized vector is
    // wrong.
    EXPECT_THROW(RripIpvPolicy(c, Ipv::lru(8), 2),
                 std::runtime_error);
}

TEST(RripIpv, InsertionValueHonored)
{
    CacheConfig c = cfg(16, 4);
    RripIpvPolicy *raw;
    auto p = std::make_unique<RripIpvPolicy>(c, Ipv::parse("0 0 0 0 3"),
                                             2);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 3u);
}

TEST(RripIpv, GradualPromotionVector)
{
    // Frequency-style: each hit promotes one level.
    CacheConfig c = cfg(16, 4);
    RripIpvPolicy *raw;
    auto p = std::make_unique<RripIpvPolicy>(c, Ipv::parse("0 0 1 2 3"),
                                             2);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 3u);
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 2u);
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 1u);
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 0u);
    cache.access(0, AccessType::Load);
    EXPECT_EQ(raw->rrpv(0, 0), 0u);
}

TEST(RripIpv, StateBitsMatchRrpvWidth)
{
    CacheConfig c = CacheConfig::paperLlc();
    RripIpvPolicy p(c, RripIpvPolicy::srripVector(), 2);
    EXPECT_EQ(p.stateBitsPerSet(), 32u);
}

// ------------------------------------------------------------ multicore

Trace
loopTrace(uint64_t blocks, uint64_t base, size_t accesses,
          uint32_t gap = 6)
{
    Trace t;
    for (size_t i = 0; i < accesses; ++i) {
        MemRecord r;
        r.addr = (base + i % blocks) * 64;
        r.pc = 0x400000 + base;
        r.instGap = gap;
        t.append(r);
    }
    return t;
}

MulticoreParams
tinyMc()
{
    MulticoreParams p;
    p.hier.l1 = {"L1", 4 * 1024, 8, 64};
    p.hier.l2 = {"L2", 8 * 1024, 8, 64};
    p.hier.llc = {"LLC", 64 * 1024, 16, 64}; // 1024 blocks shared
    return p;
}

TEST(Multicore, TwoFittingCoresBothRunFast)
{
    MulticoreParams params = tinyMc();
    Trace a = loopTrace(300, 0, 30000);
    Trace b = loopTrace(300, 1 << 20, 30000);
    MulticoreResult r = simulateMulticore(
        {&a, &b}, policyByName("LRU").make, params);
    ASSERT_EQ(r.cores.size(), 2u);
    // Both working sets fit the shared LLC together: near-peak IPC.
    EXPECT_GT(r.cores[0].ipc, 1.0);
    EXPECT_GT(r.cores[1].ipc, 1.0);
}

TEST(Multicore, SharedLlcContentionHurts)
{
    MulticoreParams params = tinyMc();
    // Each core alone fits (700 < 1024); together they thrash LRU.
    Trace a = loopTrace(700, 0, 40000);
    Trace b = loopTrace(700, 1 << 20, 40000);
    MulticoreResult together = simulateMulticore(
        {&a, &b}, policyByName("LRU").make, params);
    MulticoreResult alone =
        simulateMulticore({&a}, policyByName("LRU").make, params);
    EXPECT_LT(together.cores[0].ipc, alone.cores[0].ipc * 0.9);
}

TEST(Multicore, AdaptivePolicyBeatsLruUnderContention)
{
    MulticoreParams params = tinyMc();
    Trace a = loopTrace(700, 0, 40000);
    Trace b = loopTrace(700, 1 << 20, 40000);
    MulticoreResult lru = simulateMulticore(
        {&a, &b}, policyByName("LRU").make, params);
    MulticoreResult dg = simulateMulticore(
        {&a, &b}, policyByName("DGIPPR2").make, params);
    std::vector<double> base = {lru.cores[0].ipc, lru.cores[1].ipc};
    EXPECT_GT(dg.weightedSpeedup(base), 1.05);
}

TEST(Multicore, ShorterTraceFinishesEarly)
{
    MulticoreParams params = tinyMc();
    Trace a = loopTrace(100, 0, 40000);
    Trace b = loopTrace(100, 1 << 20, 4000);
    MulticoreResult r = simulateMulticore(
        {&a, &b}, policyByName("LRU").make, params);
    EXPECT_GT(r.cores[0].instructions, r.cores[1].instructions);
    EXPECT_GT(r.cores[1].ipc, 0.0);
}

TEST(Multicore, DeterministicAcrossRuns)
{
    MulticoreParams params = tinyMc();
    Trace a = loopTrace(500, 0, 20000);
    Trace b = loopTrace(900, 1 << 20, 20000);
    MulticoreResult r1 = simulateMulticore(
        {&a, &b}, policyByName("DRRIP").make, params);
    MulticoreResult r2 = simulateMulticore(
        {&a, &b}, policyByName("DRRIP").make, params);
    EXPECT_DOUBLE_EQ(r1.cores[0].ipc, r2.cores[0].ipc);
    EXPECT_DOUBLE_EQ(r1.cores[1].ipc, r2.cores[1].ipc);
    EXPECT_EQ(r1.llcStats.demandMisses, r2.llcStats.demandMisses);
}

TEST(Multicore, ThroughputIsSumOfIpcs)
{
    MulticoreParams params = tinyMc();
    Trace a = loopTrace(200, 0, 10000);
    Trace b = loopTrace(200, 1 << 20, 10000);
    MulticoreResult r = simulateMulticore(
        {&a, &b}, policyByName("LRU").make, params);
    EXPECT_DOUBLE_EQ(r.throughput(), r.cores[0].ipc + r.cores[1].ipc);
}

} // namespace
} // namespace gippr
