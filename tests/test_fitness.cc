/**
 * @file
 * Tests for the GA fitness function.
 */

#include <gtest/gtest.h>

#include "ga/fitness.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 64 * 16 * 64; // 64 sets, 1024 blocks
    return c;
}

Trace
thrashTrace(uint64_t blocks, int reps)
{
    Trace t;
    for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t b = 0; b < blocks; ++b) {
            MemRecord r;
            r.addr = b * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
        }
    }
    return t;
}

Trace
friendlyTrace(uint64_t blocks, int reps)
{
    // Working set fits: everything hits after the cold pass under any
    // recency-ish policy.
    return thrashTrace(blocks, reps);
}

FitnessEvaluator
makeEvaluator()
{
    std::vector<FitnessTrace> traces;
    FitnessTrace thrash;
    thrash.name = "thrash/0";
    thrash.llcTrace =
        std::make_shared<Trace>(thrashTrace(1280, 30)); // 1.25x
    thrash.instructions = thrash.llcTrace->instructions();
    traces.push_back(thrash);
    FitnessTrace fit;
    fit.name = "fit/0";
    fit.llcTrace = std::make_shared<Trace>(friendlyTrace(512, 60));
    fit.instructions = fit.llcTrace->instructions();
    traces.push_back(fit);
    return FitnessEvaluator(llcCfg(), std::move(traces), {});
}

TEST(Fitness, LruVectorScoresParity)
{
    FitnessEvaluator fe = makeEvaluator();
    double f = fe.evaluate(Ipv::lru(16), IpvFamily::Giplr);
    EXPECT_NEAR(f, 1.0, 1e-9);
}

TEST(Fitness, LipBeatsLruOnThrash)
{
    FitnessEvaluator fe = makeEvaluator();
    double f = fe.evaluate(Ipv::lruInsertion(16), IpvFamily::Giplr);
    EXPECT_GT(f, 1.05);
}

TEST(Fitness, PerTraceSpeedupsSeparateBehaviours)
{
    FitnessEvaluator fe = makeEvaluator();
    std::vector<double> s =
        fe.perTraceSpeedups(Ipv::lruInsertion(16), IpvFamily::Giplr);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_GT(s[0], 1.1);        // thrash: LIP wins big
    EXPECT_NEAR(s[1], 1.0, 0.05); // friendly: parity
}

TEST(Fitness, GipprFamilyUsesTreeDynamics)
{
    FitnessEvaluator fe = makeEvaluator();
    double lru_like = fe.evaluate(Ipv::lru(16), IpvFamily::Gippr);
    // PLRU is not exactly LRU, but on these patterns it behaves the
    // same way (thrash loses everything either way; fit all hits).
    EXPECT_NEAR(lru_like, 1.0, 0.02);
    double lip = fe.evaluate(Ipv::lruInsertion(16), IpvFamily::Gippr);
    EXPECT_GT(lip, 1.05);
}

TEST(Fitness, MissesMatchLruBaselineForLruVector)
{
    FitnessEvaluator fe = makeEvaluator();
    for (size_t i = 0; i < fe.traceCount(); ++i) {
        EXPECT_EQ(fe.missesOn(i, Ipv::lru(16), IpvFamily::Giplr),
                  fe.lruMisses(i))
            << i;
    }
}

TEST(Fitness, CpiModelLinearInMisses)
{
    FitnessEvaluator fe = makeEvaluator();
    double cpi0 = fe.estimateCpi(0, 1000000);
    double cpi1 = fe.estimateCpi(1000, 1000000);
    double cpi2 = fe.estimateCpi(2000, 1000000);
    EXPECT_DOUBLE_EQ(cpi0, fe.model().baseCpi);
    EXPECT_NEAR(cpi2 - cpi1, cpi1 - cpi0, 1e-12);
    EXPECT_GT(cpi1, cpi0);
}

TEST(Fitness, RequiresTraces)
{
    EXPECT_THROW(FitnessEvaluator(llcCfg(), {}, {}),
                 std::runtime_error);
}

TEST(Fitness, MemoDigestSeparatesGeometries)
{
    // Regression: the memo digest was keyed only by the traces, so
    // two evaluators sharing training traces but simulating different
    // LLC shapes could alias each other's memo entries.  The geometry
    // must be part of the digest.
    auto traces = [] {
        std::vector<FitnessTrace> ts;
        FitnessTrace t;
        t.name = "thrash/0";
        t.llcTrace = std::make_shared<Trace>(thrashTrace(1280, 30));
        t.instructions = t.llcTrace->instructions();
        ts.push_back(std::move(t));
        return ts;
    };

    CacheConfig big = llcCfg();
    CacheConfig small = llcCfg();
    small.sizeBytes /= 2; // 32 sets instead of 64
    CacheConfig narrow = llcCfg();
    narrow.assoc = 8; // same bytes, different shape

    FitnessEvaluator feBig(big, traces(), {});
    FitnessEvaluator feSmall(small, traces(), {});
    FitnessEvaluator feNarrow(narrow, traces(), {});
    FitnessEvaluator feBig2(big, traces(), {});

    EXPECT_NE(feBig.traceSetDigest(), feSmall.traceSetDigest());
    EXPECT_NE(feBig.traceSetDigest(), feNarrow.traceSetDigest());
    EXPECT_NE(feSmall.traceSetDigest(), feNarrow.traceSetDigest());
    // Same traces + same geometry must still share a digest (the
    // memo's whole point).
    EXPECT_EQ(feBig.traceSetDigest(), feBig2.traceSetDigest());
}

} // namespace
} // namespace gippr
