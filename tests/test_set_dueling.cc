/**
 * @file
 * Tests for leader-set assignment and the tournament selector.
 */

#include <gtest/gtest.h>

#include "policies/set_dueling.hh"

namespace gippr
{
namespace
{

TEST(LeaderSets, ExactLeaderCounts)
{
    LeaderSets ls(1024, 2, 32);
    int counts[2] = {0, 0};
    int followers = 0;
    for (uint64_t s = 0; s < 1024; ++s) {
        int o = ls.owner(s);
        if (o == LeaderSets::kFollower)
            ++followers;
        else
            ++counts[o];
    }
    EXPECT_EQ(counts[0], 32);
    EXPECT_EQ(counts[1], 32);
    EXPECT_EQ(followers, 1024 - 64);
}

TEST(LeaderSets, FourPolicyCounts)
{
    LeaderSets ls(4096, 4, 32);
    int counts[4] = {0, 0, 0, 0};
    for (uint64_t s = 0; s < 4096; ++s) {
        int o = ls.owner(s);
        if (o != LeaderSets::kFollower)
            ++counts[o];
    }
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(counts[p], 32) << p;
}

TEST(LeaderSets, LeadersAreSpreadAcrossConstituencies)
{
    LeaderSets ls(1024, 2, 32);
    // Each constituency (32 sets) holds exactly one leader per policy.
    for (unsigned c = 0; c < 32; ++c) {
        int found[2] = {0, 0};
        for (uint64_t s = c * 32; s < (c + 1) * 32; ++s) {
            int o = ls.owner(s);
            if (o != LeaderSets::kFollower)
                ++found[o];
        }
        EXPECT_EQ(found[0], 1) << c;
        EXPECT_EQ(found[1], 1) << c;
    }
}

TEST(LeaderSets, DeterministicAssignment)
{
    LeaderSets a(512, 2, 16), b(512, 2, 16);
    for (uint64_t s = 0; s < 512; ++s)
        EXPECT_EQ(a.owner(s), b.owner(s));
}

TEST(LeaderSets, RejectsTooManyPolicies)
{
    // Constituency size 2 cannot host 4 distinct leaders.
    EXPECT_THROW(LeaderSets(16, 4, 8), std::runtime_error);
}

TEST(LeaderSets, RejectsIndivisibleLeaderCount)
{
    EXPECT_THROW(LeaderSets(100, 2, 32), std::runtime_error);
}

TEST(Tournament, TwoPolicyPrefersLessMissing)
{
    TournamentSelector t(2, 8);
    for (int i = 0; i < 50; ++i)
        t.recordMiss(0);
    EXPECT_EQ(t.winner(), 1u); // policy 0 misses more -> pick 1
    for (int i = 0; i < 200; ++i)
        t.recordMiss(1);
    EXPECT_EQ(t.winner(), 0u);
}

TEST(Tournament, FourPolicyPicksGlobalBest)
{
    TournamentSelector t(4, 8);
    // Policy 2 misses least; others miss heavily.
    for (int i = 0; i < 100; ++i) {
        t.recordMiss(0);
        t.recordMiss(1);
        t.recordMiss(3);
    }
    EXPECT_EQ(t.winner(), 2u);
}

TEST(Tournament, FourPolicyEachCanWin)
{
    for (unsigned best = 0; best < 4; ++best) {
        TournamentSelector t(4, 8);
        for (int i = 0; i < 100; ++i)
            for (unsigned p = 0; p < 4; ++p)
                if (p != best)
                    t.recordMiss(p);
        EXPECT_EQ(t.winner(), best) << best;
    }
}

TEST(Tournament, EightPolicyTournament)
{
    TournamentSelector t(8, 8);
    for (int i = 0; i < 200; ++i)
        for (unsigned p = 0; p < 8; ++p)
            if (p != 5)
                t.recordMiss(p);
    EXPECT_EQ(t.winner(), 5u);
}

TEST(Tournament, StateBitsMatchPaperAccounting)
{
    // Paper Section 3.6: 2-DGIPPR one 11-bit counter; 4-DGIPPR three
    // 11-bit counters (33 bits).
    EXPECT_EQ(TournamentSelector(2, 11).stateBits(), 11u);
    EXPECT_EQ(TournamentSelector(4, 11).stateBits(), 33u);
    EXPECT_EQ(TournamentSelector(8, 11).stateBits(), 77u);
}

TEST(Tournament, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(TournamentSelector(3), std::runtime_error);
    EXPECT_THROW(TournamentSelector(1), std::runtime_error);
}

TEST(Tournament, SwitchesWhenBehaviourFlips)
{
    TournamentSelector t(2, 6);
    for (int i = 0; i < 100; ++i)
        t.recordMiss(0);
    EXPECT_EQ(t.winner(), 1u);
    for (int i = 0; i < 200; ++i)
        t.recordMiss(1);
    EXPECT_EQ(t.winner(), 0u);
    for (int i = 0; i < 200; ++i)
        t.recordMiss(0);
    EXPECT_EQ(t.winner(), 1u);
}

} // namespace
} // namespace gippr
