/**
 * @file
 * Unit tests for util/sat_counter.hh.
 */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

namespace gippr
{
namespace
{

TEST(SatCounter, InitialValue)
{
    SatCounter c(2, 1);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(c.maxValue(), 3u);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturatedHigh());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(3, 5);
    for (int i = 0; i < 20; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.saturatedLow());
}

TEST(SatCounter, IncrementDecrementSymmetric)
{
    SatCounter c(4, 8);
    c.increment();
    c.decrement();
    EXPECT_EQ(c.value(), 8u);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(2);
    c.set(3);
    EXPECT_EQ(c.value(), 3u);
    c.set(0);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, WidthOne)
{
    SatCounter c(1);
    EXPECT_EQ(c.maxValue(), 1u);
    c.increment();
    c.increment();
    EXPECT_EQ(c.value(), 1u);
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, MaxMatchesWidth)
{
    unsigned bits = GetParam();
    SatCounter c(bits);
    EXPECT_EQ(c.maxValue(), (uint32_t{1} << bits) - 1);
    for (uint32_t i = 0; i <= c.maxValue() + 5; ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.maxValue());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 11u, 16u));

TEST(DuelCounter, StartsPreferringB)
{
    // Initialized at the midpoint: "counter at least 0" prefers B,
    // matching the paper's convention.
    DuelCounter d(11);
    EXPECT_TRUE(d.preferB());
}

TEST(DuelCounter, MissesFromAKeepPreferenceOnB)
{
    DuelCounter d(8);
    for (int i = 0; i < 100; ++i)
        d.missA();
    EXPECT_TRUE(d.preferB());
}

TEST(DuelCounter, MissesFromBSwitchToA)
{
    DuelCounter d(8);
    d.missB();
    EXPECT_FALSE(d.preferB());
}

TEST(DuelCounter, BalancedTrafficStaysNearMidpoint)
{
    DuelCounter d(11);
    for (int i = 0; i < 1000; ++i) {
        d.missA();
        d.missB();
    }
    uint32_t mid = 1u << 10;
    EXPECT_NEAR(static_cast<double>(d.raw()), static_cast<double>(mid),
                2.0);
}

TEST(DuelCounter, SaturationBoundsSwing)
{
    DuelCounter d(4);
    for (int i = 0; i < 100; ++i)
        d.missA();
    EXPECT_EQ(d.raw(), 15u);
    // A single burst of B misses can still flip the decision after
    // enough events; verify it takes roughly the counter range.
    int flips = 0;
    while (d.preferB() && flips < 100) {
        d.missB();
        ++flips;
    }
    EXPECT_GT(flips, 4);
    EXPECT_LT(flips, 20);
}

} // namespace
} // namespace gippr
