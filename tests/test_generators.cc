/**
 * @file
 * Tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workloads/generators.hh"

namespace gippr
{
namespace
{

GenParams
gp()
{
    GenParams p;
    p.meanGap = 4;
    p.writeFrac = 0.25;
    p.regionBase = 1000;
    p.pcBase = 0x400000;
    return p;
}

TEST(StreamGenerator, NeverRepeatsBeforeWrap)
{
    StreamGenerator g(gp(), 1, 100000);
    Rng rng(1);
    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < 50000; ++i) {
        MemRecord r = g.next(rng);
        EXPECT_TRUE(seen.insert(r.addr).second) << i;
    }
}

TEST(StreamGenerator, HonorsStride)
{
    StreamGenerator g(gp(), 4, 1000000);
    Rng rng(1);
    MemRecord a = g.next(rng);
    MemRecord b = g.next(rng);
    EXPECT_EQ(b.addr - a.addr, 4u * 64u);
}

TEST(StreamGenerator, WrapsAtRegionEnd)
{
    StreamGenerator g(gp(), 1, 10);
    Rng rng(1);
    std::set<uint64_t> blocks;
    for (int i = 0; i < 30; ++i)
        blocks.insert(g.next(rng).addr / 64);
    EXPECT_EQ(blocks.size(), 10u);
}

TEST(LoopGenerator, CyclesExactWorkingSet)
{
    LoopGenerator g(gp(), 16);
    Rng rng(2);
    std::set<uint64_t> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.insert(g.next(rng).addr / 64);
    EXPECT_EQ(blocks.size(), 16u);
}

TEST(LoopGenerator, PeriodicOrder)
{
    LoopGenerator g(gp(), 8);
    Rng rng(3);
    std::vector<uint64_t> first, second;
    for (int i = 0; i < 8; ++i)
        first.push_back(g.next(rng).addr);
    for (int i = 0; i < 8; ++i)
        second.push_back(g.next(rng).addr);
    EXPECT_EQ(first, second);
}

TEST(PointerChase, VisitsEveryNodeBeforeRepeating)
{
    // Sattolo permutation: a single cycle over all nodes.
    PointerChaseGenerator g(gp(), 64, 777);
    Rng rng(4);
    std::set<uint64_t> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.insert(g.next(rng).addr / 64);
    EXPECT_EQ(blocks.size(), 64u);
    // The 65th access revisits the start of the cycle.
    std::set<uint64_t> again;
    for (int i = 0; i < 64; ++i)
        again.insert(g.next(rng).addr / 64);
    EXPECT_EQ(blocks, again);
}

TEST(PointerChase, DifferentSeedsDifferentOrders)
{
    PointerChaseGenerator a(gp(), 32, 1), b(gp(), 32, 2);
    Rng rng(5);
    Rng rng2(5);
    int same = 0;
    for (int i = 0; i < 32; ++i)
        if (a.next(rng).addr == b.next(rng2).addr)
            ++same;
    EXPECT_LT(same, 8);
}

TEST(ZipfGenerator, SkewsTowardFewBlocks)
{
    ZipfGenerator g(gp(), 10000, 1.0, 9);
    Rng rng(6);
    std::unordered_map<uint64_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[g.next(rng).addr];
    // Top block should absorb far more than 1/10000 of accesses.
    int max_count = 0;
    for (const auto &kv : counts)
        max_count = std::max(max_count, kv.second);
    EXPECT_GT(max_count, n / 100);
}

TEST(HotColdGenerator, RespectsHotFraction)
{
    GenParams p = gp();
    HotColdGenerator g(p, 100, 0.7, 100000);
    Rng rng(7);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        MemRecord r = g.next(rng);
        uint64_t block = r.addr / 64;
        if (block < p.regionBase + 100)
            ++hot;
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.7, 0.02);
}

TEST(HotColdGenerator, ColdStreamIsSequentialAndDisjoint)
{
    GenParams p = gp();
    HotColdGenerator g(p, 100, 0.0, 1000);
    Rng rng(8);
    MemRecord a = g.next(rng);
    MemRecord b = g.next(rng);
    EXPECT_EQ(b.addr - a.addr, 64u);
    EXPECT_GE(a.addr / 64, p.regionBase + 100);
}

TEST(StencilGenerator, EmitsThreeRowNeighbours)
{
    GenParams p = gp();
    StencilGenerator g(p, 16, 8);
    Rng rng(9);
    // Skip row 0 (its north neighbour wraps to the last row).
    for (int i = 0; i < 3 * 16; ++i)
        g.next(rng);
    MemRecord north = g.next(rng);
    MemRecord center = g.next(rng);
    MemRecord south = g.next(rng);
    uint64_t row_bytes = 16 * 64;
    EXPECT_EQ(center.addr - north.addr, row_bytes);
    EXPECT_EQ(south.addr - center.addr, row_bytes);
}

TEST(SdProfile, ShortDistancesProduceReuse)
{
    GenParams p = gp();
    SdProfileGenerator g(p, {{1, 4, 10.0}}, 1.0);
    Rng rng(10);
    std::unordered_map<uint64_t, int> counts;
    for (int i = 0; i < 10000; ++i)
        ++counts[g.next(rng).addr];
    // With reuse dominating 10:1, the trace must revisit blocks.
    EXPECT_LT(counts.size(), 3000u);
}

TEST(SdProfile, PureNewWeightIsAllCompulsory)
{
    GenParams p = gp();
    SdProfileGenerator g(p, {{1, 4, 0.0}}, 1.0);
    Rng rng(11);
    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        EXPECT_TRUE(seen.insert(g.next(rng).addr).second);
}

TEST(SdProfile, ReuseDistanceWithinBand)
{
    GenParams p = gp();
    const uint64_t lo = 10, hi = 20;
    SdProfileGenerator g(p, {{lo, hi, 5.0}}, 1.0);
    Rng rng(12);
    // Track last position each block was emitted.
    std::unordered_map<uint64_t, uint64_t> last;
    uint64_t idx = 0;
    int checked = 0, below_lo = 0;
    for (int i = 0; i < 20000; ++i) {
        MemRecord r = g.next(rng);
        auto it = last.find(r.addr);
        if (it != last.end()) {
            uint64_t dist = idx - it->second;
            // The generator targets a slot at distance in [lo, hi];
            // the block in that slot may also have been re-emitted
            // more recently, so the *observed* distance can fall
            // short occasionally, but never exceed hi.
            EXPECT_LE(dist, hi);
            if (dist < lo)
                ++below_lo;
            ++checked;
        }
        last[r.addr] = idx;
        ++idx;
    }
    EXPECT_GT(checked, 1000);
    EXPECT_LT(below_lo, checked / 3);
}

TEST(PhasedGenerator, SwitchesBetweenChildren)
{
    GenParams pa = gp();
    GenParams pb = gp();
    pb.regionBase = 1u << 20;
    std::vector<PhasedGenerator::Phase> phases;
    phases.push_back({std::make_unique<LoopGenerator>(pa, 4), 10});
    phases.push_back({std::make_unique<LoopGenerator>(pb, 4), 10});
    PhasedGenerator g(std::move(phases));
    Rng rng(13);
    int in_a = 0, in_b = 0;
    for (int i = 0; i < 40; ++i) {
        uint64_t block = g.next(rng).addr / 64;
        if (block < (1u << 20))
            ++in_a;
        else
            ++in_b;
    }
    EXPECT_EQ(in_a, 20);
    EXPECT_EQ(in_b, 20);
}

TEST(MixGenerator, WeightsRespected)
{
    GenParams pa = gp();
    GenParams pb = gp();
    pb.regionBase = 1u << 20;
    std::vector<MixGenerator::Component> comps;
    comps.push_back({std::make_unique<LoopGenerator>(pa, 4), 3.0});
    comps.push_back({std::make_unique<LoopGenerator>(pb, 4), 1.0});
    MixGenerator g(std::move(comps));
    Rng rng(14);
    int in_a = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (g.next(rng).addr / 64 < (1u << 20))
            ++in_a;
    EXPECT_NEAR(static_cast<double>(in_a) / n, 0.75, 0.02);
}

TEST(Generators, WriteFractionRoughlyHonored)
{
    GenParams p = gp();
    p.writeFrac = 0.4;
    LoopGenerator g(p, 64);
    Rng rng(15);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (g.next(rng).isWrite)
            ++writes;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.02);
}

TEST(Generators, InstGapMeanApproximatesParam)
{
    GenParams p = gp();
    p.meanGap = 10;
    LoopGenerator g(p, 64);
    Rng rng(16);
    uint64_t total = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += g.next(rng).instGap;
    EXPECT_NEAR(static_cast<double>(total) / n, 10.0, 1.0);
}

TEST(Generators, GenerateTraceCollectsExactCount)
{
    GenParams p = gp();
    LoopGenerator g(p, 8);
    Rng rng(17);
    Trace t = generateTrace(g, 1234, rng);
    EXPECT_EQ(t.size(), 1234u);
    EXPECT_GT(t.instructions(), 1234u);
}

} // namespace
} // namespace gippr
