/**
 * @file
 * Tests for the multi-tenant KV-cache workload family.
 *
 * The family feeds the shared-LLC serving simulator, so its streams
 * must be seed-deterministic and stable across refactors: a golden
 * FNV-1a digest pins every record of every family member at a small
 * pinned scale (the test_suite_digest idiom — an accidental generator
 * change would silently shift every multicore result table, so it
 * must fail loudly here instead).  Structural tests cover the
 * generator's contract directly: disjoint per-tenant block ranges,
 * mixed GET/SET traffic, key churn rotating the live key set, and
 * seed sensitivity.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "workloads/generators.hh"
#include "workloads/suite.hh"

namespace gippr
{
namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
foldU64(uint64_t h, uint64_t v)
{
    return fnv1a(h, &v, sizeof(v));
}

/** Digest of one materialized workload (every record). */
uint64_t
digestOf(const Workload &w)
{
    uint64_t h = kFnvOffset;
    for (const Simpoint &sp : w.simpoints()) {
        h = foldU64(h, sp.trace->size());
        for (const MemRecord &rec : sp.trace->records()) {
            h = foldU64(h, rec.instGap);
            h = foldU64(h, rec.addr);
            h = foldU64(h, rec.pc);
            h = foldU64(h, rec.isWrite ? 1 : 0);
        }
    }
    return h;
}

/** Pinned scale for the golden digests (small but eviction-heavy). */
SuiteParams
pinnedParams()
{
    SuiteParams p;
    p.llcBlocks = 256;
    p.accessesPerSimpoint = 2000;
    p.baseSeed = 0x5eed;
    return p;
}

const WorkloadSpec &
familySpec(const std::vector<WorkloadSpec> &family,
           const std::string &name)
{
    for (const WorkloadSpec &spec : family)
        if (spec.name == name)
            return spec;
    ADD_FAILURE() << "missing KV workload " << name;
    return family.front();
}

TEST(KvWorkload, FamilyShape)
{
    const std::vector<WorkloadSpec> family = kvCacheFamily(pinnedParams());
    ASSERT_EQ(family.size(), 4u);
    EXPECT_EQ(family[0].name, "kv_zipf_4t");
    EXPECT_EQ(family[1].name, "kv_hot_tenant");
    EXPECT_EQ(family[2].name, "kv_churn");
    EXPECT_EQ(family[3].name, "kv_scan_victim");
    for (const WorkloadSpec &spec : family) {
        const Workload w = SyntheticSuite::materialize(spec);
        ASSERT_FALSE(w.simpoints().empty()) << spec.name;
        for (const Simpoint &sp : w.simpoints())
            EXPECT_EQ(sp.trace->size(), 2000u) << spec.name;
    }
}

TEST(KvWorkload, MaterializationIsDeterministic)
{
    const std::vector<WorkloadSpec> family = kvCacheFamily(pinnedParams());
    for (const WorkloadSpec &spec : family) {
        const uint64_t a = digestOf(SyntheticSuite::materialize(spec));
        const uint64_t b = digestOf(SyntheticSuite::materialize(spec));
        EXPECT_EQ(a, b) << spec.name;
    }
}

/**
 * Golden digests at pinnedParams().  These pin the generated streams
 * byte-for-byte; regenerate deliberately (and only deliberately) by
 * reading the actual values off the failure output.
 */
TEST(KvWorkload, GoldenDigests)
{
    struct Golden
    {
        const char *name;
        uint64_t digest;
    };
    const std::vector<Golden> goldens = {
        {"kv_zipf_4t", 0xbc21808842c75647ull},
        {"kv_hot_tenant", 0x73e22990492836c6ull},
        {"kv_churn", 0x19e30d38e5c845cfull},
        {"kv_scan_victim", 0xa024f750ff3dcf55ull},
    };
    const std::vector<WorkloadSpec> family = kvCacheFamily(pinnedParams());
    for (const Golden &g : goldens) {
        const WorkloadSpec &spec = familySpec(family, g.name);
        const uint64_t actual =
            digestOf(SyntheticSuite::materialize(spec));
        EXPECT_EQ(actual, g.digest)
            << g.name << " digest 0x" << std::hex << actual;
    }
}

TEST(KvWorkload, SeedChangesEveryStream)
{
    SuiteParams a = pinnedParams();
    SuiteParams b = pinnedParams();
    b.baseSeed = 0xbeef;
    const std::vector<WorkloadSpec> fa = kvCacheFamily(a);
    const std::vector<WorkloadSpec> fb = kvCacheFamily(b);
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); ++i)
        EXPECT_NE(digestOf(SyntheticSuite::materialize(fa[i])),
                  digestOf(SyntheticSuite::materialize(fb[i])))
            << fa[i].name;
}

TEST(KvWorkload, MixesReadsAndWrites)
{
    const std::vector<WorkloadSpec> family = kvCacheFamily(pinnedParams());
    const Workload w =
        SyntheticSuite::materialize(familySpec(family, "kv_zipf_4t"));
    uint64_t reads = 0;
    uint64_t writes = 0;
    for (const Simpoint &sp : w.simpoints())
        for (const MemRecord &rec : sp.trace->records())
            (rec.isWrite ? writes : reads) += 1;
    EXPECT_GT(reads, 0u);
    EXPECT_GT(writes, 0u);
    EXPECT_GT(reads, writes); // GETs dominate a serving mix
}

TEST(KvWorkload, TenantBlockRangesAreDisjoint)
{
    GenParams params;
    params.regionBase = 0;
    const uint64_t keys = 64;
    KvCacheGenerator gen(params,
                         {{keys, 0.9, 1.0, 0.0}, {keys, 0.5, 1.0, 0.0}},
                         /*seed=*/7);
    // Tenant 0 owns blocks [0, keys); tenant 1 starts at keys + 4096.
    const uint64_t blockBytes = 64;
    const uint64_t t1_base = (keys + 4096) * blockBytes;
    Rng rng(42);
    bool saw_t0 = false;
    bool saw_t1 = false;
    for (int i = 0; i < 4000; ++i) {
        const MemRecord rec = gen.next(rng);
        if (rec.addr < keys * blockBytes) {
            saw_t0 = true;
        } else {
            EXPECT_GE(rec.addr, t1_base);
            EXPECT_LT(rec.addr, t1_base + keys * blockBytes);
            saw_t1 = true;
        }
    }
    EXPECT_TRUE(saw_t0);
    EXPECT_TRUE(saw_t1);
}

TEST(KvWorkload, ChurnRotatesKeys)
{
    GenParams params;
    const KvCacheGenerator::Tenant tenant = {256, 0.9, 1.0, 0.0};
    KvCacheGenerator stable(params, {tenant}, /*seed=*/7,
                            /*churn_every=*/0);
    KvCacheGenerator churning(params, {tenant}, /*seed=*/7,
                              /*churn_every=*/100);
    Rng ra(42);
    Rng rb(42);
    // Epoch 0 is identical: the epoch salt is zero either way.
    for (int i = 0; i < 100; ++i) {
        const MemRecord a = stable.next(ra);
        const MemRecord b = churning.next(rb);
        EXPECT_EQ(a.addr, b.addr) << "record " << i;
        EXPECT_EQ(a.isWrite, b.isWrite);
    }
    // Later epochs remap ranks to fresh blocks.
    uint64_t diverged = 0;
    for (int i = 0; i < 400; ++i) {
        const MemRecord a = stable.next(ra);
        const MemRecord b = churning.next(rb);
        diverged += a.addr != b.addr;
    }
    EXPECT_GT(diverged, 0u);
}

} // namespace
} // namespace gippr
