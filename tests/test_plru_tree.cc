/**
 * @file
 * Tests for the PseudoLRU tree and its recency-stack position
 * algorithms (the paper's Figures 5, 6, 7 and 9).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/plru_tree.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

TEST(PlruTree, InitialVictimIsWayZero)
{
    // All bits zero: the eviction walk goes left to way 0.
    PlruTree t(8);
    EXPECT_EQ(t.findPlru(), 0u);
}

TEST(PlruTree, PromoteMruProtectsBlock)
{
    PlruTree t(8);
    for (unsigned w = 0; w < 8; ++w) {
        t.promoteMru(w);
        EXPECT_NE(t.findPlru(), w) << w;
    }
}

TEST(PlruTree, PromotedBlockHasPositionZero)
{
    PlruTree t(16);
    for (unsigned w = 0; w < 16; ++w) {
        t.promoteMru(w);
        EXPECT_EQ(t.position(w), 0u) << w;
    }
}

TEST(PlruTree, VictimHasAllOnesPosition)
{
    PlruTree t(16);
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        for (unsigned b = 0; b < t.numBits(); ++b)
            t.setBit(b, rng.nextBool());
        unsigned victim = t.findPlru();
        EXPECT_EQ(t.position(victim), 15u);
    }
}

class PlruTreePositions : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PlruTreePositions, PositionsAreAlwaysAPermutation)
{
    const unsigned ways = GetParam();
    PlruTree t(ways);
    Rng rng(100 + ways);
    for (int trial = 0; trial < 300; ++trial) {
        for (unsigned b = 0; b < t.numBits(); ++b)
            t.setBit(b, rng.nextBool());
        std::set<unsigned> positions;
        for (unsigned w = 0; w < ways; ++w) {
            unsigned p = t.position(w);
            EXPECT_LT(p, ways);
            positions.insert(p);
        }
        ASSERT_EQ(positions.size(), ways) << "trial " << trial;
    }
}

TEST_P(PlruTreePositions, WayAtPositionInvertsPosition)
{
    const unsigned ways = GetParam();
    PlruTree t(ways);
    Rng rng(200 + ways);
    for (int trial = 0; trial < 200; ++trial) {
        for (unsigned b = 0; b < t.numBits(); ++b)
            t.setBit(b, rng.nextBool());
        for (unsigned x = 0; x < ways; ++x)
            ASSERT_EQ(t.position(t.wayAtPosition(x)), x);
    }
}

TEST_P(PlruTreePositions, SetPositionEstablishesPosition)
{
    const unsigned ways = GetParam();
    PlruTree t(ways);
    Rng rng(300 + ways);
    for (int trial = 0; trial < 500; ++trial) {
        unsigned way = static_cast<unsigned>(rng.nextBounded(ways));
        unsigned pos = static_cast<unsigned>(rng.nextBounded(ways));
        t.setPosition(way, pos);
        ASSERT_EQ(t.position(way), pos);
        // The permutation property must survive arbitrary setPosition.
        std::set<unsigned> positions;
        for (unsigned w = 0; w < ways; ++w)
            positions.insert(t.position(w));
        ASSERT_EQ(positions.size(), ways);
    }
}

TEST_P(PlruTreePositions, SetPositionZeroEqualsPromoteMru)
{
    const unsigned ways = GetParam();
    PlruTree a(ways), b(ways);
    Rng rng(400 + ways);
    for (int trial = 0; trial < 300; ++trial) {
        // Put both trees in the same random state.
        for (unsigned bit = 0; bit < a.numBits(); ++bit) {
            bool v = rng.nextBool();
            a.setBit(bit, v);
            b.setBit(bit, v);
        }
        unsigned way = static_cast<unsigned>(rng.nextBounded(ways));
        a.promoteMru(way);
        b.setPosition(way, 0);
        for (unsigned bit = 0; bit < a.numBits(); ++bit)
            ASSERT_EQ(a.bit(bit), b.bit(bit));
    }
}

TEST_P(PlruTreePositions, FindPlruEqualsWayAtLastPosition)
{
    const unsigned ways = GetParam();
    PlruTree t(ways);
    Rng rng(500 + ways);
    for (int trial = 0; trial < 300; ++trial) {
        for (unsigned b = 0; b < t.numBits(); ++b)
            t.setBit(b, rng.nextBool());
        ASSERT_EQ(t.findPlru(), t.wayAtPosition(ways - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, PlruTreePositions,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u));

TEST(PlruTree, HandDerivedFourWayPositions)
{
    // 4-way tree with bits root=1, left=0, right=1, positions derived
    // by hand from the paper's Fig. 7 rule (bit i is the i-th parent's
    // plru bit for a right child, its complement for a left child):
    //   way 0: !left=1, !root=0 -> position 01 = 1
    //   way 1:  left=0, !root=0 -> position 00 = 0 (PMRU)
    //   way 2: !right=0, root=1 -> position 10 = 2
    //   way 3:  right=1, root=1 -> position 11 = 3 (PLRU victim)
    PlruTree t(4);
    t.setBit(0, true);
    t.setBit(1, false);
    t.setBit(2, true);
    EXPECT_EQ(t.position(0), 1u);
    EXPECT_EQ(t.position(1), 0u);
    EXPECT_EQ(t.position(2), 2u);
    EXPECT_EQ(t.position(3), 3u);
    EXPECT_EQ(t.findPlru(), 3u);
}

TEST(PlruTree, SetPositionTouchesOnlyPathBits)
{
    PlruTree t(16);
    Rng rng(7);
    for (unsigned b = 0; b < t.numBits(); ++b)
        t.setBit(b, rng.nextBool());
    std::vector<bool> before(t.numBits());
    for (unsigned b = 0; b < t.numBits(); ++b)
        before[b] = t.bit(b);
    t.setPosition(5, 9);
    // Exactly the log2(16) = 4 bits on way 5's root path may change.
    unsigned changed = 0;
    for (unsigned b = 0; b < t.numBits(); ++b)
        if (t.bit(b) != before[b])
            ++changed;
    EXPECT_LE(changed, 4u);
}

TEST(PlruTree, TwoWayDegenerateCase)
{
    PlruTree t(2);
    EXPECT_EQ(t.numBits(), 1u);
    t.promoteMru(0);
    EXPECT_EQ(t.findPlru(), 1u);
    t.promoteMru(1);
    EXPECT_EQ(t.findPlru(), 0u);
}

TEST(PlruTree, PlruApproximatesLruUnderSequentialAccess)
{
    // Touch ways 0..15 in order; way 0 should then be the victim
    // (exact agreement with LRU for this simple pattern).
    PlruTree t(16);
    for (unsigned w = 0; w < 16; ++w)
        t.promoteMru(w);
    EXPECT_EQ(t.findPlru(), 0u);
}

TEST(PlruTree, VictimIsNeverMostRecentlyPromoted)
{
    PlruTree t(16);
    Rng rng(99);
    for (int step = 0; step < 2000; ++step) {
        unsigned w = static_cast<unsigned>(rng.nextBounded(16));
        t.promoteMru(w);
        ASSERT_NE(t.findPlru(), w);
    }
}

} // namespace
} // namespace gippr
