/**
 * @file
 * Tests for the island-model GA: per-island determinism, migrant
 * exchange, kill/resume bit-identity, torn-migrant skipping, missing
 * peers, merge validation, and the in-process crash harness.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ga/genetic.hh"
#include "island/island.hh"
#include "robust/atomic_io.hh"

namespace gippr::island
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &leaf)
{
    fs::path dir = fs::path(testing::TempDir()) / ("gippr_" + leaf);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

CacheConfig
llcCfg()
{
    CacheConfig c;
    c.name = "LLC";
    c.blockBytes = 64;
    c.assoc = 16;
    c.sizeBytes = 32 * 16 * 64; // 32 sets, 512 blocks
    return c;
}

Trace
loopTrace(uint64_t blocks, int reps, uint64_t base = 0)
{
    Trace t;
    for (int rep = 0; rep < reps; ++rep) {
        for (uint64_t b = 0; b < blocks; ++b) {
            MemRecord r;
            r.addr = (base + b) * 64;
            r.pc = 0x400000;
            r.instGap = 10;
            t.append(r);
        }
    }
    return t;
}

FitnessEvaluator
makeEvaluator()
{
    std::vector<FitnessTrace> traces;
    FitnessTrace thrash;
    thrash.name = "thrash/0";
    thrash.llcTrace = std::make_shared<Trace>(loopTrace(640, 12));
    thrash.instructions = thrash.llcTrace->instructions();
    traces.push_back(thrash);
    return FitnessEvaluator(llcCfg(), std::move(traces), {});
}

/** Small, fast island geometry shared by most tests. */
IslandParams
smallParams(const std::string &workdir, uint32_t islands = 3)
{
    IslandParams p;
    p.islands = islands;
    p.masterSeed = 777;
    p.initialPopulation = 14;
    p.population = 10;
    p.generations = 5;
    p.elites = 2;
    p.tournament = 3;
    p.threads = 1;
    p.exchangeEvery = 2;
    p.migrants = 3;
    p.workdir = workdir;
    p.exchangeDeadlineMs = 20000;
    p.pollMs = 2;
    return p;
}

/** The contract is BIT-identity, so compare doubles by bit pattern —
    EXPECT_DOUBLE_EQ's 4-ULP tolerance would mask a real divergence. */
uint64_t
bits(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

void
expectSamePopulation(const std::vector<SampledIpv> &a,
                     const std::vector<SampledIpv> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].ipv == b[i].ipv) << "individual " << i;
        EXPECT_EQ(bits(a[i].fitness), bits(b[i].fitness))
            << "individual " << i;
    }
}

void
expectSameMerge(const IslandMerge &a, const IslandMerge &b)
{
    EXPECT_TRUE(a.result.best == b.result.best);
    EXPECT_EQ(bits(a.result.bestFitness), bits(b.result.bestFitness));
    ASSERT_EQ(a.result.history.size(), b.result.history.size());
    for (size_t g = 0; g < a.result.history.size(); ++g)
        EXPECT_EQ(bits(a.result.history[g]),
                  bits(b.result.history[g]))
            << "generation " << g;
    expectSamePopulation(a.result.finalPopulation,
                         b.result.finalPopulation);
    ASSERT_EQ(a.finals.size(), b.finals.size());
    for (size_t i = 0; i < a.finals.size(); ++i)
        expectSamePopulation(a.finals[i].population,
                             b.finals[i].population);
}

TEST(IslandSeed, DistinctAndDeterministicPerIsland)
{
    EXPECT_EQ(islandSeed(42, 0), islandSeed(42, 0));
    EXPECT_NE(islandSeed(42, 0), islandSeed(42, 1));
    EXPECT_NE(islandSeed(42, 0), islandSeed(43, 0));
    EXPECT_NE(islandSeed(42, 0), 42u);
}

TEST(IslandMigrantsCodec, RoundTripAndRejection)
{
    fs::path dir = scratchDir("migrant_codec");
    const std::string path = (dir / "m.gpck").string();

    IslandMigrants m;
    m.configDigest = 0xabcdef;
    m.island = 2;
    m.round = 3;
    Rng rng(1);
    m.migrants.push_back({randomIpv(16, rng), 1.25});
    m.migrants.push_back({randomIpv(16, rng), 1.125});
    saveIslandMigrants(path, m);

    IslandMigrants out;
    ASSERT_TRUE(tryLoadIslandMigrants(path, 0xabcdef, out));
    EXPECT_EQ(out.island, 2u);
    EXPECT_EQ(out.round, 3u);
    expectSamePopulation(out.migrants, m.migrants);

    // Wrong config digest: a different run's migrants are refused.
    EXPECT_FALSE(tryLoadIslandMigrants(path, 0xabcde0, out));

    // Missing file: false, not fatal.
    EXPECT_FALSE(tryLoadIslandMigrants((dir / "none.gpck").string(),
                                       0xabcdef, out));

    // Torn file (payload bit flip under the envelope CRC): false.
    std::string bytes = robust::readFileBytes(path);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x08);
    robust::writeFileAtomic(path, bytes);
    EXPECT_FALSE(tryLoadIslandMigrants(path, 0xabcdef, out));
}

TEST(IslandWorker, SingleIslandMatchesEvolveIpv)
{
    // With one island there is no exchange, and the worker's breeding
    // loop must consume RNG exactly like evolveIpv — so the island
    // run IS an evolveIpv run of the derived seed, bit for bit.
    fs::path dir = scratchDir("island_single");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 1);

    IslandWorkerOptions opts;
    opts.island = 0;
    opts.watchShutdown = false;
    const IslandOutcome island =
        runIslandWorker(fe, IpvFamily::Gippr, p, opts);
    EXPECT_FALSE(island.interrupted);
    EXPECT_EQ(island.state.generation, p.generations);

    GaParams gp;
    gp.initialPopulation = p.initialPopulation;
    gp.population = p.population;
    gp.generations = p.generations;
    gp.mutationRate = p.mutationRate;
    gp.elites = p.elites;
    gp.tournament = p.tournament;
    gp.threads = p.threads;
    gp.seed = islandSeed(p.masterSeed, 0);
    const GaResult ga = evolveIpv(fe, IpvFamily::Gippr, gp);

    expectSamePopulation(island.state.population,
                         ga.finalPopulation);
    ASSERT_EQ(island.state.history.size(), ga.history.size());
    for (size_t g = 0; g < ga.history.size(); ++g)
        EXPECT_EQ(bits(island.state.history[g]), bits(ga.history[g]));
}

TEST(IslandWorker, ExchangeRoundsIncorporateAndCount)
{
    fs::path dir = scratchDir("island_exchange");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 2);

    const IslandMerge merge =
        runIslandsInProcess(fe, IpvFamily::Gippr, p);
    ASSERT_EQ(merge.finals.size(), 2u);
    EXPECT_TRUE(merge.missing.empty());
    EXPECT_EQ(merge.exchangesMissed, 0u);
    // 5 generations, exchange every 2: rounds after gens 2 and 4
    // (never at gen 0 or the final boundary).
    for (const IslandCheckpoint &ck : merge.finals) {
        EXPECT_EQ(ck.exchangesDone, 2u) << "island " << ck.island;
        EXPECT_EQ(ck.exchangesMissed, 0u);
    }
    // The published migrant files exist for exactly those rounds.
    for (uint32_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(robust::checkpointExists(
            migrantsPath(p.workdir, i, 1)));
        EXPECT_TRUE(robust::checkpointExists(
            migrantsPath(p.workdir, i, 2)));
        EXPECT_FALSE(robust::checkpointExists(
            migrantsPath(p.workdir, i, 3)));
    }
}

TEST(IslandWorker, UndisturbedRunsAreDeterministic)
{
    fs::path dir_a = scratchDir("island_det_a");
    fs::path dir_b = scratchDir("island_det_b");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams pa = smallParams(dir_a.string());
    IslandParams pb = smallParams(dir_b.string());

    const IslandMerge a = runIslandsInProcess(fe, IpvFamily::Gippr, pa);
    const IslandMerge b = runIslandsInProcess(fe, IpvFamily::Gippr, pb);
    expectSameMerge(a, b);
    // generationSeconds must never reach the merged result: it is the
    // one nondeterministic field.
    EXPECT_TRUE(a.result.generationSeconds.empty());
}

TEST(IslandWorker, KillResumeCyclesAreBitIdentical)
{
    // The tentpole contract: scripted kills at assorted boundaries —
    // mid-exchange and mid-breeding, multiple islands, repeated kills
    // of the same island — merge bit-identically to an undisturbed
    // run, because every boundary is checkpointed and exchange rounds
    // are redone idempotently.
    fs::path dir_ref = scratchDir("island_kill_ref");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams ref_params = smallParams(dir_ref.string());
    const IslandMerge undisturbed =
        runIslandsInProcess(fe, IpvFamily::Gippr, ref_params);

    KillPlan plan;
    plan.kills = {{0, 0}, {0, 2}, {1, 2}, {2, 3}, {1, 4}};
    fs::path dir_kill = scratchDir("island_kill_run");
    IslandParams kill_params = smallParams(dir_kill.string());
    InProcessStats stats;
    const IslandMerge disturbed = runIslandsInProcess(
        fe, IpvFamily::Gippr, kill_params, plan, &stats);

    expectSameMerge(undisturbed, disturbed);
    uint64_t total_respawns = 0;
    for (uint64_t r : stats.respawns)
        total_respawns += r;
    EXPECT_EQ(total_respawns, plan.kills.size());
}

TEST(IslandWorker, TornMigrantFileIsSkippedNotFatal)
{
    // Island 0 of a 2-island run whose peer "published" a corrupt
    // migrant file and then went silent: the torn file must be
    // rejected by CRC and the round completed solo after the
    // deadline, counting one miss — never a crash, never a hang.
    fs::path dir = scratchDir("island_torn");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 2);
    p.generations = 3;
    p.exchangeEvery = 2; // one round, after generation 2
    p.exchangeDeadlineMs = 100;
    p.pollMs = 5;

    // Fabricate the peer's torn migrant file for round 1.
    robust::writeFileAtomic(migrantsPath(p.workdir, 1, 1),
                            "GPCK garbage that is not a checkpoint");

    IslandWorkerOptions opts;
    opts.island = 0;
    opts.watchShutdown = false;
    const IslandOutcome out =
        runIslandWorker(fe, IpvFamily::Gippr, p, opts);
    EXPECT_FALSE(out.interrupted);
    EXPECT_EQ(out.state.generation, 3u);
    EXPECT_EQ(out.state.exchangesDone, 1u);
    EXPECT_EQ(out.state.exchangesMissed, 1u);
}

TEST(IslandWorker, PermanentlyDeadPeerDegradesButCompletes)
{
    // A 3-island config where island 2 never runs: the two live
    // islands miss it at every round and still finish; the merge
    // reports the dead island and the missed exchanges.
    fs::path dir = scratchDir("island_dead_peer");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 3);
    p.exchangeDeadlineMs = 150;
    p.pollMs = 5;

    std::vector<std::thread> workers;
    for (uint32_t i = 0; i < 2; ++i)
        workers.emplace_back([&, i]() {
            IslandWorkerOptions opts;
            opts.island = i;
            opts.watchShutdown = false;
            runIslandWorker(fe, IpvFamily::Gippr, p, opts);
        });
    for (std::thread &t : workers)
        t.join();

    const IslandMerge merge =
        mergeIslands(p, IpvFamily::Gippr, fe, true);
    ASSERT_EQ(merge.finals.size(), 2u);
    ASSERT_EQ(merge.missing.size(), 1u);
    EXPECT_EQ(merge.missing.front(), 2u);
    // 2 rounds x 2 live islands, the dead peer missed every time.
    EXPECT_EQ(merge.exchangesMissed, 4u);

    // Without allowMissing the same directory refuses to merge.
    EXPECT_THROW(mergeIslands(p, IpvFamily::Gippr, fe, false),
                 std::runtime_error);
}

TEST(IslandWorker, RespawnBudgetExhaustionLeavesIslandDead)
{
    fs::path dir = scratchDir("island_budget");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 2);
    p.exchangeDeadlineMs = 150;
    p.pollMs = 5;

    KillPlan plan;
    plan.kills = {{1, 1}};
    plan.maxRespawns = 0; // the first drain is final
    InProcessStats stats;
    const IslandMerge merge = runIslandsInProcess(
        fe, IpvFamily::Gippr, p, plan, &stats);
    ASSERT_EQ(merge.finals.size(), 1u);
    EXPECT_EQ(merge.finals.front().island, 0u);
    ASSERT_EQ(merge.missing.size(), 1u);
    EXPECT_EQ(merge.missing.front(), 1u);
    EXPECT_GT(merge.exchangesMissed, 0u);
    EXPECT_EQ(stats.respawns[1], 0u);
}

TEST(IslandWorker, ResumeAfterDrainContinuesFromCheckpoint)
{
    // Drain via stopHook at generation 2, then resume in a fresh call
    // (bumped incarnation, like a respawned process) and compare to
    // an undisturbed single-island run.
    fs::path dir_ref = scratchDir("island_resume_ref");
    fs::path dir = scratchDir("island_resume");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams ref_params = smallParams(dir_ref.string(), 1);
    IslandParams p = smallParams(dir.string(), 1);

    IslandWorkerOptions ref_opts;
    ref_opts.island = 0;
    ref_opts.watchShutdown = false;
    const IslandOutcome reference =
        runIslandWorker(fe, IpvFamily::Gippr, ref_params, ref_opts);

    IslandWorkerOptions first;
    first.island = 0;
    first.watchShutdown = false;
    first.stopHook = [](uint64_t done) { return done == 2; };
    const IslandOutcome drained =
        runIslandWorker(fe, IpvFamily::Gippr, p, first);
    EXPECT_TRUE(drained.interrupted);
    EXPECT_EQ(drained.state.generation, 2u);

    IslandWorkerOptions second;
    second.island = 0;
    second.incarnation = 1;
    second.watchShutdown = false;
    const IslandOutcome resumed =
        runIslandWorker(fe, IpvFamily::Gippr, p, second);
    EXPECT_FALSE(resumed.interrupted);
    expectSamePopulation(resumed.state.population,
                         reference.state.population);

    // A third call short-circuits on the final artifact.
    const IslandOutcome again =
        runIslandWorker(fe, IpvFamily::Gippr, p, second);
    EXPECT_FALSE(again.interrupted);
    expectSamePopulation(again.state.population,
                         reference.state.population);
}

TEST(IslandMerge, TieBreakOrderIsDeterministic)
{
    // Equal-fitness individuals across islands order by IPV bytes, so
    // the merged population never depends on island completion order.
    fs::path dir = scratchDir("island_tie");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 2);
    const uint64_t config =
        islandConfigDigest(p, IpvFamily::Gippr, fe);
    const uint64_t suite = fe.traceSetDigest();

    Rng rng(7);
    for (uint32_t i = 0; i < 2; ++i) {
        IslandCheckpoint ck;
        ck.configDigest = config;
        ck.suiteDigest = suite;
        ck.island = i;
        ck.generation = p.generations;
        ck.history.assign(p.generations + 1, 1.0);
        for (int k = 0; k < 4; ++k)
            ck.population.push_back({randomIpv(16, rng), 1.0});
        saveIslandCheckpoint(finalPath(p.workdir, i), ck, true);
    }

    const IslandMerge merge =
        mergeIslands(p, IpvFamily::Gippr, fe, false);
    ASSERT_EQ(merge.result.finalPopulation.size(), 8u);
    for (size_t i = 1; i < merge.result.finalPopulation.size(); ++i) {
        const auto &prev = merge.result.finalPopulation[i - 1];
        const auto &cur = merge.result.finalPopulation[i];
        EXPECT_TRUE(prev.fitness > cur.fitness ||
                    (prev.fitness == cur.fitness &&
                     !(cur.ipv.entries() < prev.ipv.entries())))
            << "position " << i;
    }
}

TEST(IslandMerge, RefusesNonFinalIslands)
{
    // A state checkpoint masquerading as final (wrong kind) and a
    // final checkpoint of a half-finished island must both be
    // rejected — the merge only folds completed islands.
    fs::path dir = scratchDir("island_nonfinal");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 1);
    const uint64_t config =
        islandConfigDigest(p, IpvFamily::Gippr, fe);

    IslandCheckpoint ck;
    ck.configDigest = config;
    ck.suiteDigest = fe.traceSetDigest();
    ck.island = 0;
    ck.generation = 2; // not params.generations
    ck.history.assign(3, 1.0);
    Rng rng(9);
    ck.population.push_back({randomIpv(16, rng), 1.0});

    // Wrong kind at the final path.
    saveIslandCheckpoint(finalPath(p.workdir, 0), ck, false);
    EXPECT_THROW(mergeIslands(p, IpvFamily::Gippr, fe, false),
                 std::runtime_error);

    // Right kind, wrong generation count.
    saveIslandCheckpoint(finalPath(p.workdir, 0), ck, true);
    EXPECT_THROW(mergeIslands(p, IpvFamily::Gippr, fe, false),
                 std::runtime_error);
}

TEST(IslandWorker, RejectsOutOfRangeIslandAndForeignCheckpoint)
{
    fs::path dir = scratchDir("island_guard");
    FitnessEvaluator fe = makeEvaluator();
    IslandParams p = smallParams(dir.string(), 2);

    IslandWorkerOptions opts;
    opts.island = 5;
    EXPECT_THROW(runIslandWorker(fe, IpvFamily::Gippr, p, opts),
                 std::runtime_error);
}

} // namespace
} // namespace gippr::island
