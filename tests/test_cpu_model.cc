/**
 * @file
 * Tests for the interval CPU model.
 */

#include <gtest/gtest.h>

#include "sim/cpu_model.hh"

namespace gippr
{
namespace
{

TEST(CpuModel, L1HitsRunAtIssueWidth)
{
    CpuParams p;
    p.width = 4;
    CpuModel m(p);
    for (int i = 0; i < 1000; ++i)
        m.step(4, HitLevel::L1);
    m.drain();
    EXPECT_NEAR(m.ipc(), 4.0, 1e-9);
}

TEST(CpuModel, IpcNeverExceedsWidth)
{
    CpuParams p;
    p.width = 4;
    CpuModel m(p);
    for (int i = 0; i < 100; ++i)
        m.step(1, HitLevel::L1);
    m.drain();
    EXPECT_LE(m.ipc(), 4.0 + 1e-9);
}

TEST(CpuModel, MemoryMissesAddLatency)
{
    CpuParams p;
    CpuModel hits(p), misses(p);
    for (int i = 0; i < 100; ++i) {
        hits.step(10, HitLevel::L1);
        misses.step(10, HitLevel::Memory);
    }
    hits.drain();
    misses.drain();
    EXPECT_GT(misses.cycles(), hits.cycles());
    EXPECT_LT(misses.ipc(), hits.ipc());
}

TEST(CpuModel, LatencyOrderingAcrossLevels)
{
    auto run = [](HitLevel level) {
        CpuModel m{CpuParams{}};
        for (int i = 0; i < 200; ++i)
            m.step(4, level);
        m.drain();
        return m.ipc();
    };
    double l1 = run(HitLevel::L1);
    double l2 = run(HitLevel::L2);
    double llc = run(HitLevel::Llc);
    double mem = run(HitLevel::Memory);
    EXPECT_GT(l1, l2);
    EXPECT_GT(l2, llc);
    EXPECT_GT(llc, mem);
}

TEST(CpuModel, MlpOverlapsAdjacentMisses)
{
    // Two misses issued back-to-back (within the window) must cost
    // far less than two serialized misses.
    CpuParams p;
    p.robSize = 128;
    CpuModel overlapped(p);
    overlapped.step(1, HitLevel::Memory);
    overlapped.step(1, HitLevel::Memory);
    overlapped.drain();

    CpuModel serial(p);
    serial.step(1, HitLevel::Memory);
    // Separate the misses by more than the window: the model must
    // stall on the first before issuing the second.
    serial.step(400, HitLevel::Memory);
    serial.drain();

    EXPECT_LT(overlapped.cycles(), 1.5 * p.latMemory);
    EXPECT_GT(serial.cycles(), 2.0 * p.latMemory);
}

TEST(CpuModel, WindowLimitSerializesDistantMisses)
{
    // Misses robSize apart cannot overlap.
    CpuParams p;
    p.robSize = 64;
    CpuModel m(p);
    m.step(1, HitLevel::Memory);
    m.step(65, HitLevel::Memory); // oldest falls outside the window
    m.drain();
    EXPECT_GT(m.cycles(), 2.0 * p.latMemory * 0.9);
}

TEST(CpuModel, MshrLimitBoundsOutstanding)
{
    CpuParams p;
    p.mshrs = 2;
    p.robSize = 1024;
    CpuModel m(p);
    // Four adjacent misses with only 2 MSHRs: roughly two waves.
    for (int i = 0; i < 4; ++i)
        m.step(1, HitLevel::Memory);
    m.drain();
    EXPECT_GT(m.cycles(), 1.9 * p.latMemory);
}

TEST(CpuModel, DrainWaitsForOutstanding)
{
    CpuParams p;
    CpuModel m(p);
    m.step(1, HitLevel::Memory);
    double before = m.cycles();
    m.drain();
    EXPECT_GT(m.cycles(), before);
    EXPECT_GE(m.cycles(), p.latMemory);
}

TEST(CpuModel, ClearStatsStartsMeasuredRegion)
{
    CpuModel m{CpuParams{}};
    for (int i = 0; i < 100; ++i)
        m.step(10, HitLevel::Memory);
    m.clearStats();
    EXPECT_EQ(m.instructions(), 0u);
    EXPECT_DOUBLE_EQ(m.cycles(), 0.0);
    for (int i = 0; i < 100; ++i)
        m.step(10, HitLevel::L1);
    m.drain();
    EXPECT_EQ(m.instructions(), 1000u);
    EXPECT_GT(m.ipc(), 0.0);
}

TEST(CpuModel, MoreMissesMeansLowerIpc)
{
    auto run = [](int miss_every) {
        CpuModel m{CpuParams{}};
        for (int i = 0; i < 2000; ++i) {
            bool miss = i % miss_every == 0;
            m.step(5, miss ? HitLevel::Memory : HitLevel::L1);
        }
        m.drain();
        return m.ipc();
    };
    EXPECT_GT(run(100), run(10));
    EXPECT_GT(run(10), run(2));
}

} // namespace
} // namespace gippr
