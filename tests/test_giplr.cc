/**
 * @file
 * Tests for GIPLR (IPV-driven true-LRU replacement).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "core/giplr.hh"
#include "core/vectors.hh"
#include "policies/lru.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
addrOf(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

TEST(Giplr, RejectsMismatchedArity)
{
    CacheConfig c = cfg(4, 8);
    EXPECT_THROW(GiplrPolicy(c, Ipv::lru(16)), std::runtime_error);
}

TEST(Giplr, LruVectorBehavesExactlyLikeLru)
{
    // Property: GIPLR with the all-zero IPV is precisely true LRU;
    // replay a random access stream against both and compare every
    // hit/miss and eviction decision.
    CacheConfig c = cfg(8, 4);
    SetAssocCache lru(c, std::make_unique<LruPolicy>(c));
    SetAssocCache giplr(c,
                        std::make_unique<GiplrPolicy>(c, Ipv::lru(4)));
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = addrOf(c, rng.nextBounded(8),
                               rng.nextBounded(12));
        AccessResult a = lru.access(addr, AccessType::Load);
        AccessResult b = giplr.access(addr, AccessType::Load);
        ASSERT_EQ(a.hit, b.hit) << "access " << i;
        ASSERT_EQ(a.evictedBlock.has_value(),
                  b.evictedBlock.has_value());
        if (a.evictedBlock) {
            ASSERT_EQ(*a.evictedBlock, *b.evictedBlock);
        }
    }
    EXPECT_EQ(lru.stats().misses, giplr.stats().misses);
}

TEST(Giplr, LipVectorInsertsAtLruPosition)
{
    // With the LIP vector, a never-reused incoming block must be the
    // very next victim.
    CacheConfig c = cfg(2, 4);
    GiplrPolicy *raw;
    auto p = std::make_unique<GiplrPolicy>(c, Ipv::lruInsertion(4));
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // The set is full; the last-inserted block sits at LRU.
    AccessResult r = cache.access(addrOf(c, 0, 10), AccessType::Load);
    ASSERT_TRUE(r.evictedBlock.has_value());
    // Newly inserted block 10 now occupies the LRU position.
    EXPECT_EQ(raw->position(0, r.way), 3u);
}

TEST(Giplr, LipProtectsEstablishedWorkingSet)
{
    // Thrash pattern: a loop of 6 blocks in a 4-way set.  LRU gets
    // zero hits; LIP retains part of the working set and hits.
    CacheConfig c = cfg(2, 4);
    SetAssocCache lru(c, std::make_unique<LruPolicy>(c));
    SetAssocCache lip(
        c, std::make_unique<GiplrPolicy>(c, Ipv::lruInsertion(4)));
    for (int rep = 0; rep < 100; ++rep) {
        for (uint64_t t = 0; t < 6; ++t) {
            lru.access(addrOf(c, 0, t), AccessType::Load);
            lip.access(addrOf(c, 0, t), AccessType::Load);
        }
    }
    EXPECT_EQ(lru.stats().hits, 0u);
    EXPECT_GT(lip.stats().hits, 100u);
}

TEST(Giplr, PromotionFollowsVector)
{
    // Vector: promotion from position 3 goes to position 1.
    CacheConfig c = cfg(2, 4);
    GiplrPolicy *raw;
    auto p = std::make_unique<GiplrPolicy>(
        c, Ipv::parse("0 0 0 1 0"));
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (uint64_t t = 0; t < 4; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // Tag 0 is now at position 3 (LRU).  Touch it: must land at 1.
    unsigned way0 = 0;
    ASSERT_EQ(raw->position(0, way0), 3u);
    cache.access(addrOf(c, 0, 0), AccessType::Load);
    EXPECT_EQ(raw->position(0, way0), 1u);
}

TEST(Giplr, InsertionPositionHonored)
{
    // Insertion at position 2 of 4.
    CacheConfig c = cfg(2, 4);
    GiplrPolicy *raw;
    auto p = std::make_unique<GiplrPolicy>(c, Ipv::parse("0 0 0 0 2"));
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (uint64_t t = 0; t < 5; ++t)
        cache.access(addrOf(c, 0, t), AccessType::Load);
    // The most recent insertion (tag 4) sits at position 2.
    unsigned pos_sum = 0;
    for (unsigned w = 0; w < 4; ++w)
        pos_sum += raw->position(0, w);
    EXPECT_EQ(pos_sum, 0u + 1u + 2u + 3u); // permutation intact
    // Find tag 4's way via the cache and check its position.
    AccessResult r = cache.access(addrOf(c, 0, 4), AccessType::Load);
    ASSERT_TRUE(r.hit);
}

TEST(Giplr, PaperVectorRunsWithoutViolatingInvariants)
{
    CacheConfig c = cfg(16, 16);
    GiplrPolicy *raw;
    auto p = std::make_unique<GiplrPolicy>(c, paper_vectors::giplr());
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    Rng rng(31);
    for (int i = 0; i < 50000; ++i) {
        uint64_t addr = addrOf(c, rng.nextBounded(16),
                               rng.nextBounded(40));
        cache.access(addr, AccessType::Load);
    }
    // Positions remain a permutation in every set.
    for (uint64_t s = 0; s < 16; ++s) {
        unsigned sum = 0;
        for (unsigned w = 0; w < 16; ++w)
            sum += raw->position(s, w);
        EXPECT_EQ(sum, 120u) << s;
    }
}

TEST(Giplr, StateBitsMatchLru)
{
    CacheConfig c = CacheConfig::paperLlc();
    GiplrPolicy p(c, paper_vectors::giplr());
    EXPECT_EQ(p.stateBitsPerSet(), 64u);
}

} // namespace
} // namespace gippr
