/**
 * @file
 * Unit tests for util/stats.hh.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace gippr
{
namespace
{

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
}

TEST(Stats, MeanSingle)
{
    EXPECT_DOUBLE_EQ(mean({7.5}), 7.5);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_NEAR(geomean({1.05, 1.05, 1.05}), 1.05, 1e-12);
}

TEST(Stats, GeomeanBelowArithmeticMean)
{
    std::vector<double> v{1.0, 2.0, 3.0, 10.0};
    EXPECT_LT(geomean(v), mean(v));
}

TEST(Stats, StddevBasic)
{
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0,
                1e-12);
}

TEST(Stats, StddevConstantZero)
{
    EXPECT_DOUBLE_EQ(stddev({3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, MinMax)
{
    std::vector<double> v{3.0, -1.0, 9.0, 2.0};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 9.0);
}

TEST(Stats, WeightedMeanBasic)
{
    // SimPoint-style combine: weights 3:1.
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 5.0}, {3.0, 1.0}), 2.0);
}

TEST(Stats, WeightedMeanUniformEqualsMean)
{
    std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(weightedMean(v, {1.0, 1.0, 1.0}), mean(v));
}

TEST(Stats, WeightedMeanIgnoresZeroWeight)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 100.0}, {1.0, 0.0}), 1.0);
}

TEST(Stats, MedianOdd)
{
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, MedianEvenInterpolates)
{
    EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, PercentileEndpoints)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Stats, PercentileInterpolation)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(RunningStats, MatchesBatch)
{
    std::vector<double> v{1.0, 2.5, 3.5, 8.0, -1.0};
    RunningStats rs;
    for (double x : v)
        rs.add(x);
    EXPECT_EQ(rs.count(), v.size());
    EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats rs;
    rs.add(4.2);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.2);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

} // namespace
} // namespace gippr
