/**
 * @file
 * Tests for DGIPPR (set-dueling dynamic GIPPR).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "core/dgippr.hh"
#include "core/gippr.hh"
#include "core/vectors.hh"
#include "util/rng.hh"

namespace gippr
{
namespace
{

CacheConfig
cfg(unsigned sets, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.blockBytes = 64;
    c.assoc = ways;
    c.sizeBytes = static_cast<uint64_t>(sets) * ways * 64;
    return c;
}

uint64_t
addrOf(const CacheConfig &c, uint64_t set, uint64_t tag)
{
    return ((tag << c.setShift()) | set) << c.blockShift();
}

std::vector<Ipv>
pmruVsPlru()
{
    return {Ipv::lru(16), Ipv::lruInsertion(16)};
}

TEST(Dgippr, RejectsSingleVector)
{
    CacheConfig c = cfg(64, 16);
    EXPECT_THROW(DgipprPolicy(c, {Ipv::lru(16)}, 4),
                 std::runtime_error);
}

TEST(Dgippr, RejectsMismatchedArity)
{
    CacheConfig c = cfg(64, 16);
    EXPECT_THROW(DgipprPolicy(c, {Ipv::lru(16), Ipv::lru(8)}, 4),
                 std::runtime_error);
}

TEST(Dgippr, NameReflectsVectorCount)
{
    CacheConfig c = cfg(64, 16);
    EXPECT_EQ(DgipprPolicy(c, pmruVsPlru(), 4).name(), "2-DGIPPR");
    EXPECT_EQ(DgipprPolicy(c, local_vectors::dgippr4(), 4).name(),
              "4-DGIPPR");
}

TEST(Dgippr, StorageMatchesPaperAccounting)
{
    CacheConfig c = CacheConfig::paperLlc();
    DgipprPolicy two(c, pmruVsPlru(), 32);
    EXPECT_EQ(two.stateBitsPerSet(), 15u);
    EXPECT_EQ(two.globalStateBits(), 11u);
    DgipprPolicy four(c, local_vectors::dgippr4(), 32);
    EXPECT_EQ(four.stateBitsPerSet(), 15u);
    EXPECT_EQ(four.globalStateBits(), 33u); // three 11-bit counters
}

TEST(Dgippr, ThrashingStreamSelectsLipVector)
{
    // A cyclic working set slightly larger than the cache thrashes
    // PMRU insertion but not PLRU insertion; the duel must converge
    // on the LIP-like vector (index 1).
    CacheConfig c = cfg(64, 16); // 1024-block cache
    DgipprPolicy *raw;
    auto p = std::make_unique<DgipprPolicy>(c, pmruVsPlru(), 4);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    // 1280 blocks cycling: 1.25x capacity.
    for (int rep = 0; rep < 40; ++rep)
        for (uint64_t b = 0; b < 1280; ++b)
            cache.access(b * 64, AccessType::Load);
    EXPECT_EQ(raw->currentWinner(), 1u);
}

TEST(Dgippr, RecencyFriendlyStreamSelectsPmruVector)
{
    // A working set that fits easily prefers classic PLRU behaviour;
    // both miss equally (never), so what matters is the reverse case:
    // use a Zipf-like hot pattern where MRU insertion wins.
    CacheConfig c = cfg(64, 16);
    DgipprPolicy *raw;
    auto p = std::make_unique<DgipprPolicy>(c, pmruVsPlru(), 4);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    // Each block is re-referenced after exactly one intervening
    // insert into its set (distance 128 blocks over 64 sets): PMRU
    // insertion keeps it resident, LIP has already evicted it from
    // the churn slot, so the duel must pick the PMRU vector.
    uint64_t next_block = 0;
    for (int i = 0; i < 200000; ++i) {
        uint64_t b = next_block++;
        cache.access(b * 64, AccessType::Load);
        if (b >= 128)
            cache.access((b - 128) * 64, AccessType::Load);
    }
    EXPECT_EQ(raw->currentWinner(), 0u);
}

TEST(Dgippr, LeaderSetsAlwaysUseOwnVector)
{
    // Construct a 2-vector policy and verify, via the public tree
    // accessor of a cloned GIPPR, that leader behaviour differs from
    // the winner on leader sets.  Indirect check: run a thrash loop;
    // even after vector 1 wins, PMRU leader sets keep missing (the
    // PSEL counter keeps moving), which only happens if leaders stay
    // on their own vector.
    CacheConfig c = cfg(64, 16);
    DgipprPolicy *raw;
    auto p = std::make_unique<DgipprPolicy>(c, pmruVsPlru(), 4);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    for (int rep = 0; rep < 20; ++rep)
        for (uint64_t b = 0; b < 1280; ++b)
            cache.access(b * 64, AccessType::Load);
    ASSERT_EQ(raw->currentWinner(), 1u);
    uint64_t misses_before = cache.stats().misses;
    for (int rep = 0; rep < 5; ++rep)
        for (uint64_t b = 0; b < 1280; ++b)
            cache.access(b * 64, AccessType::Load);
    // Follower sets now mostly hit; residual misses come from the
    // PMRU leader sets (plus LIP churn slots).
    uint64_t delta = cache.stats().misses - misses_before;
    EXPECT_GT(delta, 0u);
    // But far fewer misses than a pure-PMRU cache would take
    // (which would miss on every access: 5 * 1280).
    EXPECT_LT(delta, 5u * 1280u / 2u);
}

TEST(Dgippr, AdaptsWhenPhaseChanges)
{
    CacheConfig c = cfg(64, 16);
    DgipprPolicy *raw;
    auto p = std::make_unique<DgipprPolicy>(c, pmruVsPlru(), 4);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    // Phase 1: thrash -> LIP wins.
    for (int rep = 0; rep < 40; ++rep)
        for (uint64_t b = 0; b < 1280; ++b)
            cache.access(b * 64, AccessType::Load);
    EXPECT_EQ(raw->currentWinner(), 1u);
    // Phase 2: re-reference after one intervening same-set insert ->
    // PMRU wins again.
    uint64_t base = 1 << 20;
    uint64_t next_block = 0;
    for (int i = 0; i < 200000; ++i) {
        uint64_t b = base + next_block++;
        cache.access(b * 64, AccessType::Load);
        if (next_block >= 128)
            cache.access((b - 128) * 64, AccessType::Load);
    }
    EXPECT_EQ(raw->currentWinner(), 0u);
}

TEST(Dgippr, FourVectorDuelRuns)
{
    CacheConfig c = cfg(128, 16);
    SetAssocCache cache(
        c, std::make_unique<DgipprPolicy>(c, local_vectors::dgippr4(),
                                          8));
    Rng rng(83);
    for (int i = 0; i < 100000; ++i) {
        cache.access(addrOf(c, rng.nextBounded(128),
                            rng.nextBounded(32)),
                     AccessType::Load);
    }
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_GT(cache.stats().misses, 0u);
}

TEST(Dgippr, EightVectorTournamentRuns)
{
    CacheConfig c = cfg(256, 16);
    DgipprPolicy *raw;
    auto p = std::make_unique<DgipprPolicy>(
        c, local_vectors::dgippr8(), 8);
    raw = p.get();
    SetAssocCache cache(c, std::move(p));
    EXPECT_EQ(raw->globalStateBits(), 77u); // seven 11-bit counters
    Rng rng(89);
    for (int i = 0; i < 50000; ++i) {
        cache.access(addrOf(c, rng.nextBounded(256),
                            rng.nextBounded(64)),
                     AccessType::Load);
    }
    EXPECT_LT(raw->currentWinner(), 8u);
}

TEST(Dgippr, WritebacksDoNotTrainTheDuel)
{
    CacheConfig c = cfg(64, 16);
    DgipprPolicy policy(c, pmruVsPlru(), 4);
    unsigned before = policy.currentWinner();
    AccessInfo info;
    info.set = 0; // leader sets live at low offsets
    info.type = AccessType::Writeback;
    for (int i = 0; i < 5000; ++i)
        policy.onMiss(info);
    EXPECT_EQ(policy.currentWinner(), before);
}

} // namespace
} // namespace gippr
