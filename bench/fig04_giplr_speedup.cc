/**
 * @file
 * Figure 4: per-benchmark speedup of the GIPLR vector over LRU,
 * alongside PseudoLRU and Random replacement.
 *
 * The paper reports a 3.1% geometric-mean speedup for GIPLR, with
 * PLRU tracking LRU closely and Random near parity (99.9%).
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig04_giplr_speedup");
    Scale scale = resolveScale();
    banner("fig04_giplr_speedup: GIPLR vs LRU / PLRU / Random",
           "Figure 4 / Section 2.6");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("PLRU"),
        policyByName("Random"),
        giplrDef("GIPLR", local_vectors::giplr()),
    };
    session.recordPolicies(policies);

    ExperimentResult r = runPerfExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    size_t giplr = r.columnIndex("GIPLR");

    Table table =
        r.toNormalizedTable(lru, true, giplr);
    emitTable(table, "fig04");
    session.addResult("fig04", r);

    std::printf("\ngeomean speedups over LRU:\n");
    for (size_t c = 0; c < r.columns.size(); ++c) {
        std::printf("  %-8s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, true));
    }
    note("paper shape: GIPLR a few percent over LRU; PLRU ~= LRU; "
         "Random ~parity (better on some workloads, worse on others)");
    note("GIPLR vector used: " +
         local_vectors::giplr().toString());
    session.emit();
    return 0;
}
