/**
 * @file
 * Extension: IPVs generalized to RRIP (paper Section 7, future-work
 * item 5: "it may be adapted to other LRU-like algorithms such as
 * RRIP").
 *
 * Evolves a 2-bit re-reference vector with the same GA used for
 * GIPPR, then compares: SRRIP (the hand-designed point of the space),
 * the evolved RRIP-IPV, DRRIP, and 4-DGIPPR.
 */

#include <cstdio>

#include "common.hh"
#include "core/rrip_ipv.hh"
#include "core/vectors.hh"
#include "ga/genetic.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "ext_rrip_ipv");
    Scale scale = resolveScale();
    banner("ext_rrip_ipv: evolving re-reference vectors for RRIP",
           "Section 7, future-work item 5");

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();

    // Evolve on a cross-section of the suite (5-entry vectors: tiny
    // space, so a small GA suffices; exhaustive would be 4^5 = 1024).
    std::vector<std::string> training = {
        "stream_pure", "loop_thrash",  "loop_fit",   "chase_medium",
        "zipf_hot",    "hotcold_scan", "sd_bimodal", "mix_zipfscan",
    };
    std::vector<WorkloadTraces> workloads =
        fitnessWorkloads(suite, training, sys);
    std::vector<FitnessTrace> traces;
    for (auto &w : workloads)
        traces.insert(traces.end(), w.traces.begin(), w.traces.end());
    FitnessEvaluator fitness(sys.hier.llc, std::move(traces), {},
                             &session.timings());
    fitness.attachTelemetry(session.registry(), "fitness");

    GaParams params = scale.ga;
    params.timings = &session.timings();
    params.initialPopulation = 64;
    params.population = 32;
    params.generations = 8;
    params.seedIpvs = {RripIpvPolicy::srripVector()};
    params.seed = 0x881BB1;
    GaResult ga = evolveIpv(fitness, IpvFamily::RripIpv, params);
    std::printf("evolved re-reference vector: %s (fitness %.4f)\n",
                ga.best.toString().c_str(), ga.bestFitness);
    std::printf("SRRIP point of the space:    %s (fitness %.4f)\n\n",
                RripIpvPolicy::srripVector().toString().c_str(),
                fitness.evaluate(RripIpvPolicy::srripVector(),
                                 IpvFamily::RripIpv));

    // Full-suite miss comparison.
    ExperimentConfig cfg = session.experimentConfig(scale);
    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("SRRIP"),
        rripIpvDef("RRIP-IPV", ga.best),
        policyByName("DRRIP"),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);
    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    Table table = r.toNormalizedTable(lru, false, std::nullopt);
    emitTable(table, "ext_rrip_ipv");
    session.addResult("ext_rrip_ipv", r);
    session.setConfig("evolved_rrip_ipv",
                      telemetry::JsonValue(ga.best.toString()));

    std::printf("\ngeomean normalized MPKI (LRU = 1.0):\n");
    for (size_t c = 0; c < r.columns.size(); ++c)
        std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, false));
    note("expected shape: the evolved re-reference vector at least "
         "matches hand-designed SRRIP, confirming the IPV idea "
         "transfers to RRIP-style coarse recency");
    session.emit();
    return 0;
}
