/**
 * @file
 * Storage-overhead table (Sections 3.6 and 5.1).
 *
 * The paper's cost argument at a 4MB, 16-way, 64B-line LLC:
 *   LRU        4 bits/block  (64 bits/set,  32 KB total)
 *   DRRIP      2 bits/block  (32 bits/set,  16 KB total) + 1 PSEL
 *   PDP        4 bits/block  (           ~  32 KB) + microcontroller
 *   SHiP       5 bits/block  + SHCT + PC transport to the LLC
 *   PLRU      15 bits/set    (< 0.94 bits/block, ~7 KB)
 *   GIPPR     15 bits/set    (same as PLRU)
 *   2-DGIPPR  15 bits/set    + one 11-bit counter
 *   4-DGIPPR  15 bits/set    + three 11-bit counters (33 bits/LLC)
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "tab_overhead");
    banner("tab_overhead: replacement-state storage comparison",
           "Sections 3.6 and 5.1 (storage discussion)");

    CacheConfig llc = CacheConfig::paperLlc();
    session.setConfig("llc", toJson(llc));
    const double sets = static_cast<double>(llc.sets());
    const double blocks = sets * llc.assoc;

    std::vector<PolicyDef> policies = {
        policyByName("Random"),
        policyByName("FIFO"),
        policyByName("PLRU"),
        policyByName("LRU"),
        policyByName("DIP"),
        policyByName("SRRIP"),
        policyByName("DRRIP"),
        policyByName("PDP"),
        policyByName("SHiP"),
        gipprDef("GIPPR", local_vectors::gippr()),
        dgipprDef("2-DGIPPR", local_vectors::dgippr2()),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };

    Table table({"policy", "bits/set", "bits/block", "KB per 4MB LLC",
                 "global bits"});
    for (const auto &def : policies) {
        auto p = def.make(llc);
        double per_set = static_cast<double>(p->stateBitsPerSet());
        double total_kb = per_set * sets / 8.0 / 1024.0;
        table.newRow()
            .add(def.name)
            .add(static_cast<uint64_t>(p->stateBitsPerSet()))
            .add(per_set * sets / blocks, 3)
            .add(total_kb, 2)
            .add(static_cast<uint64_t>(p->globalStateBits()));
    }
    emitTable(table, "tab_overhead");
    session.recordPolicies(policies);
    session.addTable("tab_overhead", "bits", table);

    note("paper shape: GIPPR/DGIPPR cost exactly PLRU (15 bits/set, "
         "under one bit per block, ~7KB) versus 32KB for LRU/DIP, "
         "16KB for DRRIP, 32KB+microcontroller for PDP; DGIPPR's "
         "dueling counters add only 11-33 bits to the whole chip");
    session.emit();
    return 0;
}
