/**
 * @file
 * Figure 11: MPKI normalized to LRU — DRRIP vs PDP vs 4-DGIPPR vs MIN.
 *
 * The paper: 4-DGIPPR 91.0%, DRRIP 91.5%, PDP 90.2% of LRU misses;
 * MIN 67.5%.  The point is the cluster: DGIPPR matches the state of
 * the art with half (DRRIP) to a quarter (PDP) of the metadata.
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig11_mpki_compare");
    Scale scale = resolveScale();
    banner("fig11_mpki_compare: DRRIP / PDP / 4-DGIPPR misses vs MIN",
           "Figure 11 / Section 5.1");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);
    cfg.includeMin = true;

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("DRRIP"),
        policyByName("PDP"),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);

    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    size_t drrip = r.columnIndex("DRRIP");
    Table table = r.toNormalizedTable(lru, false, drrip);
    emitTable(table, "fig11");
    session.addResult("fig11", r);

    std::printf("\ngeomean normalized MPKI (LRU = 1.0):\n");
    for (size_t c = 0; c < r.columns.size(); ++c) {
        std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, false));
    }
    std::printf("\nreplacement state at the paper's 4MB/16-way LLC:\n");
    CacheConfig paper = CacheConfig::paperLlc();
    for (const char *name : {"DRRIP", "PDP"}) {
        auto p = policyByName(name).make(paper);
        std::printf("  %-10s %zu bits/set\n", name,
                    p->stateBitsPerSet());
    }
    std::printf("  %-10s %zu bits/set\n", "4-DGIPPR",
                dgipprDef("4-DGIPPR", local_vectors::dgippr4())
                    .make(paper)
                    ->stateBitsPerSet());
    note("paper shape: the three high-performance policies cluster "
         "well below LRU; DGIPPR achieves the cluster at a fraction "
         "of the state; MIN shows large remaining headroom");
    session.emit();
    return 0;
}
