/**
 * @file
 * Ablation: local refinement of evolved vectors (Section 2.6).
 *
 * The paper notes that its GA vector is not locally optimal: zeroing
 * the first 12 elements of the GIPLR vector nudged the speedup from
 * 3.1% to 3.12%, and hill climbing could refine further.  This bench
 * reproduces both observations: it evaluates the paper's vector, the
 * zeroed-prefix variant, and a hill-climbed refinement.
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"
#include "ga/hill_climb.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "abl_hillclimb");
    Scale scale = resolveScale();
    banner("abl_hillclimb: local refinement of evolved vectors",
           "Section 2.6 (vector refinement)");

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);
    session.setConfig("system", toJson(sys));

    std::vector<std::string> training = {
        "stream_pure", "loop_thrash", "loop_fit",   "chase_medium",
        "zipf_hot",    "hotcold_scan", "sd_bimodal", "mix_zipfscan",
    };
    std::vector<WorkloadTraces> workloads =
        fitnessWorkloads(suite, training, sys);
    std::vector<FitnessTrace> traces;
    for (auto &w : workloads)
        traces.insert(traces.end(), w.traces.begin(), w.traces.end());
    FitnessEvaluator fitness(sys.hier.llc, std::move(traces), {},
                             &session.timings());
    fitness.attachTelemetry(session.registry(), "fitness");

    const Ipv base = paper_vectors::giplr();
    std::vector<uint8_t> zeroed_entries = base.entries();
    for (size_t i = 0; i < 12; ++i)
        zeroed_entries[i] = 0;
    const Ipv zeroed(zeroed_entries);

    double f_base = fitness.evaluate(base, IpvFamily::Giplr);
    double f_zeroed = fitness.evaluate(zeroed, IpvFamily::Giplr);
    std::printf("paper GIPLR vector      %s  fitness %.4f\n",
                base.toString().c_str(), f_base);
    std::printf("zeroed-prefix variant   %s  fitness %.4f\n",
                zeroed.toString().c_str(), f_zeroed);

    size_t budget = scale.quick ? 400 : 3000;
    HillClimbResult hc =
        hillClimb(fitness, IpvFamily::Giplr, base, budget);
    std::printf("hill-climbed refinement %s  fitness %.4f "
                "(%zu evals, %zu improving steps)\n",
                hc.best.toString().c_str(), hc.bestFitness,
                hc.evaluations, hc.steps);

    Table table({"vector", "estimated speedup over LRU"});
    table.newRow().add("paper GIPLR").add(f_base, 4);
    table.newRow().add("first-12 zeroed").add(f_zeroed, 4);
    table.newRow().add("hill-climbed").add(hc.bestFitness, 4);
    emitTable(table, "abl_hillclimb");
    session.addTable("abl_hillclimb", "estimated speedup over LRU",
                     table);

    note("paper shape: the evolved vector is not locally optimal — "
         "small local edits (zeroing the prefix, hill climbing) give "
         "small further improvements");
    session.emit();
    return 0;
}
