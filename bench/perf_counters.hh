/**
 * @file
 * Hardware performance counters for the profiling benches.
 *
 * Wraps perf_event_open: a fixed set of architectural counters
 * (instructions, cycles, L1d/LLC read misses, last-level references)
 * opened per process, started/stopped around a measured region, and
 * read as plain u64 deltas.  Every counter is optional — containers,
 * VMs without a PMU, and non-Linux hosts simply report it as
 * unavailable and the harness falls back to wall-clock-only
 * attribution — so benches can use this unconditionally.  The no-op
 * fallback keeps the same API on every platform.
 */

#ifndef GIPPR_BENCH_PERF_COUNTERS_HH_
#define GIPPR_BENCH_PERF_COUNTERS_HH_

#include <cstdint>
#include <string>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace gippr::bench
{

/** One perf event's identity and latest measured delta. */
struct PerfCounter
{
    std::string name; ///< e.g. "instructions", "l1d_read_miss"
    bool available = false;
    uint64_t value = 0;
#if defined(__linux__)
    int fd = -1;
#endif
};

/**
 * The standard counter set for kernel profiling.  Construct once,
 * then bracket each measured region with start()/stop(); counters()
 * holds the deltas of the last region.  available() is false when no
 * counter opened (no PMU / permissions) — values read 0 and the
 * calls are no-ops.
 */
class PerfCounterSet
{
  public:
    PerfCounterSet()
    {
#if defined(__linux__)
        open("instructions", PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_INSTRUCTIONS);
        open("cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
        open("l1d_read_miss", PERF_TYPE_HW_CACHE,
             cacheConfig(PERF_COUNT_HW_CACHE_L1D,
                         PERF_COUNT_HW_CACHE_OP_READ,
                         PERF_COUNT_HW_CACHE_RESULT_MISS));
        open("llc_read_miss", PERF_TYPE_HW_CACHE,
             cacheConfig(PERF_COUNT_HW_CACHE_LL,
                         PERF_COUNT_HW_CACHE_OP_READ,
                         PERF_COUNT_HW_CACHE_RESULT_MISS));
        open("cache_references", PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_CACHE_REFERENCES);
        open("cache_misses", PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_CACHE_MISSES);
#else
        // Portable no-op: the same counter names, all unavailable.
        for (const char *n :
             {"instructions", "cycles", "l1d_read_miss",
              "llc_read_miss", "cache_references", "cache_misses"})
            counters_.push_back({n, false, 0});
#endif
    }

    ~PerfCounterSet()
    {
#if defined(__linux__)
        for (PerfCounter &c : counters_)
            if (c.fd >= 0)
                close(c.fd);
#endif
    }

    PerfCounterSet(const PerfCounterSet &) = delete;
    PerfCounterSet &operator=(const PerfCounterSet &) = delete;

    /** True when at least one hardware counter opened. */
    bool
    available() const
    {
        for (const PerfCounter &c : counters_)
            if (c.available)
                return true;
        return false;
    }

    /** Reset and enable every open counter. */
    void
    start()
    {
#if defined(__linux__)
        for (PerfCounter &c : counters_) {
            if (c.fd < 0)
                continue;
            ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
            ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
        }
#endif
    }

    /** Disable and read every open counter into value. */
    void
    stop()
    {
#if defined(__linux__)
        for (PerfCounter &c : counters_) {
            if (c.fd < 0)
                continue;
            ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
            uint64_t v = 0;
            if (read(c.fd, &v, sizeof(v)) == sizeof(v))
                c.value = v;
            else
                c.value = 0;
        }
#endif
    }

    const std::vector<PerfCounter> &counters() const
    {
        return counters_;
    }

    /** Last delta of the named counter; 0 when unavailable. */
    uint64_t
    value(const std::string &name) const
    {
        for (const PerfCounter &c : counters_)
            if (c.name == name)
                return c.value;
        return 0;
    }

  private:
#if defined(__linux__)
    static uint64_t
    cacheConfig(uint64_t cache, uint64_t op, uint64_t result)
    {
        return cache | (op << 8) | (result << 16);
    }

    void
    open(const char *name, uint32_t type, uint64_t config)
    {
        struct perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = type;
        attr.config = config;
        attr.disabled = 1;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        const long fd = syscall(__NR_perf_event_open, &attr, 0, -1,
                                -1, 0);
        PerfCounter c;
        c.name = name;
        c.fd = static_cast<int>(fd);
        c.available = fd >= 0;
        counters_.push_back(c);
    }
#endif

    std::vector<PerfCounter> counters_;
};

} // namespace gippr::bench

#endif // GIPPR_BENCH_PERF_COUNTERS_HH_
