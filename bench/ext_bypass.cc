/**
 * @file
 * Extension: DGIPPR combined with dueled cache bypass (paper Section
 * 7, future-work item 1).
 *
 * Compares GIPPR against B-GIPPR (the same vector plus a set-dueled
 * bimodal bypass side) on the suite's miss counts, and reports how
 * often the bypass side wins and how much traffic it skips.
 */

#include <cstdio>

#include "cache/replay.hh"
#include "common.hh"
#include "core/bypass_gippr.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "ext_bypass");
    Scale scale = resolveScale();
    banner("ext_bypass: set-dueled bypass on top of GIPPR",
           "Section 7, future-work item 1");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        gipprDef("GIPPR", local_vectors::gippr()),
        bypassGipprDef("B-GIPPR", local_vectors::gippr()),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);
    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    Table table = r.toNormalizedTable(lru, false, std::nullopt);
    emitTable(table, "ext_bypass");
    session.addResult("ext_bypass", r);

    std::printf("\ngeomean normalized MPKI (LRU = 1.0):\n");
    for (size_t c = 0; c < r.columns.size(); ++c)
        std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, false));

    // Bypass behaviour on two archetypes.
    SystemParams sys = systemParams();
    for (const char *name : {"hotcold_stream", "loop_fit"}) {
        Workload w = SyntheticSuite::materialize(suite.spec(name));
        Trace llc = demandOnlyTrace(Hierarchy::filterToLlc(
            *w.simpoints()[0].trace, sys.hier, lruFactory(),
            lruFactory()));
        auto policy = std::make_unique<BypassGipprPolicy>(
            sys.hier.llc, local_vectors::gippr());
        BypassGipprPolicy *raw = policy.get();
        SetAssocCache cache(sys.hier.llc, std::move(policy));
        replayTrace(cache, llc, llc.size() / 3);
        std::printf("\n%-16s bypassed %lu of %lu accesses; follower "
                    "side: %s\n",
                    name,
                    static_cast<unsigned long>(cache.stats().bypasses),
                    static_cast<unsigned long>(
                        cache.stats().demandAccesses),
                    raw->followersBypass() ? "bypass" : "insert");
    }
    note("observed shape (an honest negative result): with a "
         "PLRU-insertion vector the churn slot already confines "
         "pollution to 1/16 of each set, so full bypass has little "
         "left to save and its leader sets cost a little — consistent "
         "with the paper leaving bypass as future work rather than a "
         "headline result");
    session.emit();
    return 0;
}
