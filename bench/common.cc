/**
 * @file
 * Bench infrastructure implementation.
 */

#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ga/fitness.hh"

namespace gippr::bench
{

Scale
resolveScale()
{
    Scale s;
    const char *env = std::getenv("GIPPR_BENCH_SCALE");
    s.quick = !(env && std::string(env) == "full");
    if (s.quick) {
        s.accessesPerSimpoint = 300'000;
        s.randomSamples = 800;
        s.ga.initialPopulation = 48;
        s.ga.population = 24;
        s.ga.generations = 5;
    } else {
        s.accessesPerSimpoint = 1'000'000;
        s.randomSamples = 15000;
        s.ga.initialPopulation = 400;
        s.ga.population = 128;
        s.ga.generations = 30;
    }
    s.ga.threads = 8;
    s.threads = 8;
    return s;
}

SuiteParams
suiteParams(const Scale &scale)
{
    SuiteParams p;
    p.llcBlocks = 16384; // 1MB at 64B lines
    p.accessesPerSimpoint = scale.accessesPerSimpoint;
    p.baseSeed = 0x5eed;
    return p;
}

SystemParams
systemParams()
{
    SystemParams p;
    // Paper-shaped hierarchy scaled with the 1MB LLC: the L1/L2 keep
    // the paper's organizations, only the LLC shrinks (with the
    // workloads scaled to match).
    p.hier.l1 = CacheConfig::paperL1d();
    p.hier.l2 = CacheConfig::paperL2();
    p.hier.llc = CacheConfig::benchLlc();
    return p;
}

ExperimentConfig
experimentConfig(const Scale &scale)
{
    ExperimentConfig cfg;
    cfg.system = systemParams();
    cfg.threads = scale.threads;
    return cfg;
}

std::vector<WorkloadTraces>
fitnessWorkloads(const SyntheticSuite &suite,
                 const std::vector<std::string> &names,
                 const SystemParams &sys)
{
    std::vector<std::string> selected = names;
    if (selected.empty())
        selected = suite.names();
    std::vector<WorkloadTraces> out;
    out.reserve(selected.size());
    for (const std::string &name : selected) {
        Workload w = SyntheticSuite::materialize(suite.spec(name));
        WorkloadTraces wt;
        wt.name = name;
        std::vector<Workload> single;
        single.push_back(std::move(w));
        wt.traces = buildFitnessTraces(single, sys.hier);
        out.push_back(std::move(wt));
    }
    return out;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("============================================================\n");
}

void
emitTable(const Table &table, const std::string &csv_label)
{
    std::ostringstream text;
    table.print(text);
    std::fputs(text.str().c_str(), stdout);
    std::printf("\n--- CSV (%s) ---\n", csv_label.c_str());
    std::ostringstream csv;
    table.printCsv(csv);
    std::fputs(csv.str().c_str(), stdout);
}

void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace gippr::bench
