/**
 * @file
 * Bench infrastructure implementation.
 */

#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "ga/fitness.hh"
#include "util/log.hh"

namespace gippr::bench
{

namespace
{

/** Parse --json <path> / --json=<path> out of argv; "" when absent. */
std::string
parseJsonFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            if (i + 1 >= argc)
                fatal("--json requires a path argument");
            return argv[i + 1];
        }
        if (std::strncmp(arg, "--json=", 7) == 0)
            return arg + 7;
    }
    return "";
}

/** True when @p s parses fully as a floating-point number. */
bool
isNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

/** True when every cell of column @p col parses as a number. */
bool
numericColumn(const Table &table, size_t col)
{
    for (size_t r = 0; r < table.rows(); ++r) {
        if (!isNumeric(table.cell(r, col)))
            return false;
    }
    return table.rows() > 0;
}

} // namespace

Scale
resolveScale()
{
    Scale s;
    const char *env = std::getenv("GIPPR_BENCH_SCALE");
    s.quick = !(env && std::string(env) == "full");
    if (s.quick) {
        s.accessesPerSimpoint = 300'000;
        s.randomSamples = 800;
        s.ga.initialPopulation = 48;
        s.ga.population = 24;
        s.ga.generations = 5;
    } else {
        s.accessesPerSimpoint = 1'000'000;
        s.randomSamples = 15000;
        s.ga.initialPopulation = 400;
        s.ga.population = 128;
        s.ga.generations = 30;
    }
    s.ga.threads = 8;
    s.threads = 8;
    return s;
}

SuiteParams
suiteParams(const Scale &scale)
{
    SuiteParams p;
    p.llcBlocks = 16384; // 1MB at 64B lines
    p.accessesPerSimpoint = scale.accessesPerSimpoint;
    p.baseSeed = 0x5eed;
    return p;
}

SystemParams
systemParams()
{
    SystemParams p;
    // Paper-shaped hierarchy scaled with the 1MB LLC: the L1/L2 keep
    // the paper's organizations, only the LLC shrinks (with the
    // workloads scaled to match).
    p.hier.l1 = CacheConfig::paperL1d();
    p.hier.l2 = CacheConfig::paperL2();
    p.hier.llc = CacheConfig::benchLlc();
    return p;
}

ExperimentConfig
experimentConfig(const Scale &scale)
{
    ExperimentConfig cfg;
    cfg.system = systemParams();
    cfg.threads = scale.threads;
    return cfg;
}

std::vector<WorkloadTraces>
fitnessWorkloads(const SyntheticSuite &suite,
                 const std::vector<std::string> &names,
                 const SystemParams &sys)
{
    std::vector<std::string> selected = names;
    if (selected.empty())
        selected = suite.names();
    std::vector<WorkloadTraces> out;
    out.reserve(selected.size());
    for (const std::string &name : selected) {
        Workload w = SyntheticSuite::materialize(suite.spec(name));
        WorkloadTraces wt;
        wt.name = name;
        std::vector<Workload> single;
        single.push_back(std::move(w));
        wt.traces = buildFitnessTraces(single, sys.hier);
        out.push_back(std::move(wt));
    }
    return out;
}

Session::Session(int argc, char **argv, const std::string &name,
                 const std::string &kind)
    : jsonPath_(parseJsonFlag(argc, argv)), report_(kind, name)
{
}

ExperimentConfig
Session::experimentConfig(const Scale &scale)
{
    ExperimentConfig cfg = bench::experimentConfig(scale);
    cfg.registry = &registry_;
    cfg.timings = &timings_;
    cfg.replayEngine = &fastpath::defaultReplayEngine();
    cfg.traceCache = &traceCache_;
    if (!configRecorded_) {
        recordScale(scale);
        setConfig("system", toJson(cfg.system));
        setConfig("replay_backend",
                  telemetry::JsonValue(cfg.replayEngine->name()));
        SuiteParams sp = suiteParams(scale);
        setConfig("base_seed",
                  telemetry::JsonValue(static_cast<uint64_t>(sp.baseSeed)));
        configRecorded_ = true;
    }
    return cfg;
}

void
Session::recordScale(const Scale &scale)
{
    setConfig("scale", toJson(scale));
    setConfig("threads",
              telemetry::JsonValue(static_cast<uint64_t>(scale.threads)));
}

void
Session::recordPolicies(const std::vector<PolicyDef> &policies)
{
    telemetry::JsonValue names = telemetry::JsonValue::array();
    for (const PolicyDef &p : policies)
        names.push(telemetry::JsonValue(p.name));
    setConfig("policies", std::move(names));
}

void
Session::setConfig(const std::string &key, telemetry::JsonValue value)
{
    report_.setConfig(key, std::move(value));
}

void
applyKernelFlag(int argc, char **argv, Session &session)
{
    std::string requested;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--kernel" && i + 1 < argc)
            requested = argv[i + 1];
        else if (arg.rfind("--kernel=", 0) == 0)
            requested = arg.substr(9);
    }
    if (!requested.empty()) {
        fastpath::setReplayKernel(fastpath::parseReplayKernel(requested));
        session.setConfig("replay_kernel_requested",
                          telemetry::JsonValue(requested));
    }
    session.setConfig(
        "replay_kernel",
        telemetry::JsonValue(std::string(fastpath::replayKernelName(
            fastpath::activeReplayKernel()))));
}

void
Session::addResult(const std::string &title, const ExperimentResult &r)
{
    report_.addTable(r.toResultTable(title));
}

void
Session::addTable(const std::string &title, const std::string &metric,
                  const Table &table)
{
    telemetry::ResultTable rt;
    rt.title = title;
    rt.metric = metric;
    // Leading non-numeric columns name the rows; numeric columns are
    // the values.  (Purely numeric tables keep column 0 as the name.)
    size_t name_cols = 1;
    while (name_cols < table.columns() &&
           !numericColumn(table, name_cols)) {
        ++name_cols;
    }
    for (size_t c = name_cols; c < table.columns(); ++c)
        rt.columns.push_back(table.header(c));
    for (size_t r = 0; r < table.rows(); ++r) {
        telemetry::ResultRow row;
        for (size_t c = 0; c < name_cols; ++c) {
            if (c > 0)
                row.name += "/";
            row.name += table.cell(r, c);
        }
        for (size_t c = name_cols; c < table.columns(); ++c)
            row.values.push_back(std::strtod(table.cell(r, c).c_str(),
                                             nullptr));
        rt.rows.push_back(std::move(row));
    }
    report_.addTable(std::move(rt));
}

void
Session::emit()
{
    if (jsonPath_.empty())
        return;
    report_.setPhases(timings_);
    report_.setMetrics(registry_);
    report_.writeFile(jsonPath_);
    std::printf("\nwrote JSON artifact: %s\n", jsonPath_.c_str());
}

telemetry::JsonValue
toJson(const CacheConfig &cfg)
{
    telemetry::JsonValue v = telemetry::JsonValue::object();
    v.set("name", telemetry::JsonValue(cfg.name));
    v.set("size_bytes", telemetry::JsonValue(cfg.sizeBytes));
    v.set("assoc", telemetry::JsonValue(static_cast<uint64_t>(cfg.assoc)));
    v.set("block_bytes",
          telemetry::JsonValue(static_cast<uint64_t>(cfg.blockBytes)));
    return v;
}

telemetry::JsonValue
toJson(const SystemParams &sys)
{
    telemetry::JsonValue v = telemetry::JsonValue::object();
    v.set("l1", toJson(sys.hier.l1));
    v.set("l2", toJson(sys.hier.l2));
    v.set("llc", toJson(sys.hier.llc));
    v.set("warmup_fraction", telemetry::JsonValue(sys.warmupFraction));
    return v;
}

telemetry::JsonValue
toJson(const Scale &scale)
{
    telemetry::JsonValue v = telemetry::JsonValue::object();
    v.set("mode", telemetry::JsonValue(scale.quick ? "quick" : "full"));
    v.set("accesses_per_simpoint",
          telemetry::JsonValue(scale.accessesPerSimpoint));
    v.set("random_samples",
          telemetry::JsonValue(static_cast<uint64_t>(scale.randomSamples)));
    telemetry::JsonValue ga = telemetry::JsonValue::object();
    ga.set("initial_population",
           telemetry::JsonValue(
               static_cast<uint64_t>(scale.ga.initialPopulation)));
    ga.set("population",
           telemetry::JsonValue(static_cast<uint64_t>(scale.ga.population)));
    ga.set("generations",
           telemetry::JsonValue(
               static_cast<uint64_t>(scale.ga.generations)));
    ga.set("mutation_rate", telemetry::JsonValue(scale.ga.mutationRate));
    ga.set("seed", telemetry::JsonValue(scale.ga.seed));
    v.set("ga", std::move(ga));
    return v;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("============================================================\n");
}

void
emitTable(const Table &table, const std::string &csv_label)
{
    std::ostringstream text;
    table.print(text);
    std::fputs(text.str().c_str(), stdout);
    std::printf("\n--- CSV (%s) ---\n", csv_label.c_str());
    std::ostringstream csv;
    table.printCsv(csv);
    std::fputs(csv.str().c_str(), stdout);
}

void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace gippr::bench
