/**
 * @file
 * Figure 13: end-to-end speedup over LRU — DRRIP vs PDP vs 4-DGIPPR —
 * plus the memory-intensive subset summary of Section 5.2.2.
 *
 * The paper: 5.61% (4-DGIPPR) vs 5.41% (DRRIP) vs 5.69% (PDP) geomean
 * over all of SPEC; 15.6% / 15.6% / 16.4% on the memory-intensive
 * subset (workloads where DRRIP's speedup exceeds 1%); DGIPPR is the
 * most consistent (fewest sub-99% workloads).
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig13_speedup_compare");
    Scale scale = resolveScale();
    banner("fig13_speedup_compare: DRRIP / PDP / 4-DGIPPR speedup",
           "Figure 13 / Section 5.2.2");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("DRRIP"),
        policyByName("PDP"),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);

    ExperimentResult r = runPerfExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    size_t drrip = r.columnIndex("DRRIP");

    Table table = r.toNormalizedTable(lru, true, drrip);
    emitTable(table, "fig13");
    session.addResult("fig13", r);

    std::printf("\ngeomean speedup over LRU (all workloads):\n");
    for (size_t c = 0; c < r.columns.size(); ++c) {
        std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, true));
    }

    // Memory-intensive subset: DRRIP speedup over LRU exceeds 1%.
    std::vector<size_t> subset = r.subsetWhere(drrip, lru, true, 1.01);
    std::printf("\nmemory-intensive subset (DRRIP speedup > 1%%): "
                "%zu workloads\n",
                subset.size());
    for (size_t c = 0; c < r.columns.size(); ++c) {
        std::vector<double> vals;
        auto norm = r.normalized(c, lru, true);
        for (size_t i : subset)
            vals.push_back(std::max(norm[i], 1e-9));
        if (!vals.empty()) {
            std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                        geomean(vals));
        }
    }

    // Consistency: count workloads below 99% of LRU.
    std::printf("\nworkloads below 99%% of LRU performance:\n");
    for (size_t c = 0; c < r.columns.size(); ++c) {
        auto norm = r.normalized(c, lru, true);
        size_t below = 0;
        for (double v : norm)
            if (v < 0.99)
                ++below;
        std::printf("  %-10s %zu\n", r.columns[c].c_str(), below);
    }
    note("paper shape: the three policies deliver similar geomean "
         "gains over LRU, double-digit on the memory-intensive "
         "subset; DGIPPR matches DRRIP with half the state and is "
         "the most consistent");
    session.emit();
    return 0;
}
