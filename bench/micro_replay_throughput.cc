/**
 * @file
 * Replay-engine throughput: accesses/second for the scalar reference
 * vs the fast SoA backend (1 shard and one shard per hardware
 * thread), per policy, over the whole suite's filtered LLC traces.
 *
 * Every (policy, backend) cell replays the identical trace set, and
 * the fast results are checked bit-identical to scalar before being
 * timed in, so the speedup column compares equal work.  With --json
 * the table lands in the RunReport artifact (the CI nightly-profile
 * job archives it).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hh"
#include "core/vectors.hh"
#include "sim/fastpath/engine.hh"
#include "util/log.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

struct NamedTrace
{
    std::string workload;
    std::shared_ptr<const Trace> trace;
    size_t warmup;
};

double
onePass(const fastpath::ReplayEngine &engine,
        const fastpath::ReplaySpec &spec, const CacheConfig &llc,
        const std::vector<NamedTrace> &traces)
{
    const auto start = std::chrono::steady_clock::now();
    for (const NamedTrace &t : traces)
        engine.replay(spec, llc, *t.trace, t.warmup);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    return dt.count();
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "micro_replay_throughput");
    Scale scale = resolveScale();
    banner("micro_replay_throughput: scalar vs fast replay backends",
           "fast replay engine (infrastructure, not a paper figure)");

    applyKernelFlag(argc, argv, session);

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);

    // Filter every workload's simpoints to LLC traces once, through
    // the session memo (materialize/llc_filter phases are timed).
    std::vector<NamedTrace> traces;
    uint64_t total_accesses = 0;
    for (const WorkloadSpec &spec : suite.specs()) {
        const auto entries =
            session.traceCache().get(spec, sys.hier, &session.timings());
        for (const LlcTraceCache::Entry &entry : *entries) {
            traces.push_back({spec.name, entry.demandTrace,
                              entry.demandTrace->size() / 3});
            total_accesses += entry.demandTrace->size();
        }
    }
    std::printf("replaying %llu LLC accesses over %zu traces per cell\n\n",
                static_cast<unsigned long long>(total_accesses),
                traces.size());
    session.setConfig("trace_accesses",
                      telemetry::JsonValue(total_accesses));

    const fastpath::ScalarReplayEngine scalar;
    const fastpath::FastReplayEngine fast1(1);
    const auto fastN = fastpath::makeReplayEngine("fast", 0);
    const unsigned shards =
        dynamic_cast<const fastpath::FastReplayEngine &>(*fastN).shards();
    session.setConfig("fastN_shards",
                      telemetry::JsonValue(uint64_t{shards}));

    const std::vector<fastpath::ReplaySpec> specs = {
        fastpath::lruSpec(),
        fastpath::lipSpec(),
        fastpath::giplrSpec(local_vectors::giplr()),
        fastpath::plruSpec(),
        fastpath::gipprSpec(local_vectors::gippr()),
        fastpath::dgipprSpec(local_vectors::dgippr2()),
        fastpath::dgipprSpec(local_vectors::dgippr4()),
    };

    // Equal-work check: the timed backends must agree access-for-access
    // before their wall-clock is worth comparing.
    for (const fastpath::ReplaySpec &spec : specs) {
        for (const NamedTrace &t : traces) {
            const auto want =
                scalar.replay(spec, sys.hier.llc, *t.trace, t.warmup);
            if (fast1.replay(spec, sys.hier.llc, *t.trace, t.warmup) !=
                    want ||
                fastN->replay(spec, sys.hier.llc, *t.trace, t.warmup) !=
                    want) {
                fatal("fast backend diverged from scalar on " +
                      t.workload + " under " + spec.name());
            }
        }
    }

    const int reps = scale.quick ? 3 : 4;
    Table table({"policy", "scalar_Macc_s", "fast1_Macc_s",
                 "fastN_Macc_s", "speedup_fast1", "speedup_fastN"});
    double worst_fast1 = 0.0;
    bool first = true;
    for (const fastpath::ReplaySpec &spec : specs) {
        // Interleave the backends round-robin and keep each one's best
        // round: a transient machine-wide stall then lands on all
        // three backends instead of skewing one side of the ratio.
        double s_scalar = 0.0, s_fast1 = 0.0, s_fastn = 0.0;
        for (int r = 0; r < reps; ++r) {
            const double a = onePass(scalar, spec, sys.hier.llc, traces);
            const double b = onePass(fast1, spec, sys.hier.llc, traces);
            const double c = onePass(*fastN, spec, sys.hier.llc, traces);
            if (r == 0 || a < s_scalar)
                s_scalar = a;
            if (r == 0 || b < s_fast1)
                s_fast1 = b;
            if (r == 0 || c < s_fastn)
                s_fastn = c;
        }
        const double macc = static_cast<double>(total_accesses) / 1e6;
        table.newRow()
            .add(spec.name())
            .add(macc / s_scalar, 2)
            .add(macc / s_fast1, 2)
            .add(macc / s_fastn, 2)
            .add(s_scalar / s_fast1, 2)
            .add(s_scalar / s_fastn, 2);
        if (first || s_scalar / s_fast1 < worst_fast1)
            worst_fast1 = s_scalar / s_fast1;
        first = false;
    }
    emitTable(table, "replay_throughput");
    session.addTable("replay_throughput", "Maccesses_per_sec_or_speedup",
                     table);

    std::printf("\nworst single-shard speedup over scalar: %.2fx "
                "(fastN uses %u shards)\n",
                worst_fast1, shards);
    note("the packed SoA backend replays the same traces several times "
         "faster than the object-based simulator; sharding adds "
         "near-linear scaling on top for large set counts");
    session.emit();
    return 0;
}
