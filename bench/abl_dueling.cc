/**
 * @file
 * Ablation: set-dueling hyper-parameters — leader sets per policy and
 * PSEL counter width.
 *
 * The paper fixes 11-bit counters and standard leader-set counts
 * without exploring them; this ablation justifies those defaults:
 * very few leaders starve the duel of signal, very many waste cache
 * on the losing policy, and narrow counters flap on phase noise.
 */

#include <cstdio>

#include "common.hh"
#include "core/dgippr.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

PolicyDef
duelDef(const std::string &name, unsigned leaders, unsigned bits)
{
    return {name,
            [leaders, bits](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<DgipprPolicy>(
                        cfg, local_vectors::dgippr2(), leaders, bits));
            },
            fastpath::dgipprSpec(local_vectors::dgippr2(), leaders,
                                 bits)};
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "abl_dueling");
    Scale scale = resolveScale();
    banner("abl_dueling: leader-set count and PSEL width ablation",
           "Section 3.5-3.6 (set-dueling configuration)");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);

    // Part 1: leader sets per policy at 11-bit PSEL.
    {
        std::vector<PolicyDef> policies = {policyByName("LRU")};
        for (unsigned leaders : {1u, 8u, 32u, 128u}) {
            policies.push_back(duelDef(
                "leaders=" + std::to_string(leaders), leaders, 11));
        }
        ExperimentResult r = runMissExperiment(suite, policies, cfg);
        size_t lru = r.columnIndex("LRU");
        std::printf("\n-- leader sets per policy (2-DGIPPR, 11-bit "
                    "PSEL) --\n");
        Table table = r.toNormalizedTable(lru, false, std::nullopt);
        emitTable(table, "abl_dueling_leaders");
        session.addResult("abl_dueling_leaders", r);
        std::printf("\ngeomean normalized MPKI:\n");
        for (size_t c = 1; c < r.columns.size(); ++c)
            std::printf("  %-14s %.4f\n", r.columns[c].c_str(),
                        r.geomeanNormalized(c, lru, false));
    }

    // Part 2: PSEL width at 32 leaders.
    {
        std::vector<PolicyDef> policies = {policyByName("LRU")};
        for (unsigned bits : {4u, 7u, 11u, 14u}) {
            policies.push_back(
                duelDef("psel=" + std::to_string(bits), 32, bits));
        }
        ExperimentResult r = runMissExperiment(suite, policies, cfg);
        size_t lru = r.columnIndex("LRU");
        std::printf("\n-- PSEL counter width (2-DGIPPR, 32 leaders) "
                    "--\n");
        Table table = r.toNormalizedTable(lru, false, std::nullopt);
        emitTable(table, "abl_dueling_psel");
        session.addResult("abl_dueling_psel", r);
        std::printf("\ngeomean normalized MPKI:\n");
        for (size_t c = 1; c < r.columns.size(); ++c)
            std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                        r.geomeanNormalized(c, lru, false));
    }

    note("expected shape: broad plateau around the paper's choices "
         "(tens of leaders, ~11-bit counters); extremes degrade");
    session.emit();
    return 0;
}
