/**
 * @file
 * Ablation: associativity sweep.
 *
 * The paper's future-work item 6 asks how the technique behaves at
 * higher associativity.  This bench holds LLC capacity at 1MB and
 * sweeps 4/8/16/32 ways, comparing LRU, PLRU, DRRIP and 2-DGIPPR
 * (vector sets are arity-specific, so each associativity uses the
 * PMRU-vs-LIP pair built for that arity).
 */

#include <cstdio>

#include "common.hh"
#include "core/dgippr.hh"
#include "core/ipv.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

PolicyDef
duelDefFor(unsigned ways)
{
    std::vector<Ipv> set = {Ipv::lru(ways), Ipv::lruInsertion(ways)};
    return {"2-DGIPPR",
            [set](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<DgipprPolicy>(cfg, set));
            },
            fastpath::dgipprSpec(set)};
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "abl_assoc");
    Scale scale = resolveScale();
    banner("abl_assoc: associativity sweep at fixed 1MB capacity",
           "Section 7, future-work item 6");

    SyntheticSuite suite(suiteParams(scale));

    Table table({"assoc", "PLRU/LRU", "DRRIP/LRU", "2-DGIPPR/LRU",
                 "DGIPPR bits/set", "LRU bits/set"});
    for (unsigned ways : {4u, 8u, 16u, 32u}) {
        ExperimentConfig cfg = session.experimentConfig(scale);
        cfg.system.hier.llc.assoc = ways;
        cfg.system.hier.llc.validate();

        std::vector<PolicyDef> policies = {
            policyByName("LRU"),
            policyByName("PLRU"),
            policyByName("DRRIP"),
            duelDefFor(ways),
        };
        ExperimentResult r = runMissExperiment(suite, policies, cfg);
        size_t lru = r.columnIndex("LRU");
        auto dg = policies[3].make(cfg.system.hier.llc);
        auto lru_p = policies[0].make(cfg.system.hier.llc);
        table.newRow()
            .add(ways)
            .add(r.geomeanNormalized(r.columnIndex("PLRU"), lru,
                                     false),
                 4)
            .add(r.geomeanNormalized(r.columnIndex("DRRIP"), lru,
                                     false),
                 4)
            .add(r.geomeanNormalized(r.columnIndex("2-DGIPPR"), lru,
                                     false),
                 4)
            .add(static_cast<uint64_t>(dg->stateBitsPerSet()))
            .add(static_cast<uint64_t>(lru_p->stateBitsPerSet()));
        std::printf("assoc %u done\n", ways);
    }
    emitTable(table, "abl_assoc");
    session.addTable("abl_assoc", "normalized MPKI / bits", table);

    note("expected shape: DGIPPR's storage advantage grows with "
         "associativity (k-1 bits vs k*log2(k)); PLRU tracks LRU at "
         "every arity; adaptive insertion keeps its edge");
    session.emit();
    return 0;
}
