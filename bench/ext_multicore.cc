/**
 * @file
 * Extension: multi-core shared LLC (paper Section 7, future-work
 * item 4).
 *
 * Replays the preset multi-programmed mixes (including the KV-cache
 * serving mix) through the shared-LLC engine and reports, per policy,
 * weighted speedup over the per-core solo baselines, aggregate
 * throughput, the worst tenant slowdown and the shared miss rate —
 * once free-for-all and once under UCP-style utility partitioning.
 *
 * This bench folds onto sim/multicore's replay engine: the same
 * packed fastpath state as the single-core experiments, per-core
 * DGIPPR duels, and fairness metrics straight from RunResult.  The
 * policy set is therefore the replayable seven rather than the scalar
 * zoo; DRRIP/PDP comparisons live in the experiment harness.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/vectors.hh"
#include "sim/multicore/engine.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;
using namespace gippr::multicore;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "ext_multicore");
    Scale scale = resolveScale();
    banner("ext_multicore: shared-LLC serving mixes",
           "Section 7, future-work item 4");

    SuiteParams sp = suiteParams(scale);
    // Keep per-core traces moderate: 4 cores x accesses.
    sp.accessesPerSimpoint = scale.accessesPerSimpoint / 2;
    SyntheticSuite suite(sp);

    const HierarchyConfig hier = systemParams().hier;
    session.recordScale(scale);
    session.setConfig("system", toJson(systemParams()));
    session.setConfig("duel_scope", "per-core");

    struct PolicyCase
    {
        const char *name;
        fastpath::ReplaySpec spec;
    };
    const std::vector<PolicyCase> policies = {
        {"LRU", fastpath::lruSpec()},
        {"PLRU", fastpath::plruSpec()},
        {"GIPPR", fastpath::gipprSpec(local_vectors::gippr())},
        {"4-DGIPPR", fastpath::dgipprSpec(local_vectors::dgippr4())},
    };

    Table table({"mix", "partition", "policy", "weighted speedup",
                 "throughput", "max slowdown", "LLC miss rate"});
    for (const MixSpec &mix : presetMixes()) {
        const std::vector<CoreStream> streams =
            buildCoreStreams(mix, suite, hier, &session.traceCache());
        for (const char *partition : {"none", "utility"}) {
            for (const PolicyCase &p : policies) {
                RunParams params;
                params.llc = hier.llc;
                params.policy = p.spec;
                params.schedule = Schedule::Weighted;
                params.duelScope = DuelScope::PerCore;
                params.partition = parsePartition(
                    partition,
                    static_cast<unsigned>(streams.size()));
                const RunResult r = runSharedLlc(streams, params);
                const double miss_rate =
                    r.measured.accesses > 0
                        ? static_cast<double>(r.measured.misses) /
                              static_cast<double>(r.measured.accesses)
                        : 0.0;
                table.newRow()
                    .add(mix.name)
                    .add(partition)
                    .add(p.name)
                    .add(r.fairness.weightedSpeedup, 4)
                    .add(r.fairness.throughput, 3)
                    .add(r.fairness.maxSlowdown, 4)
                    .add(miss_rate, 4);
            }
        }
        std::printf("mix %s done\n", mix.name.c_str());
    }
    emitTable(table, "ext_multicore");
    session.addTable("ext_multicore",
                     "weighted speedup / throughput / fairness", table);

    note("expected shape: IPV-driven tree policies (GIPPR, 4-DGIPPR) "
         "cut misses on thrash- and stream-polluted mixes; utility "
         "partitioning caps the worst tenant slowdown on skewed "
         "serving mixes at a small throughput cost");
    session.emit();
    return 0;
}
