/**
 * @file
 * Extension: multi-core shared LLC (paper Section 7, future-work
 * item 4).
 *
 * Runs 4-core multi-programmed mixes drawn from the suite against a
 * shared 1MB LLC and reports weighted speedup over the LRU baseline
 * for DRRIP, PDP and 4-DGIPPR, plus aggregate LLC miss rates.
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"
#include "sim/multicore.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "ext_multicore");
    Scale scale = resolveScale();
    banner("ext_multicore: 4-core shared-LLC mixes",
           "Section 7, future-work item 4");

    SuiteParams sp = suiteParams(scale);
    // Keep per-core traces moderate: 4 cores x accesses.
    sp.accessesPerSimpoint = scale.accessesPerSimpoint / 2;
    SyntheticSuite suite(sp);

    MulticoreParams params;
    params.hier = systemParams().hier;
    session.recordScale(scale);
    session.setConfig("system", toJson(systemParams()));

    struct Mix
    {
        const char *name;
        std::vector<const char *> members;
    };
    std::vector<Mix> mixes = {
        {"thrash-heavy",
         {"loop_thrash", "loop_thrash2x", "chase_medium",
          "stream_pure"}},
        {"balanced",
         {"loop_thrash", "zipf_hot", "hotcold_scan", "loop_fit"}},
        {"reuse-heavy",
         {"zipf_hot", "zipf_twophase", "loop_fit", "stencil_rows"}},
        {"stream-polluted",
         {"stream_pure", "stream_strided", "zipf_hot",
          "hotcold_stream"}},
    };

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("DRRIP"),
        policyByName("PDP"),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);

    Table table({"mix", "policy", "weighted speedup", "throughput",
                 "LLC miss rate"});
    for (const Mix &mix : mixes) {
        // Materialize the four member workloads (first simpoints).
        std::vector<Workload> loaded;
        std::vector<const Trace *> traces;
        for (const char *m : mix.members)
            loaded.push_back(
                SyntheticSuite::materialize(suite.spec(m)));
        for (const Workload &w : loaded)
            traces.push_back(w.simpoints()[0].trace.get());

        std::vector<double> baseline;
        for (const PolicyDef &p : policies) {
            MulticoreResult r =
                simulateMulticore(traces, p.make, params);
            if (baseline.empty()) {
                for (const auto &core : r.cores)
                    baseline.push_back(core.ipc);
            }
            table.newRow()
                .add(mix.name)
                .add(p.name)
                .add(r.weightedSpeedup(baseline), 4)
                .add(r.throughput(), 3)
                .add(r.llcStats.missRate(), 4);
        }
        std::printf("mix %s done\n", mix.name);
    }
    emitTable(table, "ext_multicore");
    session.addTable("ext_multicore", "weighted speedup / throughput",
                     table);

    note("expected shape: adaptive policies (DRRIP, 4-DGIPPR) win "
         "most on thrash- and stream-polluted mixes, tie LRU on "
         "reuse-heavy mixes; DGIPPR remains the cheapest by storage");
    session.emit();
    return 0;
}
