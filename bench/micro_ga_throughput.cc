/**
 * @file
 * GA evaluation throughput: genomes evaluated per second when the
 * fitness function replays one genome at a time (batch width 1, the
 * per-genome fast path) vs the batched multi-genome kernel that
 * streams each LLC trace once for the whole group (width 32), per
 * family, at population sizes 1/8/32.
 *
 * The memo cache is disabled so every timed pass pays its replays,
 * and both widths are checked value-identical before any wall-clock
 * is compared.  With --json the table and the population-32 speedup
 * land in the RunReport artifact; the CI nightly-profile job archives
 * it and gates on >= 1.2x at population 32 (regression guard under
 * the ~1.49x seed in BENCH_ga_throughput.json; see EXPERIMENTS.md).
 */

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common.hh"
#include "ga/fitness.hh"
#include "ga/random_search.hh"
#include "util/log.hh"
#include "util/rng.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

const char *
familyName(IpvFamily family)
{
    return family == IpvFamily::Giplr ? "giplr" : "gippr";
}

double
onePass(const FitnessEvaluator &fitness, std::span<const Ipv> pop,
        IpvFamily family)
{
    const auto start = std::chrono::steady_clock::now();
    fitness.evaluateAll(pop, family, 1);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    return dt.count();
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "micro_ga_throughput");
    Scale scale = resolveScale();
    banner("micro_ga_throughput: per-genome vs batched GA evaluation",
           "fast replay engine (infrastructure, not a paper figure)");

    applyKernelFlag(argc, argv, session);

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);

    // The GA's training set: every workload's simpoints filtered to
    // LLC traces once, through the session memo.
    std::vector<FitnessTrace> traces;
    uint64_t total_accesses = 0;
    for (const WorkloadSpec &spec : suite.specs()) {
        const auto entries =
            session.traceCache().get(spec, sys.hier, &session.timings());
        for (const LlcTraceCache::Entry &entry : *entries) {
            FitnessTrace ft;
            ft.name = spec.name;
            ft.llcTrace = entry.demandTrace;
            ft.instructions = entry.instructions;
            traces.push_back(std::move(ft));
            total_accesses += entry.demandTrace->size();
        }
    }
    std::printf("training set: %llu LLC accesses over %zu traces\n\n",
                static_cast<unsigned long long>(total_accesses),
                traces.size());
    session.setConfig("trace_accesses",
                      telemetry::JsonValue(total_accesses));

    FitnessEvaluator fitness(sys.hier.llc, traces, {},
                             &session.timings());
    fitness.setMemoCapacity(0); // every timed pass pays its replays
    const unsigned batch = 32;
    session.setConfig("batch_width",
                      telemetry::JsonValue(uint64_t{batch}));
    session.setConfig("memo_capacity", telemetry::JsonValue(uint64_t{0}));

    const std::vector<size_t> pops = {1, 8, 32};
    const int reps = scale.quick ? 3 : 4;
    Table table({"family", "population", "single_genomes_s",
                 "batched_genomes_s", "speedup"});
    double gate = 0.0;
    bool first = true;
    for (IpvFamily family : {IpvFamily::Giplr, IpvFamily::Gippr}) {
        const unsigned ways = familyArity(family, sys.hier.llc);
        Rng rng(0xba7cULL + static_cast<uint64_t>(family));
        std::vector<Ipv> pool;
        pool.reserve(pops.back());
        for (size_t i = 0; i < pops.back(); ++i)
            pool.push_back(randomIpv(ways, rng));

        // Equal-work check: both widths must agree genome-for-genome
        // before their wall-clock is worth comparing.
        fitness.setBatchWidth(batch);
        const std::vector<double> batched =
            fitness.evaluateAll(pool, family, 1);
        fitness.setBatchWidth(1);
        if (fitness.evaluateAll(pool, family, 1) != batched) {
            fatal(std::string("batched evaluation diverged from "
                              "per-genome replay under ") +
                  familyName(family));
        }

        for (size_t pop_size : pops) {
            const std::span<const Ipv> pop(pool.data(), pop_size);
            // Interleave the widths round-robin and keep each one's
            // best round, so a transient machine-wide stall lands on
            // both sides of the ratio instead of skewing one.
            double s_single = 0.0, s_batched = 0.0;
            for (int r = 0; r < reps; ++r) {
                fitness.setBatchWidth(1);
                const double a = onePass(fitness, pop, family);
                fitness.setBatchWidth(batch);
                const double b = onePass(fitness, pop, family);
                if (r == 0 || a < s_single)
                    s_single = a;
                if (r == 0 || b < s_batched)
                    s_batched = b;
            }
            const double n = static_cast<double>(pop_size);
            const double speedup = s_single / s_batched;
            table.newRow()
                .add(familyName(family))
                .add("pop" + std::to_string(pop_size))
                .add(n / s_single, 2)
                .add(n / s_batched, 2)
                .add(speedup, 2);
            if (pop_size == pops.back() && (first || speedup < gate)) {
                gate = speedup;
                first = false;
            }
        }
    }
    emitTable(table, "ga_throughput");
    session.addTable("ga_throughput", "genomes_per_sec_or_speedup",
                     table);

    std::printf("\npopulation-%zu batched speedup over per-genome "
                "replay: %.2fx\n",
                pops.back(), gate);
    session.setConfig("pop32_speedup", telemetry::JsonValue(gate));
    note("streaming each trace once per generation amortizes decode "
         "and trace-memory traffic over the whole population; at "
         "population 1 both paths run the identical per-genome kernel");
    session.emit();
    return 0;
}
