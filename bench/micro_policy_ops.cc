/**
 * @file
 * Operation-level microbenchmarks (google-benchmark).
 *
 * Quantifies the implementation-complexity argument of Sections 2.1.2
 * and 3.3: a PLRU/GIPPR update touches at most log2(k) tree bits while
 * a full-LRU stack update can move k positions; and whole-policy
 * access throughput for the main contenders.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common.hh"
#include "core/plru_tree.hh"
#include "core/vectors.hh"
#include "policies/recency_stack.hh"
#include "util/rng.hh"

using namespace gippr;

namespace
{

void
BM_PlruTreePromote(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(1);
    for (auto _ : state) {
        tree.promoteMru(static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_PlruTreePromote)->Arg(4)->Arg(16)->Arg(64);

void
BM_PlruTreeSetPosition(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(2);
    for (auto _ : state) {
        tree.setPosition(static_cast<unsigned>(rng.nextBounded(ways)),
                         static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_PlruTreeSetPosition)->Arg(4)->Arg(16)->Arg(64);

void
BM_PlruTreePosition(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.position(
            static_cast<unsigned>(rng.nextBounded(ways))));
    }
}
BENCHMARK(BM_PlruTreePosition)->Arg(4)->Arg(16)->Arg(64);

void
BM_RecencyStackMove(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    RecencyStack stack(ways);
    Rng rng(4);
    for (auto _ : state) {
        stack.moveTo(static_cast<unsigned>(rng.nextBounded(ways)),
                     static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(stack);
    }
}
BENCHMARK(BM_RecencyStackMove)->Arg(4)->Arg(16)->Arg(64);

void
runCacheAccess(benchmark::State &state, const PolicyDef &def)
{
    CacheConfig cfg = CacheConfig::benchLlc();
    SetAssocCache cache(cfg, def.make(cfg));
    Rng rng(5);
    // Footprint 2x the cache so hits and misses both occur.
    const uint64_t blocks = 2 * cfg.sets() * cfg.assoc;
    for (auto _ : state) {
        uint64_t addr = rng.nextBounded(blocks) * cfg.blockBytes;
        benchmark::DoNotOptimize(
            cache.access(addr, AccessType::Load, 0x400000));
    }
}

void
BM_CacheAccessLru(benchmark::State &state)
{
    runCacheAccess(state, policyByName("LRU"));
}
BENCHMARK(BM_CacheAccessLru);

void
BM_CacheAccessPlru(benchmark::State &state)
{
    runCacheAccess(state, policyByName("PLRU"));
}
BENCHMARK(BM_CacheAccessPlru);

void
BM_CacheAccessGippr(benchmark::State &state)
{
    runCacheAccess(state,
                   gipprDef("GIPPR", local_vectors::gippr()));
}
BENCHMARK(BM_CacheAccessGippr);

void
BM_CacheAccessDgippr4(benchmark::State &state)
{
    runCacheAccess(state,
                   dgipprDef("4-DGIPPR", local_vectors::dgippr4()));
}
BENCHMARK(BM_CacheAccessDgippr4);

void
BM_CacheAccessDrrip(benchmark::State &state)
{
    runCacheAccess(state, policyByName("DRRIP"));
}
BENCHMARK(BM_CacheAccessDrrip);

void
BM_CacheAccessPdp(benchmark::State &state)
{
    runCacheAccess(state, policyByName("PDP"));
}
BENCHMARK(BM_CacheAccessPdp);

/**
 * Console reporter that also captures per-benchmark timings so the
 * run can be serialized through the shared RunReport path (google-
 * benchmark's own JSON writer is mutually exclusive with console
 * output and uses a different schema).
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double realNs;
        double cpuNs;
        double iterations;
    };

    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred) {
                continue;
            }
            rows.push_back({run.benchmark_name(),
                            run.GetAdjustedRealTime(),
                            run.GetAdjustedCPUTime(),
                            static_cast<double>(run.iterations)});
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace gippr::bench;

    Session session(argc, argv, "micro_policy_ops");

    // google-benchmark rejects flags it does not know, so strip the
    // session's --json before handing argv over.
    std::vector<char *> bench_argv;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            ++i; // skip the path argument too
            continue;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            continue;
        bench_argv.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
        return 1;
    }

    CapturingReporter reporter;
    {
        telemetry::ScopedTimer timer(&session.timings(), "benchmarks");
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    benchmark::Shutdown();

    session.setConfig("llc", toJson(CacheConfig::benchLlc()));
    telemetry::ResultTable rt;
    rt.title = "micro_policy_ops";
    rt.metric = "ns";
    rt.columns = {"real_time_ns", "cpu_time_ns", "iterations"};
    for (const CapturingReporter::Row &row : reporter.rows)
        rt.rows.push_back(
            {row.name, {row.realNs, row.cpuNs, row.iterations}});
    session.report().addTable(std::move(rt));
    session.emit();
    return 0;
}
