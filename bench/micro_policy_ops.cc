/**
 * @file
 * Operation-level microbenchmarks (google-benchmark).
 *
 * Quantifies the implementation-complexity argument of Sections 2.1.2
 * and 3.3: a PLRU/GIPPR update touches at most log2(k) tree bits while
 * a full-LRU stack update can move k positions; and whole-policy
 * access throughput for the main contenders.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/cache.hh"
#include "common.hh"
#include "core/plru_tree.hh"
#include "core/vectors.hh"
#include "policies/recency_stack.hh"
#include "util/rng.hh"

using namespace gippr;

namespace
{

void
BM_PlruTreePromote(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(1);
    for (auto _ : state) {
        tree.promoteMru(static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_PlruTreePromote)->Arg(4)->Arg(16)->Arg(64);

void
BM_PlruTreeSetPosition(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(2);
    for (auto _ : state) {
        tree.setPosition(static_cast<unsigned>(rng.nextBounded(ways)),
                         static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_PlruTreeSetPosition)->Arg(4)->Arg(16)->Arg(64);

void
BM_PlruTreePosition(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    PlruTree tree(ways);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.position(
            static_cast<unsigned>(rng.nextBounded(ways))));
    }
}
BENCHMARK(BM_PlruTreePosition)->Arg(4)->Arg(16)->Arg(64);

void
BM_RecencyStackMove(benchmark::State &state)
{
    const unsigned ways = static_cast<unsigned>(state.range(0));
    RecencyStack stack(ways);
    Rng rng(4);
    for (auto _ : state) {
        stack.moveTo(static_cast<unsigned>(rng.nextBounded(ways)),
                     static_cast<unsigned>(rng.nextBounded(ways)));
        benchmark::DoNotOptimize(stack);
    }
}
BENCHMARK(BM_RecencyStackMove)->Arg(4)->Arg(16)->Arg(64);

void
runCacheAccess(benchmark::State &state, const PolicyDef &def)
{
    CacheConfig cfg = CacheConfig::benchLlc();
    SetAssocCache cache(cfg, def.make(cfg));
    Rng rng(5);
    // Footprint 2x the cache so hits and misses both occur.
    const uint64_t blocks = 2 * cfg.sets() * cfg.assoc;
    for (auto _ : state) {
        uint64_t addr = rng.nextBounded(blocks) * cfg.blockBytes;
        benchmark::DoNotOptimize(
            cache.access(addr, AccessType::Load, 0x400000));
    }
}

void
BM_CacheAccessLru(benchmark::State &state)
{
    runCacheAccess(state, policyByName("LRU"));
}
BENCHMARK(BM_CacheAccessLru);

void
BM_CacheAccessPlru(benchmark::State &state)
{
    runCacheAccess(state, policyByName("PLRU"));
}
BENCHMARK(BM_CacheAccessPlru);

void
BM_CacheAccessGippr(benchmark::State &state)
{
    runCacheAccess(state,
                   gipprDef("GIPPR", local_vectors::gippr()));
}
BENCHMARK(BM_CacheAccessGippr);

void
BM_CacheAccessDgippr4(benchmark::State &state)
{
    runCacheAccess(state,
                   dgipprDef("4-DGIPPR", local_vectors::dgippr4()));
}
BENCHMARK(BM_CacheAccessDgippr4);

void
BM_CacheAccessDrrip(benchmark::State &state)
{
    runCacheAccess(state, policyByName("DRRIP"));
}
BENCHMARK(BM_CacheAccessDrrip);

void
BM_CacheAccessPdp(benchmark::State &state)
{
    runCacheAccess(state, policyByName("PDP"));
}
BENCHMARK(BM_CacheAccessPdp);

} // namespace
