/**
 * @file
 * Shared infrastructure for the figure/table benches.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * on the synthetic suite (see DESIGN.md for the per-experiment index).
 * Scale is controlled by the GIPPR_BENCH_SCALE environment variable:
 *   quick (default) — minutes-long total runtime for the whole bench
 *                     directory; reduced traces and search budgets
 *   full            — larger traces and search budgets, closer to the
 *                     paper's methodology (still laptop-scale)
 */

#ifndef GIPPR_BENCH_COMMON_HH_
#define GIPPR_BENCH_COMMON_HH_

#include <string>
#include <vector>

#include "ga/crossval.hh"
#include "sim/experiment.hh"
#include "telemetry/report.hh"
#include "workloads/suite.hh"

namespace gippr::bench
{

/** Bench scale knobs resolved from the environment. */
struct Scale
{
    bool quick = true;
    /** CPU references per simpoint. */
    uint64_t accessesPerSimpoint = 300'000;
    /** Samples for the random design-space exploration (Fig. 1). */
    size_t randomSamples = 1500;
    /** GA parameters for vector-evolution benches. */
    GaParams ga;
    /** Worker threads. */
    unsigned threads = 0;
};

/** Resolve the scale from GIPPR_BENCH_SCALE. */
Scale resolveScale();

/** The bench LLC: 1MB, 16-way (scaled-down from the paper's 4MB). */
SuiteParams suiteParams(const Scale &scale);

/** Hierarchy + CPU model for the bench LLC. */
SystemParams systemParams();

/** Experiment config wired to the scale. */
ExperimentConfig experimentConfig(const Scale &scale);

/**
 * Build fitness traces for GA-driven benches: one FitnessTrace per
 * simpoint of the selected workloads, filtered through L1+L2.  When
 * names is empty, the whole suite is used.
 */
std::vector<WorkloadTraces>
fitnessWorkloads(const SyntheticSuite &suite,
                 const std::vector<std::string> &names,
                 const SystemParams &sys);

/**
 * Per-binary telemetry session shared by every bench target.
 *
 * Construct it first thing in main(); it parses the common flags
 * (currently `--json <path>` / `--json=<path>`) and owns the phase
 * timings, metric registry and RunReport for the run.  Benches record
 * results as they go and call emit() last — without --json, emit() is
 * a no-op and the bench behaves exactly as before.
 *
 *   int main(int argc, char **argv) {
 *       Session session(argc, argv, "fig10_mpki_gippr");
 *       Scale scale = resolveScale();
 *       ExperimentConfig cfg = session.experimentConfig(scale);
 *       ...
 *       session.addResult("fig10", r);
 *       session.emit();
 *   }
 */
class Session
{
  public:
    /** @p kind is the RunReport kind ("bench" unless overridden). */
    Session(int argc, char **argv, const std::string &name,
            const std::string &kind = "bench");

    /** True when --json was given (emit() will write the artifact). */
    bool jsonRequested() const { return !jsonPath_.empty(); }

    telemetry::PhaseTimings &timings() { return timings_; }
    telemetry::MetricRegistry &registry() { return registry_; }
    telemetry::RunReport &report() { return report_; }
    LlcTraceCache &traceCache() { return traceCache_; }

    /**
     * experimentConfig(scale) with this session's telemetry taps,
     * trace cache and replay engine wired in; also records the
     * standard config keys (scale, cache geometry, threads, base
     * seed, replay backend) on first call.  Benches that run several
     * experiments therefore filter each workload's LLC trace once.
     */
    ExperimentConfig experimentConfig(const Scale &scale);

    /** Record the scale knobs without building an ExperimentConfig. */
    void recordScale(const Scale &scale);

    /** Record the policy list under config key "policies". */
    void recordPolicies(const std::vector<PolicyDef> &policies);

    /** Set one free-form config key. */
    void setConfig(const std::string &key, telemetry::JsonValue value);

    /** Append an experiment result as a result table. */
    void addResult(const std::string &title, const ExperimentResult &r);

    /**
     * Append a rendered bench table.  The leading run of non-numeric
     * columns forms each row's name (joined with "/"); the remaining
     * columns become the numeric value columns.
     */
    void addTable(const std::string &title, const std::string &metric,
                  const Table &table);

    /** Write the JSON artifact if --json was given. */
    void emit();

  private:
    std::string jsonPath_;
    telemetry::PhaseTimings timings_;
    telemetry::MetricRegistry registry_;
    telemetry::RunReport report_;
    LlcTraceCache traceCache_;
    bool configRecorded_ = false;
};

/**
 * Parse `--kernel <scalar|batch16|batch32>` (or `--kernel=...`) and
 * pin the batched replay dispatch width for the whole bench run;
 * records the requested name ("replay_kernel_requested") and the
 * clamped width that will actually dispatch ("replay_kernel") in the
 * session config so every artifact is attributable to a specific
 * code path.  Without the flag only the active width is recorded.
 */
void applyKernelFlag(int argc, char **argv, Session &session);

/** JSON view of a cache geometry (name/size/assoc/block). */
telemetry::JsonValue toJson(const CacheConfig &cfg);

/** JSON view of a system (l1/l2/llc + warmup fraction). */
telemetry::JsonValue toJson(const SystemParams &sys);

/** JSON view of the bench scale knobs. */
telemetry::JsonValue toJson(const Scale &scale);

/** Print a section header for bench output. */
void banner(const std::string &title, const std::string &paper_ref);

/** Print a table as aligned text followed by CSV. */
void emitTable(const Table &table, const std::string &csv_label);

/** Print a short note line (paper-shape commentary). */
void note(const std::string &text);

} // namespace gippr::bench

#endif // GIPPR_BENCH_COMMON_HH_
