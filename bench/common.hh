/**
 * @file
 * Shared infrastructure for the figure/table benches.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * on the synthetic suite (see DESIGN.md for the per-experiment index).
 * Scale is controlled by the GIPPR_BENCH_SCALE environment variable:
 *   quick (default) — minutes-long total runtime for the whole bench
 *                     directory; reduced traces and search budgets
 *   full            — larger traces and search budgets, closer to the
 *                     paper's methodology (still laptop-scale)
 */

#ifndef GIPPR_BENCH_COMMON_HH_
#define GIPPR_BENCH_COMMON_HH_

#include <string>
#include <vector>

#include "ga/crossval.hh"
#include "sim/experiment.hh"
#include "workloads/suite.hh"

namespace gippr::bench
{

/** Bench scale knobs resolved from the environment. */
struct Scale
{
    bool quick = true;
    /** CPU references per simpoint. */
    uint64_t accessesPerSimpoint = 300'000;
    /** Samples for the random design-space exploration (Fig. 1). */
    size_t randomSamples = 1500;
    /** GA parameters for vector-evolution benches. */
    GaParams ga;
    /** Worker threads. */
    unsigned threads = 0;
};

/** Resolve the scale from GIPPR_BENCH_SCALE. */
Scale resolveScale();

/** The bench LLC: 1MB, 16-way (scaled-down from the paper's 4MB). */
SuiteParams suiteParams(const Scale &scale);

/** Hierarchy + CPU model for the bench LLC. */
SystemParams systemParams();

/** Experiment config wired to the scale. */
ExperimentConfig experimentConfig(const Scale &scale);

/**
 * Build fitness traces for GA-driven benches: one FitnessTrace per
 * simpoint of the selected workloads, filtered through L1+L2.  When
 * names is empty, the whole suite is used.
 */
std::vector<WorkloadTraces>
fitnessWorkloads(const SyntheticSuite &suite,
                 const std::vector<std::string> &names,
                 const SystemParams &sys);

/** Print a section header for bench output. */
void banner(const std::string &title, const std::string &paper_ref);

/** Print a table as aligned text followed by CSV. */
void emitTable(const Table &table, const std::string &csv_label);

/** Print a short note line (paper-shape commentary). */
void note(const std::string &text);

} // namespace gippr::bench

#endif // GIPPR_BENCH_COMMON_HH_
