/**
 * @file
 * Figure 1: uniformly random exploration of the PseudoLRU
 * insertion/promotion design space.
 *
 * The paper samples 15,000 random IPVs, evaluates each with the fast
 * fitness function, and plots the sorted speedups over LRU: most of
 * the design space loses to LRU, with a thin right tail winning a few
 * percent.  This bench regenerates the sorted curve (printed as
 * percentile points) plus summary statistics.
 */

#include <algorithm>
#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"
#include "ga/random_search.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig01_random_search");
    Scale scale = resolveScale();
    banner("fig01_random_search: random IPV design-space exploration",
           "Figure 1 / Section 4.1");

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);
    session.setConfig("system", toJson(sys));

    // A cross-section mirroring SPEC's composition: mostly
    // recency-friendly workloads with a minority of thrashers (most
    // SPEC members are served well by LRU; only a handful reward
    // anti-thrash insertion).  A thrash-dominated training set would
    // invert Figure 1's shape, because on a thrash loop *any*
    // non-MRU insertion beats LRU.
    // No pure cyclic thrasher here: a loop at 1.25x capacity rewards
    // *any* non-MRU insertion with a 2-3x speedup, which would drag
    // the whole sample above parity — SPEC's hostile members (mcf)
    // are too large for random vectors to fix, so Figure 1's mass
    // sits below 1.0.  hotcold_scan supplies bounded anti-thrash
    // upside instead.
    std::vector<std::string> training = {
        "sd_lrufriendly", "sd_nearcap",  "zipf_hot",
        "zipf_twophase",  "chase_small", "hotcold_stream",
        "hotcold_scan",   "loop_fit",    "chase_large",
    };
    std::vector<WorkloadTraces> workloads =
        fitnessWorkloads(suite, training, sys);
    std::vector<FitnessTrace> traces;
    for (auto &w : workloads)
        traces.insert(traces.end(), w.traces.begin(), w.traces.end());
    FitnessEvaluator fitness(sys.hier.llc, std::move(traces), {},
                             &session.timings());
    fitness.attachTelemetry(session.registry(), "fitness");

    std::printf("sampling %zu random IPVs over a 16-way LLC "
                "(paper: 15,000)...\n",
                scale.randomSamples);
    auto samples = randomSearch(fitness, IpvFamily::Gippr,
                                scale.randomSamples, 0xF16001,
                                scale.threads ? scale.threads : 8);

    Table table({"percentile", "speedup over LRU"});
    for (int pct : {0, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99,
                    100}) {
        size_t idx = std::min(samples.size() - 1,
                              samples.size() * pct / 100);
        table.newRow().add(pct).add(samples[idx].fitness, 4);
    }
    emitTable(table, "fig01");
    session.addTable("fig01", "speedup over LRU", table);

    size_t losing = 0;
    for (const auto &s : samples)
        if (s.fitness < 1.0)
            ++losing;
    double best = samples.back().fitness;
    std::printf("\nsamples below LRU parity: %zu / %zu (%.1f%%)\n",
                losing, samples.size(),
                100.0 * static_cast<double>(losing) /
                    static_cast<double>(samples.size()));
    std::printf("best random sample: %.4f speedup, IPV %s\n", best,
                samples.back().ipv.toString().c_str());
    std::printf("GA-evolved vector:  %.4f speedup, IPV %s\n",
                fitness.evaluate(local_vectors::gippr(),
                                 IpvFamily::Gippr),
                local_vectors::gippr().toString().c_str());
    note("paper shape: the overwhelming mass of random IPVs loses to "
         "LRU with only a thin tail near/above parity — random search "
         "leaves the potential undiscovered, while the GA-evolved "
         "vector clears the entire sample, which is exactly the "
         "paper's motivation for genetic search");
    session.emit();
    return 0;
}
