/**
 * @file
 * Figure 12: workload-neutral (WN1) versus workload-inclusive (WI)
 * vector evolution.
 *
 * The paper's methodology check: for each workload, WN1 evolves
 * vectors using every *other* workload's traces (leave-one-out),
 * while WI trains on everything.  The paper finds the gap small
 * (e.g. 5.61% vs 5.66% geomean for 4 vectors), evidence the evolved
 * vectors generalize.  This bench runs the actual GA on a
 * representative sub-suite and reports estimated speedup over LRU
 * (the GA's own fitness metric) for 1-, 2- and 4-vector
 * configurations under both methodologies.
 */

#include <cstdio>
#include <map>

#include "cache/replay.hh"
#include "common.hh"
#include "core/dgippr.hh"
#include "core/gippr.hh"
#include "core/vectors.hh"
#include "ga/genetic.hh"
#include "policies/lru.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

/** Flatten traces of all workloads except one ("" keeps all). */
std::vector<FitnessTrace>
flattenExcept(const std::vector<WorkloadTraces> &workloads,
              const std::string &skip)
{
    std::vector<FitnessTrace> out;
    for (const auto &w : workloads)
        if (w.name != skip)
            out.insert(out.end(), w.traces.begin(), w.traces.end());
    return out;
}

/** GA once, then greedy duel sets of size 1, 2 and 4 (nested). */
std::vector<std::vector<Ipv>>
evolveSets(const FitnessEvaluator &fitness, const GaParams &params)
{
    GaResult ga = evolveIpv(fitness, IpvFamily::Gippr, params);
    std::vector<Ipv> pool;
    size_t take = std::min<size_t>(ga.finalPopulation.size(), 20);
    for (size_t i = 0; i < take; ++i)
        pool.push_back(ga.finalPopulation[i].ipv);
    for (const Ipv &v : params.seedIpvs)
        pool.push_back(v);
    std::vector<Ipv> four =
        selectDuelSet(fitness, IpvFamily::Gippr, pool, 4);
    return {{four[0]},
            {four[0], four[1]},
            four};
}

/**
 * Estimated speedup over LRU of a vector set on one workload,
 * using the fitness function's linear CPI model (single vector ->
 * GIPPR; multiple -> DGIPPR duel).
 */
double
speedupOn(const CacheConfig &llc, const WorkloadTraces &w,
          const std::vector<Ipv> &set)
{
    std::vector<double> speedups;
    CpiModel model;
    for (const auto &ft : w.traces) {
        size_t warmup = ft.llcTrace->size() / 3;
        uint64_t inst = ft.instructions * 2 / 3;
        auto run = [&](std::unique_ptr<ReplacementPolicy> policy) {
            SetAssocCache cache(llc, std::move(policy));
            replayTrace(cache, *ft.llcTrace, warmup);
            double mpi = inst ? static_cast<double>(
                                    cache.stats().demandMisses) /
                                    static_cast<double>(inst)
                              : 0.0;
            return model.baseCpi + model.missPenalty * mpi;
        };
        double cpi_lru = run(std::make_unique<LruPolicy>(llc));
        double cpi_set =
            set.size() == 1
                ? run(std::make_unique<GipprPolicy>(llc, set[0]))
                : run(std::make_unique<DgipprPolicy>(llc, set));
        speedups.push_back(cpi_lru / cpi_set);
    }
    return mean(speedups);
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig12_wn_vs_wi");
    Scale scale = resolveScale();
    banner("fig12_wn_vs_wi: workload-neutral vs workload-inclusive",
           "Figure 12 / Sections 4.4 and 5.2.1");

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);
    session.setConfig("system", toJson(sys));

    // A diverse sub-suite keeps the leave-one-out GA affordable.
    std::vector<std::string> names = {
        "stream_pure", "loop_thrash", "loop_fit",     "chase_medium",
        "zipf_hot",    "hotcold_scan", "sd_bimodal",  "sd_midrange",
        "mix_zipfscan", "phase_loopstream",
    };
    std::printf("building LLC traces for %zu workloads...\n",
                names.size());
    std::vector<WorkloadTraces> workloads =
        fitnessWorkloads(suite, names, sys);
    const CacheConfig &llc = sys.hier.llc;

    // WI: one GA over everything.
    std::printf("evolving WI vectors...\n");
    FitnessEvaluator wi_fitness(llc, flattenExcept(workloads, ""),
                                {}, &session.timings());
    GaParams params = scale.ga;
    params.timings = &session.timings();
    params.seed = 0xF16012;
    // Seed the search with the archetypes (as examples/evolve_ipv
    // does) so duel-set selection has diverse material even when the
    // population converges.
    params.seedIpvs = {Ipv::lru(16), Ipv::lruInsertion(16),
                       paper_vectors::wiGippr(),
                       paper_vectors::wi4Dgippr()[2]};
    auto wi_sets = evolveSets(wi_fitness, params);

    // WN1: one GA per held-out workload.
    std::map<std::string, std::vector<std::vector<Ipv>>> wn_sets;
    unsigned fold = 0;
    for (const auto &w : workloads) {
        std::printf("evolving WN1 fold %u/%zu (hold out %s)...\n",
                    ++fold, workloads.size(), w.name.c_str());
        FitnessEvaluator fitness(llc, flattenExcept(workloads, w.name),
                                 {}, &session.timings());
        GaParams fold_params = params;
        fold_params.seed = params.seed + 1000 * fold;
        wn_sets[w.name] = evolveSets(fitness, fold_params);
    }

    Table table({"workload", "WN1-GIPPR", "WI-GIPPR", "WN1-2-DGIPPR",
                 "WI-2-DGIPPR", "WN1-4-DGIPPR", "WI-4-DGIPPR"});
    std::vector<std::vector<double>> columns(6);
    for (const auto &w : workloads) {
        table.newRow().add(w.name);
        for (size_t cfg_idx = 0; cfg_idx < 3; ++cfg_idx) {
            double wn = speedupOn(llc, w, wn_sets[w.name][cfg_idx]);
            double wi = speedupOn(llc, w, wi_sets[cfg_idx]);
            table.add(wn, 4).add(wi, 4);
            columns[cfg_idx * 2].push_back(wn);
            columns[cfg_idx * 2 + 1].push_back(wi);
        }
    }
    table.newRow().add("geomean");
    for (auto &col : columns)
        table.add(geomean(col), 4);
    emitTable(table, "fig12");
    session.addTable("fig12", "estimated speedup over LRU", table);

    std::printf("\nWI vectors evolved (4-vector set):\n");
    for (const Ipv &v : wi_sets[2])
        std::printf("  %s\n", v.toString().c_str());
    note("paper shape: WI slightly >= WN1 but the gap is small, and "
         "more vectors help under both methodologies; occasionally a "
         "WN1 fold beats WI (the GA is not optimal), which the paper "
         "also observed");
    session.emit();
    return 0;
}
