/**
 * @file
 * Figure 10: MPKI normalized to LRU for 1-, 2- and 4-vector
 * GIPPR/DGIPPR, with Belady's MIN as the lower bound.
 *
 * The paper: WN1-GIPPR 95.2%, WN1-2-DGIPPR 96.5%, WN1-4-DGIPPR 91.0%
 * of LRU misses; MIN 67.5%.  This bench runs the trace-driven miss
 * simulator over the suite with the locally evolved vector sets (the
 * WN1/WI methodology distinction is bench fig12).
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig10_mpki_gippr");
    Scale scale = resolveScale();
    banner("fig10_mpki_gippr: GIPPR/DGIPPR misses vs LRU and MIN",
           "Figure 10 / Section 5.1");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);
    cfg.includeMin = true;

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        gipprDef("GIPPR", local_vectors::gippr()),
        dgipprDef("2-DGIPPR", local_vectors::dgippr2()),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };
    session.recordPolicies(policies);

    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    size_t drrip_like = r.columnIndex("4-DGIPPR");
    Table table = r.toNormalizedTable(lru, false, drrip_like);
    emitTable(table, "fig10");
    session.addResult("fig10", r);

    std::printf("\ngeomean normalized MPKI (LRU = 1.0):\n");
    for (size_t c = 0; c < r.columns.size(); ++c) {
        std::printf("  %-10s %.4f\n", r.columns[c].c_str(),
                    r.geomeanNormalized(c, lru, false));
    }
    note("paper shape: all GIPPR variants below LRU; the 4-vector "
         "configuration lowest among them; MIN far below all "
         "(67.5% of LRU in the paper), showing the remaining headroom");
    session.emit();
    return 0;
}
