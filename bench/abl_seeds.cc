/**
 * @file
 * Ablation: seed sensitivity of the headline result.
 *
 * Every stochastic element of this reproduction (workload generation,
 * BRRIP/DIP bimodal throttles, Random replacement) is seeded.  This
 * bench regenerates the suite under several base seeds and re-measures
 * the fig11-style geomean normalized MPKI, showing how much of the
 * reported numbers is workload noise versus policy signal.
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"
#include "util/stats.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "abl_seeds");
    Scale scale = resolveScale();
    banner("abl_seeds: seed sensitivity of the headline comparison",
           "methodology robustness (not a paper figure)");

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        policyByName("DRRIP"),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
    };

    Table table({"base seed", "DRRIP/LRU", "4-DGIPPR/LRU"});
    std::vector<double> drrip_vals, dgippr_vals;
    for (uint64_t seed : {0x5eedULL, 0xfeedULL, 0xbeadULL, 0xcafeULL}) {
        SuiteParams sp = suiteParams(scale);
        sp.baseSeed = seed;
        // Smaller traces: four full suite passes otherwise dominate
        // the bench directory's runtime.
        sp.accessesPerSimpoint = scale.accessesPerSimpoint / 2;
        SyntheticSuite suite(sp);
        ExperimentConfig cfg = session.experimentConfig(scale);
        ExperimentResult r = runMissExperiment(suite, policies, cfg);
        size_t lru = r.columnIndex("LRU");
        double drrip =
            r.geomeanNormalized(r.columnIndex("DRRIP"), lru, false);
        double dgippr =
            r.geomeanNormalized(r.columnIndex("4-DGIPPR"), lru, false);
        table.newRow().add(seed).add(drrip, 4).add(dgippr, 4);
        drrip_vals.push_back(drrip);
        dgippr_vals.push_back(dgippr);
        std::printf("seed %#lx done\n",
                    static_cast<unsigned long>(seed));
    }
    emitTable(table, "abl_seeds");
    session.addTable("abl_seeds", "geomean normalized MPKI", table);

    std::printf("\nacross seeds: DRRIP %.4f +- %.4f, 4-DGIPPR %.4f "
                "+- %.4f\n",
                mean(drrip_vals), stddev(drrip_vals),
                mean(dgippr_vals), stddev(dgippr_vals));
    note("expected shape: the policy ordering and the rough gap to "
         "LRU are stable across workload seeds — the reported shapes "
         "are signal, not noise");
    session.emit();
    return 0;
}
