/**
 * @file
 * Figures 2 and 3: transition graphs of insertion/promotion vectors.
 *
 * Prints, for the classic LRU vector and for the paper's evolved
 * GIPLR vector [0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13], the solid
 * promotion edges (new position on access), the insertion edge, and
 * the dashed shift edges, both as a readable table and as Graphviz
 * DOT for replotting.  Also reports the degeneracy analysis of
 * footnote 1 (reachability of MRU from the insertion position).
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

void
printGraph(Session &session, const std::string &title, const Ipv &v)
{
    std::printf("\n--- %s ---\n", title.c_str());
    std::printf("vector: %s\n", v.toString().c_str());

    Table edges({"position", "on access ->", "shift down?", "shift up?"});
    Ipv::ShiftEdges shifts = v.shiftEdges();
    for (unsigned i = 0; i < v.ways(); ++i) {
        edges.newRow()
            .add(i)
            .add(v.promotion(i))
            .add(shifts.down[i] ? std::string("yes") : std::string("-"))
            .add(shifts.up[i] ? std::string("yes") : std::string("-"));
    }
    emitTable(edges, title);
    session.addTable(title, "position", edges);
    session.setConfig(title, telemetry::JsonValue(v.toString()));
    std::printf("insertion -> position %u; eviction from position %u\n",
                v.insertion(), v.ways() - 1);
    std::printf("degenerate (MRU unreachable from insertion): %s\n",
                v.isDegenerate() ? "YES" : "no");

    std::printf("\n// Graphviz DOT\n");
    std::printf("digraph ipv {\n  rankdir=LR;\n");
    for (unsigned i = 0; i < v.ways(); ++i)
        std::printf("  p%u -> p%u [style=solid];\n", i, v.promotion(i));
    std::printf("  insertion -> p%u [style=solid];\n", v.insertion());
    for (unsigned i = 0; i < v.ways(); ++i) {
        if (shifts.down[i] && i + 1 < v.ways())
            std::printf("  p%u -> p%u [style=dashed];\n", i, i + 1);
        if (shifts.up[i] && i > 0)
            std::printf("  p%u -> p%u [style=dashed];\n", i, i - 1);
    }
    std::printf("  p%u -> eviction;\n}\n", v.ways() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "fig03_transition_graph");
    banner("fig03_transition_graph: IPV transition graphs",
           "Figures 2 and 3 / Sections 2.3-2.5");

    printGraph(session, "Figure 2: classic LRU vector", Ipv::lru(16));
    printGraph(session, "Figure 3: evolved GIPLR vector",
               paper_vectors::giplr());
    printGraph(session, "Section 5.3: WI-GIPPR vector",
               paper_vectors::wiGippr());

    note("paper shape: LRU's graph funnels everything to MRU; the "
         "evolved vector inserts at 13, promotes gradually, and "
         "contains counterintuitive demotions");
    session.emit();
    return 0;
}
