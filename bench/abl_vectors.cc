/**
 * @file
 * Ablation: number of dueling vectors (1, 2, 4, 8).
 *
 * Section 3.5: "we find that extending beyond four vectors yields
 * diminishing returns."  This bench measures normalized MPKI for
 * static GIPPR and 2/4/8-vector DGIPPR over the suite.
 */

#include <cstdio>

#include "common.hh"
#include "core/vectors.hh"

using namespace gippr;
using namespace gippr::bench;

int
main(int argc, char **argv)
{
    Session session(argc, argv, "abl_vectors");
    Scale scale = resolveScale();
    banner("abl_vectors: dueling-vector count ablation",
           "Section 3.5 (diminishing returns beyond four vectors)");

    SyntheticSuite suite(suiteParams(scale));
    ExperimentConfig cfg = session.experimentConfig(scale);

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),
        gipprDef("1-vector", local_vectors::gippr()),
        dgipprDef("2-vector", local_vectors::dgippr2()),
        dgipprDef("4-vector", local_vectors::dgippr4()),
        dgipprDef("8-vector", local_vectors::dgippr8()),
    };
    session.recordPolicies(policies);

    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");
    Table table = r.toNormalizedTable(lru, false, std::nullopt);
    emitTable(table, "abl_vectors");
    session.addResult("abl_vectors", r);

    std::printf("\ngeomean normalized MPKI and marginal gain:\n");
    double prev = 1.0;
    for (size_t c = 1; c < r.columns.size(); ++c) {
        double g = r.geomeanNormalized(c, lru, false);
        std::printf("  %-10s %.4f  (delta vs previous: %+.4f)\n",
                    r.columns[c].c_str(), g, g - prev);
        prev = g;
    }
    std::printf("\nselector storage (11-bit counters):\n");
    for (size_t c = 2; c < r.columns.size(); ++c) {
        auto p = policies[c].make(cfg.system.hier.llc);
        std::printf("  %-10s %zu bits\n", r.columns[c].c_str(),
                    p->globalStateBits());
    }
    note("paper shape: 2 vectors beat 1, 4 beat 2; the step from 4 "
         "to 8 is small while doubling the leader-set commitment — "
         "the paper stops at four");
    session.emit();
    return 0;
}
