/**
 * @file
 * Microarchitectural profile of the batched replay kernels: for every
 * dispatch width (scalar / batch16 / batch32) and policy family, an
 * 8-genome replayMany() over the suite's LLC traces is bracketed with
 * hardware counters (perf_event_open: instructions, cycles, L1d/LLC
 * read misses) and wall clock, and the per-model-access attribution
 * lands in a "profile" RunReport.  On hosts without a PMU (most
 * containers and VMs) the counter columns read zero, the config block
 * says so (`perf_counters_available: false`), and the wall-clock
 * columns still stand — the artifact never silently mixes the two.
 *
 * `--kernel <scalar|batch16|batch32>` restricts the sweep to one
 * width (the flag shared with the other micro benches); widths the
 * host cannot dispatch are reported as skipped rather than silently
 * re-measured on a narrower kernel.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/vectors.hh"
#include "perf_counters.hh"
#include "sim/fastpath/engine.hh"

using namespace gippr;
using namespace gippr::bench;

namespace
{

struct NamedTrace
{
    std::string workload;
    std::shared_ptr<const Trace> trace;
    size_t warmup;
};

/** Genomes per replayMany batch: two quads for the paired kernel. */
constexpr size_t kProfileBatch = 8;

struct Measurement
{
    double seconds = 0.0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t l1dMisses = 0;
    uint64_t llcMisses = 0;
};

Measurement
onePass(PerfCounterSet &pcs, const fastpath::ReplayEngine &engine,
        const fastpath::ReplaySpec &spec, const CacheConfig &llc,
        const std::vector<NamedTrace> &traces)
{
    const std::vector<fastpath::ReplaySpec> specs(kProfileBatch, spec);
    Measurement m;
    pcs.start();
    const auto start = std::chrono::steady_clock::now();
    for (const NamedTrace &t : traces)
        engine.replayMany(specs, llc, *t.trace, t.warmup);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    pcs.stop();
    m.seconds = dt.count();
    m.instructions = pcs.value("instructions");
    m.cycles = pcs.value("cycles");
    m.l1dMisses = pcs.value("l1d_read_miss");
    m.llcMisses = pcs.value("llc_read_miss");
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv, "micro_kernel_profile", "profile");
    Scale scale = resolveScale();
    banner("micro_kernel_profile: perf-counter attribution per replay "
           "kernel",
           "batched replay kernels (infrastructure, not a paper "
           "figure)");

    // --kernel restricts the sweep; default profiles every width.
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--kernel" && i + 1 < argc)
            only = argv[i + 1];
        else if (arg.rfind("--kernel=", 0) == 0)
            only = arg.substr(9);
    }

    SyntheticSuite suite(suiteParams(scale));
    SystemParams sys = systemParams();
    session.recordScale(scale);

    std::vector<NamedTrace> traces;
    uint64_t total_accesses = 0;
    for (const WorkloadSpec &spec : suite.specs()) {
        const auto entries =
            session.traceCache().get(spec, sys.hier, &session.timings());
        for (const LlcTraceCache::Entry &entry : *entries) {
            traces.push_back({spec.name, entry.demandTrace,
                              entry.demandTrace->size() / 3});
            total_accesses += entry.demandTrace->size();
        }
    }
    // Every batched genome replays every record.
    const uint64_t model_accesses = total_accesses * kProfileBatch;
    std::printf("profiling %llu model-accesses per (kernel, policy) "
                "cell (%zu traces x %zu genomes)\n\n",
                static_cast<unsigned long long>(model_accesses),
                traces.size(), kProfileBatch);
    session.setConfig("trace_accesses",
                      telemetry::JsonValue(total_accesses));
    session.setConfig("batch_genomes",
                      telemetry::JsonValue(uint64_t{kProfileBatch}));

    PerfCounterSet pcs;
    session.setConfig("perf_counters_available",
                      telemetry::JsonValue(pcs.available()));
    if (!pcs.available())
        note("no PMU access on this host (perf_event_open failed): "
             "counter columns are zero, wall-clock attribution only");

    const fastpath::FastReplayEngine fast(1);
    const std::vector<fastpath::ReplaySpec> specs = {
        fastpath::lruSpec(),
        fastpath::giplrSpec(local_vectors::giplr()),
        fastpath::plruSpec(),
        fastpath::gipprSpec(local_vectors::gippr()),
    };
    const fastpath::ReplayKernel widths[] = {
        fastpath::ReplayKernel::Scalar,
        fastpath::ReplayKernel::Batch16,
        fastpath::ReplayKernel::Batch32,
    };

    const int reps = scale.quick ? 2 : 3;
    Table table({"kernel", "policy", "Macc_s", "inst_per_acc",
                 "cyc_per_acc", "l1d_mpka", "llc_mpka"});
    for (fastpath::ReplayKernel k : widths) {
        const std::string kname = fastpath::replayKernelName(k);
        if (!only.empty() && only != kname)
            continue;
        if (fastpath::setReplayKernel(k) != k) {
            std::printf("kernel %s: unsupported on this host, "
                        "skipped\n",
                        kname.c_str());
            continue;
        }
        for (const fastpath::ReplaySpec &spec : specs) {
            // Best-of-N wall clock, with the counters of that rep.
            Measurement best;
            for (int r = 0; r < reps; ++r) {
                const Measurement m =
                    onePass(pcs, fast, spec, sys.hier.llc, traces);
                if (r == 0 || m.seconds < best.seconds)
                    best = m;
            }
            const double acc = static_cast<double>(model_accesses);
            table.newRow()
                .add(kname)
                .add(spec.name())
                .add(acc / 1e6 / best.seconds, 2)
                .add(static_cast<double>(best.instructions) / acc, 2)
                .add(static_cast<double>(best.cycles) / acc, 2)
                .add(1000.0 * static_cast<double>(best.l1dMisses) /
                         acc,
                     1)
                .add(1000.0 * static_cast<double>(best.llcMisses) /
                         acc,
                     1);
        }
    }
    // Leave the process on the widest kernel again (artifact config
    // records what each row actually dispatched via the kernel
    // column).
    fastpath::setReplayKernel(fastpath::widestSupportedReplayKernel());

    emitTable(table, "kernel_profile");
    session.addTable("kernel_profile", "per_access_attribution", table);
    note("inst/cyc per model-access attribute kernel-width gains to "
         "retired work vs stalls; L1d/LLC misses-per-kiloaccess "
         "separate locality effects (bucketed set slices) from "
         "memory-bandwidth ones (chunk buffer re-streams)");
    session.emit();
    return 0;
}
