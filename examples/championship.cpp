/**
 * @file
 * Cache replacement championship — a JWAC-style leaderboard.
 *
 * Runs every built-in policy over the full synthetic suite (the way
 * the JILP Cache Replacement Championship that hosted the paper's
 * infrastructure ranked entries) and prints a leaderboard ordered by
 * geometric-mean normalized MPKI, annotated with each policy's
 * storage budget — the paper's two axes, performance and cost, side
 * by side.
 *
 * Usage:
 *   ./build/examples/championship [accesses_per_simpoint]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/vectors.hh"
#include "sim/experiment.hh"

using namespace gippr;

int
main(int argc, char **argv)
{
    SuiteParams sp;
    sp.llcBlocks = 16384;
    sp.accessesPerSimpoint =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    SyntheticSuite suite(sp);

    ExperimentConfig cfg;
    cfg.system.hier.llc = CacheConfig::benchLlc();
    cfg.includeMin = true;

    std::vector<PolicyDef> policies = {
        policyByName("LRU"),     policyByName("PLRU"),
        policyByName("FIFO"),    policyByName("Random"),
        policyByName("DIP"),     policyByName("SRRIP"),
        policyByName("BRRIP"),   policyByName("DRRIP"),
        policyByName("PDP"),     policyByName("SHiP"),
        gipprDef("GIPPR", local_vectors::gippr()),
        dgipprDef("2-DGIPPR", local_vectors::dgippr2()),
        dgipprDef("4-DGIPPR", local_vectors::dgippr4()),
        policyByName("RRIPIPV"),
    };

    std::printf("running %zu policies x %zu workloads "
                "(%lu accesses/simpoint)...\n",
                policies.size(), suite.specs().size(),
                static_cast<unsigned long>(sp.accessesPerSimpoint));
    ExperimentResult r = runMissExperiment(suite, policies, cfg);
    size_t lru = r.columnIndex("LRU");

    struct Row
    {
        std::string name;
        double geomean;
        size_t bits_per_set;
        size_t global_bits;
    };
    std::vector<Row> rows;
    for (size_t c = 0; c < r.columns.size(); ++c) {
        Row row;
        row.name = r.columns[c];
        row.geomean = r.geomeanNormalized(c, lru, false);
        if (row.name == "MIN") {
            row.bits_per_set = 0;
            row.global_bits = 0;
        } else {
            auto p = policies[c].make(cfg.system.hier.llc);
            row.bits_per_set = p->stateBitsPerSet();
            row.global_bits = p->globalStateBits();
        }
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.geomean < b.geomean;
              });

    Table board({"rank", "policy", "geomean MPKI vs LRU", "bits/set",
                 "global bits"});
    int rank = 0;
    for (const Row &row : rows) {
        board.newRow()
            .add(row.name == "MIN" ? std::string("-")
                                   : std::to_string(++rank))
            .add(row.name)
            .add(row.geomean, 4)
            .add(static_cast<uint64_t>(row.bits_per_set))
            .add(static_cast<uint64_t>(row.global_bits));
    }
    std::printf("\n=== leaderboard (lower is better; MIN is the "
                "offline bound) ===\n");
    std::ostringstream os;
    board.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\nthe paper's claim to check: the DGIPPR rows should "
                "sit among the best policies while paying the fewest "
                "bits per set.\n");
    return 0;
}
