/**
 * @file
 * Online dynamic policy selection CLI.
 *
 * Replays one synthetic workload (suite, KV-cache family or
 * phase-shift family) through the bandit policy selector: a library of
 * replacement policies, set-sampled shadow rewards, epoch-boundary
 * decisions and phase-drift resets.  Also replays every library arm
 * statically to report the selector's regret against the best static
 * choice.
 *
 *   select_sim --workload ps_quad --library LRU,LIP,PLRU,GIPPR \
 *              --bandit ducb --json report.json
 *
 * Knobs:
 *   --workload NAME      suite / kv_* / ps_* workload (first simpoint)
 *   --library L1,L2,...  policy_zoo names (default LRU,LIP,PLRU,GIPPR)
 *   --bandit S           ducb | egreedy
 *   --epoch N            accesses per decision epoch
 *   --gamma F            dUCB discount per epoch
 *   --ucb-c F            dUCB confidence width
 *   --epsilon F          egreedy exploration probability
 *   --margin F           switch hysteresis margin
 *   --leaders N          requested leader sets per arm
 *   --no-drift           disable the phase-drift detector
 *   --backend S          fast (packed) | scalar (reference oracle)
 *   --accesses N         CPU references of the workload stream
 *   --seed S             suite base seed (also seeds the bandit)
 *   --json PATH          write a gippr-run-report artifact
 *   --deterministic      pin the report timestamp (CI diffing)
 *
 * The CI fastpath-equiv job runs `--deterministic` twice — with
 * --backend fast and --backend scalar — and byte-compares the two
 * JSON artifacts, so nothing written to the report may depend on the
 * backend.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "sim/multicore/mix.hh"
#include "sim/select/engine.hh"
#include "sim/select/report.hh"
#include "sim/select/select.hh"
#include "sim/trace_cache.hh"
#include "util/log.hh"
#include "workloads/suite.hh"

using namespace gippr;

namespace
{

struct Options
{
    std::string workload = "ps_quad";
    std::string library = select::defaultLibrarySpec();
    std::string bandit = "ducb";
    select::SelectConfig cfg;
    std::string backend = "fast";
    uint64_t accesses = 200'000;
    uint64_t seed = 0x5eed;
    double warmupFraction = 1.0 / 3.0;
    std::string jsonPath;
    bool deterministic = false;
};

void
usage()
{
    std::printf(
        "usage: select_sim [--workload NAME] [--library L1,L2,..]\n"
        "                  [--bandit ducb|egreedy] [--epoch N]\n"
        "                  [--gamma F] [--ucb-c F] [--epsilon F]\n"
        "                  [--margin F] [--leaders N] [--no-drift]\n"
        "                  [--backend fast|scalar] [--accesses N]\n"
        "                  [--seed S] [--json PATH] [--deterministic]\n"
        "\n"
        "Workloads resolve against the synthetic suite, the KV-cache\n"
        "family (kv_*) and the phase-shift family (ps_*).  Library\n"
        "entries are policy_zoo names (e.g. LRU, LIP, PLRU, GIPPR,\n"
        "DRRIP, PDP, SHiP).\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--workload")
            opts.workload = value("--workload");
        else if (arg == "--library")
            opts.library = value("--library");
        else if (arg == "--bandit")
            opts.bandit = value("--bandit");
        else if (arg == "--epoch")
            opts.cfg.epochLength = std::stoull(value("--epoch"));
        else if (arg == "--gamma")
            opts.cfg.gamma = std::stod(value("--gamma"));
        else if (arg == "--ucb-c")
            opts.cfg.ucbC = std::stod(value("--ucb-c"));
        else if (arg == "--epsilon")
            opts.cfg.epsilon = std::stod(value("--epsilon"));
        else if (arg == "--margin")
            opts.cfg.switchMargin = std::stod(value("--margin"));
        else if (arg == "--leaders")
            opts.cfg.leadersPerArm = static_cast<unsigned>(
                std::stoul(value("--leaders")));
        else if (arg == "--no-drift")
            opts.cfg.drift.enabled = false;
        else if (arg == "--backend")
            opts.backend = value("--backend");
        else if (arg == "--accesses")
            opts.accesses = std::stoull(value("--accesses"));
        else if (arg == "--seed")
            opts.seed = std::stoull(value("--seed"));
        else if (arg == "--json")
            opts.jsonPath = value("--json");
        else if (arg == "--deterministic")
            opts.deterministic = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (opts.cfg.epochLength == 0)
        fatal("--epoch must be >= 1");
    opts.cfg.kind = select::parseBanditKind(opts.bandit);
    opts.cfg.seed = opts.seed;
    return opts;
}

void
printResult(const Options &opts,
            const std::vector<PolicyDef> &library,
            const select::SelectResult &res,
            const std::vector<select::StaticOracleRow> &oracle)
{
    std::printf("workload %s: library %s, bandit %s, epoch %llu, "
                "%zu epochs, %llu switches, %llu drift resets\n",
                opts.workload.c_str(),
                select::libraryName(library).c_str(),
                select::banditKindName(opts.cfg.kind),
                static_cast<unsigned long long>(opts.cfg.epochLength),
                res.timeline.size(),
                static_cast<unsigned long long>(res.switches),
                static_cast<unsigned long long>(res.driftResets));
    std::printf("%-16s %8s %16s %16s\n", "arm", "epochs",
                "shadow_demand", "shadow_missrate");
    for (size_t a = 0; a < res.arms.size(); ++a) {
        const double mr =
            res.shadowDemandAccesses[a] > 0
                ? static_cast<double>(res.shadowDemandMisses[a]) /
                      static_cast<double>(res.shadowDemandAccesses[a])
                : 0.0;
        std::printf("%-16s %8llu %16llu %16.4f\n",
                    res.arms[a].c_str(),
                    static_cast<unsigned long long>(
                        res.epochsChosen[a]),
                    static_cast<unsigned long long>(
                        res.shadowDemandAccesses[a]),
                    mr);
    }
    std::printf("selector measured: %llu demand misses / %llu demand "
                "accesses (miss rate %.4f)\n",
                static_cast<unsigned long long>(
                    res.measured.demandMisses),
                static_cast<unsigned long long>(
                    res.measured.demandAccesses),
                res.measuredDemandMissRate());
    if (!oracle.empty()) {
        const size_t best = select::bestStaticIndex(oracle);
        for (size_t i = 0; i < oracle.size(); ++i) {
            const auto &row = oracle[i];
            const double mr =
                row.measured.demandAccesses > 0
                    ? static_cast<double>(
                          row.measured.demandMisses) /
                          static_cast<double>(
                              row.measured.demandAccesses)
                    : 0.0;
            std::printf("static %-12s %llu demand misses (miss rate "
                        "%.4f)%s\n",
                        row.name.c_str(),
                        static_cast<unsigned long long>(
                            row.measured.demandMisses),
                        mr, i == best ? "  <- best" : "");
        }
        const long long regret =
            static_cast<long long>(res.measured.demandMisses) -
            static_cast<long long>(
                oracle[best].measured.demandMisses);
        std::printf("regret vs best static: %lld misses\n", regret);
    }
}

int
run(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    SuiteParams sp;
    sp.llcBlocks = 16384; // the 1MB bench LLC
    sp.accessesPerSimpoint = opts.accesses;
    sp.baseSeed = opts.seed;
    SyntheticSuite suite(sp);

    HierarchyConfig hier;
    hier.l1 = CacheConfig::paperL1d();
    hier.l2 = CacheConfig::paperL2();
    hier.llc = CacheConfig::benchLlc();

    // A 1-tenant "mix" reuses the shared name resolution (suite, then
    // kv_*, then ps_*) and the L1/L2 demand filtering.
    const multicore::MixSpec mix =
        multicore::parseMixSpec(opts.workload, 1);
    LlcTraceCache cache;
    const std::vector<multicore::CoreStream> streams =
        multicore::buildCoreStreams(mix, suite, hier, &cache);
    const Trace &trace = *streams[0].trace;
    const size_t warmup = static_cast<size_t>(
        static_cast<double>(trace.size()) * opts.warmupFraction);

    const std::vector<PolicyDef> library =
        select::parseLibrary(opts.library);
    const select::Backend backend = select::resolveBackend(
        library, hier.llc, select::parseBackend(opts.backend));

    const select::SelectResult res = select::runSelect(
        library, opts.cfg, hier.llc, trace, warmup, backend);
    const std::vector<select::StaticOracleRow> oracle =
        select::staticOracle(library, hier.llc, trace, warmup,
                             backend);

    printResult(opts, library, res, oracle);
    if (!opts.jsonPath.empty()) {
        select::SelectReportInputs in;
        in.binary = "select_sim";
        in.workload = opts.workload;
        in.coreWorkloads = {opts.workload};
        in.cfg = opts.cfg;
        in.llc = hier.llc;
        in.warmupFraction = opts.warmupFraction;
        in.result = res;
        in.oracle = oracle;
        in.deterministic = opts.deterministic;
        select::buildSelectReport(in).writeFile(opts.jsonPath);
        std::printf("report written to %s\n", opts.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "select_sim: %s\n", e.what());
        return 1;
    }
}
