/**
 * @file
 * Compare replacement policies on a chosen workload — a small
 * interactive front-end to the full simulation stack.
 *
 * Usage:
 *   ./build/examples/policy_explorer [workload] [policy ...]
 *
 * With no arguments, runs the LRU-hostile "loop_thrash" against the
 * standard contenders.  Policies accept the same names as the policy
 * zoo, including inline vectors such as
 *   "GIPPR:0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13".
 *
 * Example:
 *   ./build/examples/policy_explorer zipf_hot LRU DRRIP DGIPPR4
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/log.hh"

using namespace gippr;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "loop_thrash";
    std::vector<std::string> policy_names;
    for (int i = 2; i < argc; ++i)
        policy_names.push_back(argv[i]);
    if (policy_names.empty()) {
        policy_names = {"LRU",   "PLRU",   "DIP",     "DRRIP",
                        "PDP",   "SHiP",   "DGIPPR2", "DGIPPR4"};
    }

    SuiteParams sp;
    sp.llcBlocks = 16384;
    sp.accessesPerSimpoint = 400000;
    SyntheticSuite suite(sp);

    SystemParams sys;
    sys.hier.llc = CacheConfig::benchLlc();

    std::printf("available workloads:");
    for (const auto &n : suite.names())
        std::printf(" %s", n.c_str());
    std::printf("\n\nsimulating '%s' (%lu CPU references per "
                "simpoint)...\n\n",
                workload.c_str(),
                static_cast<unsigned long>(sp.accessesPerSimpoint));

    Workload w;
    try {
        w = SyntheticSuite::materialize(suite.spec(workload));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    Table table({"policy", "IPC", "speedup vs LRU", "LLC MPKI",
                 "state bits/set"});
    double lru_ipc = 0.0;
    for (const std::string &name : policy_names) {
        PolicyDef def = policyByName(name);
        SimResult r = simulateWorkload(w, def.make, sys);
        if (lru_ipc == 0.0)
            lru_ipc = r.ipc; // first policy is the baseline
        auto policy = def.make(sys.hier.llc);
        table.newRow()
            .add(def.name)
            .add(r.ipc, 4)
            .add(lru_ipc > 0 ? r.ipc / lru_ipc : 1.0, 4)
            .add(r.llcMpki, 3)
            .add(static_cast<uint64_t>(policy->stateBitsPerSet()));
        std::printf("  %s done\n", def.name.c_str());
    }
    std::printf("\n");
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\n(speedup is relative to the first policy listed)\n");
    return 0;
}
