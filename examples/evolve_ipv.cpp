/**
 * @file
 * Evolve insertion/promotion vectors with the genetic algorithm, as
 * in the paper's Section 4.2 — but in-process instead of on a
 * 200-CPU cluster.
 *
 * Usage:
 *   ./build/examples/evolve_ipv [options]
 *     --family giplr|gippr   substrate (default gippr)
 *     --generations N        GA generations (default 12)
 *     --population N         population per generation (default 48)
 *     --vectors N            duel-set size to select (default 4)
 *     --accesses N           CPU references per simpoint (default 200000)
 *     --threads N            fitness evaluation threads (default 8)
 *     --seed N               GA seed (default 42)
 *     --json PATH            write a gippr-run-report JSON artifact
 *     --checkpoint PATH      save a resumable checkpoint each boundary
 *     --checkpoint-every N   generations between checkpoints (default 1)
 *     --resume               continue from --checkpoint if it exists
 *     --deterministic        pin timestamp, zero timings in the JSON
 *                            artifact (for byte-identity comparisons)
 *
 * Prints the convergence curve, the best vector, and (for N > 1) the
 * complementary duel set chosen from the final population.
 *
 * Crash safety: with --checkpoint, SIGINT/SIGTERM request a graceful
 * stop at the next generation boundary; the run checkpoints, writes a
 * partial JSON artifact with "interrupted": true, and exits 75
 * (resumable).  Re-running with --resume continues and the final
 * artifact is byte-identical (under --deterministic) to an
 * uninterrupted run's.  I/O failures exit 1 with an error message.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/vectors.hh"
#include "ga/genetic.hh"
#include "policies/lru.hh"
#include "robust/shutdown.hh"
#include "sim/system.hh"
#include "telemetry/progress.hh"
#include "telemetry/report.hh"
#include "util/log.hh"
#include "workloads/suite.hh"

using namespace gippr;

namespace
{

uint64_t
argValue(int argc, char **argv, const char *flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoull(argv[i + 1], nullptr, 10);
    return fallback;
}

std::string
argString(int argc, char **argv, const char *flag,
          const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

int
run(int argc, char **argv)
{
    const std::string family_name =
        argString(argc, argv, "--family", "gippr");
    const IpvFamily family = family_name == "giplr" ? IpvFamily::Giplr
                                                    : IpvFamily::Gippr;
    GaParams params;
    params.generations =
        static_cast<unsigned>(argValue(argc, argv, "--generations", 12));
    params.population = argValue(argc, argv, "--population", 48);
    params.initialPopulation = params.population * 2;
    params.threads =
        static_cast<unsigned>(argValue(argc, argv, "--threads", 8));
    params.seed = argValue(argc, argv, "--seed", 42);
    const size_t n_vectors = argValue(argc, argv, "--vectors", 4);
    const std::string json_path = argString(argc, argv, "--json", "");
    params.checkpoint.path = argString(argc, argv, "--checkpoint", "");
    params.checkpoint.every = static_cast<unsigned>(
        argValue(argc, argv, "--checkpoint-every", 1));
    params.checkpoint.resume = hasFlag(argc, argv, "--resume");
    const bool deterministic =
        hasFlag(argc, argv, "--deterministic");

    telemetry::PhaseTimings timings;
    telemetry::MetricRegistry registry;
    telemetry::StreamProgressSink progress;
    params.progress = &progress;
    params.timings = &timings;

    // Seed generation zero with the known archetypes (classic PLRU,
    // LIP, and the paper's published vectors) so the search starts
    // from the corners of the design space the literature identified.
    params.seedIpvs = {Ipv::lru(16), Ipv::lruInsertion(16),
                       paper_vectors::giplr(),
                       paper_vectors::wiGippr()};
    for (const Ipv &v : paper_vectors::wi4Dgippr())
        params.seedIpvs.push_back(v);

    SuiteParams sp;
    sp.llcBlocks = 16384;
    sp.accessesPerSimpoint = argValue(argc, argv, "--accesses", 200000);
    SyntheticSuite suite(sp);

    SystemParams sys;
    sys.hier.llc = CacheConfig::benchLlc();

    std::printf("materializing the %zu-workload suite and filtering "
                "to LLC traces...\n",
                suite.specs().size());
    // Stream one workload at a time: materialize, filter to LLC,
    // discard the CPU-level traces.  Peak memory is one workload's
    // CPU trace plus the (much smaller) filtered set, instead of the
    // whole suite at CPU level.
    std::vector<FitnessTrace> traces;
    for (const auto &spec : suite.specs()) {
        std::vector<Workload> single;
        single.push_back(SyntheticSuite::materialize(spec));
        for (FitnessTrace &ft : buildFitnessTraces(single, sys.hier))
            traces.push_back(std::move(ft));
    }
    FitnessEvaluator fitness(sys.hier.llc, std::move(traces), {},
                             &timings);
    fitness.attachTelemetry(registry, "fitness");

    // SIGINT/SIGTERM now request a graceful stop at the next
    // generation boundary instead of killing the process.
    robust::ShutdownGuard shutdown_guard;

    std::printf("evolving %s vectors: pop %zu, %u generations, "
                "%u threads, seed %lu\n",
                family_name.c_str(), params.population,
                params.generations, params.threads,
                static_cast<unsigned long>(params.seed));
    GaResult result = evolveIpv(fitness, family, params);

    std::printf("\nconvergence (best estimated speedup over LRU):\n");
    for (size_t g = 0; g < result.history.size(); ++g)
        std::printf("  gen %2zu: %.4f\n", g, result.history[g]);

    std::printf("\nbest vector: %s  (fitness %.4f)\n",
                result.best.toString().c_str(), result.bestFitness);

    std::vector<Ipv> duel;
    if (n_vectors > 1 && !result.interrupted) {
        std::vector<Ipv> pool;
        size_t take =
            std::min<size_t>(result.finalPopulation.size(), 24);
        for (size_t i = 0; i < take; ++i)
            pool.push_back(result.finalPopulation[i].ipv);
        // Keep the archetypes in contention for duel-set selection
        // even if evolution crowded them out of the population.
        for (const Ipv &v : params.seedIpvs)
            pool.push_back(v);
        duel = selectDuelSet(fitness, family, pool, n_vectors);
        std::printf("\ncomplementary %zu-vector duel set for "
                    "DGIPPR:\n",
                    n_vectors);
        for (const Ipv &v : duel)
            std::printf("  %s\n", v.toString().c_str());
        std::printf("\npaste these into src/core/vectors.cc "
                    "(local_vectors) to refresh the shipped "
                    "defaults.\n");
    }

    if (!json_path.empty()) {
        telemetry::RunReport report("ga", "evolve_ipv");
        // Checkpoint path and resume provenance are deliberately NOT
        // recorded: a resumed run's artifact must be byte-identical
        // to an uninterrupted run's.
        report.setConfig("family", telemetry::JsonValue(family_name));
        report.setConfig("population",
                         telemetry::JsonValue(
                             static_cast<uint64_t>(params.population)));
        report.setConfig(
            "initial_population",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.initialPopulation)));
        report.setConfig(
            "generations",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.generations)));
        report.setConfig(
            "threads",
            telemetry::JsonValue(static_cast<uint64_t>(params.threads)));
        report.setConfig("seed", telemetry::JsonValue(params.seed));
        report.setConfig(
            "replay_backend",
            telemetry::JsonValue(fastpath::defaultReplayEngine().name()));
        report.setConfig(
            "ga_batch",
            telemetry::JsonValue(
                static_cast<uint64_t>(fitness.batchWidth())));
        report.setConfig(
            "memo_capacity",
            telemetry::JsonValue(
                static_cast<uint64_t>(fitness.memoCapacity())));
        telemetry::JsonValue llc = telemetry::JsonValue::object();
        llc.set("size_bytes", telemetry::JsonValue(sys.hier.llc.sizeBytes));
        llc.set("assoc",
                telemetry::JsonValue(
                    static_cast<uint64_t>(sys.hier.llc.assoc)));
        llc.set("block_bytes",
                telemetry::JsonValue(
                    static_cast<uint64_t>(sys.hier.llc.blockBytes)));
        report.setConfig("llc", std::move(llc));
        if (result.interrupted)
            report.setConfig("interrupted",
                             telemetry::JsonValue(true));
        report.setConfig("best_vector",
                         telemetry::JsonValue(result.best.toString()));
        telemetry::JsonValue duel_json = telemetry::JsonValue::array();
        for (const Ipv &v : duel)
            duel_json.push(telemetry::JsonValue(v.toString()));
        report.setConfig("duel_set", std::move(duel_json));

        telemetry::ResultTable convergence;
        convergence.title = "convergence";
        convergence.metric = "estimated speedup over LRU";
        convergence.columns = {"best_fitness", "eval_seconds"};
        for (size_t g = 0; g < result.history.size(); ++g) {
            double secs = g < result.generationSeconds.size()
                              ? result.generationSeconds[g]
                              : 0.0;
            convergence.rows.push_back(
                {"gen " + std::to_string(g),
                 {result.history[g], deterministic ? 0.0 : secs}});
        }
        report.addTable(std::move(convergence));
        if (deterministic) {
            // Wall-clock phases, metrics and the timestamp vary run
            // to run; pin or drop them so resumed and uninterrupted
            // runs can be compared byte for byte.
            report.setTimestamp("1970-01-01T00:00:00Z");
        } else {
            report.setPhases(timings);
            report.setMetrics(registry);
        }
        report.writeFile(json_path);
        std::printf("wrote JSON artifact: %s\n", json_path.c_str());
    }

    if (result.interrupted) {
        std::printf("\nrun interrupted; resume with --checkpoint %s "
                    "--resume\n",
                    params.checkpoint.path.c_str());
        return 75; // EX_TEMPFAIL: partial results, resumable
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
