/**
 * @file
 * Watch set-dueling adapt in real time.
 *
 * Drives a 2-DGIPPR cache through alternating program phases — an
 * LRU-hostile cyclic loop, then a recency-friendly working set — and
 * prints a timeline of the PSEL winner and the rolling hit rate, so
 * you can see the duel flip exactly where the phases change
 * (Section 3.5 of the paper).
 *
 * Run:  ./build/examples/dueling_demo
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "cache/cache.hh"
#include "core/dgippr.hh"
#include "core/ipv.hh"

using namespace gippr;

int
main()
{
    CacheConfig config = CacheConfig::benchLlc();

    // Duel the two classic archetypes so the winner labels below are
    // meaningful: vector 0 = PMRU insertion, vector 1 = LIP.
    std::vector<Ipv> pair = {Ipv::lru(16), Ipv::lruInsertion(16)};
    auto policy_owner =
        std::make_unique<DgipprPolicy>(config, pair, 32, 9);
    DgipprPolicy *policy = policy_owner.get();
    SetAssocCache cache(config, std::move(policy_owner));

    const uint64_t capacity = config.sets() * config.assoc;
    const uint64_t thrash_blocks = capacity * 5 / 4;
    const uint64_t friendly_blocks = capacity / 2;

    std::printf("2-DGIPPR duel: vector 0 = PMRU insertion (classic "
                "PLRU), vector 1 = PLRU insertion (LIP-like)\n");
    std::printf(
        "phase A: cyclic loop at 1.25x capacity (LIP wins: it keeps\n"
        "         15/16 of each set resident)\n"
        "phase B: working set at 0.5x capacity (everything fits; both\n"
        "         vectors hit)\n"
        "phase C: *fresh* 0.5x working set.  Pure PLRU-insertion gets\n"
        "         stuck here: with no hits there are no promotions, so\n"
        "         it can never admit the new blocks past the churn\n"
        "         slot.  The PMRU leader sets admit them and start\n"
        "         hitting, the PSEL flips, and the followers recover -\n"
        "         adaptivity rescuing a pathological static choice.\n\n");
    std::printf("%-10s %-8s %-10s %s\n", "accesses", "phase", "winner",
                "rolling hit rate");

    uint64_t window_hits = 0, window_accesses = 0, total = 0;
    auto touch = [&](uint64_t block) {
        AccessResult r =
            cache.access(block * config.blockBytes, AccessType::Load);
        window_hits += r.hit ? 1 : 0;
        ++window_accesses;
        ++total;
        if (window_accesses == 100000) {
            std::printf("%-10lu %-8c %-10s %5.1f%%\n",
                        static_cast<unsigned long>(total),
                        total <= 2000000        ? 'A'
                        : total <= 4000000      ? 'B'
                                                : 'C',
                        policy->currentWinner() == 0 ? "PMRU" : "LIP",
                        100.0 * static_cast<double>(window_hits) /
                            static_cast<double>(window_accesses));
            window_hits = window_accesses = 0;
        }
    };

    // Phase A: thrash.
    for (uint64_t i = 0; i < 2000000; ++i)
        touch(i % thrash_blocks);
    // Phase B: small working set, blocks touched twice in a row so
    // every insertion is immediately validated by a re-reference
    // (even LIP admits the set this way).
    uint64_t base = 1 << 24;
    for (uint64_t i = 0; i < 2000000; ++i)
        touch(base + (i / 2) % friendly_blocks);
    // Phase C: a *new* fitting working set; LIP alone would be stuck
    // at 0%, the duel must flip to PMRU to admit it.
    base = 2 << 24;
    for (uint64_t i = 0; i < 2000000; ++i)
        touch(base + i % friendly_blocks);

    std::printf("\nfinal winner: %s\n",
                policy->currentWinner() == 0 ? "PMRU insertion"
                                             : "LIP insertion");
    std::printf("total: %lu accesses, %lu hits (%.1f%%)\n",
                static_cast<unsigned long>(cache.stats().accesses),
                static_cast<unsigned long>(cache.stats().hits),
                100.0 * static_cast<double>(cache.stats().hits) /
                    static_cast<double>(cache.stats().accesses));
    return 0;
}
