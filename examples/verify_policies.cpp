/**
 * @file
 * Policy verification CLI: exhaustive model checking + differential
 * oracle replay.
 *
 * Two verification modes, both wired into CI:
 *
 *   verify_policies --model-check
 *       Enumerates every PLRU bit assignment and every (way, target)
 *       setPosition transition for ways in {2, 4, 8, 16} and proves
 *       the paper's structural invariants (permutation, PMRU at 0,
 *       PLRU victim at k-1, round trips, the <= log2(k) touched-bits
 *       bound, promoteMru == setPosition(way, 0)).
 *
 *   verify_policies --differential
 *       Replays randomized and workload-suite access streams through
 *       each production policy and its independently implemented
 *       reference oracle (true recency stack for LRU/LIP/GIPLR, exact
 *       tree semantics for PLRU/GIPPR, duel bookkeeping for DGIPPR),
 *       comparing full per-set state after every event and reporting
 *       the first divergence with both models' state dumps.
 *
 * With no mode flag, both run.  --json writes a gippr-run-report
 * artifact (kind "verify").  Exit status is nonzero on any failure,
 * so CI can gate on it directly.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "telemetry/report.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "verify/differential.hh"
#include "verify/model_check.hh"
#include "workloads/suite.hh"

using namespace gippr;

namespace
{

struct Options
{
    bool modelCheck = false;
    bool differential = false;
    /** Accesses per (policy, stream) differential replay. */
    uint64_t accesses = 200'000;
    uint64_t seed = 0x5eed;
    std::string jsonPath;
    std::vector<std::string> policies;
};

void
usage()
{
    std::printf(
        "usage: verify_policies [--model-check] [--differential]\n"
        "                       [--accesses N] [--seed S]\n"
        "                       [--policies CSV] [--json PATH]\n"
        "\n"
        "Runs the exhaustive PLRU model checker and/or the\n"
        "differential oracle harness; default is both.  Policies:\n"
        "LRU, LIP, GIPLR, PLRU, GIPPR, DGIPPR2, DGIPPR4.\n");
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--model-check") {
            opts.modelCheck = true;
        } else if (arg == "--differential") {
            opts.differential = true;
        } else if (arg == "--accesses") {
            opts.accesses = std::stoull(value("--accesses"));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(value("--seed"));
        } else if (arg == "--policies") {
            opts.policies = splitCsv(value("--policies"));
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (!opts.modelCheck && !opts.differential) {
        opts.modelCheck = true;
        opts.differential = true;
    }
    if (opts.policies.empty())
        opts.policies = verify::mirrorNames();
    return opts;
}

/** The geometry differential runs check: a small 16-way LLC slice. */
CacheConfig
verifyGeometry()
{
    CacheConfig cfg;
    cfg.name = "verify-llc";
    cfg.sizeBytes = 256 * 1024; // 256 sets at 16 ways x 64B
    cfg.assoc = 16;
    cfg.blockBytes = 64;
    return cfg;
}

/**
 * Randomized stream: uniform block addresses over a footprint chosen
 * relative to the cache size, with stores and explicit writeback
 * records mixed in, so hits, misses, evictions and writeback-hit
 * filtering are all exercised.
 */
Trace
randomStream(const CacheConfig &cfg, uint64_t accesses, double footprint,
             uint64_t seed)
{
    Rng rng(seed);
    const uint64_t cache_blocks = cfg.sizeBytes / cfg.blockBytes;
    uint64_t blocks = static_cast<uint64_t>(
        static_cast<double>(cache_blocks) * footprint);
    if (blocks < 1)
        blocks = 1;
    Trace trace;
    trace.reserve(accesses);
    for (uint64_t i = 0; i < accesses; ++i) {
        MemRecord rec;
        rec.addr = rng.nextBounded(blocks) * cfg.blockBytes;
        rec.instGap = 1 + static_cast<uint32_t>(rng.nextBounded(8));
        if (rng.nextBool(0.1)) {
            rec.isWrite = true; // writeback record (pc stays 0)
        } else {
            rec.isWrite = rng.nextBool(0.2);
            rec.pc = 0x400000 + rng.nextBounded(64) * 4;
        }
        trace.append(rec);
    }
    return trace;
}

/** Zipf-skewed stream: recency-friendly with a popular head. */
Trace
zipfStream(const CacheConfig &cfg, uint64_t accesses, uint64_t seed)
{
    Rng rng(seed);
    const uint64_t blocks = 4 * cfg.sizeBytes / cfg.blockBytes;
    ZipfSampler zipf(blocks, 0.8);
    Trace trace;
    trace.reserve(accesses);
    for (uint64_t i = 0; i < accesses; ++i) {
        MemRecord rec;
        rec.addr = zipf.sample(rng) * cfg.blockBytes;
        rec.instGap = 1 + static_cast<uint32_t>(rng.nextBounded(8));
        rec.isWrite = rng.nextBool(0.2);
        rec.pc = 0x500000 + rng.nextBounded(64) * 4;
        trace.append(rec);
    }
    return trace;
}

/** One named stream for the differential sweep. */
struct StreamDef
{
    std::string name;
    Trace trace;
    verify::ReplayOptions opts;
};

std::vector<StreamDef>
buildStreams(const CacheConfig &cfg, uint64_t accesses, uint64_t seed)
{
    std::vector<StreamDef> streams;
    // Per-stream budget: the acceptance bar is total accesses per
    // policy, split across four stream shapes.
    const uint64_t per = accesses / 4 + 1;

    StreamDef thrash;
    thrash.name = "uniform-2x";
    thrash.trace = randomStream(cfg, per, 2.0, seed);
    streams.push_back(std::move(thrash));

    StreamDef resident;
    resident.name = "uniform-0.5x";
    resident.trace = randomStream(cfg, per, 0.5, seed + 1);
    resident.opts.invalidateEvery = 97; // exercise onInvalidate
    streams.push_back(std::move(resident));

    StreamDef skew;
    skew.name = "zipf-4x";
    skew.trace = zipfStream(cfg, per, seed + 2);
    streams.push_back(std::move(skew));

    // Workload-suite stream: a scan-polluted hot set from the
    // synthetic suite, the archetype insertion policies exist for.
    SuiteParams sp;
    sp.llcBlocks = cfg.sizeBytes / cfg.blockBytes;
    sp.accessesPerSimpoint = per;
    sp.baseSeed = seed + 3;
    SyntheticSuite suite(sp);
    Workload w = SyntheticSuite::materialize(suite.spec("mix_zipfscan"));
    StreamDef suite_stream;
    suite_stream.name = "suite/mix_zipfscan";
    for (const Simpoint &s : w.simpoints()) {
        for (const MemRecord &rec : *s.trace)
            suite_stream.trace.append(rec);
    }
    streams.push_back(std::move(suite_stream));
    return streams;
}

int
run(int argc, char **argv)
{
    Options opts = parseArgs(argc, argv);
    telemetry::RunReport report("verify", "verify_policies");
    bool all_ok = true;

    if (opts.modelCheck) {
        std::printf("=== exhaustive PLRU model check ===\n");
        telemetry::ResultTable table;
        table.title = "model_check";
        table.metric = "count";
        table.columns = {"states", "transitions", "checks_passed",
                         "failures"};
        for (const verify::ModelCheckResult &r :
             verify::modelCheckSweep()) {
            std::printf("ways %2u: %8llu states, %9llu transitions, "
                        "%10llu checks passed, %zu failures\n",
                        r.ways,
                        static_cast<unsigned long long>(r.statesChecked),
                        static_cast<unsigned long long>(
                            r.transitionsChecked),
                        static_cast<unsigned long long>(r.checksPassed),
                        r.failures.size());
            for (const verify::ModelCheckFailure &f : r.failures)
                std::printf("    FAIL %s\n", f.toString().c_str());
            telemetry::ResultRow row;
            row.name = std::to_string(r.ways) + "-way";
            row.values = {static_cast<double>(r.statesChecked),
                          static_cast<double>(r.transitionsChecked),
                          static_cast<double>(r.checksPassed),
                          static_cast<double>(r.failures.size())};
            table.rows.push_back(std::move(row));
            all_ok = all_ok && r.ok();
        }
        report.addTable(std::move(table));
    }

    if (opts.differential) {
        std::printf("=== differential oracle replay ===\n");
        const CacheConfig cfg = verifyGeometry();
        std::vector<StreamDef> streams =
            buildStreams(cfg, opts.accesses, opts.seed);
        telemetry::ResultTable table;
        table.title = "differential";
        table.metric = "count";
        table.columns = {"accesses", "invalidates", "comparisons",
                         "divergences"};
        for (const std::string &policy : opts.policies) {
            for (const StreamDef &stream : streams) {
                verify::DifferentialResult r = verify::replayDifferential(
                    policy, cfg, stream.trace, stream.opts);
                r.stream = stream.name;
                std::printf("%-8s vs oracle on %-18s: %8llu accesses, "
                            "%4llu invalidates, %9llu comparisons: %s\n",
                            policy.c_str(), stream.name.c_str(),
                            static_cast<unsigned long long>(r.accesses),
                            static_cast<unsigned long long>(r.invalidates),
                            static_cast<unsigned long long>(r.comparisons),
                            r.ok() ? "ok" : "DIVERGED");
                if (!r.ok()) {
                    std::printf("    %s\n",
                                r.divergence->toString().c_str());
                    all_ok = false;
                }
                telemetry::ResultRow row;
                row.name = policy + "/" + stream.name;
                row.values = {static_cast<double>(r.accesses),
                              static_cast<double>(r.invalidates),
                              static_cast<double>(r.comparisons),
                              r.ok() ? 0.0 : 1.0};
                table.rows.push_back(std::move(row));
            }
        }
        report.addTable(std::move(table));
        report.setConfig("accesses_per_stream",
                         telemetry::JsonValue(opts.accesses / 4 + 1));
        report.setConfig("geometry_sets",
                         telemetry::JsonValue(cfg.sets()));
    }

    report.setConfig("seed", telemetry::JsonValue(opts.seed));
    report.setConfig("ok", telemetry::JsonValue(all_ok));
    if (!opts.jsonPath.empty()) {
        report.writeFile(opts.jsonPath);
        std::printf("wrote JSON artifact: %s\n", opts.jsonPath.c_str());
    }

    std::printf(all_ok ? "\nverification PASSED\n"
                       : "\nverification FAILED\n");
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
