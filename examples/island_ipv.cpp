/**
 * @file
 * Fault-tolerant island-model GA service — the paper's 200-CPU
 * cluster search, reproduced as N supervised worker processes
 * exchanging migrants through a shared coordination directory.
 *
 * Usage (coordinator mode):
 *   ./build/examples/island_ipv --workdir DIR [options]
 *     --islands N              worker processes / islands (default 4)
 *     --exchange-every N       generations between exchanges (default 3)
 *     --migrants N             individuals published per exchange (default 4)
 *     --family giplr|gippr     substrate (default gippr)
 *     --generations N          generations per island (default 8)
 *     --population N           island population (default 32)
 *     --threads N              fitness threads per worker (default 2)
 *     --seed N                 master seed (default 42)
 *     --accesses N             CPU references per simpoint (default 60000)
 *     --exchange-deadline-ms N budget waiting on one peer (default 60000)
 *     --poll-ms N              migrant/lease poll period (default 20)
 *     --stale-ms N             lease silence before reclaim (default 15000)
 *     --max-respawns N         respawn budget per island (default 16)
 *     --checkpoint-every N     generations between checkpoints (default 1)
 *     --merged PATH            write the deterministic merged artifact
 *     --json PATH              write the "island" RunReport
 *     --deterministic          pin the RunReport timestamp
 *     --resume                 continue a previous run in --workdir
 *
 * Worker mode (spawned by the coordinator; not for direct use):
 *     --worker-id N --incarnation K
 *
 * The merged artifact is a pure function of (master seed, islands,
 * generations, exchange schedule): a run that suffered worker kills
 * and respawns produces a byte-identical --merged file to an
 * undisturbed run, as long as every kill was reclaimed before the
 * peers' exchange deadline.  SIGINT/SIGTERM drains every island to
 * its checkpoint and exits 75; rerunning with --resume continues.
 * Operational nondeterminism (respawn counts, timings) goes to the
 * --json RunReport, never the merged artifact.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "ga/fitness.hh"
#include "island/island.hh"
#include "island/service.hh"
#include "robust/atomic_io.hh"
#include "robust/shutdown.hh"
#include "sim/system.hh"
#include "telemetry/report.hh"
#include "util/log.hh"
#include "workloads/suite.hh"

using namespace gippr;

namespace
{

uint64_t
argValue(int argc, char **argv, const char *flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoull(argv[i + 1], nullptr, 10);
    return fallback;
}

std::string
argString(int argc, char **argv, const char *flag,
          const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** This binary's absolute path, for re-exec'ing workers. */
std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        fatal("island_ipv: cannot resolve /proc/self/exe");
    buf[n] = '\0';
    return buf;
}

/** Build the fitness evaluator every worker and the merge share. */
FitnessEvaluator
buildFitness(uint64_t accesses, const SystemParams &sys)
{
    SuiteParams sp;
    sp.llcBlocks = 16384;
    sp.accessesPerSimpoint = accesses;
    SyntheticSuite suite(sp);
    std::vector<FitnessTrace> traces;
    for (const auto &spec : suite.specs()) {
        std::vector<Workload> single;
        single.push_back(SyntheticSuite::materialize(spec));
        for (FitnessTrace &ft : buildFitnessTraces(single, sys.hier))
            traces.push_back(std::move(ft));
    }
    return FitnessEvaluator(sys.hier.llc, std::move(traces));
}

/** Deterministic merged artifact (the byte-compared file). */
void
writeMergedArtifact(const std::string &path,
                    const island::IslandParams &params,
                    const std::string &familyName,
                    const island::IslandMerge &merge)
{
    telemetry::JsonValue doc = telemetry::JsonValue::object();
    doc.set("schema", telemetry::JsonValue("gippr-island-merged"));
    doc.set("version", telemetry::JsonValue(1));
    doc.set("family", telemetry::JsonValue(familyName));
    doc.set("master_seed", telemetry::JsonValue(params.masterSeed));
    doc.set("islands",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.islands)));
    doc.set("generations",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.generations)));
    doc.set("exchange_every",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.exchangeEvery)));
    doc.set("migrants",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.migrants)));
    doc.set("population",
            telemetry::JsonValue(
                static_cast<uint64_t>(params.population)));
    telemetry::JsonValue merged_islands =
        telemetry::JsonValue::array();
    for (const IslandCheckpoint &ck : merge.finals)
        merged_islands.push(telemetry::JsonValue(
            static_cast<uint64_t>(ck.island)));
    doc.set("merged_islands", std::move(merged_islands));
    doc.set("best_vector",
            telemetry::JsonValue(merge.result.best.toString()));
    doc.set("best_fitness",
            telemetry::JsonValue(merge.result.bestFitness));
    telemetry::JsonValue history = telemetry::JsonValue::array();
    for (double h : merge.result.history)
        history.push(telemetry::JsonValue(h));
    doc.set("history", std::move(history));
    telemetry::JsonValue pop = telemetry::JsonValue::array();
    for (const SampledIpv &s : merge.result.finalPopulation) {
        telemetry::JsonValue entry = telemetry::JsonValue::object();
        entry.set("ipv", telemetry::JsonValue(s.ipv.toString()));
        entry.set("fitness", telemetry::JsonValue(s.fitness));
        pop.push(std::move(entry));
    }
    doc.set("merged_population", std::move(pop));
    robust::writeFileAtomic(path, doc.dump() + "\n");
    std::printf("wrote merged artifact: %s\n", path.c_str());
}

/** Operational "island" RunReport (timelines, crashes, degradation). */
void
writeIslandReport(const std::string &path,
                  const island::IslandParams &params,
                  const std::string &familyName,
                  const island::IslandMerge &merge,
                  const island::ServiceOutcome &service,
                  bool deterministic)
{
    telemetry::RunReport report("island", "island_ipv");
    report.setConfig("family", telemetry::JsonValue(familyName));
    report.setConfig("master_seed",
                     telemetry::JsonValue(params.masterSeed));
    report.setConfig("islands",
                     telemetry::JsonValue(
                         static_cast<uint64_t>(params.islands)));
    report.setConfig("generations",
                     telemetry::JsonValue(
                         static_cast<uint64_t>(params.generations)));
    report.setConfig(
        "exchange_every",
        telemetry::JsonValue(
            static_cast<uint64_t>(params.exchangeEvery)));
    report.setConfig("migrants",
                     telemetry::JsonValue(
                         static_cast<uint64_t>(params.migrants)));
    report.setConfig("recovered_crashes",
                     telemetry::JsonValue(service.recoveredCrashes));
    report.setConfig(
        "exchanges_missed",
        telemetry::JsonValue(merge.exchangesMissed));
    report.setConfig("best_vector",
                     telemetry::JsonValue(merge.result.best.toString()));
    telemetry::JsonValue dead = telemetry::JsonValue::array();
    for (uint32_t i : merge.missing)
        dead.push(telemetry::JsonValue(static_cast<uint64_t>(i)));
    report.setConfig("dead_islands", std::move(dead));
    report.setConfig("degraded",
                     telemetry::JsonValue(!merge.missing.empty()));

    // Per-island convergence timelines.
    telemetry::ResultTable timeline;
    timeline.title = "island_convergence";
    timeline.metric = "estimated speedup over LRU";
    for (const IslandCheckpoint &ck : merge.finals)
        timeline.columns.push_back("island " +
                                   std::to_string(ck.island));
    for (unsigned g = 0; g <= params.generations; ++g) {
        telemetry::ResultRow row;
        row.name = "gen " + std::to_string(g);
        for (const IslandCheckpoint &ck : merge.finals)
            row.values.push_back(
                g < ck.history.size() ? ck.history[g] : 0.0);
        timeline.rows.push_back(std::move(row));
    }
    report.addTable(std::move(timeline));

    // Exchange and recovery tallies per island.
    telemetry::ResultTable ops;
    ops.title = "island_operations";
    ops.metric = "count";
    ops.columns = {"exchanges_done", "exchanges_missed", "respawns"};
    for (const IslandCheckpoint &ck : merge.finals) {
        const uint64_t respawns =
            ck.island < service.islands.size()
                ? service.islands[ck.island].respawns
                : 0;
        ops.rows.push_back(
            {"island " + std::to_string(ck.island),
             {static_cast<double>(ck.exchangesDone),
              static_cast<double>(ck.exchangesMissed),
              static_cast<double>(respawns)}});
    }
    report.addTable(std::move(ops));
    if (deterministic)
        report.setTimestamp("1970-01-01T00:00:00Z");
    report.writeFile(path);
    std::printf("wrote island RunReport: %s\n", path.c_str());
}

int
runWorker(int argc, char **argv, const island::IslandParams &params,
          IpvFamily family, uint64_t accesses)
{
    const auto worker_id = static_cast<uint32_t>(
        argValue(argc, argv, "--worker-id", 0));
    const uint64_t incarnation =
        argValue(argc, argv, "--incarnation", 0);

    SystemParams sys;
    sys.hier.llc = CacheConfig::benchLlc();
    FitnessEvaluator fitness = buildFitness(accesses, sys);

    robust::ShutdownGuard shutdown_guard;
    island::IslandWorkerOptions opts;
    opts.island = worker_id;
    opts.incarnation = incarnation;
    opts.resume = true; // a fresh island simply has no checkpoint yet
    opts.watchShutdown = true;
    const island::IslandOutcome outcome =
        island::runIslandWorker(fitness, family, params, opts);
    return outcome.interrupted ? 75 : 0;
}

int
run(int argc, char **argv)
{
    const std::string family_name =
        argString(argc, argv, "--family", "gippr");
    const IpvFamily family = family_name == "giplr" ? IpvFamily::Giplr
                                                    : IpvFamily::Gippr;

    island::IslandParams params;
    params.islands = static_cast<uint32_t>(
        argValue(argc, argv, "--islands", 4));
    params.masterSeed = argValue(argc, argv, "--seed", 42);
    params.generations = static_cast<unsigned>(
        argValue(argc, argv, "--generations", 8));
    params.population = argValue(argc, argv, "--population", 32);
    params.initialPopulation = params.population * 2;
    params.threads = static_cast<unsigned>(
        argValue(argc, argv, "--threads", 2));
    params.exchangeEvery = static_cast<unsigned>(
        argValue(argc, argv, "--exchange-every", 3));
    params.migrants = argValue(argc, argv, "--migrants", 4);
    params.workdir = argString(argc, argv, "--workdir", "");
    params.exchangeDeadlineMs = static_cast<unsigned>(
        argValue(argc, argv, "--exchange-deadline-ms", 60000));
    params.pollMs =
        static_cast<unsigned>(argValue(argc, argv, "--poll-ms", 20));
    params.checkpointEvery = static_cast<unsigned>(
        argValue(argc, argv, "--checkpoint-every", 1));
    const uint64_t accesses =
        argValue(argc, argv, "--accesses", 60000);
    if (params.workdir.empty())
        fatal("island_ipv: --workdir is required");

    if (hasFlag(argc, argv, "--worker-id"))
        return runWorker(argc, argv, params, family, accesses);

    // Coordinator mode.
    if (::mkdir(params.workdir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("island_ipv: cannot create workdir " + params.workdir);

    island::ServiceParams sp;
    sp.workdir = params.workdir;
    sp.islands = params.islands;
    sp.staleMs = static_cast<unsigned>(
        argValue(argc, argv, "--stale-ms", 15000));
    sp.pollMs = static_cast<unsigned>(
        argValue(argc, argv, "--service-poll-ms", 50));
    sp.maxRespawns = argValue(argc, argv, "--max-respawns", 16);
    sp.workerCommand.push_back(selfExePath());
    for (int i = 1; i < argc; ++i)
        sp.workerCommand.push_back(argv[i]);

    std::printf("island service: %u islands x %u generations, "
                "exchange every %u, master seed %llu\n",
                params.islands, params.generations,
                params.exchangeEvery,
                static_cast<unsigned long long>(params.masterSeed));

    robust::ShutdownGuard shutdown_guard;
    const island::ServiceOutcome service =
        island::runIslandService(sp);
    if (service.drained) {
        std::printf("island service drained; resume with the same "
                    "--workdir and --resume\n");
        return 75; // EX_TEMPFAIL: every island checkpointed
    }

    SystemParams sys;
    sys.hier.llc = CacheConfig::benchLlc();
    FitnessEvaluator fitness = buildFitness(accesses, sys);
    const island::IslandMerge merge =
        island::mergeIslands(params, family, fitness, true);

    std::printf("\nmerged %zu island(s); best vector %s "
                "(fitness %.4f)\n",
                merge.finals.size(),
                merge.result.best.toString().c_str(),
                merge.result.bestFitness);
    if (!merge.missing.empty()) {
        std::printf("DEGRADED: %zu island(s) permanently dead:",
                    merge.missing.size());
        for (uint32_t i : merge.missing)
            std::printf(" %u", i);
        std::printf("\n");
    }
    if (merge.exchangesMissed > 0)
        std::printf("exchanges missed across islands: %llu\n",
                    static_cast<unsigned long long>(
                        merge.exchangesMissed));
    if (service.recoveredCrashes > 0)
        std::printf("worker crashes recovered: %llu\n",
                    static_cast<unsigned long long>(
                        service.recoveredCrashes));

    const std::string merged_path =
        argString(argc, argv, "--merged", "");
    if (!merged_path.empty())
        writeMergedArtifact(merged_path, params, family_name, merge);
    const std::string json_path = argString(argc, argv, "--json", "");
    if (!json_path.empty())
        writeIslandReport(json_path, params, family_name, merge,
                          service,
                          hasFlag(argc, argv, "--deterministic"));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
