/**
 * @file
 * Quickstart: the core API in ~60 lines.
 *
 * Builds a 16-way last-level cache managed by GIPPR (the paper's
 * IPV-driven tree PseudoLRU), replays a thrash-prone loop against it
 * and against true LRU, and prints the resulting hit rates and the
 * storage each policy pays.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "cache/cache.hh"
#include "core/gippr.hh"
#include "core/ipv.hh"
#include "policies/lru.hh"

using namespace gippr;

int
main()
{
    // A 1MB, 16-way, 64B-line cache (the paper evaluates 4MB).
    CacheConfig config = CacheConfig::benchLlc();

    // An insertion/promotion vector: all-zero promotions with
    // insertion at the PLRU position — the "LIP on a PLRU tree"
    // point of the design space.  Any 17-entry vector with values in
    // [0, 16) is a valid policy; the paper evolves them genetically.
    Ipv ipv = Ipv::parse("0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15");

    SetAssocCache gippr_cache(config,
                              std::make_unique<GipprPolicy>(config, ipv));
    SetAssocCache lru_cache(config,
                            std::make_unique<LruPolicy>(config));

    // A cyclic working set 1.25x the cache: the classic pattern where
    // LRU gets zero hits and LIP-style insertion keeps most of it.
    const uint64_t blocks = config.sets() * config.assoc * 5 / 4;
    for (int pass = 0; pass < 20; ++pass) {
        for (uint64_t b = 0; b < blocks; ++b) {
            uint64_t addr = b * config.blockBytes;
            gippr_cache.access(addr, AccessType::Load);
            lru_cache.access(addr, AccessType::Load);
        }
    }

    auto report = [](const char *name, const SetAssocCache &cache) {
        const CacheStats &s = cache.stats();
        std::printf("%-6s  accesses %8lu  hits %8lu  hit rate %5.1f%%"
                    "  replacement state %zu bits/set\n",
                    name, static_cast<unsigned long>(s.accesses),
                    static_cast<unsigned long>(s.hits),
                    100.0 * static_cast<double>(s.hits) /
                        static_cast<double>(s.accesses),
                    cache.policy().stateBitsPerSet());
    };
    std::printf("cyclic working set at 1.25x capacity, 20 passes:\n\n");
    report("LRU", lru_cache);
    report("GIPPR", gippr_cache);

    std::printf("\nGIPPR matches the storage of plain PseudoLRU "
                "(%u bits/set) while choosing a far better insertion "
                "point for this workload.\n",
                config.assoc - 1);
    return 0;
}
