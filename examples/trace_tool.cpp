/**
 * @file
 * Workload characterization tool.
 *
 * Profiles a suite workload (or a saved GPTR trace file) and prints
 * the numbers the paper reasons about qualitatively: footprint,
 * accesses per kilo-instruction, the stack-distance histogram in
 * cache-relevant bands, the implied fully associative LRU miss-rate
 * curve, and the share of zero-reuse blocks.  It can also save the
 * generated trace for external tools.
 *
 * Usage:
 *   ./build/examples/trace_tool [workload|path.gptr] [--save out.gptr]
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>

#include "trace/analysis.hh"
#include "trace/trace_io.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

using namespace gippr;

namespace
{

int
run(int argc, char **argv)
{
    std::string source = argc > 1 ? argv[1] : "loop_thrash";
    std::string save_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--save") == 0)
            save_path = argv[i + 1];

    SuiteParams sp;
    sp.llcBlocks = 16384;
    sp.accessesPerSimpoint = 400000;
    SyntheticSuite suite(sp);

    Trace trace;
    if (source.size() > 5 &&
        source.substr(source.size() - 5) == ".gptr") {
        std::printf("loading trace file %s...\n", source.c_str());
        MappedTrace mapped(source);
        std::printf("loader:        %s\n",
                    mapped.mapped() ? "mmap (zero-copy)"
                                    : "buffered fallback");
        if (mapped.mapped()) {
            trace.reserve(mapped.size());
            for (size_t i = 0; i < mapped.size(); ++i)
                trace.append(mapped[i]);
        } else {
            trace = mapped.fallbackTrace();
        }
    } else {
        std::printf("generating workload '%s' (first simpoint)...\n",
                    source.c_str());
        Workload w = SyntheticSuite::materialize(suite.spec(source));
        trace = *w.simpoints()[0].trace;
    }
    if (!save_path.empty()) {
        writeTrace(trace, save_path);
        std::printf("saved trace to %s\n", save_path.c_str());
    }

    std::printf("\naccesses:      %zu\n", trace.size());
    std::printf("instructions:  %lu\n",
                static_cast<unsigned long>(trace.instructions()));
    std::printf("accesses/KI:   %.2f\n", trace.accessesPerKiloInst());
    std::printf("writes:        %lu (%.1f%%)\n",
                static_cast<unsigned long>(trace.writes()),
                100.0 * static_cast<double>(trace.writes()) /
                    static_cast<double>(trace.size()));

    std::printf("\nprofiling stack distances...\n");
    TraceProfile prof = profileTrace(trace, 64, 1 << 20);
    std::printf("footprint:     %lu blocks (%.2f MB)\n",
                static_cast<unsigned long>(prof.footprint),
                static_cast<double>(prof.footprint) * 64 /
                    (1024.0 * 1024.0));
    std::printf("cold accesses: %lu (%.1f%%)\n",
                static_cast<unsigned long>(prof.coldAccesses),
                100.0 * static_cast<double>(prof.coldAccesses) /
                    static_cast<double>(prof.accesses));

    // Stack-distance mass in cache-relevant bands (in 64B blocks).
    Table bands({"stack distance (blocks)", "share of accesses"});
    const uint64_t capacities[] = {512,   4096,  8192, 16384,
                                   32768, 65536};
    uint64_t prev = 0;
    for (uint64_t cap : capacities) {
        uint64_t mass = prof.stackDistance.cumulative(cap - 1) -
                        (prev ? prof.stackDistance.cumulative(prev - 1)
                              : 0);
        std::ostringstream label;
        label << prev << " .. " << cap - 1;
        bands.newRow().add(label.str()).add(
            100.0 * static_cast<double>(mass) /
                static_cast<double>(prof.accesses),
            2);
        prev = cap;
    }
    std::ostringstream os;
    bands.print(os);
    std::fputs(os.str().c_str(), stdout);

    // Fully associative LRU miss-rate curve.
    Table curve({"capacity (blocks)", "capacity", "FA-LRU miss rate"});
    for (uint64_t cap : {1024u, 4096u, 16384u, 65536u}) {
        std::ostringstream size_label;
        size_label << (cap * 64 / 1024) << " KB";
        curve.newRow()
            .add(static_cast<uint64_t>(cap))
            .add(size_label.str())
            .add(1.0 - prof.lruHitRate(cap), 4);
    }
    std::printf("\n");
    std::ostringstream os2;
    curve.print(os2);
    std::fputs(os2.str().c_str(), stdout);

    std::printf("\n(the bench LLC holds 16384 blocks; mass beyond "
                "that distance cannot hit under any LRU-like "
                "policy)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
