/**
 * @file
 * Shared-LLC multi-core serving simulator CLI.
 *
 * Replays a multi-programmed mix of synthetic workloads (suite or
 * KV-cache multi-tenant family) through one shared last-level cache
 * and reports interference and fairness: per-tenant solo vs shared
 * IPC, slowdown, MPKI, weighted speedup and throughput.
 *
 *   multicore_sim --cores 4 --mix kv-serving --policy DGIPPR4 \
 *                 --partition utility --json report.json
 *
 * Knobs:
 *   --cores N            tenants sharing the LLC (default 4)
 *   --mix SPEC           preset name or "workload[:weight],..." list
 *   --policy NAME        LRU|LIP|GIPLR|PLRU|GIPPR|DGIPPR2|DGIPPR4
 *   --schedule S         rr | weighted (stride by tenant weight)
 *   --duel S             global | per-core DGIPPR tournaments
 *   --partition S        none | static:w0,w1,... | utility[:every]
 *   --backend S          fast (packed) | scalar (reference oracle)
 *   --accesses N         CPU references per tenant stream
 *   --seed S             suite base seed
 *   --json PATH          write a gippr-run-report artifact
 *   --deterministic      pin the report timestamp (CI diffing)
 *   --reference-single   1-core gate: replay through the single-core
 *                        ReplayEngine instead of the shared model
 *
 * Selector mode (sim/select): instead of one static --policy, a
 * bandit picks the serving policy per epoch from a library:
 *   --select             enable online policy selection
 *   --library L1,L2,...  policy_zoo names (default LRU,LIP,PLRU,GIPPR)
 *   --bandit S           ducb | egreedy
 *   --epoch N            accesses per decision epoch
 *
 * The CI multicore-equiv job runs `--cores 1 --deterministic` twice —
 * with and without --reference-single — and byte-compares the two
 * JSON artifacts: the shared model must be indistinguishable from the
 * single-core engine (in selector mode, the shared selector run from
 * the single-trace selector run).  Nothing written to the report may
 * therefore depend on which of the two paths produced it.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "core/vectors.hh"
#include "sim/multicore/engine.hh"
#include "sim/select/engine.hh"
#include "sim/select/report.hh"
#include "sim/select/select.hh"
#include "sim/trace_cache.hh"
#include "telemetry/json.hh"
#include "telemetry/report.hh"
#include "util/log.hh"
#include "workloads/suite.hh"

using namespace gippr;
using namespace gippr::multicore;

namespace
{

struct Options
{
    unsigned cores = 4;
    std::string mix = "balanced";
    std::string policy = "DGIPPR4";
    std::string schedule = "rr";
    std::string duel = "global";
    std::string partition = "none";
    std::string backend = "fast";
    uint64_t accesses = 200'000;
    uint64_t seed = 0x5eed;
    double warmupFraction = 1.0 / 3.0;
    std::string jsonPath;
    bool deterministic = false;
    bool referenceSingle = false;
    bool select = false;
    std::string library = gippr::select::defaultLibrarySpec();
    std::string bandit = "ducb";
    uint64_t epoch = gippr::select::SelectConfig{}.epochLength;
};

void
usage()
{
    std::printf(
        "usage: multicore_sim [--cores N] [--mix SPEC]\n"
        "                     [--policy NAME] [--schedule rr|weighted]\n"
        "                     [--duel global|per-core]\n"
        "                     [--partition none|static:W,..|utility[:N]]\n"
        "                     [--backend fast|scalar] [--accesses N]\n"
        "                     [--seed S] [--json PATH]\n"
        "                     [--deterministic] [--reference-single]\n"
        "                     [--select] [--library L1,L2,..]\n"
        "                     [--bandit ducb|egreedy] [--epoch N]\n"
        "\n"
        "Mix presets: thrash-heavy, balanced, reuse-heavy,\n"
        "stream-polluted, kv-serving; or any comma-separated\n"
        "\"workload[:weight]\" list over the suite and the KV-cache\n"
        "family.  Policies: LRU, LIP, GIPLR, PLRU, GIPPR, DGIPPR2,\n"
        "DGIPPR4.\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--cores")
            opts.cores = static_cast<unsigned>(
                std::stoul(value("--cores")));
        else if (arg == "--mix")
            opts.mix = value("--mix");
        else if (arg == "--policy")
            opts.policy = value("--policy");
        else if (arg == "--schedule")
            opts.schedule = value("--schedule");
        else if (arg == "--duel")
            opts.duel = value("--duel");
        else if (arg == "--partition")
            opts.partition = value("--partition");
        else if (arg == "--backend")
            opts.backend = value("--backend");
        else if (arg == "--accesses")
            opts.accesses = std::stoull(value("--accesses"));
        else if (arg == "--seed")
            opts.seed = std::stoull(value("--seed"));
        else if (arg == "--json")
            opts.jsonPath = value("--json");
        else if (arg == "--deterministic")
            opts.deterministic = true;
        else if (arg == "--reference-single")
            opts.referenceSingle = true;
        else if (arg == "--select")
            opts.select = true;
        else if (arg == "--library")
            opts.library = value("--library");
        else if (arg == "--bandit")
            opts.bandit = value("--bandit");
        else if (arg == "--epoch")
            opts.epoch = std::stoull(value("--epoch"));
        else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (opts.cores == 0)
        fatal("--cores must be >= 1");
    if (opts.referenceSingle && opts.cores != 1)
        fatal("--reference-single requires --cores 1");
    if (opts.select && opts.epoch == 0)
        fatal("--epoch must be >= 1");
    return opts;
}

/** The seven replayable core policies by display name. */
fastpath::ReplaySpec
specByName(const std::string &name)
{
    if (name == "LRU")
        return fastpath::lruSpec();
    if (name == "LIP")
        return fastpath::lipSpec();
    if (name == "GIPLR")
        return fastpath::giplrSpec(local_vectors::giplr());
    if (name == "PLRU")
        return fastpath::plruSpec();
    if (name == "GIPPR")
        return fastpath::gipprSpec(local_vectors::gippr());
    if (name == "DGIPPR2")
        return fastpath::dgipprSpec(local_vectors::dgippr2());
    if (name == "DGIPPR4")
        return fastpath::dgipprSpec(local_vectors::dgippr4());
    fatal("unknown policy (want LRU|LIP|GIPLR|PLRU|GIPPR|DGIPPR2|"
          "DGIPPR4): " +
          name);
}

/** Row label "c<idx>:<workload>" — unique even when the mix cycles. */
std::string
coreLabel(unsigned core, const CoreResult &cr)
{
    return "c" + std::to_string(core) + ":" + cr.workload;
}

telemetry::RunReport
buildReport(const Options &opts, const MixSpec &mix,
            const RunParams &params, const RunResult &res)
{
    using telemetry::JsonValue;
    telemetry::RunReport report("multicore", "multicore_sim");
    if (opts.deterministic)
        report.setTimestamp("1970-01-01T00:00:00Z");

    report.setConfig("cores", static_cast<uint64_t>(res.cores.size()));
    report.setConfig("mix", mix.name);
    JsonValue tenants = JsonValue::array();
    for (const CoreResult &cr : res.cores) {
        JsonValue t = JsonValue::object();
        t.set("workload", cr.workload);
        t.set("weight", cr.weight);
        tenants.push(t);
    }
    report.setConfig("tenants", tenants);
    report.setConfig("policy", opts.policy);
    report.setConfig("schedule", scheduleName(params.schedule));
    report.setConfig("duel_scope", duelScopeName(params.duelScope));
    // The backend is deliberately not recorded: the CI equivalence
    // job byte-compares fast-vs-scalar (and shared-vs-single-core)
    // artifacts, which is only meaningful if the report carries no
    // trace of which implementation produced it.
    report.setConfig("partition",
                     partitionModeName(params.partition.mode));
    JsonValue llc = JsonValue::object();
    llc.set("size_bytes", params.llc.sizeBytes);
    llc.set("assoc", static_cast<uint64_t>(params.llc.assoc));
    llc.set("block_bytes", static_cast<uint64_t>(params.llc.blockBytes));
    report.setConfig("llc", llc);
    report.setConfig("accesses_per_core", opts.accesses);
    report.setConfig("seed", opts.seed);
    report.setConfig("warmup_fraction", params.warmupFraction);

    telemetry::ResultTable fairness;
    fairness.title = "fairness";
    fairness.metric = "per-core";
    fairness.columns = {"weight",   "solo_ipc", "shared_ipc",
                        "slowdown", "mpki",     "demand_misses"};
    for (size_t c = 0; c < res.cores.size(); ++c) {
        const CoreResult &cr = res.cores[c];
        const CoreFairness &f = res.fairness.cores[c];
        fairness.rows.push_back(
            {coreLabel(static_cast<unsigned>(c), cr),
             {static_cast<double>(cr.weight), f.soloIpc, f.sharedIpc,
              f.slowdown, f.mpki,
              static_cast<double>(cr.stats.measured.demandMisses)}});
    }
    report.addTable(fairness);

    telemetry::ResultTable summary;
    summary.title = "summary";
    summary.metric = "mix";
    summary.columns = {"weighted_speedup", "throughput",
                       "max_slowdown",     "mean_slowdown",
                       "miss_rate",        "repartitions"};
    const double miss_rate =
        res.measured.accesses > 0
            ? static_cast<double>(res.measured.misses) /
                  static_cast<double>(res.measured.accesses)
            : 0.0;
    summary.rows.push_back(
        {mix.name,
         {res.fairness.weightedSpeedup, res.fairness.throughput,
          res.fairness.maxSlowdown, res.fairness.meanSlowdown,
          miss_rate, static_cast<double>(res.repartitions)}});
    report.addTable(summary);

    if (!res.wayCounts.empty()) {
        JsonValue ways = JsonValue::array();
        for (unsigned w : res.wayCounts)
            ways.push(static_cast<uint64_t>(w));
        report.setConfig("way_counts", ways);
    }
    return report;
}

void
printResult(const MixSpec &mix, const RunParams &params,
            const RunResult &res)
{
    std::printf("mix %s: %zu cores, policy %s, schedule %s, duel %s, "
                "partition %s, backend %s\n",
                mix.name.c_str(), res.cores.size(),
                params.policy.name().c_str(),
                scheduleName(params.schedule),
                duelScopeName(params.duelScope),
                partitionModeName(params.partition.mode),
                backendName(params.backend));
    std::printf("%-24s %6s %10s %10s %9s %8s\n", "core:workload",
                "weight", "solo_ipc", "shared_ipc", "slowdown",
                "mpki");
    for (size_t c = 0; c < res.cores.size(); ++c) {
        const CoreResult &cr = res.cores[c];
        const CoreFairness &f = res.fairness.cores[c];
        std::printf("%-24s %6llu %10.4f %10.4f %9.4f %8.2f\n",
                    coreLabel(static_cast<unsigned>(c), cr).c_str(),
                    static_cast<unsigned long long>(cr.weight),
                    f.soloIpc, f.sharedIpc, f.slowdown, f.mpki);
    }
    std::printf("weighted speedup %.4f | throughput %.4f | "
                "max slowdown %.4f | mean slowdown %.4f\n",
                res.fairness.weightedSpeedup, res.fairness.throughput,
                res.fairness.maxSlowdown, res.fairness.meanSlowdown);
    if (!res.wayCounts.empty()) {
        std::printf("way counts:");
        for (unsigned w : res.wayCounts)
            std::printf(" %u", w);
        std::printf(" (repartitions: %llu)\n",
                    static_cast<unsigned long long>(res.repartitions));
    }
}

/**
 * Selector mode: the bandit picks the serving policy per epoch.  The
 * 1-core --reference-single gate replays the merged trace through the
 * single-trace selector engine instead of the shared-stream one; the
 * two must emit byte-identical artifacts.
 */
int
runSelectMode(const Options &opts, const MixSpec &mix,
              const std::vector<CoreStream> &streams,
              const CacheConfig &llc, Schedule schedule)
{
    namespace sel = gippr::select;

    sel::SelectConfig cfg;
    cfg.kind = sel::parseBanditKind(opts.bandit);
    cfg.epochLength = opts.epoch;
    cfg.seed = opts.seed;
    const std::vector<PolicyDef> library =
        sel::parseLibrary(opts.library);
    const sel::Backend backend = sel::resolveBackend(
        library, llc, sel::parseBackend(opts.backend));

    sel::SelectResult res;
    if (opts.referenceSingle) {
        const Trace merged = sel::mergedTrace(streams, schedule);
        const size_t warmup = static_cast<size_t>(
            static_cast<double>(merged.size()) *
            opts.warmupFraction);
        res = sel::runSelect(library, cfg, llc, merged, warmup,
                             backend);
    } else {
        res = sel::runSelectShared(streams, schedule, library, cfg,
                                   llc, opts.warmupFraction, backend);
    }

    // Static regret baselines over the same merged reference order.
    const Trace merged = sel::mergedTrace(streams, schedule);
    size_t oracle_warmup = 0;
    for (const CoreStream &cs : streams)
        oracle_warmup += static_cast<size_t>(
            static_cast<double>(cs.trace->size()) *
            opts.warmupFraction);
    const std::vector<sel::StaticOracleRow> oracle =
        sel::staticOracle(library, llc, merged, oracle_warmup,
                          backend);
    const size_t best = sel::bestStaticIndex(oracle);

    std::printf("mix %s: %zu cores, select %s over %s, epoch %llu, "
                "%zu epochs, %llu switches, %llu drift resets\n",
                mix.name.c_str(), res.coreMeasured.size(),
                sel::banditKindName(cfg.kind),
                sel::libraryName(library).c_str(),
                static_cast<unsigned long long>(cfg.epochLength),
                res.timeline.size(),
                static_cast<unsigned long long>(res.switches),
                static_cast<unsigned long long>(res.driftResets));
    for (size_t a = 0; a < res.arms.size(); ++a) {
        std::printf("  arm %-12s epochs %llu\n", res.arms[a].c_str(),
                    static_cast<unsigned long long>(
                        res.epochsChosen[a]));
    }
    std::printf("selector measured demand miss rate %.4f | best "
                "static %s %.4f\n",
                res.measuredDemandMissRate(),
                oracle[best].name.c_str(),
                oracle[best].measured.demandAccesses > 0
                    ? static_cast<double>(
                          oracle[best].measured.demandMisses) /
                          static_cast<double>(
                              oracle[best].measured.demandAccesses)
                    : 0.0);

    if (!opts.jsonPath.empty()) {
        sel::SelectReportInputs in;
        in.binary = "multicore_sim";
        in.workload = mix.name;
        for (const CoreStream &cs : streams)
            in.coreWorkloads.push_back(cs.workload);
        in.cfg = cfg;
        in.llc = llc;
        in.warmupFraction = opts.warmupFraction;
        in.result = res;
        in.oracle = oracle;
        in.deterministic = opts.deterministic;
        sel::buildSelectReport(in).writeFile(opts.jsonPath);
        std::printf("report written to %s\n", opts.jsonPath.c_str());
    }
    return 0;
}

int
run(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);

    SuiteParams sp;
    sp.llcBlocks = 16384; // the 1MB bench LLC
    sp.accessesPerSimpoint = opts.accesses;
    sp.baseSeed = opts.seed;
    SyntheticSuite suite(sp);

    HierarchyConfig hier;
    hier.l1 = CacheConfig::paperL1d();
    hier.l2 = CacheConfig::paperL2();
    hier.llc = CacheConfig::benchLlc();

    const MixSpec mix = parseMixSpec(opts.mix, opts.cores);
    LlcTraceCache cache;
    const std::vector<CoreStream> streams =
        buildCoreStreams(mix, suite, hier, &cache);

    if (opts.select) {
        return runSelectMode(opts, mix, streams, hier.llc,
                             parseSchedule(opts.schedule));
    }

    RunParams params;
    params.llc = hier.llc;
    params.policy = specByName(opts.policy);
    params.schedule = parseSchedule(opts.schedule);
    params.duelScope = parseDuelScope(opts.duel);
    params.partition = parsePartition(opts.partition, opts.cores);
    params.warmupFraction = opts.warmupFraction;
    params.backend = parseBackend(opts.backend);

    const RunResult res = opts.referenceSingle
                              ? runSingleCoreReference(streams[0], params)
                              : runSharedLlc(streams, params);

    printResult(mix, params, res);
    if (!opts.jsonPath.empty()) {
        buildReport(opts, mix, params, res).writeFile(opts.jsonPath);
        std::printf("report written to %s\n", opts.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "multicore_sim: %s\n", e.what());
        return 1;
    }
}
