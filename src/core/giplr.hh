/**
 * @file
 * GIPLR — Genetic Insertion and Promotion for LRU Replacement
 * (paper, Section 2).
 *
 * A true-LRU recency stack driven by an arbitrary IPV: a hit at
 * position i moves the block to position V[i]; an incoming block
 * replaces the victim at position k-1 and then moves to V[k].  With
 * the all-zero IPV this is exactly LRU (a property the test suite
 * checks).
 */

#ifndef GIPPR_CORE_GIPLR_HH_
#define GIPPR_CORE_GIPLR_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"
#include "policies/recency_stack.hh"
#include "util/bitops.hh"

namespace gippr
{

/** IPV-driven true-LRU stack replacement. */
class GiplrPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config  cache geometry
     * @param ipv     vector with ipv.ways() == config.assoc
     */
    GiplrPolicy(const CacheConfig &config, Ipv ipv);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "GIPLR"; }

    size_t
    stateBitsPerSet() const override
    {
        return static_cast<size_t>(ways_) * ceilLog2(ways_);
    }

    const Ipv &ipv() const { return ipv_; }

    /** Stack position of a way (test aid). */
    unsigned position(uint64_t set, unsigned way) const;

  private:
    unsigned ways_;
    Ipv ipv_;
    std::vector<RecencyStack> stacks_;
};

} // namespace gippr

#endif // GIPPR_CORE_GIPLR_HH_
