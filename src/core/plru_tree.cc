/**
 * @file
 * PseudoLRU tree implementation.
 */

#include "core/plru_tree.hh"

#include "util/bitops.hh"
#include "util/check.hh"

namespace gippr
{

PlruTree::PlruTree(unsigned ways)
    : ways_(ways), levels_(floorLog2(ways)), bits_(ways - 1, 0)
{
    GIPPR_CHECK(ways >= 2 && ways <= 256);
    GIPPR_CHECK(isPow2(ways));
}

unsigned
PlruTree::findPlru() const
{
    unsigned p = 0;
    while (p < ways_ - 1)
        p = bits_[p] ? 2 * p + 2 : 2 * p + 1;
    return p - (ways_ - 1);
}

void
PlruTree::promoteMru(unsigned way)
{
    GIPPR_CHECK(way < ways_);
    unsigned q = leafNode(way);
    while (q != 0) {
        unsigned par = parent(q);
        // Point the parent's bit away from this subtree.
        bits_[par] = isRightChild(q) ? 0 : 1;
        q = par;
    }
}

unsigned
PlruTree::position(unsigned way) const
{
    GIPPR_CHECK(way < ways_);
    unsigned x = 0;
    unsigned i = 0;
    unsigned q = leafNode(way);
    while (q != 0) {
        unsigned par = parent(q);
        // A right child's bit is the parent's plru bit; a left child's
        // is its complement: a 1 in the position means the eviction
        // walk would descend toward this node.
        unsigned bit_value = isRightChild(q)
                                 ? bits_[par]
                                 : static_cast<unsigned>(!bits_[par]);
        x |= bit_value << i;
        q = par;
        ++i;
    }
    return x;
}

void
PlruTree::setPosition(unsigned way, unsigned x)
{
    GIPPR_CHECK(way < ways_);
    GIPPR_CHECK(x < ways_);
    unsigned i = 0;
    unsigned q = leafNode(way);
    while (q != 0) {
        unsigned par = parent(q);
        unsigned bit_value = getBit(x, i);
        bits_[par] = static_cast<uint8_t>(
            isRightChild(q) ? bit_value : !bit_value);
        q = par;
        ++i;
    }
}

unsigned
PlruTree::wayAtPosition(unsigned x) const
{
    GIPPR_CHECK(x < ways_);
    unsigned p = 0;
    for (unsigned i = levels_; i-- > 0;) {
        // Going right contributes the parent's bit at index i; going
        // left contributes its complement.  Pick the child whose
        // contribution matches bit i of x.
        unsigned want = getBit(x, i);
        bool go_right = (bits_[p] == want);
        p = go_right ? 2 * p + 2 : 2 * p + 1;
    }
    return p - (ways_ - 1);
}

bool
PlruTree::bit(unsigned node) const
{
    GIPPR_CHECK(node < bits_.size());
    return bits_[node] != 0;
}

void
PlruTree::setBit(unsigned node, bool value)
{
    GIPPR_CHECK(node < bits_.size());
    bits_[node] = value ? 1 : 0;
}

} // namespace gippr
