/**
 * @file
 * GIPPR — Genetic Insertion and Promotion for PseudoLRU Replacement
 * (paper, Section 3; the main contribution).
 *
 * A PseudoLRU tree per set, driven by an IPV: on a hit, the block's
 * PLRU-stack position i is read (Fig. 7) and the path bits rewritten
 * to put it at position V[i] (Fig. 9); an incoming block is written to
 * position V[k].  Rewriting a path moves *other* blocks' positions in
 * a more drastic way than the true-LRU shifts — which is why GIPPR
 * vectors are evolved specifically for PLRU dynamics.  The victim is
 * the all-ones-position PLRU block.  Storage is exactly PseudoLRU's:
 * k-1 bits per set, under one bit per block.
 */

#ifndef GIPPR_CORE_GIPPR_HH_
#define GIPPR_CORE_GIPPR_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"
#include "core/plru_tree.hh"

namespace gippr
{

/** IPV-driven tree-PseudoLRU replacement. */
class GipprPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config  cache geometry (power-of-two associativity)
     * @param ipv     vector with ipv.ways() == config.assoc
     */
    GipprPolicy(const CacheConfig &config, Ipv ipv);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "GIPPR"; }

    size_t
    stateBitsPerSet() const override
    {
        return trees_.empty() ? 0 : trees_.front().numBits();
    }

    const Ipv &ipv() const { return ipv_; }

    /** Per-set tree accessor (test aid). */
    const PlruTree &tree(uint64_t set) const { return trees_[set]; }

  private:
    Ipv ipv_;
    std::vector<PlruTree> trees_;
};

} // namespace gippr

#endif // GIPPR_CORE_GIPPR_HH_
