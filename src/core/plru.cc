/**
 * @file
 * PseudoLRU policy implementation.
 */

#include "core/plru.hh"

namespace gippr
{

PlruPolicy::PlruPolicy(const CacheConfig &config)
    : trees_(config.sets(), PlruTree(config.assoc))
{
}

unsigned
PlruPolicy::victim(const AccessInfo &info)
{
    return trees_[info.set].findPlru();
}

void
PlruPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    trees_[info.set].promoteMru(way);
}

void
PlruPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    trees_[info.set].promoteMru(way);
}

void
PlruPolicy::onInvalidate(uint64_t set, unsigned way)
{
    // Make the invalidated way the PLRU block so it is refilled first.
    trees_[set].setPosition(way, trees_[set].ways() - 1);
}

} // namespace gippr
