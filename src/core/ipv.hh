/**
 * @file
 * Insertion/Promotion Vectors — the paper's central abstraction.
 *
 * For a k-way set-associative cache, an IPV is a (k+1)-entry vector of
 * positions in [0, k).  Entry i < k gives the new recency-stack
 * position for a block re-referenced at position i; entry k gives the
 * position where an incoming block is inserted.  Classic LRU is the
 * all-zero vector; LRU-insertion (LIP) is all zeros with V[k] = k-1.
 */

#ifndef GIPPR_CORE_IPV_HH_
#define GIPPR_CORE_IPV_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace gippr
{

/** An insertion/promotion vector over k ways. */
class Ipv
{
  public:
    /** Default: empty (invalid until assigned). */
    Ipv() = default;

    /**
     * Construct from the k+1 raw entries.
     * @pre entries form a valid IPV (see isValidVector)
     */
    explicit Ipv(std::vector<uint8_t> entries);

    /** Classic LRU for @p ways: all zeros. */
    static Ipv lru(unsigned ways);

    /** LRU-insertion (Qureshi's LIP): zeros with V[k] = k-1. */
    static Ipv lruInsertion(unsigned ways);

    /**
     * Parse from whitespace- or comma-separated integers, e.g. the
     * paper's "0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13".
     * Throws std::runtime_error on malformed input.
     */
    static Ipv parse(const std::string &text);

    /** True when @p entries has length k+1 and values < k (k >= 2). */
    static bool isValidVector(const std::vector<uint8_t> &entries);

    /** Associativity k this vector serves. */
    unsigned ways() const;

    /** New position for a block promoted from position @p i (i < k). */
    unsigned promotion(unsigned i) const;

    /** Position where incoming blocks are inserted (V[k]). */
    unsigned insertion() const;

    const std::vector<uint8_t> &entries() const { return entries_; }

    /** "[ 0 0 1 ... 13 ]", the paper's rendering. */
    std::string toString() const;

    /**
     * Degeneracy check (paper, footnote 1): an IPV is degenerate when
     * the transition graph induced by promotions *and* shifts admits
     * no path from the insertion position to MRU (position 0), i.e. no
     * incoming block can ever become MRU.
     */
    bool isDegenerate() const;

    /**
     * Positions reachable from the insertion position under promotion
     * and shift moves (exposed for the transition-graph bench).
     */
    std::vector<bool> reachableFromInsertion() const;

    /**
     * Shift edges of the transition graph (Fig. 2/3 dashed edges):
     * returns for each position p whether some move shifts a block at
     * p down (to p+1) or up (to p-1).
     */
    struct ShiftEdges
    {
        std::vector<bool> down; ///< p -> p+1 possible
        std::vector<bool> up;   ///< p -> p-1 possible
    };
    ShiftEdges shiftEdges() const;

    bool operator==(const Ipv &o) const { return entries_ == o.entries_; }

  private:
    std::vector<uint8_t> entries_;
};

} // namespace gippr

#endif // GIPPR_CORE_IPV_HH_
