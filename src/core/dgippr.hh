/**
 * @file
 * DGIPPR — dynamic GIPPR (paper, Section 3.5).
 *
 * Several offline-evolved IPVs duel at runtime: each IPV owns a group
 * of leader sets that always use it; saturating counters tally leader
 * misses; follower sets use the currently winning IPV.  With two IPVs
 * this is Qureshi-style single-counter set-dueling (2-DGIPPR); with
 * four it is Loh-style multi-set-dueling with two pair counters and a
 * meta counter (4-DGIPPR) — three 11-bit counters for the whole cache,
 * the paper's "33 bits added to the entire microprocessor".  Only one
 * set of PseudoLRU bits is kept per set regardless of the IPV count.
 */

#ifndef GIPPR_CORE_DGIPPR_HH_
#define GIPPR_CORE_DGIPPR_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"
#include "core/plru_tree.hh"
#include "policies/set_dueling.hh"

namespace gippr
{

/** Set-dueling between multiple GIPPR vectors. */
class DgipprPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config        cache geometry
     * @param ipvs          2^m candidate vectors (paper uses 2 or 4)
     * @param leaders       leader sets per vector
     * @param counter_bits  PSEL width (paper: 11)
     */
    DgipprPolicy(const CacheConfig &config, std::vector<Ipv> ipvs,
                 unsigned leaders = 32, unsigned counter_bits = 11);

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override;

    /**
     * Exports the set-dueling state: one leader-miss counter per
     * vector ("<prefix>.duel.leader_misses.<i>") plus the follower
     * vector as a gauge ("<prefix>.duel.winner").
     */
    void attachTelemetry(telemetry::MetricRegistry &registry,
                         const std::string &prefix) override;

    size_t
    stateBitsPerSet() const override
    {
        return trees_.empty() ? 0 : trees_.front().numBits();
    }

    size_t
    globalStateBits() const override
    {
        return selector_.stateBits();
    }

    /** Vector currently used by follower sets (test aid). */
    unsigned currentWinner() const { return selector_.winner(); }

    /** Tournament state (backend-equivalence checks). */
    const TournamentSelector &selector() const { return selector_; }

    /** Leader-set layout (backend-equivalence checks). */
    const LeaderSets &leaderSets() const { return leaders_; }

    /** Per-set tree accessor (test / verification aid). */
    const PlruTree &tree(uint64_t set) const { return trees_[set]; }

    const std::vector<Ipv> &ipvs() const { return ipvs_; }

  private:
    /** IPV governing @p set right now. */
    const Ipv &ipvFor(uint64_t set) const;

    std::vector<Ipv> ipvs_;
    std::vector<PlruTree> trees_;
    LeaderSets leaders_;
    TournamentSelector selector_;
    /** Per-vector leader-miss counters (empty until attached). */
    std::vector<telemetry::Counter *> duelMisses_;
    telemetry::Gauge *duelWinner_ = nullptr;
};

} // namespace gippr

#endif // GIPPR_CORE_DGIPPR_HH_
