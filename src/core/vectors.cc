/**
 * @file
 * Named IPV definitions.
 */

#include "core/vectors.hh"

namespace gippr
{

namespace paper_vectors
{

Ipv
giplr()
{
    return Ipv::parse("0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13");
}

Ipv
wiGippr()
{
    return Ipv::parse("0 0 2 8 4 1 4 1 8 0 14 8 12 13 14 9 5");
}

Ipv
wn1Perlbench()
{
    return Ipv::parse("12 8 14 1 4 4 2 1 8 12 6 4 0 0 10 12 11");
}

std::vector<Ipv>
wi2Dgippr()
{
    return {
        Ipv::parse("8 0 2 8 12 4 6 3 0 8 10 8 4 12 14 3 15"),
        Ipv::parse("0 0 0 0 0 0 0 0 8 8 8 8 0 0 0 0 0"),
    };
}

std::vector<Ipv>
wi4Dgippr()
{
    return {
        Ipv::parse("14 5 6 1 10 6 8 8 15 8 8 14 12 4 12 9 8"),
        Ipv::parse("4 12 2 8 10 0 6 8 0 8 8 0 2 4 14 11 15"),
        Ipv::parse("0 0 2 1 4 4 6 5 8 8 10 1 12 8 2 1 3"),
        Ipv::parse("11 12 10 0 5 0 10 4 9 8 10 0 4 4 12 0 0"),
    };
}

} // namespace paper_vectors

namespace local_vectors
{

// Evolved with the in-repo genetic algorithm (examples/evolve_ipv)
// against the synthetic workload suite on the 1MB/16-way bench LLC
// (pop 40, 10 generations, seed 42, archetype-seeded).  The duel sets
// are the greedy complementary selection from the final population,
// so dgippr2() is a prefix of dgippr4() which is a prefix of
// dgippr8().  Regenerate with:
//   ./build/examples/evolve_ipv --vectors 8 --generations 10

Ipv
giplr()
{
    // The paper's published GIPLR vector transfers well to the
    // synthetic suite (fig04 measures a clear win over LRU with it).
    return Ipv::parse("0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13");
}

Ipv
gippr()
{
    return Ipv::parse("4 3 14 2 0 3 10 0 15 11 10 0 15 13 14 2 15");
}

std::vector<Ipv>
dgippr2()
{
    // Evolved thrash-resistant vector plus plain LIP (which covers
    // the streaming workloads the evolved vector over-protects).
    return {
        Ipv::parse("4 3 14 2 0 3 10 0 15 11 10 0 15 13 14 2 15"),
        Ipv::parse("0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15"),
    };
}

std::vector<Ipv>
dgippr4()
{
    // Adds an evolved variant and the recency-friendly member of the
    // paper's WI-4 set (near-MRU insertion), covering workloads where
    // quick-eviction insertion loses.
    std::vector<Ipv> v = dgippr2();
    v.push_back(
        Ipv::parse("4 15 14 2 11 9 3 0 15 11 10 0 15 13 14 11 15"));
    v.push_back(Ipv::parse("0 0 2 1 4 4 6 5 8 8 10 1 12 8 2 1 3"));
    return v;
}

std::vector<Ipv>
dgippr8()
{
    std::vector<Ipv> v = dgippr4();
    std::vector<Ipv> extra = {
        Ipv::parse("14 3 14 2 0 3 10 9 15 11 10 0 15 13 14 2 15"),
        Ipv::parse("4 15 14 2 11 9 3 5 15 11 10 0 15 13 14 2 15"),
        // Classic PLRU (PMRU insertion) for fully recency-friendly
        // phases.
        Ipv::parse("0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0"),
        Ipv::parse("4 15 14 4 0 3 10 5 15 11 10 0 15 13 10 11 15"),
    };
    v.insert(v.end(), extra.begin(), extra.end());
    return v;
}

} // namespace local_vectors

} // namespace gippr
