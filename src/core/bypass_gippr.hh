/**
 * @file
 * BypassGippr — DGIPPR combined with a dueled bypass predictor
 * (the paper's future-work item 1: "combining DGIPPR with a predictor
 * that decides whether a block should bypass the cache").
 *
 * Two policies duel over leader sets:
 *   A: plain GIPPR with the provided IPV;
 *   B: the same IPV, but incoming demand blocks *bypass* the cache
 *      except for a 1-in-epsilon trickle of insertions (the bimodal
 *      trickle keeps admitting the working set, exactly as BIP does
 *      for LRU insertion).
 * Followers adopt the winner.  On streaming or thrashing mixes the
 * bypass side avoids even the churn slot's pollution; on reuse-heavy
 * workloads the insert side wins and bypass is disabled.
 *
 * Storage: the PLRU tree bits plus one PSEL counter — still under one
 * bit per block.  Note bypass violates inclusion; use only where the
 * hierarchy tolerates it (see ReplacementPolicy::shouldBypass).
 */

#ifndef GIPPR_CORE_BYPASS_GIPPR_HH_
#define GIPPR_CORE_BYPASS_GIPPR_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"
#include "core/plru_tree.hh"
#include "policies/set_dueling.hh"
#include "util/rng.hh"

namespace gippr
{

/** GIPPR with set-dueled bimodal bypass. */
class BypassGipprPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config       cache geometry
     * @param ipv          insertion/promotion vector
     * @param epsilon_inv  bypass side inserts once per this many misses
     * @param leaders      leader sets per side
     * @param counter_bits PSEL width
     * @param seed         RNG seed for the bimodal trickle
     */
    BypassGipprPolicy(const CacheConfig &config, Ipv ipv,
                      unsigned epsilon_inv = 32, unsigned leaders = 32,
                      unsigned counter_bits = 11, uint64_t seed = 1);

    unsigned victim(const AccessInfo &info) override;
    void onMiss(const AccessInfo &info) override;
    bool shouldBypass(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "B-GIPPR"; }

    size_t
    stateBitsPerSet() const override
    {
        return trees_.empty() ? 0 : trees_.front().numBits();
    }

    size_t
    globalStateBits() const override
    {
        return selector_.stateBits();
    }

    /** True when follower sets currently bypass (test aid). */
    bool
    followersBypass() const
    {
        return selector_.winner() == kBypass;
    }

  private:
    // Side 1 is the PSEL's initial preference (the counter starts at
    // its midpoint), so the conservative insert side sits there:
    // bypassing must be *earned* by leader-set evidence.
    static constexpr unsigned kBypass = 0;
    static constexpr unsigned kInsert = 1;

    /** Side governing @p set right now. */
    unsigned sideFor(uint64_t set) const;

    Ipv ipv_;
    unsigned epsilonInv_;
    std::vector<PlruTree> trees_;
    LeaderSets leaders_;
    TournamentSelector selector_;
    Rng rng_;
};

} // namespace gippr

#endif // GIPPR_CORE_BYPASS_GIPPR_HH_
