/**
 * @file
 * IPV implementation.
 */

#include "core/ipv.hh"

#include <deque>
#include <sstream>

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

Ipv::Ipv(std::vector<uint8_t> entries)
    : entries_(std::move(entries))
{
    if (!isValidVector(entries_))
        fatal("malformed IPV: " + toString());
}

bool
Ipv::isValidVector(const std::vector<uint8_t> &entries)
{
    if (entries.size() < 3) // k >= 2 implies at least 3 entries
        return false;
    if (entries.size() > 257) // k <= 256, matching PlruTree's bound
        return false;
    const size_t k = entries.size() - 1;
    for (uint8_t v : entries)
        if (v >= k)
            return false;
    return true;
}

Ipv
Ipv::lru(unsigned ways)
{
    GIPPR_CHECK(ways >= 2);
    return Ipv(std::vector<uint8_t>(ways + 1, 0));
}

Ipv
Ipv::lruInsertion(unsigned ways)
{
    GIPPR_CHECK(ways >= 2);
    std::vector<uint8_t> v(ways + 1, 0);
    v[ways] = static_cast<uint8_t>(ways - 1);
    return Ipv(std::move(v));
}

Ipv
Ipv::parse(const std::string &text)
{
    std::string cleaned;
    cleaned.reserve(text.size());
    for (char c : text) {
        if (c == ',' || c == '[' || c == ']')
            cleaned.push_back(' ');
        else
            cleaned.push_back(c);
    }
    std::istringstream is(cleaned);
    std::vector<uint8_t> entries;
    long v;
    while (is >> v) {
        if (v < 0 || v > 255)
            fatal("IPV entry out of range: " + std::to_string(v));
        entries.push_back(static_cast<uint8_t>(v));
    }
    // The loop stops on eof or on a token that isn't a number; only
    // the former is a complete parse.
    if (!is.eof())
        fatal("IPV contains a non-numeric token: " + text);
    if (!isValidVector(entries))
        fatal("malformed IPV string: " + text);
    return Ipv(std::move(entries));
}

unsigned
Ipv::ways() const
{
    GIPPR_CHECK(!entries_.empty());
    return static_cast<unsigned>(entries_.size() - 1);
}

unsigned
Ipv::promotion(unsigned i) const
{
    GIPPR_CHECK(i < ways());
    return entries_[i];
}

unsigned
Ipv::insertion() const
{
    return entries_[ways()];
}

std::string
Ipv::toString() const
{
    std::ostringstream os;
    os << "[";
    for (uint8_t v : entries_)
        os << ' ' << static_cast<int>(v);
    os << " ]";
    return os.str();
}

Ipv::ShiftEdges
Ipv::shiftEdges() const
{
    const unsigned k = ways();
    ShiftEdges edges;
    edges.down.assign(k, false);
    edges.up.assign(k, false);
    // A move of an accessed block from position i to V[i] (or an
    // insertion from k-1 to V[k]) shifts the intervening blocks.
    auto mark = [&](unsigned from, unsigned to) {
        if (to < from) {
            // Blocks in [to, from-1] shift down by one.
            for (unsigned p = to; p < from; ++p)
                edges.down[p] = true;
        } else if (to > from) {
            // Blocks in [from+1, to] shift up by one.
            for (unsigned p = from + 1; p <= to; ++p)
                edges.up[p] = true;
        }
    };
    for (unsigned i = 0; i < k; ++i)
        mark(i, promotion(i));
    mark(k - 1, insertion());
    return edges;
}

std::vector<bool>
Ipv::reachableFromInsertion() const
{
    const unsigned k = ways();
    const ShiftEdges edges = shiftEdges();
    std::vector<bool> reachable(k, false);
    std::deque<unsigned> frontier;
    auto visit = [&](unsigned p) {
        if (!reachable[p]) {
            reachable[p] = true;
            frontier.push_back(p);
        }
    };
    visit(insertion());
    while (!frontier.empty()) {
        unsigned p = frontier.front();
        frontier.pop_front();
        visit(promotion(p));
        if (edges.down[p] && p + 1 < k)
            visit(p + 1);
        if (edges.up[p] && p > 0)
            visit(p - 1);
    }
    return reachable;
}

bool
Ipv::isDegenerate() const
{
    return !reachableFromInsertion()[0];
}

} // namespace gippr
