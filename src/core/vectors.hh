/**
 * @file
 * Named insertion/promotion vectors.
 *
 * Includes every vector the paper publishes (all for 16-way caches),
 * plus vectors evolved locally against this repository's synthetic
 * workload suite (see bench/fig12 and examples/evolve_ipv).  The
 * paper's vectors were trained on SPEC CPU 2006 reuse behaviour; the
 * locally evolved ones are trained on the synthetic suite, so the
 * dynamic benches default to the local sets and print both.
 */

#ifndef GIPPR_CORE_VECTORS_HH_
#define GIPPR_CORE_VECTORS_HH_

#include <vector>

#include "core/ipv.hh"

namespace gippr
{

/** Vectors published in the paper (16-way). */
namespace paper_vectors
{

/** Section 2.5: the GIPLR vector found for true LRU. */
Ipv giplr();

/** Section 5.3: the workload-inclusive single GIPPR vector. */
Ipv wiGippr();

/** Section 5.3: the WN1 GIPLR vector for 400.perlbench. */
Ipv wn1Perlbench();

/** Section 5.3: the WI-2-DGIPPR pair (PLRU-ish vs pessimistic). */
std::vector<Ipv> wi2Dgippr();

/** Section 5.3: the WI-4-DGIPPR quad. */
std::vector<Ipv> wi4Dgippr();

} // namespace paper_vectors

/** Vectors evolved against this repo's synthetic suite (16-way). */
namespace local_vectors
{

/** Best single vector for true-LRU stacks (GIPLR). */
Ipv giplr();

/** Best single vector for PLRU trees (GIPPR). */
Ipv gippr();

/** Two-vector duel set for 2-DGIPPR. */
std::vector<Ipv> dgippr2();

/** Four-vector duel set for 4-DGIPPR. */
std::vector<Ipv> dgippr4();

/** Eight-vector set for the vector-count ablation. */
std::vector<Ipv> dgippr8();

} // namespace local_vectors

} // namespace gippr

#endif // GIPPR_CORE_VECTORS_HH_
