/**
 * @file
 * GIPPR implementation.
 */

#include "core/gippr.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

GipprPolicy::GipprPolicy(const CacheConfig &config, Ipv ipv)
    : ipv_(std::move(ipv)),
      trees_(config.sets(), PlruTree(config.assoc))
{
    if (ipv_.ways() != config.assoc)
        fatal("GIPPR: IPV arity does not match associativity");
}

unsigned
GipprPolicy::victim(const AccessInfo &info)
{
    const PlruTree &tree = trees_[info.set];
    const unsigned way = tree.findPlru();
    // The PLRU walk must land on the block in recency position k-1
    // (paper, Section 2.2: the tree always encodes a permutation).
    GIPPR_DCHECK(tree.position(way) == tree.ways() - 1);
    return way;
}

void
GipprPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    trees_[info.set].setPosition(way, ipv_.insertion());
}

void
GipprPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    PlruTree &tree = trees_[info.set];
    const unsigned i = tree.position(way);
    tree.setPosition(way, ipv_.promotion(i));
}

void
GipprPolicy::onInvalidate(uint64_t set, unsigned way)
{
    trees_[set].setPosition(way, trees_[set].ways() - 1);
}

} // namespace gippr
