/**
 * @file
 * Tree-based PseudoLRU with recency-stack positions.
 *
 * Implements the four algorithms of the paper's Section 3 (Figures 5,
 * 6, 7 and 9):
 *
 *  - findPlru():           walk the plru bits from the root to find
 *                          the PLRU victim (Fig. 5)
 *  - promoteMru(way):      classic PLRU promotion — point every bit on
 *                          the leaf-to-root path away (Fig. 6)
 *  - position(way):        the block's position in the PseudoLRU
 *                          recency stack (Fig. 7)
 *  - setPosition(way, x):  write the path bits so the block occupies
 *                          position x (Fig. 9), the enabling mechanism
 *                          for GIPPR insertion/promotion
 *
 * Positions are derived leaf-to-root: bit i of a position comes from
 * the i-th node above the leaf — the plru bit itself for a right
 * child, its complement for a left child — so the root contributes the
 * most-significant bit.  For any bit assignment the k positions form a
 * permutation of 0..k-1, the PMRU block sits at 0, and the PLRU victim
 * at the all-ones position k-1.  An insertion or promotion touches at
 * most log2(k) bits, the property that makes PLRU (and hence GIPPR)
 * cheap: 15 bits per 16-way set versus 64 for full LRU.
 */

#ifndef GIPPR_CORE_PLRU_TREE_HH_
#define GIPPR_CORE_PLRU_TREE_HH_

#include <cstdint>
#include <vector>

namespace gippr
{

/** One set's PseudoLRU tree over @p ways leaves (power of two). */
class PlruTree
{
  public:
    /** @param ways associativity; power of two in [2, 256] */
    explicit PlruTree(unsigned ways);

    unsigned ways() const { return ways_; }

    /** Number of internal-node bits (ways - 1). */
    unsigned numBits() const { return ways_ - 1; }

    /** The PLRU block: the leaf every plru bit points toward. */
    unsigned findPlru() const;

    /** Classic PLRU promotion of @p way to the PMRU position. */
    void promoteMru(unsigned way);

    /** Position of @p way in the PseudoLRU recency stack. */
    unsigned position(unsigned way) const;

    /** Write path bits so @p way occupies position @p x. */
    void setPosition(unsigned way, unsigned x);

    /** Leaf currently occupying position @p x (inverse of position). */
    unsigned wayAtPosition(unsigned x) const;

    /** Raw plru bit of internal node @p node (heap order, 0 = root). */
    bool bit(unsigned node) const;

    /** Set raw plru bit (test aid). */
    void setBit(unsigned node, bool value);

  private:
    unsigned parent(unsigned node) const { return (node - 1) / 2; }
    bool isRightChild(unsigned node) const { return node % 2 == 0; }
    unsigned leafNode(unsigned way) const { return ways_ - 1 + way; }

    unsigned ways_;
    unsigned levels_;
    std::vector<uint8_t> bits_; // internal nodes, heap order
};

} // namespace gippr

#endif // GIPPR_CORE_PLRU_TREE_HH_
