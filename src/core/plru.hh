/**
 * @file
 * Classic tree-based PseudoLRU replacement (Handy 1993), GIPPR's
 * intellectual parent: insert and promote to PMRU, evict the PLRU
 * block.  15 bits per 16-way set.
 */

#ifndef GIPPR_CORE_PLRU_HH_
#define GIPPR_CORE_PLRU_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/plru_tree.hh"

namespace gippr
{

/** Tree PseudoLRU: PMRU insertion and promotion, PLRU victim. */
class PlruPolicy : public ReplacementPolicy
{
  public:
    explicit PlruPolicy(const CacheConfig &config);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "PLRU"; }

    size_t
    stateBitsPerSet() const override
    {
        return trees_.empty() ? 0 : trees_.front().numBits();
    }

    /** Per-set tree accessor (test aid). */
    const PlruTree &tree(uint64_t set) const { return trees_[set]; }

  private:
    std::vector<PlruTree> trees_;
};

} // namespace gippr

#endif // GIPPR_CORE_PLRU_HH_
