/**
 * @file
 * DGIPPR implementation.
 */

#include "core/dgippr.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

DgipprPolicy::DgipprPolicy(const CacheConfig &config,
                           std::vector<Ipv> ipvs, unsigned leaders,
                           unsigned counter_bits)
    : ipvs_(std::move(ipvs)),
      trees_(config.sets(), PlruTree(config.assoc)),
      leaders_(config.sets(), static_cast<unsigned>(ipvs_.size()),
               clampLeaders(config.sets(),
                            static_cast<unsigned>(ipvs_.size()),
                            leaders)),
      selector_(static_cast<unsigned>(ipvs_.size()), counter_bits)
{
    if (ipvs_.size() < 2)
        fatal("DGIPPR needs at least two IPVs to duel");
    for (const Ipv &v : ipvs_) {
        if (v.ways() != config.assoc)
            fatal("DGIPPR: IPV arity does not match associativity");
    }
}

const Ipv &
DgipprPolicy::ipvFor(uint64_t set) const
{
    int owner = leaders_.owner(set);
    if (owner != LeaderSets::kFollower) {
        GIPPR_CHECK(static_cast<size_t>(owner) < ipvs_.size());
        return ipvs_[static_cast<size_t>(owner)];
    }
    GIPPR_CHECK(selector_.winner() < ipvs_.size());
    return ipvs_[selector_.winner()];
}

unsigned
DgipprPolicy::victim(const AccessInfo &info)
{
    const PlruTree &tree = trees_[info.set];
    const unsigned way = tree.findPlru();
    GIPPR_DCHECK(tree.position(way) == tree.ways() - 1);
    return way;
}

void
DgipprPolicy::onMiss(const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    int owner = leaders_.owner(info.set);
    if (owner != LeaderSets::kFollower) {
        selector_.recordMiss(static_cast<unsigned>(owner));
        if (!duelMisses_.empty())
            duelMisses_[static_cast<size_t>(owner)]->increment();
        if (duelWinner_)
            duelWinner_->set(selector_.winner());
    }
}

void
DgipprPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    trees_[info.set].setPosition(way, ipvFor(info.set).insertion());
}

void
DgipprPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    PlruTree &tree = trees_[info.set];
    const Ipv &ipv = ipvFor(info.set);
    tree.setPosition(way, ipv.promotion(tree.position(way)));
}

void
DgipprPolicy::onInvalidate(uint64_t set, unsigned way)
{
    trees_[set].setPosition(way, trees_[set].ways() - 1);
}

std::string
DgipprPolicy::name() const
{
    return std::to_string(ipvs_.size()) + "-DGIPPR";
}

void
DgipprPolicy::attachTelemetry(telemetry::MetricRegistry &registry,
                              const std::string &prefix)
{
    duelMisses_.clear();
    for (size_t i = 0; i < ipvs_.size(); ++i)
        duelMisses_.push_back(&registry.counter(
            prefix + ".duel.leader_misses." + std::to_string(i)));
    duelWinner_ = &registry.gauge(prefix + ".duel.winner");
    duelWinner_->set(selector_.winner());
}

} // namespace gippr
