/**
 * @file
 * IPV-driven RRIP implementation.
 */

#include "core/rrip_ipv.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

RripIpvPolicy::RripIpvPolicy(const CacheConfig &config, Ipv ipv,
                             unsigned rrpv_bits)
    : ways_(config.assoc), rrpvBits_(rrpv_bits),
      levels_(1U << rrpv_bits), ipv_(std::move(ipv)),
      rrpv_(config.sets() * config.assoc,
            static_cast<uint8_t>((1U << rrpv_bits) - 1))
{
    GIPPR_CHECK(rrpv_bits >= 1 && rrpv_bits <= 8);
    if (ipv_.ways() != levels_)
        fatal("RripIpv: vector arity must equal the RRPV level count");
}

uint8_t &
RripIpvPolicy::rrpvRef(uint64_t set, unsigned way)
{
    return rrpv_[set * ways_ + way];
}

unsigned
RripIpvPolicy::rrpv(uint64_t set, unsigned way) const
{
    return rrpv_[set * ways_ + way];
}

unsigned
RripIpvPolicy::victim(const AccessInfo &info)
{
    const uint8_t max_rrpv = static_cast<uint8_t>(levels_ - 1);
    for (;;) {
        for (unsigned w = 0; w < ways_; ++w) {
            if (rrpvRef(info.set, w) == max_rrpv)
                return w;
        }
        for (unsigned w = 0; w < ways_; ++w)
            ++rrpvRef(info.set, w);
    }
}

void
RripIpvPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    rrpvRef(info.set, way) = static_cast<uint8_t>(ipv_.insertion());
}

void
RripIpvPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    uint8_t &r = rrpvRef(info.set, way);
    r = static_cast<uint8_t>(ipv_.promotion(r));
}

void
RripIpvPolicy::onInvalidate(uint64_t set, unsigned way)
{
    rrpvRef(set, way) = static_cast<uint8_t>(levels_ - 1);
}

Ipv
RripIpvPolicy::srripVector(unsigned rrpv_bits)
{
    unsigned levels = 1U << rrpv_bits;
    std::vector<uint8_t> entries(levels + 1, 0);
    entries[levels] = static_cast<uint8_t>(levels - 2);
    return Ipv(std::move(entries));
}

} // namespace gippr
