/**
 * @file
 * BypassGippr implementation.
 */

#include "core/bypass_gippr.hh"

#include "util/log.hh"

namespace gippr
{

BypassGipprPolicy::BypassGipprPolicy(const CacheConfig &config, Ipv ipv,
                                     unsigned epsilon_inv,
                                     unsigned leaders,
                                     unsigned counter_bits,
                                     uint64_t seed)
    : ipv_(std::move(ipv)), epsilonInv_(epsilon_inv),
      trees_(config.sets(), PlruTree(config.assoc)),
      leaders_(config.sets(), 2,
               clampLeaders(config.sets(), 2, leaders)),
      selector_(2, counter_bits), rng_(seed)
{
    if (ipv_.ways() != config.assoc)
        fatal("BypassGippr: IPV arity does not match associativity");
    if (epsilonInv_ < 1)
        fatal("BypassGippr: epsilon_inv must be at least 1");
}

unsigned
BypassGipprPolicy::sideFor(uint64_t set) const
{
    int owner = leaders_.owner(set);
    if (owner != LeaderSets::kFollower)
        return static_cast<unsigned>(owner);
    return selector_.winner();
}

unsigned
BypassGipprPolicy::victim(const AccessInfo &info)
{
    return trees_[info.set].findPlru();
}

void
BypassGipprPolicy::onMiss(const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    int owner = leaders_.owner(info.set);
    if (owner != LeaderSets::kFollower)
        selector_.recordMiss(static_cast<unsigned>(owner));
}

bool
BypassGipprPolicy::shouldBypass(const AccessInfo &info)
{
    if (sideFor(info.set) != kBypass)
        return false;
    // Bimodal trickle: admit one in epsilonInv_ blocks so a change in
    // the working set can still be learned.
    return rng_.nextBounded(epsilonInv_) != 0;
}

void
BypassGipprPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    trees_[info.set].setPosition(way, ipv_.insertion());
}

void
BypassGipprPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    PlruTree &tree = trees_[info.set];
    tree.setPosition(way, ipv_.promotion(tree.position(way)));
}

void
BypassGipprPolicy::onInvalidate(uint64_t set, unsigned way)
{
    trees_[set].setPosition(way, trees_[set].ways() - 1);
}

} // namespace gippr
