/**
 * @file
 * IPVs generalized to RRIP (the paper's future-work item 5: "it may
 * be adapted to other LRU-like algorithms such as RRIP").
 *
 * An RRPV is a coarse recency-stack position, so the IPV idea carries
 * over directly: for an M-bit RRIP with L = 2^M levels, a
 * re-reference vector is an (L+1)-entry vector over [0, L) where
 * entry i is the new RRPV for a block hit at RRPV i, and entry L is
 * the insertion RRPV.  Victim selection and aging are standard RRIP
 * (evict at RRPV L-1, increment all until one appears).
 *
 * Classic policies are points in this space (L = 4):
 *   SRRIP          [ 0 0 0 0 | 2 ]
 *   "frequency"    [ 0 0 1 2 | 2 ]  (hit promotes one level)
 *   LIP-like       [ 0 0 0 0 | 3 ]
 * and the genetic machinery evolves over it via IpvFamily::RripIpv.
 */

#ifndef GIPPR_CORE_RRIP_IPV_HH_
#define GIPPR_CORE_RRIP_IPV_HH_

#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"

namespace gippr
{

/** IPV-driven RRIP replacement. */
class RripIpvPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param config  cache geometry
     * @param ipv     vector with ipv.ways() == 2^rrpv_bits
     * @param rrpv_bits  RRPV width (default 2, as in DRRIP)
     */
    RripIpvPolicy(const CacheConfig &config, Ipv ipv,
                  unsigned rrpv_bits = 2);

    unsigned victim(const AccessInfo &info) override;
    void onInsert(unsigned way, const AccessInfo &info) override;
    void onHit(unsigned way, const AccessInfo &info) override;
    void onInvalidate(uint64_t set, unsigned way) override;

    std::string name() const override { return "RRIP-IPV"; }

    size_t
    stateBitsPerSet() const override
    {
        return static_cast<size_t>(ways_) * rrpvBits_;
    }

    const Ipv &ipv() const { return ipv_; }

    /** RRPV of (set, way) — test aid. */
    unsigned rrpv(uint64_t set, unsigned way) const;

    /** The SRRIP point of this design space. */
    static Ipv srripVector(unsigned rrpv_bits = 2);

  private:
    uint8_t &rrpvRef(uint64_t set, unsigned way);

    unsigned ways_;
    unsigned rrpvBits_;
    unsigned levels_;
    Ipv ipv_;
    std::vector<uint8_t> rrpv_;
};

} // namespace gippr

#endif // GIPPR_CORE_RRIP_IPV_HH_
