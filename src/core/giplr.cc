/**
 * @file
 * GIPLR implementation.
 */

#include "core/giplr.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

GiplrPolicy::GiplrPolicy(const CacheConfig &config, Ipv ipv)
    : ways_(config.assoc), ipv_(std::move(ipv)),
      stacks_(config.sets(), RecencyStack(config.assoc))
{
    if (ipv_.ways() != ways_)
        fatal("GIPLR: IPV arity does not match associativity");
}

unsigned
GiplrPolicy::victim(const AccessInfo &info)
{
    // The victim is always the block in the LRU position; the IPV only
    // changes how blocks travel through the stack.
    const unsigned way = stacks_[info.set].lruWay();
    GIPPR_DCHECK(stacks_[info.set].position(way) == ways_ - 1);
    return way;
}

void
GiplrPolicy::onInsert(unsigned way, const AccessInfo &info)
{
    // The incoming block replaces the victim at position k-1, then
    // moves to the insertion position V[k] (Section 2.1.2).  During
    // initial fills of a not-yet-full set the way may sit elsewhere;
    // normalizing through k-1 keeps the semantics identical either way.
    RecencyStack &stack = stacks_[info.set];
    stack.moveTo(way, ways_ - 1);
    stack.moveTo(way, ipv_.insertion());
}

void
GiplrPolicy::onHit(unsigned way, const AccessInfo &info)
{
    if (info.type == AccessType::Writeback)
        return;
    RecencyStack &stack = stacks_[info.set];
    const unsigned i = stack.position(way);
    stack.moveTo(way, ipv_.promotion(i));
}

void
GiplrPolicy::onInvalidate(uint64_t set, unsigned way)
{
    stacks_[set].moveTo(way, ways_ - 1);
}

unsigned
GiplrPolicy::position(uint64_t set, unsigned way) const
{
    return stacks_[set].position(way);
}

} // namespace gippr
