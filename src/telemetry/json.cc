/**
 * @file
 * JSON writer/parser implementation.
 */

#include "telemetry/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/log.hh"

namespace gippr::telemetry
{

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JsonValue: not a string");
    return string_;
}

size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    fatal("JsonValue: size() on a scalar");
}

const JsonValue &
JsonValue::at(size_t idx) const
{
    if (kind_ != Kind::Array)
        fatal("JsonValue: indexing a non-array");
    if (idx >= array_.size())
        fatal("JsonValue: array index out of range");
    return array_[idx];
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array)
        fatal("JsonValue: push on a non-array");
    array_.push_back(std::move(v));
}

bool
JsonValue::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("JsonValue: has() on a non-object");
    for (const auto &kv : object_)
        if (kv.first == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("JsonValue: member access on a non-object");
    for (const auto &kv : object_)
        if (kv.first == key)
            return kv.second;
    fatal("JsonValue: no such member: " + key);
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object)
        fatal("JsonValue: set on a non-object");
    for (auto &kv : object_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

std::vector<std::string>
JsonValue::keys() const
{
    if (kind_ != Kind::Object)
        fatal("JsonValue: keys() on a non-object");
    std::vector<std::string> out;
    out.reserve(object_.size());
    for (const auto &kv : object_)
        out.push_back(kv.first);
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

/** Shortest decimal form that round-trips; integers stay integral. */
std::string
formatNumber(double d)
{
    if (!std::isfinite(d))
        return "null"; // JSON has no Inf/NaN; degrade explicitly
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Prefer the shorter %.15g form when it round-trips.
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", d);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    return back == d ? shorter : buf;
}

} // namespace

void
JsonValue::writeIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent) *
                                     (static_cast<size_t>(depth) + 1),
                                 ' ')
                   : "";
    const std::string closepad =
        indent > 0
            ? std::string(static_cast<size_t>(indent) *
                              static_cast<size_t>(depth),
                          ' ')
            : "";
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Number:
        os << formatNumber(number_);
        break;
      case Kind::String:
        os << '"' << jsonEscape(string_) << '"';
        break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (size_t i = 0; i < array_.size(); ++i) {
            os << pad;
            array_[i].writeIndented(os, indent, depth + 1);
            if (i + 1 < array_.size())
                os << ',';
            os << nl;
        }
        os << closepad << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (size_t i = 0; i < object_.size(); ++i) {
            os << pad << '"' << jsonEscape(object_[i].first) << '"'
               << colon;
            object_[i].second.writeIndented(os, indent, depth + 1);
            if (i + 1 < object_.size())
                os << ',';
            os << nl;
        }
        os << closepad << '}';
        break;
    }
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace
{

/** Recursive-descent JSON parser over an in-memory string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("JSON parse error at offset " + std::to_string(pos_) +
              ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("bad literal");
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are not needed for telemetry artifacts).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        try {
            return JsonValue(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("malformed number");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace gippr::telemetry
