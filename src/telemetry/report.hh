/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport is the single JSON artifact an experiment, GA run or
 * bench leaves behind: what ran (kind/name), with which configuration
 * (cache geometry, policies, seeds, threads), what it measured
 * (per-workload result tables), how long each phase took, and the
 * final metric-registry contents.  The schema is versioned and locked
 * by tests/test_telemetry.cc's golden-schema check; bump
 * kSchemaVersion on any breaking change.
 *
 * Top-level layout (schema "gippr-run-report", version 1):
 *
 *   {
 *     "schema": "gippr-run-report",
 *     "version": 1,
 *     "kind": "experiment" | "ga" | "bench",
 *     "name": "<binary or run name>",
 *     "timestamp": "<ISO 8601 UTC>",
 *     "config": { ... free-form, producer-defined ... },
 *     "results": [
 *       { "title": ..., "metric": ..., "columns": [...],
 *         "rows": [ { "workload": ..., "values": [...] } ] }
 *     ],
 *     "phases": [ { "name": ..., "seconds": ..., "count": ... } ],
 *     "metrics": { "<metric name>": <number or histogram object> }
 *   }
 */

#ifndef GIPPR_TELEMETRY_REPORT_HH_
#define GIPPR_TELEMETRY_REPORT_HH_

#include <string>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/timer.hh"

namespace gippr::telemetry
{

/** One row of a result table (a workload, a benchmark case, ...). */
struct ResultRow
{
    std::string name;
    std::vector<double> values;
};

/** A rectangular block of results, one value column per policy. */
struct ResultTable
{
    /** Which figure/series this is, e.g. "fig10" or "convergence". */
    std::string title;
    /** What the values are ("MPKI", "IPC", "ns", "speedup", ...). */
    std::string metric;
    std::vector<std::string> columns;
    std::vector<ResultRow> rows;

    JsonValue toJson() const;
};

/** Builder + writer for one run's JSON artifact. */
class RunReport
{
  public:
    static constexpr const char *kSchemaName = "gippr-run-report";
    static constexpr int kSchemaVersion = 1;

    /**
     * @param kind  "experiment", "ga" or "bench"
     * @param name  run identity (usually the binary name)
     */
    RunReport(std::string kind, std::string name);

    /** Set one key of the free-form config section. */
    void setConfig(const std::string &key, JsonValue value);

    /** Append a result table. */
    void addTable(ResultTable table);

    /** Capture phase timings (call once, after the phases ran). */
    void setPhases(const PhaseTimings &timings);

    /** Capture a metric-registry snapshot. */
    void setMetrics(const MetricRegistry &registry);

    /**
     * Fix the timestamp (ISO 8601); when unset, writing stamps the
     * current UTC time.  Tests pin it for deterministic artifacts.
     */
    void setTimestamp(std::string iso8601);

    /** Assemble the document. */
    JsonValue toJson() const;

    /**
     * Serialize to @p path (pretty-printed) via atomic replacement
     * (temp + fsync + rename, robust/atomic_io.hh): readers never
     * observe a torn report.  fatal() on I/O error.
     */
    void writeFile(const std::string &path) const;

    const std::string &kind() const { return kind_; }
    const std::string &name() const { return name_; }

  private:
    std::string kind_;
    std::string name_;
    std::string timestamp_;
    JsonValue config_;
    std::vector<ResultTable> tables_;
    JsonValue phases_;
    JsonValue metrics_;
};

/** Current UTC time as "YYYY-MM-DDTHH:MM:SSZ". */
std::string utcTimestamp();

} // namespace gippr::telemetry

#endif // GIPPR_TELEMETRY_REPORT_HH_
