/**
 * @file
 * Minimal JSON document model, writer and parser.
 *
 * Hand-rolled (no third-party dependency) support code for the
 * telemetry run reports: enough of RFC 8259 to serialize registry
 * snapshots and experiment tables, and to parse them back in tests
 * (round-trip and golden-schema checks).  Object keys preserve
 * insertion order so emitted artifacts are stable and diffable.
 */

#ifndef GIPPR_TELEMETRY_JSON_HH_
#define GIPPR_TELEMETRY_JSON_HH_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gippr::telemetry
{

/** One JSON value (null, bool, number, string, array or object). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Number), number_(d) {}
    JsonValue(int i) : kind_(Kind::Number), number_(i) {}
    JsonValue(int64_t i)
        : kind_(Kind::Number), number_(static_cast<double>(i))
    {
    }
    JsonValue(uint64_t u)
        : kind_(Kind::Number), number_(static_cast<double>(u))
    {
    }
    JsonValue(const char *s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s))
    {
    }

    /** An empty array/object to be filled with push/set. */
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array element access; fatal() unless an array. */
    size_t size() const;
    const JsonValue &at(size_t idx) const;
    void push(JsonValue v);

    /** Object member access; fatal() unless an object. */
    bool has(const std::string &key) const;
    const JsonValue &at(const std::string &key) const;
    /** Insert or overwrite @p key (insertion order preserved). */
    void set(const std::string &key, JsonValue v);
    /** Object keys in insertion order. */
    std::vector<std::string> keys() const;

    /**
     * Serialize.  @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 2) const;
    void write(std::ostream &os, int indent = 2) const;

    /** Parse a complete JSON document; fatal() on malformed input. */
    static JsonValue parse(const std::string &text);

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Escape @p s per JSON string rules (quotes not included). */
std::string jsonEscape(const std::string &s);

} // namespace gippr::telemetry

#endif // GIPPR_TELEMETRY_JSON_HH_
