/**
 * @file
 * Wall-clock phase timing.
 *
 * PhaseTimings accumulates named durations (thread-safe); ScopedTimer
 * is the RAII front end used around simulation phases (trace
 * generation, warmup, replay, GA generations).  A phase recorded more
 * than once accumulates total seconds and a call count, so per-item
 * timers inside parallel loops aggregate naturally.
 */

#ifndef GIPPR_TELEMETRY_TIMER_HH_
#define GIPPR_TELEMETRY_TIMER_HH_

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace gippr::telemetry
{

/** Accumulated wall-clock time for one named phase. */
struct PhaseStat
{
    std::string name;
    double seconds = 0.0;
    uint64_t count = 0;
};

/** Thread-safe map of phase name -> accumulated duration. */
class PhaseTimings
{
  public:
    /** Add @p seconds to @p name (one occurrence). */
    void record(const std::string &name, double seconds);

    /** Accumulated seconds for @p name (0 if never recorded). */
    double seconds(const std::string &name) const;

    /** All phases, in first-recorded order. */
    std::vector<PhaseStat> phases() const;

    /** [{"name":..., "seconds":..., "count":...}, ...]. */
    JsonValue toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<PhaseStat> phases_; // small N; linear scan
};

/**
 * Times its own lifetime into a PhaseTimings.  A null sink makes the
 * timer inert, so call sites can be instrumented unconditionally.
 */
class ScopedTimer
{
  public:
    ScopedTimer(PhaseTimings *sink, std::string name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Seconds elapsed since construction. */
    double elapsed() const;

    /** Record now and detach (destructor becomes a no-op). */
    void stop();

  private:
    PhaseTimings *sink_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace gippr::telemetry

#endif // GIPPR_TELEMETRY_TIMER_HH_
