/**
 * @file
 * Run-report implementation.
 */

#include "telemetry/report.hh"

#include <cstdio>
#include <ctime>

#include "robust/atomic_io.hh"

namespace gippr::telemetry
{

JsonValue
ResultTable::toJson() const
{
    JsonValue out = JsonValue::object();
    out.set("title", JsonValue(title));
    out.set("metric", JsonValue(metric));
    JsonValue cols = JsonValue::array();
    for (const auto &c : columns)
        cols.push(JsonValue(c));
    out.set("columns", std::move(cols));
    JsonValue rws = JsonValue::array();
    for (const ResultRow &r : rows) {
        JsonValue row = JsonValue::object();
        row.set("workload", JsonValue(r.name));
        JsonValue vals = JsonValue::array();
        for (double v : r.values)
            vals.push(JsonValue(v));
        row.set("values", std::move(vals));
        rws.push(std::move(row));
    }
    out.set("rows", std::move(rws));
    return out;
}

RunReport::RunReport(std::string kind, std::string name)
    : kind_(std::move(kind)), name_(std::move(name)),
      config_(JsonValue::object()), phases_(JsonValue::array()),
      metrics_(JsonValue::object())
{
}

void
RunReport::setConfig(const std::string &key, JsonValue value)
{
    config_.set(key, std::move(value));
}

void
RunReport::addTable(ResultTable table)
{
    tables_.push_back(std::move(table));
}

void
RunReport::setPhases(const PhaseTimings &timings)
{
    phases_ = timings.toJson();
}

void
RunReport::setMetrics(const MetricRegistry &registry)
{
    metrics_ = registry.snapshot();
}

void
RunReport::setTimestamp(std::string iso8601)
{
    timestamp_ = std::move(iso8601);
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

JsonValue
RunReport::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue(kSchemaName));
    doc.set("version", JsonValue(kSchemaVersion));
    doc.set("kind", JsonValue(kind_));
    doc.set("name", JsonValue(name_));
    doc.set("timestamp",
            JsonValue(timestamp_.empty() ? utcTimestamp() : timestamp_));
    doc.set("config", config_);
    JsonValue results = JsonValue::array();
    for (const ResultTable &t : tables_)
        results.push(t.toJson());
    doc.set("results", std::move(results));
    doc.set("phases", phases_);
    doc.set("metrics", metrics_);
    return doc;
}

void
RunReport::writeFile(const std::string &path) const
{
    // Atomic replacement (temp + fsync + rename): a crash or full
    // disk mid-write can never leave a torn RunReport where an
    // artifact consumer expects valid JSON.  I/O failures surface as
    // fatal() (std::runtime_error), never silently.
    robust::writeFileAtomic(path, toJson().dump(2) + "\n");
}

} // namespace gippr::telemetry
