/**
 * @file
 * Metric registry implementation.
 */

#include "telemetry/metrics.hh"

#include <algorithm>

#include "util/log.hh"

namespace gippr::telemetry
{

#ifndef GIPPR_DISABLE_TELEMETRY

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        fatal("FixedHistogram: needs at least one bucket bound");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        fatal("FixedHistogram: bounds must be ascending");
    buckets_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
FixedHistogram::observe(double value)
{
    size_t idx = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // CAS loop: portable double accumulation (atomic<double>::fetch_add
    // is C++20 but spotty across standard libraries).
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed))
        ;
}

uint64_t
FixedHistogram::bucketCount(size_t i) const
{
    if (i > bounds_.size())
        fatal("FixedHistogram: bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

uint64_t
FixedHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
FixedHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

#endif // GIPPR_DISABLE_TELEMETRY

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

FixedHistogram &
MetricRegistry::histogram(const std::string &name,
                          const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<FixedHistogram>(bounds);
    else if (slot->bounds() != bounds)
        fatal("MetricRegistry: histogram '" + name +
              "' re-registered with different bounds");
    return *slot;
}

size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

JsonValue
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonValue out = JsonValue::object();
    for (const auto &[name, c] : counters_)
        out.set(name, JsonValue(c->value()));
    for (const auto &[name, g] : gauges_)
        out.set(name, JsonValue(g->value()));
    for (const auto &[name, h] : histograms_) {
        JsonValue hist = JsonValue::object();
        JsonValue bounds = JsonValue::array();
        JsonValue counts = JsonValue::array();
        for (double b : h->bounds())
            bounds.push(JsonValue(b));
        for (size_t i = 0; i <= h->bounds().size(); ++i)
            counts.push(JsonValue(h->bucketCount(i)));
        hist.set("bounds", std::move(bounds));
        hist.set("counts", std::move(counts));
        hist.set("count", JsonValue(h->count()));
        hist.set("sum", JsonValue(h->sum()));
        out.set(name, std::move(hist));
    }
    return out;
}

} // namespace gippr::telemetry
