/**
 * @file
 * Phase timing implementation.
 */

#include "telemetry/timer.hh"

namespace gippr::telemetry
{

void
PhaseTimings::record(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &p : phases_) {
        if (p.name == name) {
            p.seconds += seconds;
            ++p.count;
            return;
        }
    }
    phases_.push_back({name, seconds, 1});
}

double
PhaseTimings::seconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &p : phases_)
        if (p.name == name)
            return p.seconds;
    return 0.0;
}

std::vector<PhaseStat>
PhaseTimings::phases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return phases_;
}

JsonValue
PhaseTimings::toJson() const
{
    JsonValue arr = JsonValue::array();
    for (const PhaseStat &p : phases()) {
        JsonValue entry = JsonValue::object();
        entry.set("name", JsonValue(p.name));
        entry.set("seconds", JsonValue(p.seconds));
        entry.set("count", JsonValue(p.count));
        arr.push(std::move(entry));
    }
    return arr;
}

ScopedTimer::ScopedTimer(PhaseTimings *sink, std::string name)
    : sink_(sink), name_(std::move(name)),
      start_(std::chrono::steady_clock::now())
{
}

double
ScopedTimer::elapsed() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
ScopedTimer::stop()
{
    if (sink_)
        sink_->record(name_, elapsed());
    sink_ = nullptr;
}

ScopedTimer::~ScopedTimer()
{
    stop();
}

} // namespace gippr::telemetry
