/**
 * @file
 * Named metric instruments: counters, gauges and fixed-bucket
 * histograms, owned by a MetricRegistry.
 *
 * Hot-path cost model:
 *  - lookup (`registry.counter("x")`) takes a mutex and is meant for
 *    setup code; callers cache the returned reference,
 *  - increments/observations are lock-free relaxed atomics and safe
 *    from any number of threads,
 *  - compiling with GIPPR_DISABLE_TELEMETRY turns every instrument
 *    into an empty inline stub so instrumented hot loops carry zero
 *    cost (the registry still hands out valid references).
 *
 * Instruments live as long as their registry; references returned by
 * the registry are stable (node-based storage).
 */

#ifndef GIPPR_TELEMETRY_METRICS_HH_
#define GIPPR_TELEMETRY_METRICS_HH_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace gippr::telemetry
{

#ifndef GIPPR_DISABLE_TELEMETRY

/** Monotonic event count. */
class Counter
{
  public:
    void
    increment(uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written scalar (e.g. current duel winner, population size). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Histogram over fixed bucket upper bounds (ascending), plus an
 * implicit overflow bucket.  An observation lands in the first bucket
 * whose bound it does not exceed.
 */
class FixedHistogram
{
  public:
    explicit FixedHistogram(std::vector<double> bounds);

    void observe(double value);

    /** Count in bucket @p i; i == bounds().size() is the overflow. */
    uint64_t bucketCount(size_t i) const;

    const std::vector<double> &bounds() const { return bounds_; }
    uint64_t count() const;
    double sum() const;

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

#else // GIPPR_DISABLE_TELEMETRY: zero-cost stubs with the same API.

class Counter
{
  public:
    void increment(uint64_t = 1) {}
    uint64_t value() const { return 0; }
};

class Gauge
{
  public:
    void set(double) {}
    double value() const { return 0.0; }
};

class FixedHistogram
{
  public:
    explicit FixedHistogram(std::vector<double> bounds)
        : bounds_(std::move(bounds))
    {
    }
    void observe(double) {}
    uint64_t bucketCount(size_t) const { return 0; }
    const std::vector<double> &bounds() const { return bounds_; }
    uint64_t count() const { return 0; }
    double sum() const { return 0.0; }

  private:
    std::vector<double> bounds_;
};

#endif // GIPPR_DISABLE_TELEMETRY

/**
 * Owns instruments by name.  Lookup creates on first use and returns
 * the existing instrument afterwards; concurrent lookups are
 * serialized by a mutex, instrument updates are lock-free.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Histogram with @p bounds (ascending upper bounds).  Repeated
     * lookups must pass identical bounds; fatal() otherwise.
     */
    FixedHistogram &histogram(const std::string &name,
                              const std::vector<double> &bounds);

    /** Number of registered instruments (all kinds). */
    size_t size() const;

    /**
     * Snapshot every instrument into a JSON object keyed by metric
     * name: counters/gauges as numbers, histograms as
     * {"bounds": [...], "counts": [...], "count": n, "sum": s}.
     */
    JsonValue snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
};

} // namespace gippr::telemetry

#endif // GIPPR_TELEMETRY_METRICS_HH_
