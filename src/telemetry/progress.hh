/**
 * @file
 * Progress reporting for long-running searches.
 *
 * A ProgressSink receives periodic events from iterative drivers (GA
 * generations, sweep steps) so multi-minute runs are observable
 * without the driver knowing where the output goes.  Sinks must
 * tolerate events from the driver thread only (drivers emit between
 * parallel sections, not inside them).
 */

#ifndef GIPPR_TELEMETRY_PROGRESS_HH_
#define GIPPR_TELEMETRY_PROGRESS_HH_

#include <cstdint>
#include <cstdio>
#include <string>

namespace gippr::telemetry
{

/** One progress heartbeat from an iterative driver. */
struct ProgressEvent
{
    /** What is running, e.g. "evolve_ipv" or "fig12 fold". */
    std::string task;
    /** Completed iterations (e.g. generations). */
    uint64_t current = 0;
    /** Total iterations, 0 when unknown. */
    uint64_t total = 0;
    /** Best objective so far (GA fitness, speedup, ...). */
    double score = 0.0;
    /** Seconds the just-finished iteration took. */
    double iterationSeconds = 0.0;
};

/** Receives progress events. */
class ProgressSink
{
  public:
    virtual ~ProgressSink() = default;
    virtual void onProgress(const ProgressEvent &event) = 0;
};

/** Discards everything (default wiring). */
class NullProgressSink : public ProgressSink
{
  public:
    void onProgress(const ProgressEvent &) override {}
};

/**
 * Prints one line per event to a stdio stream (default stderr):
 *   [evolve_ipv] gen 3/12  best 1.0421  (2.31s)
 */
class StreamProgressSink : public ProgressSink
{
  public:
    explicit StreamProgressSink(std::FILE *out = stderr) : out_(out) {}

    void onProgress(const ProgressEvent &event) override;

  private:
    std::FILE *out_;
};

} // namespace gippr::telemetry

#endif // GIPPR_TELEMETRY_PROGRESS_HH_
