/**
 * @file
 * Progress sink implementations.
 */

#include "telemetry/progress.hh"

namespace gippr::telemetry
{

void
StreamProgressSink::onProgress(const ProgressEvent &event)
{
    if (!out_)
        return;
    if (event.total > 0) {
        std::fprintf(out_,
                     "[%s] iter %llu/%llu  best %.4f  (%.2fs)\n",
                     event.task.c_str(),
                     static_cast<unsigned long long>(event.current),
                     static_cast<unsigned long long>(event.total),
                     event.score, event.iterationSeconds);
    } else {
        std::fprintf(out_, "[%s] iter %llu  best %.4f  (%.2fs)\n",
                     event.task.c_str(),
                     static_cast<unsigned long long>(event.current),
                     event.score, event.iterationSeconds);
    }
    std::fflush(out_);
}

} // namespace gippr::telemetry
