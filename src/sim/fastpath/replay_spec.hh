/**
 * @file
 * Replay specifications and statistics for the fast replay engine.
 *
 * A ReplaySpec is a *value* description of one of the seven core
 * policies (LRU, LIP, GIPLR, PLRU, GIPPR, 2-/4-DGIPPR): enough to
 * build either the scalar ReplacementPolicy object or the packed
 * structure-of-arrays model, so the two backends are guaranteed to
 * simulate the same policy.  ReplayStats carries two counter banks —
 * the measured (post-warmup) region that experiments report, and the
 * whole-trace totals that mirror the live telemetry counters — plus
 * the final set-dueling state, so "same duel outcome" is part of the
 * backend-equivalence contract, not just miss counts.
 */

#ifndef GIPPR_SIM_FASTPATH_REPLAY_SPEC_HH_
#define GIPPR_SIM_FASTPATH_REPLAY_SPEC_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/replacement.hh"
#include "core/ipv.hh"

namespace gippr::fastpath
{

/** Policy families the fast backend knows how to pack. */
enum class FastPolicyKind : uint8_t
{
    Lru,    ///< true-LRU recency stack
    Lip,    ///< LRU with LRU-insertion (all-zero IPV, V[k] = k-1)
    Giplr,  ///< recency stack driven by an arbitrary IPV
    Plru,   ///< classic tree PseudoLRU (promote-to-MRU)
    Gippr,  ///< tree PseudoLRU driven by an arbitrary IPV
    Dgippr, ///< set-dueling over 2^m GIPPR vectors
};

/** Value description of a replayable policy. */
struct ReplaySpec
{
    FastPolicyKind kind = FastPolicyKind::Lru;
    /**
     * Candidate vectors: empty for Lru/Lip/Plru (derived from the
     * geometry), exactly one for Giplr/Gippr, 2^m for Dgippr.
     */
    std::vector<Ipv> ipvs;
    /** Leader sets per vector (Dgippr only; clamped to geometry). */
    unsigned leaders = 32;
    /** PSEL width in bits (Dgippr only). */
    unsigned counterBits = 11;

    /** Display name matching the scalar policy's name(). */
    std::string name() const;
};

/** Spec builders for the seven core policies. */
ReplaySpec lruSpec();
ReplaySpec lipSpec();
ReplaySpec giplrSpec(Ipv ipv);
ReplaySpec plruSpec();
ReplaySpec gipprSpec(Ipv ipv);
ReplaySpec dgipprSpec(std::vector<Ipv> ipvs, unsigned leaders = 32,
                      unsigned counter_bits = 11);

/** One bank of hit/miss counters (no bypasses: none of the seven
 *  core policies ever bypasses). */
struct CounterBank
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t demandAccesses = 0;
    uint64_t demandMisses = 0;

    CounterBank &operator+=(const CounterBank &o);
    bool operator==(const CounterBank &o) const = default;
};

/** Outcome of replaying one trace under one spec. */
struct ReplayStats
{
    /** Post-warmup region (what replayTrace + clearStats reports). */
    CounterBank measured;
    /** Whole trace (what live telemetry counters accumulate). */
    CounterBank total;
    /** Final follower vector (Dgippr; 0 otherwise). */
    unsigned finalWinner = 0;
    /** Raw PSEL values, tournament level-major (Dgippr; empty
     *  otherwise). */
    std::vector<uint64_t> duelCounters;
    /** Demand leader-set misses per vector over the whole trace
     *  (Dgippr; empty otherwise) — mirrors the scalar policy's
     *  "duel.leader_misses.<i>" telemetry counters. */
    std::vector<uint64_t> leaderMisses;

    bool operator==(const ReplayStats &o) const = default;

    /** Measured bank as the cache-model statistics struct. */
    CacheStats toCacheStats() const;

    /** Human-readable one-line rendering (divergence dumps). */
    std::string toString() const;
};

/**
 * Build the scalar ReplacementPolicy object for @p spec — the single
 * source of truth tying specs to production policy classes.
 */
std::unique_ptr<ReplacementPolicy>
makeScalarPolicy(const ReplaySpec &spec, const CacheConfig &config);

} // namespace gippr::fastpath

#endif // GIPPR_SIM_FASTPATH_REPLAY_SPEC_HH_
