/**
 * @file
 * Replay spec implementation.
 */

#include "sim/fastpath/replay_spec.hh"

#include <sstream>

#include "core/dgippr.hh"
#include "core/giplr.hh"
#include "core/gippr.hh"
#include "core/plru.hh"
#include "policies/lru.hh"
#include "util/log.hh"

namespace gippr::fastpath
{

std::string
ReplaySpec::name() const
{
    switch (kind) {
      case FastPolicyKind::Lru:
        return "LRU";
      case FastPolicyKind::Lip:
        return "LIP";
      case FastPolicyKind::Giplr:
        return "GIPLR";
      case FastPolicyKind::Plru:
        return "PLRU";
      case FastPolicyKind::Gippr:
        return "GIPPR";
      case FastPolicyKind::Dgippr:
        return std::to_string(ipvs.size()) + "-DGIPPR";
    }
    return "?";
}

ReplaySpec
lruSpec()
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Lru;
    return s;
}

ReplaySpec
lipSpec()
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Lip;
    return s;
}

ReplaySpec
giplrSpec(Ipv ipv)
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Giplr;
    s.ipvs.push_back(std::move(ipv));
    return s;
}

ReplaySpec
plruSpec()
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Plru;
    return s;
}

ReplaySpec
gipprSpec(Ipv ipv)
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Gippr;
    s.ipvs.push_back(std::move(ipv));
    return s;
}

ReplaySpec
dgipprSpec(std::vector<Ipv> ipvs, unsigned leaders,
           unsigned counter_bits)
{
    ReplaySpec s;
    s.kind = FastPolicyKind::Dgippr;
    s.ipvs = std::move(ipvs);
    s.leaders = leaders;
    s.counterBits = counter_bits;
    return s;
}

CounterBank &
CounterBank::operator+=(const CounterBank &o)
{
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    demandAccesses += o.demandAccesses;
    demandMisses += o.demandMisses;
    return *this;
}

CacheStats
ReplayStats::toCacheStats() const
{
    CacheStats s;
    s.accesses = measured.accesses;
    s.hits = measured.hits;
    s.misses = measured.misses;
    s.evictions = measured.evictions;
    s.writebacks = measured.writebacks;
    s.demandAccesses = measured.demandAccesses;
    s.demandMisses = measured.demandMisses;
    return s;
}

namespace
{

void
bankTo(std::ostream &os, const char *label, const CounterBank &b)
{
    os << label << "{acc " << b.accesses << " hit " << b.hits << " miss "
       << b.misses << " evict " << b.evictions << " wb " << b.writebacks
       << " dacc " << b.demandAccesses << " dmiss " << b.demandMisses
       << "}";
}

} // namespace

std::string
ReplayStats::toString() const
{
    std::ostringstream os;
    bankTo(os, "measured", measured);
    os << ' ';
    bankTo(os, "total", total);
    if (!duelCounters.empty()) {
        os << " winner " << finalWinner << " psel [";
        for (uint64_t v : duelCounters)
            os << ' ' << v;
        os << " ] leader_misses [";
        for (uint64_t v : leaderMisses)
            os << ' ' << v;
        os << " ]";
    }
    return os.str();
}

std::unique_ptr<ReplacementPolicy>
makeScalarPolicy(const ReplaySpec &spec, const CacheConfig &config)
{
    switch (spec.kind) {
      case FastPolicyKind::Lru:
        return std::make_unique<LruPolicy>(config);
      case FastPolicyKind::Lip:
        return std::make_unique<GiplrPolicy>(
            config, Ipv::lruInsertion(config.assoc));
      case FastPolicyKind::Giplr:
        if (spec.ipvs.size() != 1)
            fatal("GIPLR replay spec needs exactly one IPV");
        return std::make_unique<GiplrPolicy>(config, spec.ipvs.front());
      case FastPolicyKind::Plru:
        return std::make_unique<PlruPolicy>(config);
      case FastPolicyKind::Gippr:
        if (spec.ipvs.size() != 1)
            fatal("GIPPR replay spec needs exactly one IPV");
        return std::make_unique<GipprPolicy>(config, spec.ipvs.front());
      case FastPolicyKind::Dgippr:
        return std::make_unique<DgipprPolicy>(config, spec.ipvs,
                                              spec.leaders,
                                              spec.counterBits);
    }
    fatal("makeScalarPolicy: unknown policy kind");
}

} // namespace gippr::fastpath
