/**
 * @file
 * Replay engine implementations.
 */

#include "sim/fastpath/engine.hh"

#include <algorithm>
#include <cstdlib>

#include "cache/replay.hh"
#include "core/dgippr.hh"
#include "sim/fastpath/soa_cache.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/parallel.hh"

namespace gippr::fastpath
{

namespace
{

CounterBank
toBank(const CacheStats &s)
{
    CounterBank b;
    b.accesses = s.accesses;
    b.hits = s.hits;
    b.misses = s.misses;
    b.evictions = s.evictions;
    b.writebacks = s.writebacks;
    b.demandAccesses = s.demandAccesses;
    b.demandMisses = s.demandMisses;
    return b;
}

CounterBank
bankDelta(const CacheStats &end, const CacheStats &start)
{
    CounterBank b;
    b.accesses = end.accesses - start.accesses;
    b.hits = end.hits - start.hits;
    b.misses = end.misses - start.misses;
    b.evictions = end.evictions - start.evictions;
    b.writebacks = end.writebacks - start.writebacks;
    b.demandAccesses = end.demandAccesses - start.demandAccesses;
    b.demandMisses = end.demandMisses - start.demandMisses;
    return b;
}

/** Contiguous-range shard of @p set for @p shards partitions. */
inline size_t
shardOf(uint64_t set, size_t shards, uint64_t sets)
{
    return static_cast<size_t>((set * shards) / sets);
}

} // namespace

ReplayStats
ScalarReplayEngine::replay(const ReplaySpec &spec,
                           const CacheConfig &config, const Trace &trace,
                           size_t warmup) const
{
    GIPPR_CHECK(warmup <= trace.size());
    SetAssocCache cache(config, makeScalarPolicy(spec, config));
    const auto *dg =
        dynamic_cast<const DgipprPolicy *>(&cache.policy());
    std::vector<uint64_t> leader_misses;
    if (dg)
        leader_misses.assign(dg->ipvs().size(), 0);

    CacheStats at_warmup;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup)
            at_warmup = cache.stats();
        const MemRecord &r = trace[i];
        const AccessType type = recordType(r);
        const AccessResult res = cache.access(r.addr, type, r.pc);
        if (dg && !res.hit && type != AccessType::Writeback) {
            const int owner =
                dg->leaderSets().owner(config.setIndex(r.addr));
            if (owner != LeaderSets::kFollower)
                ++leader_misses[static_cast<unsigned>(owner)];
        }
    }
    if (warmup == trace.size())
        at_warmup = cache.stats();

    ReplayStats stats;
    stats.total = toBank(cache.stats());
    stats.measured = bankDelta(cache.stats(), at_warmup);
    if (dg) {
        stats.finalWinner = dg->currentWinner();
        stats.duelCounters = dg->selector().counterValues();
        stats.leaderMisses = std::move(leader_misses);
    }
    return stats;
}

FastReplayEngine::FastReplayEngine(unsigned shards)
    : shards_(shards == 0 ? resolveThreads(0) : shards)
{
}

bool
FastReplayEngine::supports(const ReplaySpec &spec,
                           const CacheConfig &config)
{
    return SoaCacheModel::supports(spec, config);
}

ReplayStats
FastReplayEngine::replay(const ReplaySpec &spec,
                         const CacheConfig &config, const Trace &trace,
                         size_t warmup) const
{
    if (!supports(spec, config))
        return fallback_.replay(spec, config, trace, warmup);
    GIPPR_CHECK(warmup <= trace.size());

    const uint64_t sets = config.sets();
    const size_t shards = std::min<uint64_t>(shards_, sets);
    const bool duel = spec.kind == FastPolicyKind::Dgippr;

    if (shards == 1 || !duel) {
        if (shards == 1) {
            // One model replays the whole trace in order (for Dgippr
            // this keeps leader updates and follower reads naturally
            // interleaved, exactly like the scalar engine).
            SoaCacheModel model(spec, config);
            for (size_t i = 0; i < trace.size(); ++i) {
                if (i == warmup)
                    model.markWarmup();
                const MemRecord &r = trace[i];
                model.accessAddr(r.addr, recordType(r));
            }
            if (warmup == trace.size())
                model.markWarmup();
            return model.stats();
        }

        // Independent sets: each shard filter-scans the trace for its
        // contiguous slice of the set space.
        std::vector<ReplayStats> shard_stats(shards);
        parallelFor(shards, static_cast<unsigned>(shards),
                    [&](size_t shard) {
                        SoaCacheModel model(spec, config);
                        // Snapshot before the shard's first measured
                        // record (warmup == 0 needs none: the initial
                        // snapshot is already all-zero).
                        bool snapped = warmup == 0;
                        for (size_t i = 0; i < trace.size(); ++i) {
                            const MemRecord &r = trace[i];
                            const uint64_t set = model.setIndex(r.addr);
                            if (shardOf(set, shards, sets) != shard)
                                continue;
                            if (!snapped && i >= warmup) {
                                model.markWarmup();
                                snapped = true;
                            }
                            model.access(set, model.tagOf(r.addr),
                                         recordType(r));
                        }
                        if (!snapped)
                            model.markWarmup();
                        shard_stats[shard] = model.stats();
                    });
        ReplayStats out;
        for (const ReplayStats &s : shard_stats) {
            out.measured += s.measured;
            out.total += s.total;
        }
        return out;
    }

    // DGIPPR, multi-shard: leader sets never depend on the duel
    // winner, so pass A replays them alone (sequentially, in trace
    // order) while recording when the winner changes; pass B replays
    // follower shards in parallel, each cursor-walking the recorded
    // timeline so any access at trace index j sees the winner after
    // all leader updates at indices < j — the same value the
    // single-pass engine would have used.
    struct WinnerEvent
    {
        size_t index;
        unsigned winner;
    };
    SoaCacheModel leader_model(spec, config);
    std::vector<WinnerEvent> timeline;
    bool leader_snapped = warmup == 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        const MemRecord &r = trace[i];
        const uint64_t set = leader_model.setIndex(r.addr);
        if (leader_model.leaderOwner(set) == LeaderSets::kFollower)
            continue;
        if (!leader_snapped && i >= warmup) {
            leader_model.markWarmup();
            leader_snapped = true;
        }
        const unsigned before = leader_model.winner();
        leader_model.access(set, leader_model.tagOf(r.addr),
                            recordType(r));
        if (leader_model.winner() != before)
            timeline.push_back({i, leader_model.winner()});
    }
    if (!leader_snapped)
        leader_model.markWarmup();
    ReplayStats out = leader_model.stats();

    std::vector<ReplayStats> shard_stats(shards);
    parallelFor(
        shards, static_cast<unsigned>(shards), [&](size_t shard) {
            SoaCacheModel model(spec, config,
                                SoaCacheModel::DuelMode::Timeline);
            size_t cursor = 0;
            bool snapped = warmup == 0;
            for (size_t i = 0; i < trace.size(); ++i) {
                const MemRecord &r = trace[i];
                const uint64_t set = model.setIndex(r.addr);
                if (model.leaderOwner(set) != LeaderSets::kFollower)
                    continue;
                if (shardOf(set, shards, sets) != shard)
                    continue;
                while (cursor < timeline.size() &&
                       timeline[cursor].index < i) {
                    model.setWinner(timeline[cursor].winner);
                    ++cursor;
                }
                if (!snapped && i >= warmup) {
                    model.markWarmup();
                    snapped = true;
                }
                model.access(set, model.tagOf(r.addr), recordType(r));
            }
            if (!snapped)
                model.markWarmup();
            shard_stats[shard] = model.stats();
        });
    for (const ReplayStats &s : shard_stats) {
        out.measured += s.measured;
        out.total += s.total;
    }
    return out;
}

std::unique_ptr<ReplayEngine>
makeReplayEngine(const std::string &backend, unsigned shards)
{
    if (backend == "scalar")
        return std::make_unique<ScalarReplayEngine>();
    if (backend == "fast")
        return std::make_unique<FastReplayEngine>(shards);
    fatal("unknown replay backend '" + backend +
          "' (expected scalar or fast)");
}

const ReplayEngine &
defaultReplayEngine()
{
    static const std::unique_ptr<ReplayEngine> engine = [] {
        const char *backend_env = std::getenv("GIPPR_REPLAY_BACKEND");
        const std::string backend = backend_env ? backend_env : "fast";
        // Default to one shard: every production caller (GA fitness,
        // the experiment harness) already parallelizes across traces,
        // so nested sharding is opt-in via the environment.
        unsigned shards = 1;
        if (const char *s = std::getenv("GIPPR_REPLAY_SHARDS"))
            shards = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
        return makeReplayEngine(backend, shards);
    }();
    return *engine;
}

} // namespace gippr::fastpath
