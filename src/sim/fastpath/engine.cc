/**
 * @file
 * Replay engine implementations.
 */

#include "sim/fastpath/engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "cache/replay.hh"
#include "core/dgippr.hh"
#include "sim/fastpath/soa_cache.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/parallel.hh"

namespace gippr::fastpath
{

namespace
{

/**
 * Requested dispatch width; -1 means "not resolved yet" and the
 * first activeReplayKernel() call reads GIPPR_REPLAY_KERNEL.  Kept
 * as a relaxed atomic so benches and tests can flip kernels between
 * (never during) replays without a data race against worker shards.
 */
std::atomic<int> g_kernel_request{-1};

CounterBank
toBank(const CacheStats &s)
{
    CounterBank b;
    b.accesses = s.accesses;
    b.hits = s.hits;
    b.misses = s.misses;
    b.evictions = s.evictions;
    b.writebacks = s.writebacks;
    b.demandAccesses = s.demandAccesses;
    b.demandMisses = s.demandMisses;
    return b;
}

CounterBank
bankDelta(const CacheStats &end, const CacheStats &start)
{
    CounterBank b;
    b.accesses = end.accesses - start.accesses;
    b.hits = end.hits - start.hits;
    b.misses = end.misses - start.misses;
    b.evictions = end.evictions - start.evictions;
    b.writebacks = end.writebacks - start.writebacks;
    b.demandAccesses = end.demandAccesses - start.demandAccesses;
    b.demandMisses = end.demandMisses - start.demandMisses;
    return b;
}

/** Contiguous-range shard of @p set for @p shards partitions. */
inline size_t
shardOf(uint64_t set, size_t shards, uint64_t sets)
{
    return static_cast<size_t>((set * shards) / sets);
}

/** One decoded trace record (the work shared by every genome). */
struct DecodedAccess
{
    uint64_t tag;
    uint32_t set;
    AccessType type;
};

/**
 * Records decoded per chunk.  The chunk length sets the batch
 * kernel's memory traffic: each genome's packed arrays are re-read
 * from the outer cache levels once per chunk, so traffic scales as
 * models * model_bytes / chunk while the decoded buffer itself
 * streams sequentially (prefetch-friendly).  64K accesses (1MB of
 * DecodedAccess) keeps one genome's model plus the buffer stream
 * resident while that genome replays the chunk, and shrinks the
 * all-genomes re-stream cost to noise even for wide populations.
 */
constexpr size_t kBatchChunk = 128 * 1024;
/** Lookahead distance for prefetching a genome's set rows. */
constexpr size_t kBatchPrefetch = 8;
/**
 * Lookahead for the paired kernel.  A paired iteration retires about
 * twice the work of a 16-way one and prefetches both models' rows
 * (~10 lines per step), so half the distance covers the same latency
 * with half the prefetch spray.
 */
constexpr size_t kPairPrefetch = 4;
/**
 * Target resident footprint of one (genome, set-range) pass.  The
 * random set sequence makes every access pull its rows from wherever
 * the model lives; bucketing each chunk by contiguous set range
 * shrinks that working slice to roughly this budget, so the rows land
 * (and stay) in L1 while the slice replays.  ~24KB leaves room for
 * the decoded buffer stream and the shared tree tables beside it.
 */
constexpr size_t kBatchL1Budget = 24 * 1024;

/**
 * Set-range buckets that keep one pass's slice near the budget.
 * @p lanes is the number of genomes a pass touches at once: the
 * paired kernel walks two models' slices simultaneously, so its
 * resident footprint doubles and the ranges must shrink to match.
 */
size_t
localityBuckets(uint64_t sets, unsigned assoc, unsigned lanes)
{
    // Per set: assoc tag words + assoc signature/position bytes +
    // valid/dirty/tree words (upper bound across families).
    const uint64_t bytes = lanes * sets * (assoc * 10ull + 24);
    // Each lane also keeps ~2KB of per-model tables resident (the
    // fused promotion LUT for TreeIpv, recency promotion rows) that
    // bucketing cannot shrink; budget the set slices around them.
    const uint64_t budget = std::max<uint64_t>(
        kBatchL1Budget - lanes * 2048ull, 8 * 1024);
    const uint64_t buckets = (bytes + budget - 1) / budget;
    return static_cast<size_t>(
        std::clamp<uint64_t>(buckets, 1, std::min<uint64_t>(sets, 256)));
}

#if GIPPR_BATCH_KERNEL16
/**
 * Chunk loop over the branch-free 16-way kernel.  Compiled with the
 * bmi2 target so accessBatched16 (and its pext) inlines; only called
 * when __builtin_cpu_supports("bmi2") at run time.
 */
__attribute__((target("bmi2"))) void
runChunk16(SoaCacheModel &m, const DecodedAccess *a, size_t n,
           size_t steady)
{
    // Outcome counters accumulate in registers; accessBatched16
    // leaves them to this loop (four memory RMWs saved per access).
    uint64_t hits = 0, dmiss = 0, evic = 0, wb = 0;
    for (size_t k = 0; k < steady; ++k) {
        m.prefetchSet(a[k + kBatchPrefetch].set);
        const SoaCacheModel::Step s =
            m.accessBatched16(a[k].set, a[k].tag, a[k].type);
        hits += s.hit;
        dmiss += (a[k].type != AccessType::Writeback) & !s.hit;
        evic += s.evicted;
        wb += s.evictedDirty;
    }
    for (size_t k = steady; k < n; ++k) {
        const SoaCacheModel::Step s =
            m.accessBatched16(a[k].set, a[k].tag, a[k].type);
        hits += s.hit;
        dmiss += (a[k].type != AccessType::Writeback) & !s.hit;
        evic += s.evicted;
        wb += s.evictedDirty;
    }
    m.addOutcomeCounters(hits, dmiss, evic, wb);
}
#endif

#if GIPPR_BATCH_KERNEL32
/**
 * Chunk loop over the paired AVX2 kernel: one 256-bit signature scan
 * resolves each decoded access against two genomes' models at once,
 * so the decoded buffer streams through the core once per pair
 * (instead of once per genome) and the two models' hit/victim
 * dependency chains overlap across the shared scan.  Compiled with
 * the avx2+bmi2 target so accessBatched32 and both branch-free tails
 * inline; only dispatched when the CPU supports both.
 */
__attribute__((target("avx2,bmi2"))) void
runChunk32(SoaCacheModel &ma, SoaCacheModel &mb, const DecodedAccess *a,
           size_t n)
{
    const size_t steady = n > kPairPrefetch ? n - kPairPrefetch : 0;
    uint64_t hits_a = 0, dmiss_a = 0, evic_a = 0, wb_a = 0;
    uint64_t hits_b = 0, dmiss_b = 0, evic_b = 0, wb_b = 0;
    SoaCacheModel::Step sa, sb;
    for (size_t k = 0; k < steady; ++k) {
        ma.prefetchSet(a[k + kPairPrefetch].set);
        mb.prefetchSet(a[k + kPairPrefetch].set);
        SoaCacheModel::accessBatched32(ma, mb, a[k].set, a[k].tag,
                                       a[k].type, sa, sb);
        const uint64_t demand = a[k].type != AccessType::Writeback;
        hits_a += sa.hit;
        dmiss_a += demand & !sa.hit;
        evic_a += sa.evicted;
        wb_a += sa.evictedDirty;
        hits_b += sb.hit;
        dmiss_b += demand & !sb.hit;
        evic_b += sb.evicted;
        wb_b += sb.evictedDirty;
    }
    for (size_t k = steady; k < n; ++k) {
        SoaCacheModel::accessBatched32(ma, mb, a[k].set, a[k].tag,
                                       a[k].type, sa, sb);
        const uint64_t demand = a[k].type != AccessType::Writeback;
        hits_a += sa.hit;
        dmiss_a += demand & !sa.hit;
        evic_a += sa.evicted;
        wb_a += sa.evictedDirty;
        hits_b += sb.hit;
        dmiss_b += demand & !sb.hit;
        evic_b += sb.evicted;
        wb_b += sb.evictedDirty;
    }
    ma.addOutcomeCounters(hits_a, dmiss_a, evic_a, wb_a);
    mb.addOutcomeCounters(hits_b, dmiss_b, evic_b, wb_b);
}

/**
 * Four-model variant: two paired scans per decoded record, so the
 * chunk buffer streams through the core once per quad.  The scans
 * and all four tails are independent chains; the extra ILP rides the
 * same buffer read.
 */
__attribute__((target("avx2,bmi2"))) void
runChunk32Quad(SoaCacheModel &ma, SoaCacheModel &mb, SoaCacheModel &mc,
               SoaCacheModel &md, const DecodedAccess *a, size_t n)
{
    uint64_t hits_a = 0, dmiss_a = 0, evic_a = 0, wb_a = 0;
    uint64_t hits_b = 0, dmiss_b = 0, evic_b = 0, wb_b = 0;
    uint64_t hits_c = 0, dmiss_c = 0, evic_c = 0, wb_c = 0;
    uint64_t hits_d = 0, dmiss_d = 0, evic_d = 0, wb_d = 0;
    SoaCacheModel::Step sa, sb, sc, sd;
    for (size_t k = 0; k < n; ++k) {
        SoaCacheModel::accessBatched32(ma, mb, a[k].set, a[k].tag,
                                       a[k].type, sa, sb);
        SoaCacheModel::accessBatched32(mc, md, a[k].set, a[k].tag,
                                       a[k].type, sc, sd);
        const uint64_t demand = a[k].type != AccessType::Writeback;
        hits_a += sa.hit;
        dmiss_a += demand & !sa.hit;
        evic_a += sa.evicted;
        wb_a += sa.evictedDirty;
        hits_b += sb.hit;
        dmiss_b += demand & !sb.hit;
        evic_b += sb.evicted;
        wb_b += sb.evictedDirty;
        hits_c += sc.hit;
        dmiss_c += demand & !sc.hit;
        evic_c += sc.evicted;
        wb_c += sc.evictedDirty;
        hits_d += sd.hit;
        dmiss_d += demand & !sd.hit;
        evic_d += sd.evicted;
        wb_d += sd.evictedDirty;
    }
    ma.addOutcomeCounters(hits_a, dmiss_a, evic_a, wb_a);
    mb.addOutcomeCounters(hits_b, dmiss_b, evic_b, wb_b);
    mc.addOutcomeCounters(hits_c, dmiss_c, evic_c, wb_c);
    md.addOutcomeCounters(hits_d, dmiss_d, evic_d, wb_d);
}
#endif

/**
 * Stream @p trace once and apply it to every model in @p models:
 * each chunk is decoded a single time and then replayed genome-major,
 * with the next few set rows prefetched ahead of the access cursor.
 *
 * Non-duel models replay each chunk bucket-ordered: a stable counting
 * sort groups the decoded accesses by contiguous set range, so one
 * (genome, range) pass works in an L1-resident slice of the model.
 * Accesses to different sets commute for every non-duel policy (the
 * engine's set sharding already relies on this), and the sort is
 * stable per set, so the per-set access sequences — and therefore the
 * final state and every counter — are bit-identical to trace order.
 * Dgippr models keep trace order: the shared tournament selector
 * couples leader updates to follower reads across sets.
 *
 * @p shards > 1 filters to @p shard's contiguous slice of the set
 * space (the engine's usual sharding).  Chunks never straddle
 * @p warmup, so every model snapshots its counters at exactly the
 * boundary the per-spec replay() uses.
 */
void
replayBatch(std::vector<SoaCacheModel> &models, const TraceSource &trace,
            size_t warmup, size_t shard, size_t shards, uint64_t sets)
{
    const SoaCacheModel &geo = models.front();
    const size_t chunk = std::min<size_t>(kBatchChunk, trace.size());
    bool any_ordered = false;
    for (const SoaCacheModel &m : models)
        any_ordered |= !m.isDuel();

    // Models split by chunk access order: non-duel models replay the
    // bucket-sorted stream, Dgippr models keep trace order.  The
    // paired kernel pairs adjacent models inside one group so both
    // lanes of a pass consume the identical access stream.
    std::vector<SoaCacheModel *> groups[2];
    for (SoaCacheModel &m : models)
        groups[m.isDuel() ? 1 : 0].push_back(&m);
    [[maybe_unused]] const ReplayKernel kernel = activeReplayKernel();
    [[maybe_unused]] const bool wide = geo.assoc() == 16;
    const bool pairing = kernel == ReplayKernel::Batch32 && wide &&
                         groups[0].size() >= 2;
    const bool quads = pairing && groups[0].size() >= 4;
    const size_t buckets = localityBuckets(sets, geo.assoc(),
                                           quads ? 4 : pairing ? 2 : 1);
    std::vector<DecodedAccess> buf(chunk);
    std::vector<DecodedAccess> ordered(
        buckets > 1 && any_ordered ? chunk : 0);
    std::vector<uint32_t> cursor(buckets + 1);

    bool snapped = warmup == 0;
    size_t i = 0;
    while (i < trace.size()) {
        size_t end = std::min(trace.size(), i + kBatchChunk);
        if (!snapped) {
            if (i >= warmup) {
                for (SoaCacheModel &m : models)
                    m.markWarmup();
                snapped = true;
            } else {
                end = std::min(end, warmup);
            }
        }
        size_t n = 0;
        uint64_t demand = 0;
        for (size_t j = i; j < end; ++j) {
            const MemRecord &r = trace[j];
            const uint64_t set = geo.setIndex(r.addr);
            if (shards > 1 && shardOf(set, shards, sets) != shard)
                continue;
            const AccessType type = recordType(r);
            demand += type != AccessType::Writeback;
            buf[n++] = {geo.tagOf(r.addr),
                        static_cast<uint32_t>(set), type};
        }

        // Stable counting sort of the chunk by set-range bucket.
        const DecodedAccess *ord = buf.data();
        if (!ordered.empty() && n > 0) {
            std::fill(cursor.begin(), cursor.end(), 0);
            for (size_t k = 0; k < n; ++k)
                ++cursor[shardOf(buf[k].set, buckets, sets) + 1];
            for (size_t b = 1; b <= buckets; ++b)
                cursor[b] += cursor[b - 1];
            for (size_t k = 0; k < n; ++k)
                ordered[cursor[shardOf(buf[k].set, buckets, sets)]++] =
                    buf[k];
            ord = ordered.data();
        }

        const size_t steady = n > kBatchPrefetch ? n - kBatchPrefetch
                                                 : 0;
        for (int g = 0; g < 2; ++g) {
            const DecodedAccess *a = g == 1 ? buf.data() : ord;
            std::vector<SoaCacheModel *> &grp = groups[g];
            size_t m = 0;
#if GIPPR_BATCH_KERNEL32
            if (kernel == ReplayKernel::Batch32 && wide) {
                for (; m + 3 < grp.size(); m += 4) {
                    runChunk32Quad(*grp[m], *grp[m + 1], *grp[m + 2],
                                   *grp[m + 3], a, n);
                    for (int q = 0; q < 4; ++q)
                        grp[m + q]->addStreamCounters(n, demand);
                }
                for (; m + 1 < grp.size(); m += 2) {
                    runChunk32(*grp[m], *grp[m + 1], a, n);
                    grp[m]->addStreamCounters(n, demand);
                    grp[m + 1]->addStreamCounters(n, demand);
                }
            }
#endif
#if GIPPR_BATCH_KERNEL16
            if (kernel != ReplayKernel::Scalar && wide) {
                // Batch16, plus the odd leftover model of a Batch32
                // pass.
                for (; m < grp.size(); ++m) {
                    runChunk16(*grp[m], a, n, steady);
                    grp[m]->addStreamCounters(n, demand);
                }
            }
#endif
            for (; m < grp.size(); ++m) {
                SoaCacheModel &mm = *grp[m];
                for (size_t k = 0; k < steady; ++k) {
                    mm.prefetchSet(a[k + kBatchPrefetch].set);
                    mm.accessBatched(a[k].set, a[k].tag, a[k].type);
                }
                for (size_t k = steady; k < n; ++k)
                    mm.accessBatched(a[k].set, a[k].tag, a[k].type);
                mm.addStreamCounters(n, demand);
            }
        }
        i = end;
    }
    if (!snapped) {
        for (SoaCacheModel &m : models)
            m.markWarmup();
    }
}

} // namespace

const char *
replayKernelName(ReplayKernel kernel)
{
    switch (kernel) {
    case ReplayKernel::Scalar:
        return "scalar";
    case ReplayKernel::Batch16:
        return "batch16";
    case ReplayKernel::Batch32:
        return "batch32";
    }
    return "scalar";
}

ReplayKernel
parseReplayKernel(const std::string &name)
{
    if (name == "scalar")
        return ReplayKernel::Scalar;
    if (name == "batch16")
        return ReplayKernel::Batch16;
    if (name == "batch32")
        return ReplayKernel::Batch32;
    fatal("unknown replay kernel '" + name +
          "' (expected scalar, batch16 or batch32)");
}

ReplayKernel
widestSupportedReplayKernel()
{
#if GIPPR_BATCH_KERNEL32
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2"))
        return ReplayKernel::Batch32;
#endif
#if GIPPR_BATCH_KERNEL16
    if (__builtin_cpu_supports("bmi2"))
        return ReplayKernel::Batch16;
#endif
    return ReplayKernel::Scalar;
}

ReplayKernel
activeReplayKernel()
{
    int req = g_kernel_request.load(std::memory_order_relaxed);
    if (req < 0) {
        ReplayKernel k = widestSupportedReplayKernel();
        if (const char *e = std::getenv("GIPPR_REPLAY_KERNEL"))
            k = parseReplayKernel(e);
        req = static_cast<int>(k);
        g_kernel_request.store(req, std::memory_order_relaxed);
    }
    const ReplayKernel want = static_cast<ReplayKernel>(req);
    const ReplayKernel widest = widestSupportedReplayKernel();
    return static_cast<uint8_t>(want) <= static_cast<uint8_t>(widest)
               ? want
               : widest;
}

ReplayKernel
setReplayKernel(ReplayKernel kernel)
{
    g_kernel_request.store(static_cast<int>(kernel),
                           std::memory_order_relaxed);
    return activeReplayKernel();
}

std::vector<ReplayStats>
ReplayEngine::replayMany(std::span<const ReplaySpec> specs,
                         const CacheConfig &config, const TraceSource &trace,
                         size_t warmup) const
{
    std::vector<ReplayStats> out;
    out.reserve(specs.size());
    for (const ReplaySpec &spec : specs)
        out.push_back(replay(spec, config, trace, warmup));
    return out;
}

ReplayStats
ScalarReplayEngine::replay(const ReplaySpec &spec,
                           const CacheConfig &config, const TraceSource &trace,
                           size_t warmup) const
{
    GIPPR_CHECK(warmup <= trace.size());
    SetAssocCache cache(config, makeScalarPolicy(spec, config));
    const auto *dg =
        dynamic_cast<const DgipprPolicy *>(&cache.policy());
    std::vector<uint64_t> leader_misses;
    if (dg)
        leader_misses.assign(dg->ipvs().size(), 0);

    CacheStats at_warmup;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup)
            at_warmup = cache.stats();
        const MemRecord &r = trace[i];
        const AccessType type = recordType(r);
        const AccessResult res = cache.access(r.addr, type, r.pc);
        if (dg && !res.hit && type != AccessType::Writeback) {
            const int owner =
                dg->leaderSets().owner(config.setIndex(r.addr));
            if (owner != LeaderSets::kFollower)
                ++leader_misses[static_cast<unsigned>(owner)];
        }
    }
    if (warmup == trace.size())
        at_warmup = cache.stats();

    ReplayStats stats;
    stats.total = toBank(cache.stats());
    stats.measured = bankDelta(cache.stats(), at_warmup);
    if (dg) {
        stats.finalWinner = dg->currentWinner();
        stats.duelCounters = dg->selector().counterValues();
        stats.leaderMisses = std::move(leader_misses);
    }
    return stats;
}

FastReplayEngine::FastReplayEngine(unsigned shards)
    : shards_(shards == 0 ? resolveThreads(0) : shards)
{
}

bool
FastReplayEngine::supports(const ReplaySpec &spec,
                           const CacheConfig &config)
{
    return SoaCacheModel::supports(spec, config);
}

ReplayStats
FastReplayEngine::replay(const ReplaySpec &spec,
                         const CacheConfig &config, const TraceSource &trace,
                         size_t warmup) const
{
    if (!supports(spec, config))
        return fallback_.replay(spec, config, trace, warmup);
    GIPPR_CHECK(warmup <= trace.size());

    const uint64_t sets = config.sets();
    const size_t shards = std::min<uint64_t>(shards_, sets);
    const bool duel = spec.kind == FastPolicyKind::Dgippr;

    if (shards == 1 || !duel) {
        if (shards == 1) {
            // One model replays the whole trace in order (for Dgippr
            // this keeps leader updates and follower reads naturally
            // interleaved, exactly like the scalar engine).
            SoaCacheModel model(spec, config);
            for (size_t i = 0; i < trace.size(); ++i) {
                if (i == warmup)
                    model.markWarmup();
                const MemRecord &r = trace[i];
                model.accessAddr(r.addr, recordType(r));
            }
            if (warmup == trace.size())
                model.markWarmup();
            return model.stats();
        }

        // Independent sets: each shard filter-scans the trace for its
        // contiguous slice of the set space.
        std::vector<ReplayStats> shard_stats(shards);
        parallelFor(shards, static_cast<unsigned>(shards),
                    [&](size_t shard) {
                        SoaCacheModel model(spec, config);
                        // Snapshot before the shard's first measured
                        // record (warmup == 0 needs none: the initial
                        // snapshot is already all-zero).
                        bool snapped = warmup == 0;
                        for (size_t i = 0; i < trace.size(); ++i) {
                            const MemRecord &r = trace[i];
                            const uint64_t set = model.setIndex(r.addr);
                            if (shardOf(set, shards, sets) != shard)
                                continue;
                            if (!snapped && i >= warmup) {
                                model.markWarmup();
                                snapped = true;
                            }
                            model.access(set, model.tagOf(r.addr),
                                         recordType(r));
                        }
                        if (!snapped)
                            model.markWarmup();
                        shard_stats[shard] = model.stats();
                    });
        ReplayStats out;
        for (const ReplayStats &s : shard_stats) {
            out.measured += s.measured;
            out.total += s.total;
        }
        return out;
    }

    // DGIPPR, multi-shard: leader sets never depend on the duel
    // winner, so pass A replays them alone (sequentially, in trace
    // order) while recording when the winner changes; pass B replays
    // follower shards in parallel, each cursor-walking the recorded
    // timeline so any access at trace index j sees the winner after
    // all leader updates at indices < j — the same value the
    // single-pass engine would have used.
    struct WinnerEvent
    {
        size_t index;
        unsigned winner;
    };
    SoaCacheModel leader_model(spec, config);
    std::vector<WinnerEvent> timeline;
    bool leader_snapped = warmup == 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        const MemRecord &r = trace[i];
        const uint64_t set = leader_model.setIndex(r.addr);
        if (leader_model.leaderOwner(set) == LeaderSets::kFollower)
            continue;
        if (!leader_snapped && i >= warmup) {
            leader_model.markWarmup();
            leader_snapped = true;
        }
        const unsigned before = leader_model.winner();
        leader_model.access(set, leader_model.tagOf(r.addr),
                            recordType(r));
        if (leader_model.winner() != before)
            timeline.push_back({i, leader_model.winner()});
    }
    if (!leader_snapped)
        leader_model.markWarmup();
    ReplayStats out = leader_model.stats();

    std::vector<ReplayStats> shard_stats(shards);
    parallelFor(
        shards, static_cast<unsigned>(shards), [&](size_t shard) {
            SoaCacheModel model(spec, config,
                                SoaCacheModel::DuelMode::Timeline);
            size_t cursor = 0;
            bool snapped = warmup == 0;
            for (size_t i = 0; i < trace.size(); ++i) {
                const MemRecord &r = trace[i];
                const uint64_t set = model.setIndex(r.addr);
                if (model.leaderOwner(set) != LeaderSets::kFollower)
                    continue;
                if (shardOf(set, shards, sets) != shard)
                    continue;
                while (cursor < timeline.size() &&
                       timeline[cursor].index < i) {
                    model.setWinner(timeline[cursor].winner);
                    ++cursor;
                }
                if (!snapped && i >= warmup) {
                    model.markWarmup();
                    snapped = true;
                }
                model.access(set, model.tagOf(r.addr), recordType(r));
            }
            if (!snapped)
                model.markWarmup();
            shard_stats[shard] = model.stats();
        });
    for (const ReplayStats &s : shard_stats) {
        out.measured += s.measured;
        out.total += s.total;
    }
    return out;
}

std::vector<ReplayStats>
FastReplayEngine::replayMany(std::span<const ReplaySpec> specs,
                             const CacheConfig &config,
                             const TraceSource &trace, size_t warmup) const
{
    GIPPR_CHECK(warmup <= trace.size());
    std::vector<ReplayStats> out(specs.size());
    const uint64_t sets = config.sets();
    const size_t shards = std::min<uint64_t>(shards_, sets);

    // Batch everything the packed model covers.  Unsupported specs
    // fall back to the scalar reference and multi-shard Dgippr keeps
    // replay()'s two-pass timeline scheme, both per spec, so any mix
    // of specs yields the same results as per-spec replay().
    std::vector<size_t> batch;
    batch.reserve(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
        const bool duel = specs[s].kind == FastPolicyKind::Dgippr;
        if (supports(specs[s], config) && !(duel && shards > 1))
            batch.push_back(s);
        else
            out[s] = replay(specs[s], config, trace, warmup);
    }
    if (batch.empty())
        return out;

    // A lone batched spec gains nothing from chunk decode + buffer
    // restreaming and would lose to the tuned per-genome loop (the
    // pop-1 regression): delegate so the batched entry point never
    // underperforms replay().
    if (batch.size() == 1) {
        out[batch[0]] = replay(specs[batch[0]], config, trace, warmup);
        return out;
    }

    if (shards == 1) {
        std::vector<SoaCacheModel> models;
        models.reserve(batch.size());
        for (size_t s : batch)
            models.emplace_back(specs[s], config);
        replayBatch(models, trace, warmup, 0, 1, sets);
        for (size_t m = 0; m < batch.size(); ++m)
            out[batch[m]] = models[m].stats();
        return out;
    }

    // Sharded batch: a shard × genome grid over disjoint set ranges,
    // merged per genome with the usual deterministic counter sums.
    std::vector<std::vector<ReplayStats>> grid(shards);
    parallelFor(
        shards, static_cast<unsigned>(shards), [&](size_t shard) {
            std::vector<SoaCacheModel> models;
            models.reserve(batch.size());
            for (size_t s : batch)
                models.emplace_back(specs[s], config);
            replayBatch(models, trace, warmup, shard, shards, sets);
            grid[shard].resize(batch.size());
            for (size_t m = 0; m < batch.size(); ++m)
                grid[shard][m] = models[m].stats();
        });
    for (size_t m = 0; m < batch.size(); ++m) {
        ReplayStats &merged = out[batch[m]];
        for (size_t shard = 0; shard < shards; ++shard) {
            merged.measured += grid[shard][m].measured;
            merged.total += grid[shard][m].total;
        }
    }
    return out;
}

std::unique_ptr<ReplayEngine>
makeReplayEngine(const std::string &backend, unsigned shards)
{
    if (backend == "scalar")
        return std::make_unique<ScalarReplayEngine>();
    if (backend == "fast")
        return std::make_unique<FastReplayEngine>(shards);
    fatal("unknown replay backend '" + backend +
          "' (expected scalar or fast)");
}

const ReplayEngine &
defaultReplayEngine()
{
    static const std::unique_ptr<ReplayEngine> engine = [] {
        const char *backend_env = std::getenv("GIPPR_REPLAY_BACKEND");
        const std::string backend = backend_env ? backend_env : "fast";
        // Default to one shard: every production caller (GA fitness,
        // the experiment harness) already parallelizes across traces,
        // so nested sharding is opt-in via the environment.
        unsigned shards = 1;
        if (const char *s = std::getenv("GIPPR_REPLAY_SHARDS"))
            shards = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
        return makeReplayEngine(backend, shards);
    }();
    return *engine;
}

} // namespace gippr::fastpath
