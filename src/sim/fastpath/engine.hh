/**
 * @file
 * Replay engines: scalar reference and sharded fast backend.
 *
 * A ReplayEngine replays one LLC trace under one ReplaySpec and
 * returns ReplayStats.  Two implementations exist:
 *
 *  - ScalarReplayEngine drives the production SetAssocCache +
 *    ReplacementPolicy objects (the pre-existing simulator) and is
 *    the semantic reference.
 *  - FastReplayEngine drives SoaCacheModel, optionally sharded: the
 *    set space is split into contiguous ranges and each shard
 *    filter-scans the trace for its own sets on a worker of the
 *    shared pool.  Per-set access streams are independent for every
 *    policy except DGIPPR's global duel state, which is handled with
 *    a two-pass scheme: pass A sequentially replays only the leader
 *    sets (whose behaviour never depends on the duel winner) and
 *    records a timeline of winner changes; pass B replays follower
 *    shards in parallel, each walking the timeline with a monotone
 *    cursor so every follower access sees exactly the winner the
 *    scalar engine would have used.  Counter merges are plain sums
 *    over disjoint set ranges, so results are bit-identical for any
 *    shard count.
 *
 * Backend selection: consumers default to defaultReplayEngine(),
 * which honours GIPPR_REPLAY_BACKEND (fast | scalar, default fast)
 * and GIPPR_REPLAY_SHARDS (default 1 — callers like the GA already
 * parallelize over traces, so nested sharding is opt-in).
 */

#ifndef GIPPR_SIM_FASTPATH_ENGINE_HH_
#define GIPPR_SIM_FASTPATH_ENGINE_HH_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/fastpath/replay_spec.hh"
#include "trace/trace_io.hh"

namespace gippr::fastpath
{

/**
 * Batched chunk kernels FastReplayEngine::replayMany can dispatch for
 * a (genome-group, set-range) pass.  Widths nest: Batch32 pairs two
 * genomes per AVX2 signature scan and finishes each through the
 * 16-way branch-free tail, Batch16 is the BMI2 single-genome kernel,
 * Scalar is the portable per-way loop.  All three are bit-identical.
 */
enum class ReplayKernel : uint8_t
{
    Scalar = 0,
    Batch16 = 1,
    Batch32 = 2,
};

/** Kernel name as spelled by GIPPR_REPLAY_KERNEL ("scalar", ...). */
const char *replayKernelName(ReplayKernel kernel);

/** Parse "scalar" | "batch16" | "batch32"; throws on other input. */
ReplayKernel parseReplayKernel(const std::string &name);

/** Widest kernel this build + CPU can actually run. */
ReplayKernel widestSupportedReplayKernel();

/**
 * Kernel the batched replay path dispatches right now: the requested
 * width (GIPPR_REPLAY_KERNEL at first use, or the latest
 * setReplayKernel() call) clamped to widestSupportedReplayKernel().
 * Narrower requests are honoured exactly — that is what makes every
 * width independently testable on one host.
 */
ReplayKernel activeReplayKernel();

/**
 * Request a dispatch width for subsequent batched replays (benches
 * and tests switch kernels in-process); returns the clamped width
 * that will actually run.
 */
ReplayKernel setReplayKernel(ReplayKernel kernel);

/** Replays traces under value-described policies. */
class ReplayEngine
{
  public:
    virtual ~ReplayEngine() = default;

    /**
     * Replay @p trace against a cache of @p config geometry running
     * @p spec; records with index >= @p warmup are measured (the
     * replayTrace convention).
     */
    virtual ReplayStats replay(const ReplaySpec &spec,
                               const CacheConfig &config,
                               const TraceSource &trace,
                               size_t warmup) const = 0;

    /**
     * Replay @p trace once per spec in @p specs and return stats
     * index-aligned with the input.  Semantically identical to
     * calling replay() per spec (and that is the default
     * implementation); backends may amortize the shared per-record
     * work — trace fetch, set/tag decode — across the batch.
     */
    virtual std::vector<ReplayStats>
    replayMany(std::span<const ReplaySpec> specs,
               const CacheConfig &config, const TraceSource &trace,
               size_t warmup) const;

    /** Backend name ("scalar" or "fast"). */
    virtual std::string name() const = 0;
};

/** Reference backend over SetAssocCache + policy objects. */
class ScalarReplayEngine : public ReplayEngine
{
  public:
    ReplayStats replay(const ReplaySpec &spec, const CacheConfig &config,
                       const TraceSource &trace,
                       size_t warmup) const override;
    std::string name() const override { return "scalar"; }
};

/** Packed structure-of-arrays backend, optionally sharded. */
class FastReplayEngine : public ReplayEngine
{
  public:
    /** @param shards set-space partitions (>= 1); 1 = no threading */
    explicit FastReplayEngine(unsigned shards = 1);

    ReplayStats replay(const ReplaySpec &spec, const CacheConfig &config,
                       const TraceSource &trace,
                       size_t warmup) const override;

    /**
     * Batched kernel: all supported specs stream the trace ONCE in
     * genome-major order — each chunk of records is decoded a single
     * time (set index, tag, access type) and then applied to every
     * spec's packed model back to back, so the models' tag/signature
     * rows and PLRU words stay hot while the shared decode work is
     * paid once per generation instead of once per genome.  Composes
     * with set-space sharding (a shard × genome grid over disjoint
     * set ranges).  Unsupported specs fall back to scalar and
     * multi-shard Dgippr keeps replay()'s two-pass timeline scheme,
     * each per spec; results are bit-identical to per-spec replay()
     * for any batch composition and shard count.
     */
    std::vector<ReplayStats>
    replayMany(std::span<const ReplaySpec> specs,
               const CacheConfig &config, const TraceSource &trace,
               size_t warmup) const override;

    std::string name() const override { return "fast"; }

    unsigned shards() const { return shards_; }

    /**
     * True when the fast path covers @p spec at @p config; otherwise
     * replay() silently falls back to the scalar reference.
     */
    static bool supports(const ReplaySpec &spec,
                         const CacheConfig &config);

  private:
    unsigned shards_;
    ScalarReplayEngine fallback_;
};

/**
 * Build an engine by name: "scalar" or "fast" (with @p shards; 0
 * means one shard per hardware thread).  Throws on unknown names.
 */
std::unique_ptr<ReplayEngine> makeReplayEngine(const std::string &backend,
                                               unsigned shards = 1);

/**
 * The process-wide default engine, resolved once from the
 * environment: GIPPR_REPLAY_BACKEND (default "fast") and
 * GIPPR_REPLAY_SHARDS (default 1).
 */
const ReplayEngine &defaultReplayEngine();

} // namespace gippr::fastpath

#endif // GIPPR_SIM_FASTPATH_ENGINE_HH_
