/**
 * @file
 * Structure-of-arrays cache model implementation.
 */

#include "sim/fastpath/soa_cache.hh"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "util/bitops.hh"
#include "util/check.hh"

namespace gippr::fastpath
{

namespace
{

/** Promotion rows / insertion positions for the spec's vectors. */
std::vector<Ipv>
effectiveIpvs(const ReplaySpec &spec, unsigned ways)
{
    switch (spec.kind) {
      case FastPolicyKind::Lru:
        return {Ipv::lru(ways)};
      case FastPolicyKind::Lip:
        return {Ipv::lruInsertion(ways)};
      case FastPolicyKind::Plru:
        return {}; // promote-to-MRU needs no vector
      case FastPolicyKind::Giplr:
      case FastPolicyKind::Gippr:
      case FastPolicyKind::Dgippr:
        return spec.ipvs;
    }
    return {};
}

} // namespace

std::shared_ptr<const TreeTables>
TreeTables::forAssoc(unsigned assoc)
{
    GIPPR_CHECK(isPow2(assoc) && assoc >= 2 && assoc <= 64);
    // One slot per depth, kept for the life of the process: the
    // tables depend only on the associativity, and batched replay
    // constructs models by the hundred per generation.
    static std::mutex mu;
    static std::shared_ptr<const TreeTables> cache[7];
    const unsigned depth =
        static_cast<unsigned>(countTrailingZeros(assoc));
    std::lock_guard<std::mutex> lock(mu);
    if (cache[depth])
        return cache[depth];
    auto t = std::make_shared<TreeTables>();
    t->depth = depth;
    t->pathNodes.assign(assoc * depth, 0);
    t->parityXor.assign(assoc, 0);
    t->clearMask.assign(assoc, 0);
    t->deposit.assign(assoc * assoc, 0);
    for (unsigned way = 0; way < assoc; ++way) {
        unsigned q = assoc - 1 + way;
        for (unsigned i = 0; i < depth; ++i) {
            const unsigned par = (q - 1) / 2;
            t->pathNodes[way * depth + i] = static_cast<uint8_t>(par);
            t->clearMask[way] |= uint64_t{1} << par;
            if (q % 2 == 1) // left child: complemented bit
                t->parityXor[way] |= 1u << i;
            q = par;
        }
        for (unsigned x = 0; x < assoc; ++x)
            t->deposit[way * assoc + x] =
                packedSetPosition(0, assoc, way, x) & t->clearMask[way];
    }
    if (assoc <= 16) {
        t->victimLut.assign(uint64_t{1} << (assoc - 1), 0);
        for (uint64_t w = 0; w < t->victimLut.size(); ++w)
            t->victimLut[w] =
                static_cast<uint8_t>(packedFindPlru(w, assoc));
    }
    cache[depth] = t;
    return t;
}

bool
SoaCacheModel::supports(const ReplaySpec &spec, const CacheConfig &config)
{
    const unsigned ways = config.assoc;
    if (ways < 2 || ways > 64)
        return false;
    switch (spec.kind) {
      case FastPolicyKind::Lru:
      case FastPolicyKind::Lip:
        return true;
      case FastPolicyKind::Giplr:
        return spec.ipvs.size() == 1 &&
               spec.ipvs.front().ways() == ways;
      case FastPolicyKind::Plru:
        return isPow2(ways);
      case FastPolicyKind::Gippr:
        return isPow2(ways) && spec.ipvs.size() == 1 &&
               spec.ipvs.front().ways() == ways;
      case FastPolicyKind::Dgippr:
        if (!isPow2(ways) || spec.ipvs.size() < 2 ||
            !isPow2(spec.ipvs.size())) {
            return false;
        }
        for (const Ipv &v : spec.ipvs) {
            if (v.ways() != ways)
                return false;
        }
        return true;
    }
    return false;
}

SoaCacheModel::SoaCacheModel(const ReplaySpec &spec,
                             const CacheConfig &config, DuelMode mode)
    : sets_(config.sets()), assoc_(config.assoc),
      blockShift_(config.blockShift()), setShift_(config.setShift()),
      wayMask_(config.assoc == 64 ? ~uint64_t{0}
                                  : (uint64_t{1} << config.assoc) - 1),
      mode_(mode),
      // Non-duel specs get degenerate dueling state (never consulted).
      leaders_(config.sets(),
               spec.kind == FastPolicyKind::Dgippr
                   ? static_cast<unsigned>(spec.ipvs.size())
                   : 1,
               spec.kind == FastPolicyKind::Dgippr
                   ? clampLeaders(config.sets(),
                                  static_cast<unsigned>(spec.ipvs.size()),
                                  spec.leaders)
                   : 1),
      selector_(spec.kind == FastPolicyKind::Dgippr
                    ? static_cast<unsigned>(spec.ipvs.size())
                    : 2,
                spec.kind == FastPolicyKind::Dgippr ? spec.counterBits
                                                    : 1)
{
    GIPPR_CHECK(supports(spec, config));
    switch (spec.kind) {
      case FastPolicyKind::Lru:
      case FastPolicyKind::Lip:
      case FastPolicyKind::Giplr:
        family_ = Family::Recency;
        break;
      case FastPolicyKind::Plru:
        family_ = Family::Plru;
        break;
      case FastPolicyKind::Gippr:
        family_ = Family::TreeIpv;
        break;
      case FastPolicyKind::Dgippr:
        family_ = Family::TreeIpv;
        duel_ = true;
        break;
    }

    for (const Ipv &v : effectiveIpvs(spec, assoc_)) {
        std::vector<uint8_t> row(assoc_);
        for (unsigned i = 0; i < assoc_; ++i)
            row[i] = static_cast<uint8_t>(v.promotion(i));
        promo_.push_back(std::move(row));
        insert_.push_back(static_cast<uint8_t>(v.insertion()));
    }

    tags_.assign(sets_ * assoc_, 0);
    sig_.assign(sets_ * assoc_, 0);
    valid_.assign(sets_, 0);
    dirty_.assign(sets_, 0);
    if (family_ == Family::Recency) {
        // Identity layout, matching RecencyStack's constructor.
        pos_.resize(sets_ * assoc_);
        for (uint64_t s = 0; s < sets_; ++s)
            for (unsigned w = 0; w < assoc_; ++w)
                pos_[s * assoc_ + w] = static_cast<uint8_t>(w);
    } else {
        tree_.assign(sets_, 0);
        // Per-way path tables, shared process-wide per geometry:
        // every tree update/read in the access path reduces to
        // mask-and-deposit through these (see TreeTables).
        tables_ = TreeTables::forAssoc(assoc_);
        depth_ = tables_->depth;
        pathNodes_ = tables_->pathNodes.data();
        parityXor_ = tables_->parityXor.data();
        clearMask_ = tables_->clearMask.data();
        deposit_ = tables_->deposit.data();
        victimLut_ = tables_->victimLut.empty()
                         ? nullptr
                         : tables_->victimLut.data();
        if (family_ == Family::TreeIpv) {
            const size_t vecs = promo_.size();
            promoDeposit_.assign(vecs * assoc_ * assoc_, 0);
            insertDeposit_.assign(vecs * assoc_, 0);
            fusedPromo_.assign((vecs * assoc_) << depth_, 0);
            for (size_t v = 0; v < vecs; ++v) {
                for (unsigned way = 0; way < assoc_; ++way) {
                    for (unsigned i = 0; i < assoc_; ++i)
                        promoDeposit_[(v * assoc_ + way) * assoc_ +
                                      i] =
                            deposit_[way * assoc_ + promo_[v][i]];
                    insertDeposit_[v * assoc_ + way] =
                        deposit_[way * assoc_ + insert_[v]];
                    // Fused batched-hit LUT: enumerate the way's path
                    // bits in ascending node order (pext extraction
                    // order), recover the stack position each pattern
                    // encodes, and store the deposit it promotes to.
                    std::vector<uint8_t> nodes(
                        &pathNodes_[way * depth_],
                        &pathNodes_[way * depth_] + depth_);
                    std::sort(nodes.begin(), nodes.end());
                    for (unsigned pat = 0; pat < (1u << depth_);
                         ++pat) {
                        uint64_t word = 0;
                        for (unsigned b = 0; b < depth_; ++b)
                            word |= uint64_t{(pat >> b) & 1u}
                                    << nodes[b];
                        const unsigned pos =
                            packedPosition(word, assoc_, way);
                        fusedPromo_[((v * assoc_ + way) << depth_) +
                                    pat] =
                            deposit_[way * assoc_ + promo_[v][pos]];
                    }
                }
            }
        }
    }
    if (duel_) {
        winner_ = selector_.winner();
        leaderMisses_.assign(promo_.size(), 0);
        owners_.resize(sets_);
        for (uint64_t s = 0; s < sets_; ++s)
            owners_[s] = static_cast<int8_t>(leaders_.owner(s));
    }
}

uint64_t
SoaCacheModel::setIndex(uint64_t byte_addr) const
{
    return (byte_addr >> blockShift_) & (sets_ - 1);
}

uint64_t
SoaCacheModel::tagOf(uint64_t byte_addr) const
{
    return byte_addr >> (blockShift_ + setShift_);
}

int
SoaCacheModel::leaderOwner(uint64_t set) const
{
    return duel_ ? leaders_.owner(set) : LeaderSets::kFollower;
}

void
SoaCacheModel::setWinner(unsigned w)
{
    GIPPR_DCHECK(duel_ && mode_ == DuelMode::Timeline);
    GIPPR_DCHECK(w < promo_.size());
    winner_ = w;
}

ReplayStats
SoaCacheModel::stats() const
{
    ReplayStats s;
    s.total = counters_;
    s.total.misses = counters_.accesses - counters_.hits;
    s.measured.accesses = counters_.accesses - warmupBase_.accesses;
    s.measured.hits = counters_.hits - warmupBase_.hits;
    s.measured.misses = s.measured.accesses - s.measured.hits;
    s.measured.evictions = counters_.evictions - warmupBase_.evictions;
    s.measured.writebacks =
        counters_.writebacks - warmupBase_.writebacks;
    s.measured.demandAccesses =
        counters_.demandAccesses - warmupBase_.demandAccesses;
    s.measured.demandMisses =
        counters_.demandMisses - warmupBase_.demandMisses;
    if (duel_ && mode_ == DuelMode::Live) {
        s.finalWinner = selector_.winner();
        s.duelCounters = selector_.counterValues();
        s.leaderMisses = leaderMisses_;
    }
    return s;
}

std::vector<unsigned>
SoaCacheModel::positionsOf(uint64_t set) const
{
    std::vector<unsigned> out(assoc_);
    for (unsigned w = 0; w < assoc_; ++w) {
        out[w] = family_ == Family::Recency
                     ? pos_[set * assoc_ + w]
                     : packedPosition(tree_[set], assoc_, w);
    }
    return out;
}

bool
SoaCacheModel::validAt(uint64_t set, unsigned way) const
{
    return (valid_[set] >> way) & 1;
}

bool
SoaCacheModel::dirtyAt(uint64_t set, unsigned way) const
{
    return (dirty_[set] >> way) & 1;
}

std::string
SoaCacheModel::dumpSet(uint64_t set) const
{
    std::ostringstream os;
    os << "set " << set << " positions [";
    for (unsigned p : positionsOf(set))
        os << ' ' << p;
    os << " ] valid 0x" << std::hex << valid_[set] << " dirty 0x"
       << dirty_[set] << std::dec;
    if (family_ != Family::Recency)
        os << " tree 0x" << std::hex << tree_[set] << std::dec;
    if (duel_) {
        os << " owner " << leaderOwner(set) << " winner " << winner_;
    }
    os << " tags [";
    for (unsigned w = 0; w < assoc_; ++w)
        os << ' ' << std::hex << tags_[set * assoc_ + w] << std::dec;
    os << " ]";
    return os.str();
}

} // namespace gippr::fastpath
