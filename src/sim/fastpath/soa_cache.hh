/**
 * @file
 * Structure-of-arrays cache model for the fast replay backend.
 *
 * The scalar simulator (SetAssocCache + a ReplacementPolicy object)
 * pays a virtual dispatch and several pointer chases per access.  The
 * fast backend packs the same state into flat arrays — one tag word
 * per line, one valid/dirty bitmask per set, one uint64 of PseudoLRU
 * tree bits per set, one byte of recency position per line — and
 * specializes the per-access transition on the policy family, so a
 * whole trace replays branch-light over contiguous memory.
 *
 * The packed PLRU kernels below are bit-for-bit transcriptions of
 * PlruTree's four algorithms (paper Figures 5/6/7/9) onto a single
 * word of heap-ordered node bits; tests/test_fastpath_equiv.cc checks
 * them exhaustively against PlruTree over every state for ways up to
 * 16.  SoaCacheModel then mirrors SetAssocCache::access event order
 * exactly (invalid-way fill before victim selection, writeback
 * conventions, demand-only duel updates), which is what makes the
 * scalar/fast equivalence guarantee provable by lock-step replay.
 */

#ifndef GIPPR_SIM_FASTPATH_SOA_CACHE_HH_
#define GIPPR_SIM_FASTPATH_SOA_CACHE_HH_

#include <cstdint>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "cache/replacement.hh"
#include "policies/set_dueling.hh"
#include "sim/fastpath/replay_spec.hh"
#include "util/bitops.hh"
#include "util/check.hh"

namespace gippr::fastpath
{

/** PLRU victim: walk the packed bits from the root (Fig. 5). */
inline unsigned
packedFindPlru(uint64_t word, unsigned ways)
{
    unsigned p = 0;
    while (p < ways - 1)
        p = ((word >> p) & 1) ? 2 * p + 2 : 2 * p + 1;
    return p - (ways - 1);
}

/** Recency-stack position of @p way in the packed tree (Fig. 7). */
inline unsigned
packedPosition(uint64_t word, unsigned ways, unsigned way)
{
    unsigned x = 0;
    unsigned i = 0;
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const unsigned bit = (word >> par) & 1;
        // Right children (even heap index) contribute the parent's
        // bit, left children its complement.
        x |= (q % 2 == 0 ? bit : bit ^ 1u) << i;
        q = par;
        ++i;
    }
    return x;
}

/** Write path bits so @p way occupies position @p x (Fig. 9). */
inline uint64_t
packedSetPosition(uint64_t word, unsigned ways, unsigned way, unsigned x)
{
    unsigned i = 0;
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const uint64_t bit = (x >> i) & 1;
        const uint64_t value = q % 2 == 0 ? bit : bit ^ 1u;
        word = (word & ~(uint64_t{1} << par)) | (value << par);
        q = par;
        ++i;
    }
    return word;
}

/** Classic PLRU promotion: point every path bit away (Fig. 6). */
inline uint64_t
packedPromoteMru(uint64_t word, unsigned ways, unsigned way)
{
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const uint64_t value = q % 2 == 0 ? 0 : 1;
        word = (word & ~(uint64_t{1} << par)) | (value << par);
        q = par;
    }
    return word;
}

/**
 * Packed replica of SetAssocCache + one of the seven core policies.
 *
 * The model covers every set of the geometry but is oblivious to
 * which accesses it is fed; the replay engine shards a trace by
 * feeding each model only its slice of the set space.  For Dgippr
 * specs the duel winner is either maintained live (the model owns the
 * tournament selector and updates it on leader misses) or driven
 * externally via setWinner() from a pre-recorded winner timeline —
 * the mechanism that makes follower-set shards independent of each
 * other.
 */
class SoaCacheModel
{
  public:
    /** How Dgippr follower sets learn the duel winner. */
    enum class DuelMode
    {
        Live,     ///< model updates the selector on leader misses
        Timeline, ///< caller injects the winner via setWinner()
    };

    SoaCacheModel(const ReplaySpec &spec, const CacheConfig &config,
                  DuelMode mode = DuelMode::Live);

    /** True when the fast backend can pack this spec/geometry. */
    static bool supports(const ReplaySpec &spec,
                         const CacheConfig &config);

    /** Outcome of one access (mirror of AccessResult). */
    struct Step
    {
        bool hit = false;
        unsigned way = 0;
        bool evicted = false;
        bool evictedDirty = false;
        uint64_t evictedTag = 0;
    };

    /** Perform one access (defined inline: the replay hot path). */
    Step access(uint64_t set, uint64_t tag, AccessType type);

    /** Access by byte address (set/tag split per the geometry). */
    Step accessAddr(uint64_t byte_addr, AccessType type);

    /**
     * Snapshot the counters: stats().measured reports everything
     * accumulated after the last call (the warmup convention).
     * Never calling it leaves measured == total.
     */
    void markWarmup() { warmupBase_ = counters_; }

    /**
     * Hint that @p set is about to be accessed.  Replay loops call
     * this a few records ahead of the access cursor: sets are
     * effectively random, so the tag/state rows miss L1 otherwise and
     * the lookahead hides that latency behind the in-flight accesses.
     */
    void prefetchSet(uint64_t set) const
    {
        const uint64_t base = set * assoc_;
        __builtin_prefetch(&sig_[base]);
        __builtin_prefetch(&valid_[set]);
        if (family_ == Family::Recency)
            __builtin_prefetch(&pos_[base]);
        else
            __builtin_prefetch(&tree_[set]);
    }

    /** Timeline mode: winner for subsequent follower accesses. */
    void setWinner(unsigned w);

    /** Current follower winner (Dgippr). */
    unsigned winner() const { return winner_; }

    /** Leading vector of @p set, or LeaderSets::kFollower. */
    int leaderOwner(uint64_t set) const;

    /**
     * Statistics so far; for live Dgippr models the duel fields
     * (finalWinner, duelCounters, leaderMisses) are synced from the
     * selector.
     */
    ReplayStats stats() const;

    uint64_t sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }

    /** Set index / tag of a byte address (replay plumbing). */
    uint64_t setIndex(uint64_t byte_addr) const;
    uint64_t tagOf(uint64_t byte_addr) const;

    /** Recency positions of every way in @p set (equivalence probe). */
    std::vector<unsigned> positionsOf(uint64_t set) const;

    bool validAt(uint64_t set, unsigned way) const;
    bool dirtyAt(uint64_t set, unsigned way) const;

    /** Full shard-state rendering of one set (divergence dumps). */
    std::string dumpSet(uint64_t set) const;

  private:
    /** Transition family the access path switches on. */
    enum class Family : uint8_t
    {
        Recency, ///< Lru / Lip / Giplr: byte positions + moveTo
        Plru,    ///< classic tree: promote-to-MRU
        TreeIpv, ///< Gippr / Dgippr: packed tree + IPV positions
    };

    unsigned ipvIndexFor(uint64_t set) const;
    void moveTo(uint8_t *pos, unsigned way, unsigned to);
    unsigned recencyVictim(const uint8_t *pos) const;
    int findWay(uint64_t base, uint64_t tag, uint64_t valid) const;
    unsigned treePositionOf(uint64_t word, unsigned way) const;

    // Geometry.
    uint64_t sets_;
    unsigned assoc_;
    unsigned blockShift_;
    unsigned setShift_;
    uint64_t wayMask_;

    // Policy.
    Family family_;
    bool duel_ = false;
    DuelMode mode_;
    /** promo_[v][i] = new position on a hit at position i; one row
     *  per candidate vector. */
    std::vector<std::vector<uint8_t>> promo_;
    /** insert_[v] = insertion position of vector v. */
    std::vector<uint8_t> insert_;

    // Packed per-set / per-line state.
    std::vector<uint64_t> tags_;  // sets * assoc
    std::vector<uint8_t> sig_;    // low tag byte per line (scan filter)
    std::vector<uint64_t> valid_; // bitmask per set
    std::vector<uint64_t> dirty_; // bitmask per set
    std::vector<uint64_t> tree_;  // PLRU node bits per set
    std::vector<uint8_t> pos_;    // sets * assoc (recency family)

    /**
     * Per-way tree tables (pow2-way families), built once from the
     * packed kernels: a leaf's path through the tree is fixed, so
     * setPosition(word, way, x) == (word & ~clearMask_[way]) |
     * deposit_[way * assoc + x], and position() is a gather of the
     * path bits (pathNodes_) xor the left-child parity
     * (parityXor_).  This turns the per-access log(ways) loops into
     * a handful of independent instructions.
     */
    unsigned depth_ = 0;
    std::vector<uint8_t> pathNodes_;  // assoc * depth
    std::vector<uint8_t> parityXor_;  // assoc
    std::vector<uint64_t> clearMask_; // assoc
    std::vector<uint64_t> deposit_;   // assoc * assoc
    /** Tree word -> PLRU victim, tabulated when the word fits 15
     *  bits (assoc <= 16); wider trees keep the root walk. */
    std::vector<uint8_t> victimLut_;
    /** Fused promotion / insertion deposits for the TreeIpv family:
     *  promoDeposit_[(v * assoc + way) * assoc + i] =
     *  deposit_[way * assoc + promo_[v][i]], and insertDeposit_[v *
     *  assoc + way] likewise through insert_[v] — one load on the
     *  hit / fill path instead of two dependent ones. */
    std::vector<uint64_t> promoDeposit_;
    std::vector<uint64_t> insertDeposit_;

    // Set dueling (Dgippr only).
    LeaderSets leaders_;
    /** Flat copy of leaders_'s owner table (duel models index this
     *  on every access; the class accessor is an outlined call). */
    std::vector<int8_t> owners_;
    TournamentSelector selector_;
    unsigned winner_ = 0;
    std::vector<uint64_t> leaderMisses_;

    /**
     * Whole-trace counters; stats() derives misses (accesses - hits)
     * and the measured bank (counters - warmupBase).  Keeping one
     * bank and deriving the rest halves the hot path's counter work.
     */
    CounterBank counters_;
    CounterBank warmupBase_;
};

inline unsigned
SoaCacheModel::ipvIndexFor(uint64_t set) const
{
    if (!duel_)
        return 0;
    const int owner = owners_[set];
    return owner != LeaderSets::kFollower ? static_cast<unsigned>(owner)
                                          : winner_;
}

inline void
SoaCacheModel::moveTo(uint8_t *pos, unsigned way, unsigned to)
{
    // RecencyStack semantics: slide the interval between the old and
    // new positions by one.  Positions are < 64, so signed byte
    // compares are safe in the vector path.
    const unsigned from = pos[way];
#if defined(__SSE2__)
    if (assoc_ == 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(pos));
        __m128i out = v;
        if (to < from) {
            // pos += (pos >= to) & (pos < from): the mask bytes are
            // -1, so subtracting the mask adds one.
            const __m128i m = _mm_and_si128(
                _mm_cmpgt_epi8(
                    v, _mm_set1_epi8(static_cast<char>(
                           static_cast<int>(to) - 1))),
                _mm_cmplt_epi8(v, _mm_set1_epi8(
                                      static_cast<char>(from))));
            out = _mm_sub_epi8(v, m);
        } else if (to > from) {
            // pos -= (pos > from) & (pos <= to).
            const __m128i m = _mm_and_si128(
                _mm_cmpgt_epi8(v, _mm_set1_epi8(
                                      static_cast<char>(from))),
                _mm_cmplt_epi8(
                    v, _mm_set1_epi8(static_cast<char>(
                           static_cast<int>(to) + 1))));
            out = _mm_add_epi8(v, m);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(pos), out);
        pos[way] = static_cast<uint8_t>(to);
        return;
    }
#endif
    if (to < from) {
        for (unsigned w = 0; w < assoc_; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] + ((pos[w] >= to) & (pos[w] < from)));
    } else if (to > from) {
        for (unsigned w = 0; w < assoc_; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] - ((pos[w] > from) & (pos[w] <= to)));
    }
    pos[way] = static_cast<uint8_t>(to);
}

inline unsigned
SoaCacheModel::recencyVictim(const uint8_t *pos) const
{
    const uint8_t last = static_cast<uint8_t>(assoc_ - 1);
#if defined(__SSE2__)
    if (assoc_ == 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(pos));
        const unsigned match = static_cast<unsigned>(_mm_movemask_epi8(
            _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(last)))));
        GIPPR_DCHECK(match != 0);
        return static_cast<unsigned>(countTrailingZeros(match));
    }
#endif
    uint64_t match = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        match |= uint64_t{pos[w] == last} << w;
    GIPPR_DCHECK(match != 0); // positions are always a permutation
    return static_cast<unsigned>(countTrailingZeros(match));
}

inline int
SoaCacheModel::findWay(uint64_t base, uint64_t tag,
                       uint64_t valid) const
{
#if defined(__SSE2__)
    if (assoc_ == 16) {
        // One-byte signatures filter the row in a single compare;
        // candidates (usually exactly the hit way) verify against the
        // full tag.  Valid tags are unique per set, so the first
        // verified candidate is THE match.
        const __m128i row = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(&sig_[base]));
        const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
        unsigned cand = static_cast<unsigned>(_mm_movemask_epi8(
                            _mm_cmpeq_epi8(row, probe))) &
                        static_cast<unsigned>(valid);
        while (cand != 0) {
            const unsigned w =
                static_cast<unsigned>(countTrailingZeros(cand));
            if (tags_[base + w] == tag)
                return static_cast<int>(w);
            cand &= cand - 1;
        }
        return -1;
    }
#endif
    const uint64_t *tags = &tags_[base];
    uint64_t match = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        match |= uint64_t{tags[w] == tag} << w;
    match &= valid;
    return match != 0 ? static_cast<int>(countTrailingZeros(match))
                      : -1;
}

inline unsigned
SoaCacheModel::treePositionOf(uint64_t word, unsigned way) const
{
    // Gather the fixed path bits for this leaf and flip the
    // left-child ones (packedPosition without the loop-carried walk).
    // The switch unrolls the gather: the shifts are independent, so
    // they issue in parallel instead of a loop-carried OR chain.
    const uint8_t *nodes = &pathNodes_[way * depth_];
    uint64_t x = 0;
    switch (depth_) {
      case 6:
        x |= ((word >> nodes[5]) & 1) << 5;
        [[fallthrough]];
      case 5:
        x |= ((word >> nodes[4]) & 1) << 4;
        [[fallthrough]];
      case 4:
        x |= ((word >> nodes[3]) & 1) << 3;
        [[fallthrough]];
      case 3:
        x |= ((word >> nodes[2]) & 1) << 2;
        [[fallthrough]];
      case 2:
        x |= ((word >> nodes[1]) & 1) << 1;
        [[fallthrough]];
      default:
        x |= (word >> nodes[0]) & 1;
    }
    return static_cast<unsigned>(x) ^ parityXor_[way];
}

inline SoaCacheModel::Step
SoaCacheModel::access(uint64_t set, uint64_t tag, AccessType type)
{
    GIPPR_DCHECK(set < sets_);
    const bool demand = type != AccessType::Writeback;
    const uint64_t base = set * assoc_;
    const uint64_t valid = valid_[set];

    ++counters_.accesses;
    counters_.demandAccesses += demand;

    Step step;
    const int hit_way = findWay(base, tag, valid);
    if (hit_way >= 0) {
        const unsigned way = static_cast<unsigned>(hit_way);
        ++counters_.hits;
        step.hit = true;
        step.way = way;
        if (type != AccessType::Load)
            dirty_[set] |= uint64_t{1} << way;
        if (demand) {
            // Promotion (writeback hits never touch recency state).
            switch (family_) {
              case Family::Recency: {
                uint8_t *pos = &pos_[base];
                moveTo(pos, way, promo_[0][pos[way]]);
                break;
              }
              case Family::Plru:
                // Promote-to-MRU == setPosition(way, 0).
                tree_[set] = (tree_[set] & ~clearMask_[way]) |
                             deposit_[way * assoc_];
                break;
              case Family::TreeIpv: {
                const unsigned v = ipvIndexFor(set);
                const unsigned i = treePositionOf(tree_[set], way);
                tree_[set] =
                    (tree_[set] & ~clearMask_[way]) |
                    promoDeposit_[(v * assoc_ + way) * assoc_ + i];
                break;
              }
            }
        }
        return step;
    }

    // Miss.
    counters_.demandMisses += demand;
    if (duel_ && demand) {
        const int owner = owners_[set];
        if (owner != LeaderSets::kFollower) {
            GIPPR_DCHECK(mode_ == DuelMode::Live);
            ++leaderMisses_[static_cast<unsigned>(owner)];
            selector_.recordMiss(static_cast<unsigned>(owner));
            winner_ = selector_.winner();
        }
    }

    // Fill: first invalid way in way order, else the policy victim.
    const uint64_t free = ~valid & wayMask_;
    unsigned way;
    if (free != 0) {
        way = static_cast<unsigned>(countTrailingZeros(free));
    } else {
        way = family_ == Family::Recency
                  ? recencyVictim(&pos_[base])
                  : (!victimLut_.empty()
                         ? victimLut_[tree_[set]]
                         : packedFindPlru(tree_[set], assoc_));
        ++counters_.evictions;
        step.evicted = true;
        step.evictedTag = tags_[base + way];
        step.evictedDirty = (dirty_[set] >> way) & 1;
        counters_.writebacks += step.evictedDirty;
    }

    tags_[base + way] = tag;
    sig_[base + way] = static_cast<uint8_t>(tag);
    valid_[set] = valid | (uint64_t{1} << way);
    if (type != AccessType::Load)
        dirty_[set] |= uint64_t{1} << way;
    else
        dirty_[set] &= ~(uint64_t{1} << way);
    step.way = way;

    // Insertion.
    switch (family_) {
      case Family::Recency: {
        // GiplrPolicy::onInsert: normalize through the LRU position,
        // then move to V[k] (identical to LruPolicy's direct
        // moveTo(way, 0) when the vector is all-zero).
        uint8_t *pos = &pos_[base];
        moveTo(pos, way, assoc_ - 1);
        moveTo(pos, way, insert_[0]);
        break;
      }
      case Family::Plru:
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     deposit_[way * assoc_];
        break;
      case Family::TreeIpv: {
        const unsigned v = ipvIndexFor(set);
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     insertDeposit_[v * assoc_ + way];
        break;
      }
    }
    return step;
}

inline SoaCacheModel::Step
SoaCacheModel::accessAddr(uint64_t byte_addr, AccessType type)
{
    return access(setIndex(byte_addr), tagOf(byte_addr), type);
}

} // namespace gippr::fastpath

#endif // GIPPR_SIM_FASTPATH_SOA_CACHE_HH_
