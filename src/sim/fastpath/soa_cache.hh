/**
 * @file
 * Structure-of-arrays cache model for the fast replay backend.
 *
 * The scalar simulator (SetAssocCache + a ReplacementPolicy object)
 * pays a virtual dispatch and several pointer chases per access.  The
 * fast backend packs the same state into flat arrays — one tag word
 * per line, one valid/dirty bitmask per set, one uint64 of PseudoLRU
 * tree bits per set, one byte of recency position per line — and
 * specializes the per-access transition on the policy family, so a
 * whole trace replays branch-light over contiguous memory.
 *
 * The packed PLRU kernels below are bit-for-bit transcriptions of
 * PlruTree's four algorithms (paper Figures 5/6/7/9) onto a single
 * word of heap-ordered node bits; tests/test_fastpath_equiv.cc checks
 * them exhaustively against PlruTree over every state for ways up to
 * 16.  SoaCacheModel then mirrors SetAssocCache::access event order
 * exactly (invalid-way fill before victim selection, writeback
 * conventions, demand-only duel updates), which is what makes the
 * scalar/fast equivalence guarantee provable by lock-step replay.
 */

#ifndef GIPPR_SIM_FASTPATH_SOA_CACHE_HH_
#define GIPPR_SIM_FASTPATH_SOA_CACHE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

/**
 * The branch-free 16-way batch kernel uses BMI2 pext through a
 * per-function target attribute, so the library builds with baseline
 * flags and the replay engine selects the kernel at run time
 * (__builtin_cpu_supports).  Only compiled where the attribute and
 * the intrinsics exist.  The 32-wide kernel extends the same scheme
 * to AVX2: one VPCMPEQB resolves the signature scans of TWO genomes'
 * 16-byte rows (a 32-lane compare), so a genome pair shares each
 * decoded record and the loop carries two independent dependency
 * chains — compiled under the same guard, dispatched at run time.
 *
 * -DGIPPR_PORTABLE_KERNELS compiles both batch kernels out even on
 * x86-64, so CI can prove the portable scalar path (the permanent
 * fallback for hosts without BMI2/AVX2) stays bit-identical without
 * needing such a machine.
 */
#if defined(__GNUC__) && defined(__x86_64__) && defined(__SSE2__) && \
    !defined(GIPPR_PORTABLE_KERNELS)
#define GIPPR_BATCH_KERNEL16 1
#define GIPPR_BATCH_KERNEL32 1
#include <immintrin.h>
#endif

#include "cache/replacement.hh"
#include "policies/set_dueling.hh"
#include "sim/fastpath/replay_spec.hh"
#include "util/bitops.hh"
#include "util/check.hh"
#include "util/hot.hh"

namespace gippr::fastpath
{

/** PLRU victim: walk the packed bits from the root (Fig. 5). */
GIPPR_HOT inline unsigned
packedFindPlru(uint64_t word, unsigned ways)
{
    unsigned p = 0;
    while (p < ways - 1)
        p = ((word >> p) & 1) ? 2 * p + 2 : 2 * p + 1;
    return p - (ways - 1);
}

/** Recency-stack position of @p way in the packed tree (Fig. 7). */
GIPPR_HOT inline unsigned
packedPosition(uint64_t word, unsigned ways, unsigned way)
{
    unsigned x = 0;
    unsigned i = 0;
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const unsigned bit = (word >> par) & 1;
        // Right children (even heap index) contribute the parent's
        // bit, left children its complement.
        x |= (q % 2 == 0 ? bit : bit ^ 1u) << i;
        q = par;
        ++i;
    }
    return x;
}

/** Write path bits so @p way occupies position @p x (Fig. 9). */
GIPPR_HOT inline uint64_t
packedSetPosition(uint64_t word, unsigned ways, unsigned way, unsigned x)
{
    unsigned i = 0;
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const uint64_t bit = (x >> i) & 1;
        const uint64_t value = q % 2 == 0 ? bit : bit ^ 1u;
        word = (word & ~(uint64_t{1} << par)) | (value << par);
        q = par;
        ++i;
    }
    return word;
}

/** Classic PLRU promotion: point every path bit away (Fig. 6). */
GIPPR_HOT inline uint64_t
packedPromoteMru(uint64_t word, unsigned ways, unsigned way)
{
    unsigned q = ways - 1 + way;
    while (q != 0) {
        const unsigned par = (q - 1) / 2;
        const uint64_t value = q % 2 == 0 ? 0 : 1;
        word = (word & ~(uint64_t{1} << par)) | (value << par);
        q = par;
    }
    return word;
}

/**
 * Per-way tree tables for one pow2 associativity.
 *
 * Everything here depends only on the geometry, never on the policy
 * vectors or the cache contents, so the tables are built once per
 * process and shared read-only between models (forAssoc memoizes one
 * instance per associativity).  That matters for batched replay,
 * which constructs one model per genome per trace: the 16-way victim
 * LUT alone tabulates 2^15 tree states, and rebuilding it G times per
 * generation would swamp the replay itself.
 *
 * A leaf's path through the tree is fixed, so setPosition(word, way,
 * x) == (word & ~clearMask[way]) | deposit[way * assoc + x], and
 * position() is a gather of the path bits (pathNodes) xor the
 * left-child parity (parityXor).  This turns the per-access log(ways)
 * loops into a handful of independent instructions.
 */
struct TreeTables
{
    unsigned depth = 0;               ///< log2(assoc)
    std::vector<uint8_t> pathNodes;   ///< assoc * depth node indices
    std::vector<uint8_t> parityXor;   ///< assoc left-child parities
    std::vector<uint64_t> clearMask;  ///< assoc path-bit masks
    std::vector<uint64_t> deposit;    ///< assoc * assoc position bits
    /** Tree word -> PLRU victim, tabulated when the word fits 15
     *  bits (assoc <= 16); wider trees keep the root walk. */
    std::vector<uint8_t> victimLut;

    /** Shared tables for @p assoc (pow2, 2..64), built on first use. */
    static std::shared_ptr<const TreeTables> forAssoc(unsigned assoc);
};

/**
 * Packed replica of SetAssocCache + one of the seven core policies.
 *
 * The model covers every set of the geometry but is oblivious to
 * which accesses it is fed; the replay engine shards a trace by
 * feeding each model only its slice of the set space.  For Dgippr
 * specs the duel winner is either maintained live (the model owns the
 * tournament selector and updates it on leader misses) or driven
 * externally via setWinner() from a pre-recorded winner timeline —
 * the mechanism that makes follower-set shards independent of each
 * other.
 */
class SoaCacheModel
{
  public:
    /** How Dgippr follower sets learn the duel winner. */
    enum class DuelMode
    {
        Live,     ///< model updates the selector on leader misses
        Timeline, ///< caller injects the winner via setWinner()
    };

    SoaCacheModel(const ReplaySpec &spec, const CacheConfig &config,
                  DuelMode mode = DuelMode::Live);

    /** True when the fast backend can pack this spec/geometry. */
    static bool supports(const ReplaySpec &spec,
                         const CacheConfig &config);

    /** Outcome of one access (mirror of AccessResult). */
    struct Step
    {
        bool hit = false;
        unsigned way = 0;
        bool evicted = false;
        bool evictedDirty = false;
        uint64_t evictedTag = 0;
    };

    /** Perform one access (defined inline: the replay hot path). */
    GIPPR_HOT Step access(uint64_t set, uint64_t tag, AccessType type);

    /**
     * Batched hot path: the same transition as access() — the
     * equivalence tests enforce bit-identical results — but
     * specialized for the batch kernel's loop.  The stream-determined
     * counters (accesses, demandAccesses) are left to the caller,
     * which accumulates them once per chunk via addStreamCounters().
     * access() itself is kept on the straightforward reference path:
     * per-genome replay is the oracle the batched kernel is validated
     * against.
     */
    GIPPR_HOT Step accessBatched(uint64_t set, uint64_t tag,
                                 AccessType type)
    {
        return accessImpl<true>(set, tag, type);
    }

#if GIPPR_BATCH_KERNEL16
    /**
     * Branch-free variant of accessBatched() for 16-way geometries on
     * BMI2 hardware (engine-internal; dispatched per chunk).  The
     * hit/miss outcome is genome-private and effectively random, so
     * the generic path eats a mispredict on most accesses; here the
     * outcome is turned into data flow instead: the victim is
     * computed unconditionally, the fill stores always run (on a hit
     * they rewrite the values already present), and the replacement
     * update selects between promotion, insertion, and identity
     * deposits.  Tree-IPV promotions read the fused path-bit LUT
     * (fusedPromo_) via pext in place of the reference position
     * gather.  Bit-identical to access() by the same argument as the
     * generic batched path; tests/test_batched_equiv.cc enforces it.
     */
    GIPPR_HOT
    __attribute__((target("bmi2"), always_inline)) inline Step
    accessBatched16(uint64_t set, uint64_t tag, AccessType type);
#endif

#if GIPPR_BATCH_KERNEL32
    /**
     * 32-lane paired variant of accessBatched16() for AVX2 + BMI2
     * hardware (engine-internal; dispatched per chunk): one 256-bit
     * VPCMPEQB compares @p a's and @p b's signature rows for @p set
     * against the broadcast tag byte — two 16-byte lanes, 32 byte
     * lanes total — and each genome then finishes through the same
     * branch-free tail as the 16-way kernel (accessResolved16).  The
     * two models are independent, so the tails form two overlapping
     * dependency chains and the decoded record is read once for the
     * pair, halving the chunk-buffer re-stream traffic that bounds
     * wide batched replay.  Bit-identical per model to access();
     * tests/test_batched_equiv.cc enforces it for every kernel
     * width.
     */
    GIPPR_HOT
    __attribute__((target("avx2,bmi2"), always_inline)) static inline
    void
    accessBatched32(SoaCacheModel &a, SoaCacheModel &b, uint64_t set,
                    uint64_t tag, AccessType type, Step &step_a,
                    Step &step_b);
#endif

    /** Credit @p accesses records (@p demand of them demand) to the
     *  counters; pairs with accessBatched(). */
    GIPPR_HOT void addStreamCounters(uint64_t accesses, uint64_t demand)
    {
        counters_.accesses += accesses;
        counters_.demandAccesses += demand;
    }

    /** Credit outcome counters accumulated in the chunk loop's
     *  registers; pairs with accessBatched16(), which leaves them to
     *  the caller. */
    GIPPR_HOT void addOutcomeCounters(uint64_t hits,
                            uint64_t demand_misses,
                            uint64_t evictions, uint64_t writebacks)
    {
        counters_.hits += hits;
        counters_.demandMisses += demand_misses;
        counters_.evictions += evictions;
        counters_.writebacks += writebacks;
    }

    /** Access by byte address (set/tag split per the geometry). */
    GIPPR_HOT Step accessAddr(uint64_t byte_addr, AccessType type);

    /**
     * Snapshot the counters: stats().measured reports everything
     * accumulated after the last call (the warmup convention).
     * Never calling it leaves measured == total.
     */
    void markWarmup() { warmupBase_ = counters_; }

    /**
     * Hint that @p set is about to be accessed.  Replay loops call
     * this a few records ahead of the access cursor: sets are
     * effectively random, so the tag/state rows miss L1 otherwise and
     * the lookahead hides that latency behind the in-flight accesses.
     */
    GIPPR_HOT void prefetchSet(uint64_t set) const
    {
        const uint64_t base = set * assoc_;
        __builtin_prefetch(&sig_[base]);
        __builtin_prefetch(&valid_[set]);
        // The tag row is the access path's only other dependent load
        // (signature candidates verify against it); a 16-way row
        // spans two lines.
        __builtin_prefetch(&tags_[base]);
        if (assoc_ > 8)
            __builtin_prefetch(&tags_[base + 8]);
        if (family_ == Family::Recency)
            __builtin_prefetch(&pos_[base]);
        else
            __builtin_prefetch(&tree_[set]);
    }

    /** Timeline mode: winner for subsequent follower accesses. */
    void setWinner(unsigned w);

    /** Current follower winner (Dgippr). */
    unsigned winner() const { return winner_; }

    /** True for Dgippr models (global duel state couples the sets,
     *  so replay order across sets is load-bearing). */
    bool isDuel() const { return duel_; }

    /** Leading vector of @p set, or LeaderSets::kFollower. */
    int leaderOwner(uint64_t set) const;

    /**
     * Statistics so far; for live Dgippr models the duel fields
     * (finalWinner, duelCounters, leaderMisses) are synced from the
     * selector.
     */
    ReplayStats stats() const;

    uint64_t sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }

    /** Set index / tag of a byte address (replay plumbing). */
    uint64_t setIndex(uint64_t byte_addr) const;
    uint64_t tagOf(uint64_t byte_addr) const;

    /** Recency positions of every way in @p set (equivalence probe). */
    std::vector<unsigned> positionsOf(uint64_t set) const;

    bool validAt(uint64_t set, unsigned way) const;
    bool dirtyAt(uint64_t set, unsigned way) const;

    /** Full shard-state rendering of one set (divergence dumps). */
    std::string dumpSet(uint64_t set) const;

  private:
    /** Transition family the access path switches on. */
    enum class Family : uint8_t
    {
        Recency, ///< Lru / Lip / Giplr: byte positions + moveTo
        Plru,    ///< classic tree: promote-to-MRU
        TreeIpv, ///< Gippr / Dgippr: packed tree + IPV positions
    };

    unsigned ipvIndexFor(uint64_t set) const;
    template <bool Batched>
    Step accessImpl(uint64_t set, uint64_t tag, AccessType type);
    void moveTo(uint8_t *pos, unsigned way, unsigned to);
#if GIPPR_BATCH_KERNEL16
    void moveTo16(uint8_t *pos, unsigned way, unsigned to);
    /** Branch-free tail shared by the 16- and 32-wide kernels:
     *  everything after the signature scan, taking the raw 16-bit
     *  signature-match mask (not yet masked with valid). */
    GIPPR_HOT
    __attribute__((target("bmi2"), always_inline)) inline Step
    accessResolved16(uint64_t set, uint64_t tag, AccessType type,
                     unsigned sig_match);
#endif
    unsigned recencyVictim(const uint8_t *pos) const;
    int findWay(uint64_t base, uint64_t tag, uint64_t valid) const;
    unsigned treePositionOf(uint64_t word, unsigned way) const;

    // Geometry.
    uint64_t sets_;
    unsigned assoc_;
    unsigned blockShift_;
    unsigned setShift_;
    uint64_t wayMask_;

    // Policy.
    Family family_;
    bool duel_ = false;
    DuelMode mode_;
    /** promo_[v][i] = new position on a hit at position i; one row
     *  per candidate vector. */
    std::vector<std::vector<uint8_t>> promo_;
    /** insert_[v] = insertion position of vector v. */
    std::vector<uint8_t> insert_;

    // Packed per-set / per-line state.
    std::vector<uint64_t> tags_;  // sets * assoc
    std::vector<uint8_t> sig_;    // low tag byte per line (scan filter)
    std::vector<uint64_t> valid_; // bitmask per set
    std::vector<uint64_t> dirty_; // bitmask per set
    std::vector<uint64_t> tree_;  // PLRU node bits per set
    std::vector<uint8_t> pos_;    // sets * assoc (recency family)

    /**
     * Shared per-way tree tables (pow2-way families); see TreeTables.
     * The raw pointers alias tables_'s arrays so the access path pays
     * no shared_ptr indirection — victimLut_ is null when the word is
     * too wide to tabulate (assoc > 16).
     */
    std::shared_ptr<const TreeTables> tables_;
    unsigned depth_ = 0;
    const uint8_t *pathNodes_ = nullptr;  // assoc * depth
    const uint8_t *parityXor_ = nullptr;  // assoc
    const uint64_t *clearMask_ = nullptr; // assoc
    const uint64_t *deposit_ = nullptr;   // assoc * assoc
    const uint8_t *victimLut_ = nullptr;  // 2^(assoc-1) entries
    /** Fused promotion / insertion deposits for the TreeIpv family:
     *  promoDeposit_[(v * assoc + way) * assoc + i] =
     *  deposit_[way * assoc + promo_[v][i]], and insertDeposit_[v *
     *  assoc + way] likewise through insert_[v] — one load on the
     *  hit / fill path instead of two dependent ones. */
    std::vector<uint64_t> promoDeposit_;
    std::vector<uint64_t> insertDeposit_;
    /**
     * Fully fused hit-promotion deposits for the batched path: a
     * way's stack position depends only on its own path bits, so
     * extracting them (pext against clearMask_) yields a dense
     * 2^depth index and fusedPromo_[((v * assoc + way) << depth) +
     * pathBits] is the promotion deposit in ONE L1-resident load —
     * vecs * assoc * 2^depth words (2KB for one 16-way vector) —
     * replacing the reference path's serial position gather plus
     * promoDeposit_ load.
     */
    std::vector<uint64_t> fusedPromo_;

    // Set dueling (Dgippr only).
    LeaderSets leaders_;
    /** Flat copy of leaders_'s owner table (duel models index this
     *  on every access; the class accessor is an outlined call). */
    std::vector<int8_t> owners_;
    TournamentSelector selector_;
    unsigned winner_ = 0;
    std::vector<uint64_t> leaderMisses_;

    /**
     * Whole-trace counters; stats() derives misses (accesses - hits)
     * and the measured bank (counters - warmupBase).  Keeping one
     * bank and deriving the rest halves the hot path's counter work.
     */
    CounterBank counters_;
    CounterBank warmupBase_;
};

inline unsigned
SoaCacheModel::ipvIndexFor(uint64_t set) const
{
    if (!duel_)
        return 0;
    const int owner = owners_[set];
    return owner != LeaderSets::kFollower ? static_cast<unsigned>(owner)
                                          : winner_;
}

inline void
SoaCacheModel::moveTo(uint8_t *pos, unsigned way, unsigned to)
{
    // RecencyStack semantics: slide the interval between the old and
    // new positions by one.  Positions are < 64, so signed byte
    // compares are safe in the vector path.
    const unsigned from = pos[way];
#if defined(__SSE2__)
    if (assoc_ == 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(pos));
        __m128i out = v;
        if (to < from) {
            // pos += (pos >= to) & (pos < from): the mask bytes are
            // -1, so subtracting the mask adds one.
            const __m128i m = _mm_and_si128(
                _mm_cmpgt_epi8(
                    v, _mm_set1_epi8(static_cast<char>(
                           static_cast<int>(to) - 1))),
                _mm_cmplt_epi8(v, _mm_set1_epi8(
                                      static_cast<char>(from))));
            out = _mm_sub_epi8(v, m);
        } else if (to > from) {
            // pos -= (pos > from) & (pos <= to).
            const __m128i m = _mm_and_si128(
                _mm_cmpgt_epi8(v, _mm_set1_epi8(
                                      static_cast<char>(from))),
                _mm_cmplt_epi8(
                    v, _mm_set1_epi8(static_cast<char>(
                           static_cast<int>(to) + 1))));
            out = _mm_add_epi8(v, m);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(pos), out);
        pos[way] = static_cast<uint8_t>(to);
        return;
    }
#endif
    if (to < from) {
        for (unsigned w = 0; w < assoc_; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] + ((pos[w] >= to) & (pos[w] < from)));
    } else if (to > from) {
        for (unsigned w = 0; w < assoc_; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] - ((pos[w] > from) & (pos[w] <= to)));
    }
    pos[way] = static_cast<uint8_t>(to);
}

#if GIPPR_BATCH_KERNEL16
inline void
SoaCacheModel::moveTo16(uint8_t *pos, unsigned way, unsigned to)
{
    // Branch-free moveTo for 16 ways: the increment region [to, from)
    // and the decrement region (from, to] cannot both be non-empty,
    // so applying both masks unconditionally is the exact shift for
    // either direction (and a no-op when to == from).
    const unsigned from = pos[way];
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(pos));
    const __m128i inc = _mm_and_si128(
        _mm_cmpgt_epi8(v, _mm_set1_epi8(static_cast<char>(
                              static_cast<int>(to) - 1))),
        _mm_cmplt_epi8(v,
                       _mm_set1_epi8(static_cast<char>(from))));
    const __m128i dec = _mm_and_si128(
        _mm_cmpgt_epi8(v, _mm_set1_epi8(static_cast<char>(from))),
        _mm_cmplt_epi8(v, _mm_set1_epi8(static_cast<char>(
                              static_cast<int>(to) + 1))));
    // Subtracting a -1 mask adds one; adding it subtracts one.
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pos),
                     _mm_add_epi8(_mm_sub_epi8(v, inc), dec));
    pos[way] = static_cast<uint8_t>(to);
}
#endif

inline unsigned
SoaCacheModel::recencyVictim(const uint8_t *pos) const
{
    const uint8_t last = static_cast<uint8_t>(assoc_ - 1);
#if defined(__SSE2__)
    if (assoc_ == 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(pos));
        const unsigned match = static_cast<unsigned>(_mm_movemask_epi8(
            _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(last)))));
        GIPPR_DCHECK(match != 0);
        return static_cast<unsigned>(countTrailingZeros(match));
    }
#endif
    uint64_t match = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        match |= uint64_t{pos[w] == last} << w;
    GIPPR_DCHECK(match != 0); // positions are always a permutation
    return static_cast<unsigned>(countTrailingZeros(match));
}

inline int
SoaCacheModel::findWay(uint64_t base, uint64_t tag,
                       uint64_t valid) const
{
#if defined(__SSE2__)
    if (assoc_ == 16) {
        // One-byte signatures filter the row in a single compare;
        // candidates (usually exactly the hit way) verify against the
        // full tag.  Valid tags are unique per set, so the first
        // verified candidate is THE match.
        const __m128i row = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(&sig_[base]));
        const __m128i probe = _mm_set1_epi8(static_cast<char>(tag));
        unsigned cand = static_cast<unsigned>(_mm_movemask_epi8(
                            _mm_cmpeq_epi8(row, probe))) &
                        static_cast<unsigned>(valid);
        while (cand != 0) {
            const unsigned w =
                static_cast<unsigned>(countTrailingZeros(cand));
            if (tags_[base + w] == tag)
                return static_cast<int>(w);
            cand &= cand - 1;
        }
        return -1;
    }
#endif
    const uint64_t *tags = &tags_[base];
    uint64_t match = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        match |= uint64_t{tags[w] == tag} << w;
    match &= valid;
    return match != 0 ? static_cast<int>(countTrailingZeros(match))
                      : -1;
}

inline unsigned
SoaCacheModel::treePositionOf(uint64_t word, unsigned way) const
{
    // Gather the fixed path bits for this leaf and flip the
    // left-child ones (packedPosition without the loop-carried walk).
    // The switch unrolls the gather: the shifts are independent, so
    // they issue in parallel instead of a loop-carried OR chain.
    const uint8_t *nodes = &pathNodes_[way * depth_];
    uint64_t x = 0;
    switch (depth_) {
      case 6:
        x |= ((word >> nodes[5]) & 1) << 5;
        [[fallthrough]];
      case 5:
        x |= ((word >> nodes[4]) & 1) << 4;
        [[fallthrough]];
      case 4:
        x |= ((word >> nodes[3]) & 1) << 3;
        [[fallthrough]];
      case 3:
        x |= ((word >> nodes[2]) & 1) << 2;
        [[fallthrough]];
      case 2:
        x |= ((word >> nodes[1]) & 1) << 1;
        [[fallthrough]];
      default:
        x |= (word >> nodes[0]) & 1;
    }
    return static_cast<unsigned>(x) ^ parityXor_[way];
}

template <bool Batched>
inline SoaCacheModel::Step
SoaCacheModel::accessImpl(uint64_t set, uint64_t tag, AccessType type)
{
    GIPPR_DCHECK(set < sets_);
    const bool demand = type != AccessType::Writeback;
    const uint64_t base = set * assoc_;
    const uint64_t valid = valid_[set];

    if constexpr (!Batched) {
        ++counters_.accesses;
        counters_.demandAccesses += demand;
    }

    Step step;
    const int hit_way = findWay(base, tag, valid);
    if (hit_way >= 0) {
        const unsigned way = static_cast<unsigned>(hit_way);
        ++counters_.hits;
        step.hit = true;
        step.way = way;
        if (type != AccessType::Load)
            dirty_[set] |= uint64_t{1} << way;
        if (demand) {
            // Promotion (writeback hits never touch recency state).
            switch (family_) {
              case Family::Recency: {
                uint8_t *pos = &pos_[base];
                moveTo(pos, way, promo_[0][pos[way]]);
                break;
              }
              case Family::Plru:
                // Promote-to-MRU == setPosition(way, 0).
                tree_[set] = (tree_[set] & ~clearMask_[way]) |
                             deposit_[way * assoc_];
                break;
              case Family::TreeIpv: {
                const unsigned v = ipvIndexFor(set);
                const unsigned i = treePositionOf(tree_[set], way);
                tree_[set] =
                    (tree_[set] & ~clearMask_[way]) |
                    promoDeposit_[(v * assoc_ + way) * assoc_ + i];
                break;
              }
            }
        }
        return step;
    }

    // Miss.
    counters_.demandMisses += demand;
    if (duel_ && demand) {
        const int owner = owners_[set];
        if (owner != LeaderSets::kFollower) {
            GIPPR_DCHECK(mode_ == DuelMode::Live);
            ++leaderMisses_[static_cast<unsigned>(owner)];
            selector_.recordMiss(static_cast<unsigned>(owner));
            winner_ = selector_.winner();
        }
    }

    // Fill: first invalid way in way order, else the policy victim.
    const uint64_t free = ~valid & wayMask_;
    unsigned way;
    if (free != 0) {
        way = static_cast<unsigned>(countTrailingZeros(free));
    } else {
        way = family_ == Family::Recency
                  ? recencyVictim(&pos_[base])
                  : (victimLut_ != nullptr
                         ? victimLut_[tree_[set]]
                         : packedFindPlru(tree_[set], assoc_));
        ++counters_.evictions;
        step.evicted = true;
        step.evictedTag = tags_[base + way];
        step.evictedDirty = (dirty_[set] >> way) & 1;
        counters_.writebacks += step.evictedDirty;
    }

    tags_[base + way] = tag;
    sig_[base + way] = static_cast<uint8_t>(tag);
    valid_[set] = valid | (uint64_t{1} << way);
    if (type != AccessType::Load)
        dirty_[set] |= uint64_t{1} << way;
    else
        dirty_[set] &= ~(uint64_t{1} << way);
    step.way = way;

    // Insertion.
    switch (family_) {
      case Family::Recency: {
        // GiplrPolicy::onInsert: normalize through the LRU position,
        // then move to V[k] (identical to LruPolicy's direct
        // moveTo(way, 0) when the vector is all-zero).
        uint8_t *pos = &pos_[base];
        if constexpr (Batched) {
            // Removing the way from its position and reinserting it
            // at V[k] is one moveTo: composing the two shifts leaves
            // every other way's position unchanged outside
            // [min(from,k), max(from,k)], and on evictions the
            // normalize step is a no-op outright (the victim already
            // sits at the LRU position).
            moveTo(pos, way, insert_[0]);
        } else {
            moveTo(pos, way, assoc_ - 1);
            moveTo(pos, way, insert_[0]);
        }
        break;
      }
      case Family::Plru:
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     deposit_[way * assoc_];
        break;
      case Family::TreeIpv: {
        const unsigned v = ipvIndexFor(set);
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     insertDeposit_[v * assoc_ + way];
        break;
      }
    }
    return step;
}

#if GIPPR_BATCH_KERNEL16
__attribute__((target("bmi2"))) inline SoaCacheModel::Step
SoaCacheModel::accessBatched16(uint64_t set, uint64_t tag,
                               AccessType type)
{
    // Signature scan; the branch-free remainder lives in the tail
    // shared with the 32-wide paired kernel.
    const __m128i row = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(&sig_[set * 16]));
    const unsigned sig_match =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
            row, _mm_set1_epi8(static_cast<char>(tag)))));
    return accessResolved16(set, tag, type, sig_match);
}

__attribute__((target("bmi2"))) inline SoaCacheModel::Step
SoaCacheModel::accessResolved16(uint64_t set, uint64_t tag,
                                AccessType type, unsigned sig_match)
{
    GIPPR_DCHECK(set < sets_ && assoc_ == 16);
    const bool demand = type != AccessType::Writeback;
    const bool is_store = type != AccessType::Load;
    const uint64_t base = set * 16;
    const uint64_t valid = valid_[set];

    // Resolve the first candidate with flag arithmetic (tzcnt of an
    // empty mask is steered to a sentinel lane); genuine signature
    // collisions are rare enough that their verify loop stays a cold
    // branch.
    const unsigned cand = sig_match & static_cast<unsigned>(valid);
    unsigned hw =
        static_cast<unsigned>(countTrailingZeros(cand | 0x10000u)) &
        15u;
    bool hit = cand != 0 && tags_[base + hw] == tag;
    if (const unsigned rest = cand & (cand - 1);
        __builtin_expect(rest != 0 && !hit, 0)) {
        for (unsigned c = rest; c != 0; c &= c - 1) {
            const unsigned w =
                static_cast<unsigned>(countTrailingZeros(c));
            if (tags_[base + w] == tag) {
                hw = w;
                hit = true;
                break;
            }
        }
    }

    // Victim computed unconditionally (hits simply ignore it): the
    // row it reads is already resident for the update below.  Only
    // cold-set fills during warmup take the free-way branch.
    unsigned fill = family_ == Family::Recency
                        ? recencyVictim(&pos_[base])
                        : victimLut_[tree_[set]];
    const uint64_t free = ~valid & wayMask_;
    const bool full = free == 0;
    if (__builtin_expect(!full, 0))
        fill = static_cast<unsigned>(countTrailingZeros(free));
    const unsigned way = hit ? hw : fill;

    const uint64_t dirty = dirty_[set];
    const bool evict = !hit & full;
    const bool evicted_dirty = evict & ((dirty >> fill) & 1);
    const uint64_t evicted_tag = tags_[base + fill];

    // Outcome counters (hits, demandMisses, evictions, writebacks)
    // are accumulated in registers by the chunk loop from the
    // returned Step and credited via addOutcomeCounters(): four
    // read-modify-writes per access are pure overhead in a loop that
    // already returns the outcome.

    // Never taken for non-duel models (duel_ is fixed per model).
    if (duel_ && demand && !hit) {
        const int owner = owners_[set];
        if (owner != LeaderSets::kFollower) {
            GIPPR_DCHECK(mode_ == DuelMode::Live);
            ++leaderMisses_[static_cast<unsigned>(owner)];
            selector_.recordMiss(static_cast<unsigned>(owner));
            winner_ = selector_.winner();
        }
    }

    // Fill stores run unconditionally: on a hit they rewrite the
    // values already present (tags_[base + way] == tag, the valid bit
    // is set), so the stored state is unchanged.
    const uint64_t bit = uint64_t{1} << way;
    tags_[base + way] = tag;
    sig_[base + way] = static_cast<uint8_t>(tag);
    valid_[set] = valid | bit;
    const uint64_t set_bit = is_store ? bit : 0;
    const uint64_t clear_bit = (!hit & !is_store) ? bit : 0;
    dirty_[set] = (dirty & ~clear_bit) | set_bit;

    // Replacement update as selects: promotion deposit on demand
    // hits, identity on writeback hits, insertion deposit on misses.
    switch (family_) {
      case Family::Recency: {
        uint8_t *pos = &pos_[base];
        const unsigned from = pos[way];
        const unsigned to =
            hit ? (demand ? promo_[0][from] : from) : insert_[0];
        moveTo16(pos, way, to);
        break;
      }
      case Family::Plru: {
        const uint64_t t = tree_[set];
        const uint64_t cm = clearMask_[way];
        // Plru promotion and insertion are the same deposit
        // (promote-to-MRU), so only writeback hits need identity.
        const uint64_t dep =
            hit && !demand ? (t & cm) : deposit_[way * 16];
        tree_[set] = (t & ~cm) | dep;
        break;
      }
      case Family::TreeIpv: {
        const unsigned v = ipvIndexFor(set);
        const uint64_t t = tree_[set];
        const uint64_t cm = clearMask_[way];
        const uint64_t promo_dep =
            fusedPromo_[((v * 16 + way) << 4) + _pext_u64(t, cm)];
        const uint64_t ins_dep = insertDeposit_[v * 16 + way];
        const uint64_t dep =
            hit ? (demand ? promo_dep : (t & cm)) : ins_dep;
        tree_[set] = (t & ~cm) | dep;
        break;
      }
    }

    Step step;
    step.hit = hit;
    step.way = way;
    step.evicted = evict;
    step.evictedDirty = evicted_dirty;
    step.evictedTag = evict ? evicted_tag : 0;
    return step;
}
#endif

#if GIPPR_BATCH_KERNEL32
__attribute__((target("avx2,bmi2"))) inline void
SoaCacheModel::accessBatched32(SoaCacheModel &a, SoaCacheModel &b,
                               uint64_t set, uint64_t tag,
                               AccessType type, Step &step_a,
                               Step &step_b)
{
    GIPPR_DCHECK(a.assoc_ == 16 && b.assoc_ == 16);
    GIPPR_DCHECK(a.sets_ == b.sets_);
    // One 256-bit compare scans both genomes' signature rows: lane 0
    // (bits 0..15 of the movemask) is a's row, lane 1 is b's.
    const uint64_t base = set * 16;
    const __m256i rows = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(&b.sig_[base])),
        _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(&a.sig_[base])));
    const unsigned match =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
            rows, _mm256_set1_epi8(static_cast<char>(tag)))));
    // The tails are independent dependency chains; back-to-back calls
    // overlap in the out-of-order window.
    step_a = a.accessResolved16(set, tag, type, match & 0xffffu);
    step_b = b.accessResolved16(set, tag, type, match >> 16);
}
#endif

inline SoaCacheModel::Step
SoaCacheModel::access(uint64_t set, uint64_t tag, AccessType type)
{
    return accessImpl<false>(set, tag, type);
}

inline SoaCacheModel::Step
SoaCacheModel::accessAddr(uint64_t byte_addr, AccessType type)
{
    return access(setIndex(byte_addr), tagOf(byte_addr), type);
}

} // namespace gippr::fastpath

#endif // GIPPR_SIM_FASTPATH_SOA_CACHE_HH_
