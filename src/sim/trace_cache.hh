/**
 * @file
 * Cross-repetition cache of filtered LLC traces.
 *
 * Materializing a synthetic workload and filtering it through L1+L2
 * dominates the wall-clock of every miss experiment, and benches that
 * run several experiments over the same suite (ablation loops,
 * before/after comparisons) used to redo that work per repetition.
 * LlcTraceCache memoizes the demand-only LLC trace per (workload
 * spec, L1/L2 filter geometry) so repeated runMissExperiment calls
 * replay from memory.  Keys capture every input that shapes the
 * filtered trace — workload name, per-simpoint seeds/lengths/weights
 * and the full hierarchy geometry — so benches that deliberately vary
 * the suite (seed ablations) never alias entries.
 *
 * The cache is thread-compatible with the experiment harness's worker
 * pool: lookups lock a mutex, trace construction runs outside it, and
 * entries are immutable once published.
 */

#ifndef GIPPR_SIM_TRACE_CACHE_HH_
#define GIPPR_SIM_TRACE_CACHE_HH_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "telemetry/timer.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace gippr
{

/** Memoizes demand-only LLC traces per workload spec. */
class LlcTraceCache
{
  public:
    /** One simpoint's filtered trace plus its combining metadata. */
    struct Entry
    {
        /** Demand-only LLC stream (writebacks stripped). */
        std::shared_ptr<const Trace> demandTrace;
        /** Instructions of the originating CPU segment. */
        uint64_t instructions = 0;
        /** SimPoint weight. */
        double weight = 1.0;
    };
    using Entries = std::vector<Entry>;

    /**
     * Entries for @p spec filtered through @p hier's L1+L2 (true LRU,
     * as everywhere), building and publishing them on first use.
     * @p timings, when non-null, receives the "materialize" and
     * "llc_filter" phases on cache misses (hits cost neither).
     */
    std::shared_ptr<const Entries> get(const WorkloadSpec &spec,
                                       const HierarchyConfig &hier,
                                       telemetry::PhaseTimings *timings);

    /** Lookup counters (test / diagnostics aid). */
    uint64_t hits() const;
    uint64_t misses() const;

  private:
    static std::string keyOf(const WorkloadSpec &spec,
                             const HierarchyConfig &hier);

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<const Entries>> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace gippr

#endif // GIPPR_SIM_TRACE_CACHE_HH_
