/**
 * @file
 * Experiment harness implementation.
 */

#include "sim/experiment.hh"

#include <algorithm>

#include "cache/replay.hh"
#include "policies/belady.hh"
#include "util/check.hh"
#include "util/log.hh"
#include "util/parallel.hh"
#include "util/stats.hh"

namespace gippr
{

namespace
{

/**
 * Mirror a fast-backend replay into the registry the same way a
 * telemetry-attached SetAssocCache (and DgipprPolicy) would: live
 * counters cover the whole trace, warmup included, and the duel
 * winner gauge holds the final winner.
 */
void
mirrorTelemetry(telemetry::MetricRegistry &registry,
                const std::string &prefix,
                const fastpath::ReplayStats &stats)
{
    registry.counter(prefix + ".hits").increment(stats.total.hits);
    registry.counter(prefix + ".demand_misses")
        .increment(stats.total.demandMisses);
    registry.counter(prefix + ".bypasses").increment(0);
    registry.counter(prefix + ".evictions")
        .increment(stats.total.evictions);
    registry.counter(prefix + ".writebacks")
        .increment(stats.total.writebacks);
    for (size_t i = 0; i < stats.leaderMisses.size(); ++i)
        registry
            .counter(prefix + ".duel.leader_misses." +
                     std::to_string(i))
            .increment(stats.leaderMisses[i]);
    if (!stats.leaderMisses.empty())
        registry.gauge(prefix + ".duel.winner").set(stats.finalWinner);
}

/** Miss metrics for one workload under a policy list. */
WorkloadRow
missRowFor(const WorkloadSpec &spec,
           const std::vector<PolicyDef> &policies,
           const ExperimentConfig &config)
{
    const HierarchyConfig &hier = config.system.hier;
    const fastpath::ReplayEngine &engine =
        config.replayEngine ? *config.replayEngine
                            : fastpath::defaultReplayEngine();

    // Demand-only streams: the trace-driven miss simulator (like the
    // paper's) compares policies and MIN on an identical reference
    // string; see demandOnlyTrace().  A shared traceCache memoizes
    // them across experiments; the local fallback runs the identical
    // build path once.
    LlcTraceCache local_cache;
    LlcTraceCache &traces =
        config.traceCache ? *config.traceCache : local_cache;
    std::shared_ptr<const LlcTraceCache::Entries> entries =
        traces.get(spec, hier, config.timings);

    WorkloadRow row;
    row.workload = spec.name;

    // Per-policy MPKI per simpoint, then the weighted combine.
    size_t columns = policies.size() + (config.includeMin ? 1 : 0);
    std::vector<std::vector<double>> per_simpoint(columns);
    std::vector<double> weights;
    weights.reserve(entries->size());

    for (const LlcTraceCache::Entry &entry : *entries) {
        const Trace &llc_trace = *entry.demandTrace;
        weights.push_back(entry.weight);
        size_t warmup = static_cast<size_t>(
            static_cast<double>(llc_trace.size()) *
            config.system.warmupFraction);
        // Instructions in the measured region of the CPU segment.
        uint64_t inst = static_cast<uint64_t>(
            static_cast<double>(entry.instructions) *
            (1.0 - config.system.warmupFraction));
        if (inst == 0)
            inst = 1;

        telemetry::ScopedTimer replay_timer(config.timings, "replay");
        for (size_t p = 0; p < policies.size(); ++p) {
            uint64_t demand_misses = 0;
            if (policies[p].fastSpec) {
                fastpath::ReplayStats stats =
                    engine.replay(*policies[p].fastSpec, hier.llc,
                                  llc_trace, warmup);
                demand_misses = stats.measured.demandMisses;
                if (config.registry)
                    mirrorTelemetry(*config.registry,
                                    "llc." + policies[p].name, stats);
            } else {
                SetAssocCache cache(hier.llc,
                                    policies[p].make(hier.llc));
                if (config.registry)
                    cache.attachTelemetry(*config.registry,
                                          "llc." + policies[p].name);
                replayTrace(cache, llc_trace, warmup);
                demand_misses = cache.stats().demandMisses;
            }
            per_simpoint[p].push_back(
                1000.0 * static_cast<double>(demand_misses) /
                static_cast<double>(inst));
        }
        if (config.includeMin) {
            uint64_t min_misses =
                runMinMisses(hier.llc, llc_trace, warmup);
            per_simpoint[policies.size()].push_back(
                1000.0 * static_cast<double>(min_misses) /
                static_cast<double>(inst));
        }
    }

    row.values.reserve(columns);
    for (size_t c = 0; c < columns; ++c)
        row.values.push_back(weightedMean(per_simpoint[c], weights));
    return row;
}

/** IPC metrics for one workload under a policy list. */
WorkloadRow
perfRowFor(const WorkloadSpec &spec,
           const std::vector<PolicyDef> &policies,
           const ExperimentConfig &config)
{
    telemetry::ScopedTimer materialize_timer(config.timings,
                                             "materialize");
    const Workload workload = SyntheticSuite::materialize(spec);
    materialize_timer.stop();
    WorkloadRow row;
    row.workload = spec.name;
    row.values.reserve(policies.size());
    telemetry::ScopedTimer simulate_timer(config.timings, "simulate");
    for (const PolicyDef &p : policies) {
        SimResult r = simulateWorkload(workload, p.make, config.system);
        row.values.push_back(r.ipc);
    }
    return row;
}

template <typename RowFn>
ExperimentResult
runOverSuite(const SyntheticSuite &suite,
             const std::vector<std::string> &columns,
             const ExperimentConfig &config, const std::string &metric,
             RowFn row_fn)
{
    ExperimentResult result;
    result.columns = columns;
    result.metric = metric;
    result.rows.resize(suite.specs().size());

    telemetry::ScopedTimer run_timer(
        config.timings,
        metric == "MPKI" ? "miss_experiment" : "perf_experiment");
    parallelFor(suite.specs().size(), resolveThreads(config.threads),
                [&](size_t i) {
                    result.rows[i] = row_fn(suite.specs()[i]);
                });
    return result;
}

std::vector<std::string>
columnNames(const std::vector<PolicyDef> &policies, bool include_min)
{
    std::vector<std::string> names;
    names.reserve(policies.size() + (include_min ? 1 : 0));
    for (const auto &p : policies)
        names.push_back(p.name);
    if (include_min)
        names.push_back("MIN");
    return names;
}

} // namespace

size_t
ExperimentResult::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < columns.size(); ++i)
        if (columns[i] == name)
            return i;
    fatal("no such experiment column: " + name);
}

std::vector<double>
ExperimentResult::normalized(size_t col, size_t base, bool speedup) const
{
    GIPPR_CHECK(col < columns.size());
    GIPPR_CHECK(base < columns.size());
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto &row : rows) {
        double v = row.values[col];
        double b = row.values[base];
        if (speedup) {
            // IPC ratio: candidate / baseline.
            out.push_back(b > 0.0 ? v / b : 1.0);
        } else {
            // MPKI ratio: candidate / baseline; if the baseline has
            // essentially no misses, report parity.
            out.push_back(b > 1e-9 ? v / b : 1.0);
        }
    }
    return out;
}

double
ExperimentResult::geomeanNormalized(size_t col, size_t base,
                                    bool speedup) const
{
    std::vector<double> vals = normalized(col, base, speedup);
    for (double &v : vals)
        v = std::max(v, 1e-9);
    return geomean(vals);
}

std::vector<size_t>
ExperimentResult::subsetWhere(size_t col, size_t base, bool speedup,
                              double threshold) const
{
    std::vector<double> vals = normalized(col, base, speedup);
    std::vector<size_t> out;
    for (size_t i = 0; i < vals.size(); ++i)
        if (vals[i] > threshold)
            out.push_back(i);
    return out;
}

Table
ExperimentResult::toNormalizedTable(size_t base, bool speedup,
                                    std::optional<size_t> sort_col,
                                    int precision) const
{
    std::vector<std::string> headers = {"workload"};
    for (const auto &c : columns)
        headers.push_back(c);
    Table table(std::move(headers));

    // Row order: optionally ascending by one column's normalized value.
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (sort_col) {
        std::vector<double> key = normalized(*sort_col, base, speedup);
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return key[a] < key[b]; });
    }

    std::vector<std::vector<double>> norm(columns.size());
    for (size_t c = 0; c < columns.size(); ++c)
        norm[c] = normalized(c, base, speedup);

    for (size_t i : order) {
        table.newRow().add(rows[i].workload);
        for (size_t c = 0; c < columns.size(); ++c)
            table.add(norm[c][i], precision);
    }
    table.newRow().add("geomean");
    for (size_t c = 0; c < columns.size(); ++c)
        table.add(geomeanNormalized(c, base, speedup), precision);
    return table;
}

telemetry::ResultTable
ExperimentResult::toResultTable(const std::string &title) const
{
    telemetry::ResultTable table;
    table.title = title;
    table.metric = metric;
    table.columns = columns;
    table.rows.reserve(rows.size());
    for (const WorkloadRow &row : rows)
        table.rows.push_back({row.workload, row.values});
    return table;
}

Table
ExperimentResult::toRawTable(int precision) const
{
    std::vector<std::string> headers = {"workload"};
    for (const auto &c : columns)
        headers.push_back(c + " (" + metric + ")");
    Table table(std::move(headers));
    for (const auto &row : rows) {
        table.newRow().add(row.workload);
        for (double v : row.values)
            table.add(v, precision);
    }
    return table;
}

ExperimentResult
runMissExperiment(const SyntheticSuite &suite,
                  const std::vector<PolicyDef> &policies,
                  const ExperimentConfig &config)
{
    return runOverSuite(suite,
                        columnNames(policies, config.includeMin), config,
                        "MPKI", [&](const WorkloadSpec &spec) {
                            return missRowFor(spec, policies, config);
                        });
}

ExperimentResult
runPerfExperiment(const SyntheticSuite &suite,
                  const std::vector<PolicyDef> &policies,
                  const ExperimentConfig &config)
{
    return runOverSuite(suite, columnNames(policies, false), config,
                        "IPC", [&](const WorkloadSpec &spec) {
                            return perfRowFor(spec, policies, config);
                        });
}

ExperimentResult
runPerfExperimentPerWorkload(
    const SyntheticSuite &suite, const std::vector<std::string> &columns,
    const std::function<std::vector<PolicyDef>(const std::string &)>
        &policies_for,
    const ExperimentConfig &config)
{
    return runOverSuite(suite, columns, config, "IPC",
                        [&](const WorkloadSpec &spec) {
                            return perfRowFor(spec,
                                              policies_for(spec.name),
                                              config);
                        });
}

ExperimentResult
runMissExperimentPerWorkload(
    const SyntheticSuite &suite, const std::vector<std::string> &columns,
    const std::function<std::vector<PolicyDef>(const std::string &)>
        &policies_for,
    const ExperimentConfig &config)
{
    return runOverSuite(suite, columns, config, "MPKI",
                        [&](const WorkloadSpec &spec) {
                            return missRowFor(spec,
                                              policies_for(spec.name),
                                              config);
                        });
}

} // namespace gippr
