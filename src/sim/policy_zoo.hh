/**
 * @file
 * Named policy definitions shared by benches, examples and tests.
 *
 * A PolicyDef couples a display name with a factory that builds the
 * policy for any cache geometry, so an experiment can be described as
 * a list of PolicyDefs and run against any configuration.
 */

#ifndef GIPPR_SIM_POLICY_ZOO_HH_
#define GIPPR_SIM_POLICY_ZOO_HH_

#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/ipv.hh"
#include "sim/fastpath/replay_spec.hh"

namespace gippr
{

/** A named replacement policy usable at any geometry. */
struct PolicyDef
{
    std::string name;
    PolicyFactory make;
    /**
     * Value description for the fast replay backend; policies without
     * one (RRIP family, PDP, SHiP, ...) always replay through the
     * scalar simulator.  The miss-experiment harness uses this to
     * route trace replay through the selected ReplayEngine.
     */
    std::optional<fastpath::ReplaySpec> fastSpec;
};

/** Baselines. */
PolicyDef lruDef();
PolicyDef lipDef();
PolicyDef plruDef();
PolicyDef randomDef(uint64_t seed = 1);
PolicyDef fifoDef();
PolicyDef dipDef(uint64_t seed = 1);
PolicyDef srripDef();
PolicyDef brripDef(uint64_t seed = 1);
PolicyDef drripDef(uint64_t seed = 1);
PolicyDef pdpDef();
PolicyDef shipDef();

/** IPV-driven policies.  @p name appears in result tables. */
PolicyDef giplrDef(const std::string &name, const Ipv &ipv);
PolicyDef gipprDef(const std::string &name, const Ipv &ipv);
PolicyDef dgipprDef(const std::string &name, std::vector<Ipv> ipvs,
                    unsigned leaders = 32);

/** Extensions (paper Section 7 future work). */
PolicyDef bypassGipprDef(const std::string &name, const Ipv &ipv,
                         uint64_t seed = 1);
PolicyDef rripIpvDef(const std::string &name, const Ipv &ipv);

/**
 * Parse a policy description string:
 *   "LRU", "LIP", "PLRU", "Random", "FIFO", "DIP", "SRRIP", "BRRIP",
 *   "DRRIP", "PDP", "SHiP",
 *   "GIPLR" / "GIPPR" (locally evolved 16-way vectors),
 *   "GIPLR:<v0 v1 ... vk>", "GIPPR:<...>",
 *   "DGIPPR2", "DGIPPR4", "DGIPPR8" (local vector sets).
 * Throws std::runtime_error for unknown names.
 */
PolicyDef policyByName(const std::string &text);

} // namespace gippr

#endif // GIPPR_SIM_POLICY_ZOO_HH_
