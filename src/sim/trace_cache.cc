/**
 * @file
 * LlcTraceCache implementation.
 */

#include "sim/trace_cache.hh"

#include <cstdio>

#include "cache/replay.hh"
#include "sim/system.hh"

namespace gippr
{

namespace
{

void
appendGeometry(std::string &key, const CacheConfig &config)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "|%llu/%u/%u",
                  static_cast<unsigned long long>(config.sizeBytes),
                  config.assoc, config.blockBytes);
    key += buf;
}

} // namespace

std::string
LlcTraceCache::keyOf(const WorkloadSpec &spec, const HierarchyConfig &hier)
{
    std::string key = spec.name;
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "@%llu",
                      static_cast<unsigned long long>(spec.capacityBlocks));
        key += buf;
    }
    for (const SimpointSpec &sp : spec.simpoints) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "|%llu:%llu:%.17g",
                      static_cast<unsigned long long>(sp.seed),
                      static_cast<unsigned long long>(sp.accesses),
                      sp.weight);
        key += buf;
    }
    appendGeometry(key, hier.l1);
    appendGeometry(key, hier.l2);
    appendGeometry(key, hier.llc);
    key += hier.inclusiveLlc ? "|incl" : "|nincl";
    return key;
}

std::shared_ptr<const LlcTraceCache::Entries>
LlcTraceCache::get(const WorkloadSpec &spec, const HierarchyConfig &hier,
                   telemetry::PhaseTimings *timings)
{
    const std::string key = keyOf(spec, hier);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }

    // Build outside the lock so concurrent workers make progress; a
    // rare duplicate build for the same key is benign (the first
    // published entry wins and both are equivalent).
    telemetry::ScopedTimer materialize_timer(timings, "materialize");
    const Workload workload = SyntheticSuite::materialize(spec);
    materialize_timer.stop();

    auto entries = std::make_shared<Entries>();
    entries->reserve(workload.simpoints().size());
    for (const Simpoint &sp : workload.simpoints()) {
        telemetry::ScopedTimer filter_timer(timings, "llc_filter");
        auto demand = std::make_shared<const Trace>(demandOnlyTrace(
            Hierarchy::filterToLlc(*sp.trace, hier, lruFactory(),
                                   lruFactory())));
        filter_timer.stop();
        entries->push_back(
            {std::move(demand), sp.trace->instructions(), sp.weight});
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = map_.emplace(key, std::move(entries));
    (void)inserted;
    return it->second;
}

uint64_t
LlcTraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

uint64_t
LlcTraceCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

} // namespace gippr
