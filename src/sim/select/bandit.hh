/**
 * @file
 * Bandit arm selection over shadow rewards.
 *
 * Rewards are per-epoch leader-set demand hit rates in [0, 1] — the
 * shadow sampling makes this a full-information setting (every arm is
 * scored every epoch), so the bandit machinery earns its keep on
 * non-stationarity, not on exploration: the discount (dUCB) ages out
 * stale evidence, the confidence bonus covers arms whose leader sets
 * saw little traffic, and the switch margin keeps measurement noise
 * from thrashing the chosen arm.  Garivier & Moulines' discounted UCB
 * is the template for the dUCB variant.
 *
 * Everything here is deterministic given the construction arguments
 * and the call sequence: epsilon-greedy draws from its own seeded Rng
 * and ties break toward the lowest arm index, so scalar and fastpath
 * selector runs make identical decisions.
 */

#ifndef GIPPR_SIM_SELECT_BANDIT_HH_
#define GIPPR_SIM_SELECT_BANDIT_HH_

#include <cstdint>
#include <vector>

#include "sim/select/select.hh"
#include "util/hot.hh"
#include "util/rng.hh"

namespace gippr::select
{

/** Discounted bandit state over a fixed arm count. */
class BanditSelector
{
  public:
    BanditSelector(const SelectConfig &cfg, unsigned arms);

    /**
     * Fold one epoch of rewards in: discount all state by gamma, then
     * credit each arm with @p sampled[i] != 0 its reward.  Arms whose
     * leader sets saw no demand traffic this epoch are left unsampled
     * and keep (discounted) prior evidence.
     */
    GIPPR_HOT void recordEpochRewards(const double *rewards,
                                      const uint8_t *sampled);

    /**
     * Arm for the next epoch.  The incumbent is kept unless a
     * challenger's score clears it by the switch margin (or an
     * epsilon exploration fires).
     */
    GIPPR_HOT unsigned chooseArm(unsigned incumbent);

    /** Drift response: forget all reward evidence (the exploration
     *  Rng stream is NOT rewound — determinism is call-sequence
     *  determinism, not state rollback). */
    GIPPR_HOT void resetEvidence();

    unsigned arms() const { return arms_; }

  private:
    GIPPR_HOT double scoreOf(unsigned arm) const;

    BanditKind kind_;
    unsigned arms_;
    double gamma_;
    double ucbC_;
    double epsilon_;
    double margin_;
    std::vector<double> sum_;    ///< discounted reward sums
    std::vector<double> weight_; ///< discounted sample weights
    double totalWeight_ = 0.0;
    Rng rng_;
};

} // namespace gippr::select

#endif // GIPPR_SIM_SELECT_BANDIT_HH_
