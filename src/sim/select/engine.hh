/**
 * @file
 * The selector replay engine.
 *
 * runSelect() replays one LLC trace while a bandit picks the serving
 * policy at epoch boundaries; runSelectShared() is the multicore
 * counterpart, merging per-core streams through the deterministic
 * Interleaver (same discipline as multicore::runSharedLlc) with
 * per-core warmup snapshots and per-core counter attribution.  With
 * one core, runSelectShared() and runSelect() traverse different
 * merge code but must produce bit-identical SelectResults — the
 * 1-core gate mirrored from the multicore engine.
 *
 * Backends: every reported counter is accumulated in the selector
 * loop from per-access outcomes (Step / AccessResult), never read
 * from model internals, and the routing/bandit/drift code is shared;
 * scalar/fast bit-identity therefore follows inductively from the
 * per-model equivalence the fastpath oracle already proves.  Fast is
 * used only when every arm has a fast spec the packed model supports
 * at the geometry; otherwise the whole run silently falls back to
 * scalar (resolveBackend() reports the decision).
 */

#ifndef GIPPR_SIM_SELECT_ENGINE_HH_
#define GIPPR_SIM_SELECT_ENGINE_HH_

#include <string>
#include <vector>

#include "cache/config.hh"
#include "sim/multicore/mix.hh"
#include "sim/multicore/schedule.hh"
#include "sim/select/select.hh"
#include "trace/trace.hh"

namespace gippr::select
{

/**
 * Backend that will actually serve: @p requested, downgraded to
 * Scalar unless every arm of @p library packs at @p llc.
 */
Backend resolveBackend(const std::vector<PolicyDef> &library,
                       const CacheConfig &llc, Backend requested);

/**
 * Replay @p trace under the selector; records with index >= @p warmup
 * are measured (the replayTrace convention).
 */
SelectResult runSelect(const std::vector<PolicyDef> &library,
                       const SelectConfig &cfg, const CacheConfig &llc,
                       const Trace &trace, size_t warmup,
                       Backend backend = Backend::Fast);

/**
 * Replay @p streams merged by @p schedule through one selector-run
 * shared LLC; the leading @p warmup_fraction of every core's stream
 * is warmup (the multicore convention).
 */
SelectResult runSelectShared(
    const std::vector<multicore::CoreStream> &streams,
    multicore::Schedule schedule,
    const std::vector<PolicyDef> &library, const SelectConfig &cfg,
    const CacheConfig &llc, double warmup_fraction,
    Backend backend = Backend::Fast);

/** The merged reference order @p schedule produces (oracle replays
 *  and the 1-core byte-compare gate replay this). */
Trace mergedTrace(const std::vector<multicore::CoreStream> &streams,
                  multicore::Schedule schedule);

/** One static policy's whole-run outcome (regret baseline). */
struct StaticOracleRow
{
    std::string name;
    fastpath::CounterBank measured;
};

/**
 * Replay @p trace statically under every arm of @p library (via the
 * replay engines; arms without a fast spec go through the scalar
 * simulator on either backend).
 */
std::vector<StaticOracleRow>
staticOracle(const std::vector<PolicyDef> &library,
             const CacheConfig &llc, const Trace &trace, size_t warmup,
             Backend backend = Backend::Fast);

/** Row with the fewest measured demand misses (lowest index ties). */
size_t bestStaticIndex(const std::vector<StaticOracleRow> &rows);

} // namespace gippr::select

#endif // GIPPR_SIM_SELECT_ENGINE_HH_
