/**
 * @file
 * RunReport assembly for selector runs (kind "select").
 *
 * Shared by examples/select_sim and examples/multicore_sim --select
 * so the two emit schema-identical artifacts.  The backend is
 * deliberately NOT part of the report: the CI equivalence gates
 * byte-compare fast-vs-scalar (and shared-vs-single-core) artifacts
 * with cmp, which only works if the document is a pure function of
 * the run's semantics.
 */

#ifndef GIPPR_SIM_SELECT_REPORT_HH_
#define GIPPR_SIM_SELECT_REPORT_HH_

#include <string>
#include <vector>

#include "cache/config.hh"
#include "sim/select/engine.hh"
#include "sim/select/select.hh"
#include "telemetry/report.hh"

namespace gippr::select
{

/** Everything buildSelectReport() renders. */
struct SelectReportInputs
{
    /** Report name (the producing binary). */
    std::string binary;
    /** Workload or mix display name. */
    std::string workload;
    /** Per-core workload names (size == result.coreMeasured.size()). */
    std::vector<std::string> coreWorkloads;
    SelectConfig cfg;
    CacheConfig llc;
    double warmupFraction = 1.0 / 3.0;
    SelectResult result;
    /** Static regret baselines; empty skips the oracle table. */
    std::vector<StaticOracleRow> oracle;
    /** Pin the timestamp for byte-comparable artifacts. */
    bool deterministic = false;
};

/** Assemble the kind:"select" report. */
telemetry::RunReport buildSelectReport(const SelectReportInputs &in);

} // namespace gippr::select

#endif // GIPPR_SIM_SELECT_REPORT_HH_
