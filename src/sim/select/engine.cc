/**
 * @file
 * Selector engine implementation.
 */

#include "sim/select/engine.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "cache/replay.hh"
#include "policies/set_dueling.hh"
#include "sim/fastpath/engine.hh"
#include "sim/fastpath/soa_cache.hh"
#include "sim/select/bandit.hh"
#include "sim/select/drift.hh"
#include "util/check.hh"
#include "util/hot.hh"

namespace gippr::select
{

namespace
{

/** One merged-stream record, decoded once outside the hot loop. */
struct Rec
{
    uint64_t addr = 0;
    uint64_t pc = 0;
    uint64_t set = 0;
    uint64_t tag = 0;
    uint64_t block = 0;
    uint32_t core = 0;
    AccessType type = AccessType::Load;
    uint8_t demand = 0;
};

void
appendRecs(std::vector<Rec> &out, const MemRecord &r, uint32_t core,
           const CacheConfig &llc)
{
    Rec rec;
    rec.addr = r.addr;
    rec.pc = r.pc;
    rec.set = llc.setIndex(r.addr);
    rec.tag = llc.tag(r.addr);
    rec.block = llc.blockAddr(r.addr);
    rec.core = core;
    rec.type = recordType(r);
    rec.demand = rec.type == AccessType::Writeback ? 0 : 1;
    out.push_back(rec);
}

fastpath::CounterBank
bankDiff(const fastpath::CounterBank &a, const fastpath::CounterBank &b)
{
    fastpath::CounterBank d;
    d.accesses = a.accesses - b.accesses;
    d.hits = a.hits - b.hits;
    d.misses = a.misses - b.misses;
    d.evictions = a.evictions - b.evictions;
    d.writebacks = a.writebacks - b.writebacks;
    d.demandAccesses = a.demandAccesses - b.demandAccesses;
    d.demandMisses = a.demandMisses - b.demandMisses;
    return d;
}

/** Everything one epoch chunk mutates, as raw views so the fast
 *  chunk loop stays allocation-free. */
struct ChunkSinks
{
    fastpath::CounterBank *coreBank = nullptr;
    fastpath::CounterBank *coreWarm = nullptr;
    uint64_t *issued = nullptr;
    const uint64_t *warmups = nullptr;
    uint64_t *shadowDemand = nullptr;
    uint64_t *shadowMiss = nullptr;
    EpochRecord *epoch = nullptr;
};

/**
 * The selector's per-access hot path (fast backend): route each
 * record through the chosen arm's packed model, mirror the sampled
 * subset into EVERY arm's shadow model, and fold outcome counters
 * into the chunk sinks.  All arms shadow the SAME sampled sets —
 * identical traffic per arm — so their per-epoch rewards compare
 * policies, never the luck of which sets each arm drew (disjoint
 * per-arm samples invert rankings on skewed workloads).  Branch
 * structure is fixed for the whole chunk — the bandit only acts
 * between chunks.
 */
GIPPR_HOT void
replayChunkFast(const Rec *recs, size_t count,
                fastpath::SoaCacheModel &main,
                fastpath::SoaCacheModel *shadows, unsigned shadow_arms,
                const int8_t *owners, DriftDetector *drift,
                ChunkSinks &s)
{
    for (size_t i = 0; i < count; ++i) {
        const Rec &r = recs[i];
        const uint32_t core = r.core;
        if (s.issued[core]++ == s.warmups[core])
            s.coreWarm[core] = s.coreBank[core];
        // Qualified call: binds statically to the packed model's
        // access(), keeping the scalar twin (whose access() can
        // panic) out of this function's hot-path purity closure.
        const fastpath::SoaCacheModel::Step st =
            main.fastpath::SoaCacheModel::access(r.set, r.tag, r.type);
        fastpath::CounterBank &b = s.coreBank[core];
        b.accesses += 1;
        b.demandAccesses += r.demand;
        s.epoch->accesses += 1;
        s.epoch->demandAccesses += r.demand;
        if (st.hit) {
            b.hits += 1;
        } else {
            b.misses += 1;
            b.demandMisses += r.demand;
            s.epoch->demandMisses += r.demand;
            if (st.evicted) {
                b.evictions += 1;
                b.writebacks += st.evictedDirty ? 1 : 0;
            }
        }
        if (owners != nullptr && owners[r.set] >= 0) {
            for (unsigned a = 0; a < shadow_arms; ++a) {
                const fastpath::SoaCacheModel::Step ss =
                    shadows[a].fastpath::SoaCacheModel::access(
                        r.set, r.tag, r.type);
                if (r.demand != 0) {
                    s.shadowDemand[a] += 1;
                    s.shadowMiss[a] += ss.hit ? 0 : 1;
                }
            }
        }
        if (drift != nullptr && r.demand != 0)
            drift->observeBlock(r.block);
    }
}

/**
 * Scalar twin of replayChunkFast: same routing, same counter
 * derivation, over SetAssocCache + policy objects (virtual dispatch
 * keeps it off the GIPPR_HOT purity roots).
 */
void
replayChunkScalar(const Rec *recs, size_t count, SetAssocCache &main,
                  std::vector<SetAssocCache> &shadows,
                  unsigned shadow_arms, const int8_t *owners,
                  DriftDetector *drift, ChunkSinks &s)
{
    for (size_t i = 0; i < count; ++i) {
        const Rec &r = recs[i];
        const uint32_t core = r.core;
        if (s.issued[core]++ == s.warmups[core])
            s.coreWarm[core] = s.coreBank[core];
        const AccessResult res = main.access(r.addr, r.type, r.pc);
        fastpath::CounterBank &b = s.coreBank[core];
        b.accesses += 1;
        b.demandAccesses += r.demand;
        s.epoch->accesses += 1;
        s.epoch->demandAccesses += r.demand;
        if (res.hit) {
            b.hits += 1;
        } else {
            b.misses += 1;
            b.demandMisses += r.demand;
            s.epoch->demandMisses += r.demand;
            if (res.evictedBlock.has_value()) {
                b.evictions += 1;
                b.writebacks += res.evictedDirty ? 1 : 0;
            }
        }
        if (owners != nullptr && owners[r.set] >= 0) {
            for (unsigned a = 0; a < shadow_arms; ++a) {
                const AccessResult sres =
                    shadows[a].access(r.addr, r.type, r.pc);
                if (r.demand != 0) {
                    s.shadowDemand[a] += 1;
                    s.shadowMiss[a] += sres.hit ? 0 : 1;
                }
            }
        }
        if (drift != nullptr && r.demand != 0)
            drift->observeBlock(r.block);
    }
}

/** The backend-shared selector loop over a decoded merged stream. */
SelectResult
runStream(const std::vector<PolicyDef> &library, const SelectConfig &cfg,
          const CacheConfig &llc, const std::vector<Rec> &recs,
          unsigned cores, const std::vector<uint64_t> &warmups,
          Backend requested)
{
    llc.validate();
    GIPPR_CHECK(!library.empty());
    GIPPR_CHECK(cfg.epochLength > 0);
    GIPPR_CHECK(cores >= 1 && warmups.size() == cores);

    const auto arms = static_cast<unsigned>(library.size());
    const Backend backend = resolveBackend(library, llc, requested);

    SelectResult result;
    result.arms.reserve(arms);
    for (const PolicyDef &def : library)
        result.arms.push_back(def.name);
    result.epochsChosen.assign(arms, 0);
    result.shadowDemandAccesses.assign(arms, 0);
    result.shadowDemandMisses.assign(arms, 0);

    // A single-arm library degenerates to a static replay: no leader
    // sampling, no shadow models, no drift bookkeeping.  With a duel,
    // LeaderSets picks the sampled sets (any set it assigns an owner)
    // and every arm's shadow replays that same sample.
    const bool duel = arms > 1;
    const uint64_t sets = llc.sets();
    std::vector<int8_t> owners;
    if (duel) {
        // The sample is SHARED — every arm shadows every sampled set —
        // so DIP's "keep 3/4 of the cache as followers" clamp does not
        // apply: a sampled set is not taken over by any policy, it
        // only costs shadow work.  Bound that work by the per-arm
        // request, sampling up to the whole cache on tiny geometries
        // (smaller samples make epoch rewards too noisy to separate
        // close policies).
        unsigned per_arm = 1;
        while (per_arm < cfg.leadersPerArm &&
               static_cast<uint64_t>(per_arm) * 2 * arms <= sets)
            per_arm *= 2;
        const LeaderSets leaders(sets, arms, per_arm);
        owners.resize(sets);
        for (uint64_t set = 0; set < sets; ++set)
            owners[set] = static_cast<int8_t>(leaders.owner(set));
    }

    std::vector<fastpath::SoaCacheModel> fast_mains;
    std::vector<fastpath::SoaCacheModel> fast_shadows;
    std::vector<SetAssocCache> scalar_mains;
    std::vector<SetAssocCache> scalar_shadows;
    if (backend == Backend::Fast) {
        fast_mains.reserve(arms);
        for (const PolicyDef &def : library)
            fast_mains.emplace_back(*def.fastSpec, llc);
        if (duel) {
            fast_shadows.reserve(arms);
            for (const PolicyDef &def : library)
                fast_shadows.emplace_back(*def.fastSpec, llc);
        }
    } else {
        scalar_mains.reserve(arms);
        for (const PolicyDef &def : library)
            scalar_mains.emplace_back(llc, def.make(llc));
        if (duel) {
            scalar_shadows.reserve(arms);
            for (const PolicyDef &def : library)
                scalar_shadows.emplace_back(llc, def.make(llc));
        }
    }

    BanditSelector bandit(cfg, arms);
    DriftDetector drift(cfg.drift);
    const bool use_drift = duel && cfg.drift.enabled;

    std::vector<fastpath::CounterBank> core_bank(cores);
    std::vector<fastpath::CounterBank> core_warm(cores);
    std::vector<uint64_t> issued(cores, 0);

    ChunkSinks sinks;
    sinks.coreBank = core_bank.data();
    sinks.coreWarm = core_warm.data();
    sinks.issued = issued.data();
    sinks.warmups = warmups.data();
    sinks.shadowDemand = result.shadowDemandAccesses.data();
    sinks.shadowMiss = result.shadowDemandMisses.data();

    std::vector<double> rewards(arms, 0.0);
    std::vector<uint8_t> sampled(arms, 0);
    std::vector<uint64_t> shadow_demand_base(arms, 0);
    std::vector<uint64_t> shadow_miss_base(arms, 0);

    unsigned current = 0;
    size_t pos = 0;
    while (pos < recs.size()) {
        const size_t count = std::min<size_t>(
            cfg.epochLength, recs.size() - pos);
        EpochRecord epoch;
        epoch.chosen = current;
        sinks.epoch = &epoch;
        if (duel) {
            for (unsigned a = 0; a < arms; ++a) {
                shadow_demand_base[a] = result.shadowDemandAccesses[a];
                shadow_miss_base[a] = result.shadowDemandMisses[a];
            }
        }

        const int8_t *owner_view = duel ? owners.data() : nullptr;
        DriftDetector *drift_view = use_drift ? &drift : nullptr;
        const unsigned shadow_arms = duel ? arms : 0;
        if (backend == Backend::Fast) {
            replayChunkFast(recs.data() + pos, count,
                            fast_mains[current], fast_shadows.data(),
                            shadow_arms, owner_view, drift_view,
                            sinks);
        } else {
            replayChunkScalar(recs.data() + pos, count,
                              scalar_mains[current], scalar_shadows,
                              shadow_arms, owner_view, drift_view,
                              sinks);
        }
        pos += count;

        // Boundary: score the epoch's shadow traffic, test for
        // drift, pick the arm.
        uint64_t shadow_demand = 0;
        uint64_t shadow_misses = 0;
        if (duel) {
            for (unsigned a = 0; a < arms; ++a) {
                const uint64_t d = result.shadowDemandAccesses[a] -
                                   shadow_demand_base[a];
                const uint64_t m = result.shadowDemandMisses[a] -
                                   shadow_miss_base[a];
                shadow_demand += d;
                shadow_misses += m;
                sampled[a] = d > 0 ? 1 : 0;
                rewards[a] = d > 0 ? 1.0 - static_cast<double>(m) /
                                               static_cast<double>(d)
                                   : 0.0;
            }
        }
        // The drift detector's rate input is the AGGREGATE leader-set
        // shadow miss rate, not the served stream's: shadows replay
        // fixed policies, so a bandit switch (whose cold main model
        // misses hard for an epoch) cannot masquerade as a workload
        // phase change — only the stream itself moves this signal.
        const double shadow_rate =
            shadow_demand ? static_cast<double>(shadow_misses) /
                                static_cast<double>(shadow_demand)
                          : 0.0;
        bool drifted = false;
        if (use_drift && drift.epochBoundary(shadow_rate)) {
            drifted = true;
            bandit.resetEvidence();
            ++result.driftResets;
        }
        epoch.drift = drifted ? 1 : 0;
        if (duel && pos < recs.size()) {
            bandit.recordEpochRewards(rewards.data(), sampled.data());
            const unsigned next = bandit.chooseArm(current);
            if (next != current) {
                ++result.switches;
                current = next;
            }
        }
        result.epochsChosen[epoch.chosen] += 1;
        result.timeline.push_back(epoch);
    }

    // Cores whose whole stream was warmup never snapped in the loop
    // (warmup == length), matching the replay engines' convention.
    for (unsigned c = 0; c < cores; ++c) {
        GIPPR_CHECK(warmups[c] <= issued[c]);
        if (warmups[c] == issued[c])
            core_warm[c] = core_bank[c];
    }

    result.coreTotal = core_bank;
    result.coreMeasured.resize(cores);
    for (unsigned c = 0; c < cores; ++c) {
        result.coreMeasured[c] = bankDiff(core_bank[c], core_warm[c]);
        result.measured += result.coreMeasured[c];
        result.total += core_bank[c];
    }
    return result;
}

} // namespace

Backend
resolveBackend(const std::vector<PolicyDef> &library,
               const CacheConfig &llc, Backend requested)
{
    if (requested == Backend::Scalar)
        return Backend::Scalar;
    for (const PolicyDef &def : library) {
        if (!def.fastSpec.has_value() ||
            !fastpath::SoaCacheModel::supports(*def.fastSpec, llc)) {
            return Backend::Scalar;
        }
    }
    return Backend::Fast;
}

SelectResult
runSelect(const std::vector<PolicyDef> &library, const SelectConfig &cfg,
          const CacheConfig &llc, const Trace &trace, size_t warmup,
          Backend backend)
{
    GIPPR_CHECK(warmup <= trace.size());
    std::vector<Rec> recs;
    recs.reserve(trace.size());
    for (const MemRecord &r : trace.records())
        appendRecs(recs, r, 0, llc);
    const std::vector<uint64_t> warmups = {warmup};
    return runStream(library, cfg, llc, recs, 1, warmups, backend);
}

SelectResult
runSelectShared(const std::vector<multicore::CoreStream> &streams,
                multicore::Schedule schedule,
                const std::vector<PolicyDef> &library,
                const SelectConfig &cfg, const CacheConfig &llc,
                double warmup_fraction, Backend backend)
{
    GIPPR_CHECK(!streams.empty());
    GIPPR_CHECK(warmup_fraction >= 0.0 && warmup_fraction <= 1.0);
    const auto cores = static_cast<unsigned>(streams.size());
    std::vector<uint64_t> lengths(cores);
    std::vector<uint64_t> weights(cores);
    std::vector<uint64_t> warmups(cores);
    size_t merged_size = 0;
    for (unsigned c = 0; c < cores; ++c) {
        GIPPR_CHECK(streams[c].trace != nullptr);
        lengths[c] = streams[c].trace->size();
        weights[c] = streams[c].weight;
        warmups[c] = static_cast<uint64_t>(
            static_cast<double>(lengths[c]) * warmup_fraction);
        merged_size += lengths[c];
    }

    std::vector<Rec> recs;
    recs.reserve(merged_size);
    std::vector<size_t> cursor(cores, 0);
    multicore::Interleaver il(schedule, lengths, weights);
    int c;
    while ((c = il.next()) >= 0) {
        const auto core = static_cast<unsigned>(c);
        const MemRecord &r = (*streams[core].trace)[cursor[core]++];
        appendRecs(recs, r, core, llc);
    }
    return runStream(library, cfg, llc, recs, cores, warmups, backend);
}

Trace
mergedTrace(const std::vector<multicore::CoreStream> &streams,
            multicore::Schedule schedule)
{
    GIPPR_CHECK(!streams.empty());
    const auto cores = static_cast<unsigned>(streams.size());
    std::vector<uint64_t> lengths(cores);
    std::vector<uint64_t> weights(cores);
    size_t merged_size = 0;
    for (unsigned c = 0; c < cores; ++c) {
        GIPPR_CHECK(streams[c].trace != nullptr);
        lengths[c] = streams[c].trace->size();
        weights[c] = streams[c].weight;
        merged_size += lengths[c];
    }
    Trace out;
    out.reserve(merged_size);
    std::vector<size_t> cursor(cores, 0);
    multicore::Interleaver il(schedule, lengths, weights);
    int c;
    while ((c = il.next()) >= 0) {
        const auto core = static_cast<unsigned>(c);
        out.append((*streams[core].trace)[cursor[core]++]);
    }
    return out;
}

std::vector<StaticOracleRow>
staticOracle(const std::vector<PolicyDef> &library,
             const CacheConfig &llc, const Trace &trace, size_t warmup,
             Backend backend)
{
    const fastpath::FastReplayEngine fast_engine(1);
    const fastpath::ScalarReplayEngine scalar_engine;
    std::vector<StaticOracleRow> rows;
    rows.reserve(library.size());
    for (const PolicyDef &def : library) {
        StaticOracleRow row;
        row.name = def.name;
        if (def.fastSpec.has_value()) {
            const fastpath::ReplayEngine &engine =
                backend == Backend::Fast
                    ? static_cast<const fastpath::ReplayEngine &>(
                          fast_engine)
                    : scalar_engine;
            row.measured = engine
                               .replay(*def.fastSpec, llc, trace,
                                       warmup)
                               .measured;
        } else {
            // Policies outside the fast path replay through the
            // scalar simulator on either backend (identical by
            // definition, so reports stay byte-comparable).
            SetAssocCache cache(llc, def.make(llc));
            replayTrace(cache, trace, warmup);
            const CacheStats &st = cache.stats();
            row.measured.accesses = st.accesses;
            row.measured.hits = st.hits;
            row.measured.misses = st.misses;
            row.measured.evictions = st.evictions;
            row.measured.writebacks = st.writebacks;
            row.measured.demandAccesses = st.demandAccesses;
            row.measured.demandMisses = st.demandMisses;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

size_t
bestStaticIndex(const std::vector<StaticOracleRow> &rows)
{
    GIPPR_CHECK(!rows.empty());
    size_t best = 0;
    for (size_t i = 1; i < rows.size(); ++i)
        if (rows[i].measured.demandMisses <
            rows[best].measured.demandMisses)
            best = i;
    return best;
}

} // namespace gippr::select
