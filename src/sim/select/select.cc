/**
 * @file
 * Selector configuration plumbing.
 */

#include "sim/select/select.hh"

#include "util/log.hh"

namespace gippr::select
{

BanditKind
parseBanditKind(const std::string &text)
{
    if (text == "ducb")
        return BanditKind::DUcb;
    if (text == "egreedy" || text == "epsilon-greedy")
        return BanditKind::EpsilonGreedy;
    fatal("unknown bandit kind: " + text + " (want ducb | egreedy)");
}

const char *
banditKindName(BanditKind kind)
{
    return kind == BanditKind::DUcb ? "ducb" : "egreedy";
}

Backend
parseBackend(const std::string &text)
{
    if (text == "fast")
        return Backend::Fast;
    if (text == "scalar")
        return Backend::Scalar;
    fatal("unknown select backend: " + text + " (want fast | scalar)");
}

const char *
backendName(Backend backend)
{
    return backend == Backend::Fast ? "fast" : "scalar";
}

double
SelectResult::measuredDemandMissRate() const
{
    if (measured.demandAccesses == 0)
        return 0.0;
    return static_cast<double>(measured.demandMisses) /
           static_cast<double>(measured.demandAccesses);
}

std::vector<PolicyDef>
parseLibrary(const std::string &text)
{
    std::vector<PolicyDef> defs;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string entry = text.substr(pos, comma - pos);
        if (entry.empty())
            fatal("empty entry in policy library: " + text);
        defs.push_back(policyByName(entry));
        pos = comma + 1;
    }
    if (defs.empty())
        fatal("empty policy library");
    return defs;
}

const char *
defaultLibrarySpec()
{
    return "LRU,LIP,PLRU,GIPPR";
}

std::string
libraryName(const std::vector<PolicyDef> &library)
{
    std::string out;
    for (const PolicyDef &def : library) {
        if (!out.empty())
            out += "+";
        out += def.name;
    }
    return out;
}

} // namespace gippr::select
