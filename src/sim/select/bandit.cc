/**
 * @file
 * Bandit selector implementation.
 */

#include "sim/select/bandit.hh"

#include <cmath>

#include "util/check.hh"

namespace gippr::select
{

BanditSelector::BanditSelector(const SelectConfig &cfg, unsigned arms)
    : kind_(cfg.kind), arms_(arms), gamma_(cfg.gamma), ucbC_(cfg.ucbC),
      epsilon_(cfg.epsilon), margin_(cfg.switchMargin),
      sum_(arms, 0.0), weight_(arms, 0.0), rng_(cfg.seed)
{
    GIPPR_CHECK(arms_ >= 1);
    GIPPR_CHECK(gamma_ > 0.0 && gamma_ <= 1.0);
    GIPPR_CHECK(epsilon_ >= 0.0 && epsilon_ < 1.0);
}

void
BanditSelector::recordEpochRewards(const double *rewards,
                                   const uint8_t *sampled)
{
    totalWeight_ *= gamma_;
    for (unsigned a = 0; a < arms_; ++a) {
        sum_[a] *= gamma_;
        weight_[a] *= gamma_;
        if (sampled[a] != 0) {
            sum_[a] += rewards[a];
            weight_[a] += 1.0;
            totalWeight_ += 1.0;
        }
    }
}

double
BanditSelector::scoreOf(unsigned arm) const
{
    if (weight_[arm] <= 0.0) {
        // Never-sampled arm: optimistic score forces one look.
        return 2.0;
    }
    const double mean = sum_[arm] / weight_[arm];
    if (kind_ == BanditKind::EpsilonGreedy)
        return mean;
    const double t = totalWeight_ > 1.0 ? totalWeight_ : 1.0 + 1e-9;
    return mean + ucbC_ * std::sqrt(std::log(t) / weight_[arm]);
}

unsigned
BanditSelector::chooseArm(unsigned incumbent)
{
    GIPPR_DCHECK(incumbent < arms_);
    if (arms_ == 1)
        return 0;
    if (kind_ == BanditKind::EpsilonGreedy &&
        rng_.nextDouble() < epsilon_) {
        return static_cast<unsigned>(rng_.nextBounded(arms_));
    }
    unsigned best = 0;
    double best_score = scoreOf(0);
    for (unsigned a = 1; a < arms_; ++a) {
        const double s = scoreOf(a);
        // Strict > keeps ties on the lowest arm index.
        if (s > best_score) {
            best = a;
            best_score = s;
        }
    }
    if (best != incumbent && best_score < scoreOf(incumbent) + margin_)
        return incumbent;
    return best;
}

void
BanditSelector::resetEvidence()
{
    for (unsigned a = 0; a < arms_; ++a) {
        sum_[a] = 0.0;
        weight_[a] = 0.0;
    }
    totalWeight_ = 0.0;
}

} // namespace gippr::select
