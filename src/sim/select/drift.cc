/**
 * @file
 * Drift detector implementation.
 */

#include "sim/select/drift.hh"

#include <bit>
#include <cmath>

namespace gippr::select
{

DriftDetector::DriftDetector(const DriftConfig &cfg) : cfg_(cfg) {}

bool
DriftDetector::epochBoundary(double demand_miss_rate)
{
    const bool armed = cfg_.enabled &&
                       epochsSinceArm_ >= cfg_.warmEpochs;
    bool drift = false;

    // Working-set signature overlap against the previous epoch.
    const uint64_t *cur = sig_[cur_];
    const uint64_t *prev = sig_[cur_ ^ 1];
    bool have_jaccard = false;
    double jaccard = 0.0;
    if (havePrev_) {
        uint64_t inter = 0;
        uint64_t uni = 0;
        uint64_t cur_pop = 0;
        uint64_t prev_pop = 0;
        for (uint64_t w = 0; w < kWords; ++w) {
            inter += std::popcount(cur[w] & prev[w]);
            uni += std::popcount(cur[w] | prev[w]);
            cur_pop += std::popcount(cur[w]);
            prev_pop += std::popcount(prev[w]);
        }
        if (cur_pop >= kMinBits && prev_pop >= kMinBits && uni > 0) {
            jaccard = static_cast<double>(inter) /
                      static_cast<double>(uni);
            have_jaccard = true;
            if (armed && haveOverlap_ &&
                jaccard < overlapMean_ - cfg_.overlapDrop) {
                drift = true;
            }
        }
    }

    // Miss-rate change-point against the EWMA of past epochs.
    if (armed) {
        const double dev = std::fabs(demand_miss_rate - rateMean_);
        const double sd = std::sqrt(rateVar_ > 0.0 ? rateVar_ : 0.0);
        if (dev > cfg_.minDelta && dev > cfg_.zThreshold * sd)
            drift = true;
    }

    // Roll the EWMAs (after testing, so an epoch never explains
    // itself away).  A detection re-seeds them on the new phase.
    if (drift) {
        ++detections_;
        rateMean_ = demand_miss_rate;
        rateVar_ = 0.0;
        haveOverlap_ = false;
        epochsSinceArm_ = 0;
    } else if (epochsSinceArm_ == 0 && !havePrev_) {
        rateMean_ = demand_miss_rate;
        rateVar_ = 0.0;
    } else {
        const double d = demand_miss_rate - rateMean_;
        rateMean_ += cfg_.alpha * d;
        rateVar_ = (1.0 - cfg_.alpha) * (rateVar_ +
                                         cfg_.alpha * d * d);
    }
    if (have_jaccard && !drift) {
        if (!haveOverlap_) {
            overlapMean_ = jaccard;
            haveOverlap_ = true;
        } else {
            overlapMean_ += cfg_.alpha * (jaccard - overlapMean_);
        }
    }
    ++epochsSinceArm_;

    // Roll the signatures: current becomes previous, clear the slot.
    cur_ ^= 1;
    uint64_t *next = sig_[cur_];
    for (uint64_t w = 0; w < kWords; ++w)
        next[w] = 0;
    havePrev_ = true;
    return drift;
}

} // namespace gippr::select
