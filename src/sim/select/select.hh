/**
 * @file
 * Online dynamic policy selection: configuration and result types.
 *
 * The selector runs a bandit (epsilon-greedy or discounted-UCB) over
 * a library of replacement policies on a live access stream.  One
 * "main" cache model per arm serves traffic while its arm is chosen;
 * a per-arm "shadow" model is fed only the accesses landing in a
 * LeaderSets-sampled subset of sets (the DIP trick) so every arm
 * earns an always-on, off-policy reward — its sampled-set demand hit
 * rate per epoch — without replaying the whole stream N times.  All
 * arms shadow the SAME sampled sets, so rewards compare policies
 * rather than the luck of which sets each arm drew.
 * Decisions apply at epoch boundaries only, which keeps the fastpath
 * kernels branch-free between boundaries; a drift detector (epoch
 * miss-rate change-point plus working-set signature overlap) resets
 * the bandit so the selector re-explores after a workload shift.
 *
 * Determinism contract: for a fixed stream, library and SelectConfig
 * the SelectResult is bit-identical across runs and across the scalar
 * and fastpath backends (tests/test_select.cc); with a single-policy
 * library the selector degenerates to a static replay of that policy
 * and its counters are bit-identical to the replay engines'.
 */

#ifndef GIPPR_SIM_SELECT_SELECT_HH_
#define GIPPR_SIM_SELECT_SELECT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fastpath/replay_spec.hh"
#include "sim/policy_zoo.hh"

namespace gippr::select
{

/** Bandit flavour driving the arm choice. */
enum class BanditKind
{
    EpsilonGreedy, ///< explore with fixed probability, else greedy
    DUcb,          ///< discounted UCB over the shadow rewards
};

/** Parse "ducb" or "egreedy"; fatal otherwise. */
BanditKind parseBanditKind(const std::string &text);

/** Stable display name. */
const char *banditKindName(BanditKind kind);

/** Which per-arm cache model implementation serves the run. */
enum class Backend
{
    Fast,   ///< packed SoaCacheModel per arm
    Scalar, ///< SetAssocCache + policy objects per arm
};

/** Parse "fast" or "scalar"; fatal otherwise. */
Backend parseBackend(const std::string &text);

/** Stable display name. */
const char *backendName(Backend backend);

/** Phase-drift detector knobs (see drift.hh). */
struct DriftConfig
{
    bool enabled = true;
    /** EWMA weight of the newest epoch (mean and variance). */
    double alpha = 0.2;
    /** Miss-rate deviation trigger, in EWMA standard deviations. */
    double zThreshold = 4.0;
    /** Absolute miss-rate deviation floor (units of miss rate). */
    double minDelta = 0.04;
    /** Working-set signature overlap drop that signals a shift. */
    double overlapDrop = 0.35;
    /** Epochs observed before either trigger arms (also after a
     *  reset, so one shift fires once, not every epoch). */
    unsigned warmEpochs = 4;

    bool operator==(const DriftConfig &o) const = default;
};

/** Everything that shapes one selector run. */
struct SelectConfig
{
    BanditKind kind = BanditKind::DUcb;
    /** Accesses between decisions. */
    uint64_t epochLength = 4096;
    /** Per-epoch discount of bandit state (dUCB). */
    double gamma = 0.8;
    /** Exploration width of the dUCB confidence bonus. */
    double ucbC = 0.05;
    /** Exploration probability (epsilon-greedy). */
    double epsilon = 0.05;
    /** A challenger must beat the incumbent's score by this much. */
    double switchMargin = 0.005;
    /** Requested leader sets per arm (clamped to the geometry). */
    unsigned leadersPerArm = 32;
    /** Seed of the bandit's exploration stream (epsilon-greedy). */
    uint64_t seed = 1;
    DriftConfig drift;

    bool operator==(const SelectConfig &o) const = default;
};

/** One epoch of the decision timeline. */
struct EpochRecord
{
    /** Arm that served this epoch. */
    uint32_t chosen = 0;
    /** Drift reset fired at the boundary closing this epoch. */
    uint8_t drift = 0;
    uint64_t accesses = 0;
    uint64_t demandAccesses = 0;
    uint64_t demandMisses = 0;

    bool operator==(const EpochRecord &o) const = default;
};

/** Outcome of one selector run. */
struct SelectResult
{
    /** Arm display names, library order. */
    std::vector<std::string> arms;
    /** Post-warmup counters of the served (main) stream. */
    fastpath::CounterBank measured;
    /** Whole-stream counters. */
    fastpath::CounterBank total;
    /** Per-core post-warmup / whole-stream banks (size = cores; a
     *  single-trace run has exactly one core). */
    std::vector<fastpath::CounterBank> coreMeasured;
    std::vector<fastpath::CounterBank> coreTotal;
    /** Decision timeline, one entry per (possibly partial) epoch. */
    std::vector<EpochRecord> timeline;
    /** Epochs served per arm. */
    std::vector<uint64_t> epochsChosen;
    /** Whole-run shadow (sampled-set) demand traffic per arm; the
     *  sample is shared, so accesses match across arms. */
    std::vector<uint64_t> shadowDemandAccesses;
    std::vector<uint64_t> shadowDemandMisses;
    uint64_t switches = 0;
    uint64_t driftResets = 0;

    bool operator==(const SelectResult &o) const = default;

    /** Demand miss rate of the measured region. */
    double measuredDemandMissRate() const;
};

/**
 * Parse a comma-separated policy library ("LRU,LIP,PLRU,GIPPR:..."),
 * each entry a policy_zoo name.  Fatal on empty or unknown entries.
 */
std::vector<PolicyDef> parseLibrary(const std::string &text);

/** Default library the CLIs select over. */
const char *defaultLibrarySpec();

/** "+"-joined display names ("LRU+LIP+PLRU"). */
std::string libraryName(const std::vector<PolicyDef> &library);

} // namespace gippr::select

#endif // GIPPR_SIM_SELECT_SELECT_HH_
