/**
 * @file
 * Phase-drift detection for the policy selector.
 *
 * Two independent change-point triggers, both over per-epoch summary
 * state (never per-access branching on the hot path):
 *
 *  - Miss-rate change-point: an EWMA mean/variance of a per-epoch
 *    demand miss rate fed by the caller (the selector feeds the
 *    aggregate leader-set SHADOW rate, which fixed-policy shadows
 *    keep independent of the bandit's own arm switches); an epoch
 *    deviating by more than zThreshold EWMA standard deviations AND
 *    an absolute minDelta floor signals a shift.  The floor keeps
 *    near-deterministic streams (variance ~ 0) from firing on
 *    harmless jitter.
 *  - Working-set change-point: a 16-kbit one-epoch Bloom signature of
 *    the demand blocks touched; the Jaccard overlap of consecutive
 *    epochs is tracked by EWMA, and an epoch whose overlap falls
 *    overlapDrop below that running mean signals that the stream
 *    moved to new addresses even if the miss rate did not move (a
 *    region shift under identical access statistics).  Comparing
 *    against the stream's OWN running overlap — not an absolute
 *    floor — keeps zero-reuse scans (whose overlap is always ~0)
 *    from firing every epoch.
 *
 * Both triggers arm only after warmEpochs epochs and re-arm after
 * every detection, so one phase shift fires once.  All state lives in
 * fixed arrays; observeBlock() and epochBoundary() are allocation-
 * free and deterministic.
 */

#ifndef GIPPR_SIM_SELECT_DRIFT_HH_
#define GIPPR_SIM_SELECT_DRIFT_HH_

#include <cstdint>

#include "sim/select/select.hh"
#include "util/hot.hh"

namespace gippr::select
{

/** Windowed miss-rate + working-set change-point detector. */
class DriftDetector
{
  public:
    explicit DriftDetector(const DriftConfig &cfg);

    /** Fold one demand-accessed block into the epoch signature. */
    GIPPR_HOT void observeBlock(uint64_t block)
    {
        // SplitMix64 finalizer: cheap, well-mixed bit spread.
        uint64_t h = block + 0x9e3779b97f4a7c15ull;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        h ^= h >> 31;
        sig_[cur_][(h >> 6) & (kWords - 1)] |= uint64_t{1} << (h & 63);
    }

    /**
     * Close the epoch that just ran at @p demand_miss_rate: test both
     * triggers, roll the EWMAs and signatures, and return whether a
     * phase shift was detected (the caller resets the bandit).
     */
    GIPPR_HOT bool epochBoundary(double demand_miss_rate);

    uint64_t detections() const { return detections_; }

  private:
    static constexpr uint64_t kWords = 256; // 16 kbit per signature
    /** Signature population below which overlap is meaningless. */
    static constexpr uint64_t kMinBits = 64;

    DriftConfig cfg_;
    uint64_t sig_[2][kWords] = {};
    unsigned cur_ = 0;
    bool havePrev_ = false;
    bool haveOverlap_ = false;
    double rateMean_ = 0.0;
    double rateVar_ = 0.0;
    double overlapMean_ = 0.0;
    unsigned epochsSinceArm_ = 0;
    uint64_t detections_ = 0;
};

} // namespace gippr::select

#endif // GIPPR_SIM_SELECT_DRIFT_HH_
