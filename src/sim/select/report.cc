/**
 * @file
 * RunReport assembly for selector runs.
 */

#include "sim/select/report.hh"

#include <string>

#include "util/check.hh"

namespace gippr::select
{

namespace
{

using telemetry::JsonValue;
using telemetry::ResultRow;
using telemetry::ResultTable;

double
missRate(uint64_t misses, uint64_t accesses)
{
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(misses) / static_cast<double>(accesses);
}

ResultRow
bankRow(const std::string &name, const fastpath::CounterBank &bank)
{
    return ResultRow{
        name,
        {static_cast<double>(bank.accesses),
         static_cast<double>(bank.hits),
         static_cast<double>(bank.misses),
         static_cast<double>(bank.demandAccesses),
         static_cast<double>(bank.demandMisses),
         missRate(bank.demandMisses, bank.demandAccesses),
         static_cast<double>(bank.evictions),
         static_cast<double>(bank.writebacks)},
    };
}

const std::vector<std::string> &
bankColumns()
{
    static const std::vector<std::string> cols = {
        "accesses",       "hits",
        "misses",         "demand_accesses",
        "demand_misses",  "demand_miss_rate",
        "evictions",      "writebacks",
    };
    return cols;
}

} // namespace

telemetry::RunReport
buildSelectReport(const SelectReportInputs &in)
{
    const SelectResult &res = in.result;
    const size_t cores = res.coreMeasured.size();
    GIPPR_CHECK(res.coreTotal.size() == cores);

    telemetry::RunReport report("select", in.binary);
    if (in.deterministic)
        report.setTimestamp("1970-01-01T00:00:00Z");

    // Config: everything that shaped the run EXCEPT the backend — the
    // equivalence gates byte-compare fast and scalar artifacts.
    report.setConfig("workload", JsonValue(in.workload));
    JsonValue lib = JsonValue::array();
    for (const std::string &arm : res.arms)
        lib.push(JsonValue(arm));
    report.setConfig("library", std::move(lib));
    report.setConfig("bandit",
                     JsonValue(banditKindName(in.cfg.kind)));
    report.setConfig("epoch_length", JsonValue(in.cfg.epochLength));
    report.setConfig("gamma", JsonValue(in.cfg.gamma));
    report.setConfig("ucb_c", JsonValue(in.cfg.ucbC));
    report.setConfig("epsilon", JsonValue(in.cfg.epsilon));
    report.setConfig("switch_margin", JsonValue(in.cfg.switchMargin));
    report.setConfig("leaders_per_arm",
                     JsonValue(static_cast<uint64_t>(
                         in.cfg.leadersPerArm)));
    report.setConfig("seed", JsonValue(in.cfg.seed));
    JsonValue drift = JsonValue::object();
    drift.set("enabled", JsonValue(in.cfg.drift.enabled));
    drift.set("alpha", JsonValue(in.cfg.drift.alpha));
    drift.set("z_threshold", JsonValue(in.cfg.drift.zThreshold));
    drift.set("min_delta", JsonValue(in.cfg.drift.minDelta));
    drift.set("overlap_drop", JsonValue(in.cfg.drift.overlapDrop));
    drift.set("warm_epochs",
              JsonValue(static_cast<uint64_t>(
                  in.cfg.drift.warmEpochs)));
    report.setConfig("drift", std::move(drift));
    JsonValue llc = JsonValue::object();
    llc.set("size_bytes",
            JsonValue(static_cast<uint64_t>(in.llc.sizeBytes)));
    llc.set("assoc", JsonValue(static_cast<uint64_t>(in.llc.assoc)));
    llc.set("block_bytes",
            JsonValue(static_cast<uint64_t>(in.llc.blockBytes)));
    report.setConfig("llc", std::move(llc));
    report.setConfig("warmup_fraction", JsonValue(in.warmupFraction));
    report.setConfig("cores",
                     JsonValue(static_cast<uint64_t>(cores)));
    if (!in.coreWorkloads.empty()) {
        JsonValue names = JsonValue::array();
        for (const std::string &name : in.coreWorkloads)
            names.push(JsonValue(name));
        report.setConfig("core_workloads", std::move(names));
    }

    // Summary: served-stream counters plus the selector's own moves.
    {
        ResultTable table;
        table.title = "summary";
        table.metric = "count";
        table.columns = bankColumns();
        table.columns.push_back("switches");
        table.columns.push_back("drift_resets");
        ResultRow measured = bankRow("measured", res.measured);
        measured.values.push_back(
            static_cast<double>(res.switches));
        measured.values.push_back(
            static_cast<double>(res.driftResets));
        ResultRow total = bankRow("total", res.total);
        total.values.push_back(static_cast<double>(res.switches));
        total.values.push_back(
            static_cast<double>(res.driftResets));
        table.rows.push_back(std::move(measured));
        table.rows.push_back(std::move(total));
        report.addTable(std::move(table));
    }

    // Arms: how often each was chosen and its shadow reward traffic.
    {
        ResultTable table;
        table.title = "arms";
        table.metric = "count";
        table.columns = {"epochs_chosen", "shadow_demand_accesses",
                         "shadow_demand_misses",
                         "shadow_demand_miss_rate"};
        for (size_t a = 0; a < res.arms.size(); ++a) {
            table.rows.push_back(ResultRow{
                res.arms[a],
                {static_cast<double>(res.epochsChosen[a]),
                 static_cast<double>(res.shadowDemandAccesses[a]),
                 static_cast<double>(res.shadowDemandMisses[a]),
                 missRate(res.shadowDemandMisses[a],
                          res.shadowDemandAccesses[a])},
            });
        }
        report.addTable(std::move(table));
    }

    // Static oracle + regret vs the best static arm.
    if (!in.oracle.empty()) {
        ResultTable table;
        table.title = "static_oracle";
        table.metric = "count";
        table.columns = {"demand_accesses", "demand_misses",
                         "demand_miss_rate"};
        for (const StaticOracleRow &row : in.oracle) {
            table.rows.push_back(ResultRow{
                row.name,
                {static_cast<double>(row.measured.demandAccesses),
                 static_cast<double>(row.measured.demandMisses),
                 missRate(row.measured.demandMisses,
                          row.measured.demandAccesses)},
            });
        }
        table.rows.push_back(ResultRow{
            "selector",
            {static_cast<double>(res.measured.demandAccesses),
             static_cast<double>(res.measured.demandMisses),
             res.measuredDemandMissRate()},
        });
        report.addTable(std::move(table));

        const size_t best = bestStaticIndex(in.oracle);
        const double best_misses = static_cast<double>(
            in.oracle[best].measured.demandMisses);
        const double sel_misses =
            static_cast<double>(res.measured.demandMisses);
        ResultTable regret;
        regret.title = "regret";
        regret.metric = "misses";
        regret.columns = {"selector_demand_misses",
                          "best_static_demand_misses",
                          "regret_misses"};
        regret.rows.push_back(ResultRow{
            in.oracle[best].name,
            {sel_misses, best_misses, sel_misses - best_misses},
        });
        report.addTable(std::move(regret));
    }

    // Per-core attribution (one row on single-trace runs).
    {
        ResultTable table;
        table.title = "cores";
        table.metric = "count";
        table.columns = bankColumns();
        for (size_t c = 0; c < cores; ++c) {
            std::string name = "core" + std::to_string(c);
            if (c < in.coreWorkloads.size())
                name += ":" + in.coreWorkloads[c];
            table.rows.push_back(
                bankRow(name, res.coreMeasured[c]));
        }
        report.addTable(std::move(table));
    }

    // Decision timeline, one row per (possibly partial) epoch.
    {
        ResultTable table;
        table.title = "timeline";
        table.metric = "count";
        table.columns = {"chosen", "drift", "accesses",
                         "demand_accesses", "demand_misses"};
        for (size_t e = 0; e < res.timeline.size(); ++e) {
            const EpochRecord &rec = res.timeline[e];
            table.rows.push_back(ResultRow{
                "epoch" + std::to_string(e),
                {static_cast<double>(rec.chosen),
                 static_cast<double>(rec.drift),
                 static_cast<double>(rec.accesses),
                 static_cast<double>(rec.demandAccesses),
                 static_cast<double>(rec.demandMisses)},
            });
        }
        report.addTable(std::move(table));
    }

    return report;
}

} // namespace gippr::select
