/**
 * @file
 * CPU model implementation.
 */

#include "sim/cpu_model.hh"

#include <algorithm>

namespace gippr
{

CpuModel::CpuModel(CpuParams params)
    : params_(params)
{
}

double
CpuModel::latencyOf(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return 0.0; // pipelined into the base issue rate
      case HitLevel::L2:
        return params_.latL2;
      case HitLevel::Llc:
        return params_.latLlc;
      case HitLevel::Memory:
        return params_.latMemory;
    }
    return 0.0;
}

void
CpuModel::step(uint32_t inst_gap, HitLevel level)
{
    // Issue the intervening instructions at full width.
    instructions_ += inst_gap;
    totalInstructions_ += inst_gap;
    const double issue = static_cast<double>(inst_gap) /
                         static_cast<double>(params_.width);
    cycles_ += issue;
    totalCycles_ += issue;

    // Window constraint: the access cannot issue while an outstanding
    // access older than robSize instructions is still pending.
    while (!inflight_.empty()) {
        const Outstanding &oldest = inflight_.front();
        bool outside_window =
            totalInstructions_ - oldest.instIndex >
            static_cast<uint64_t>(params_.robSize);
        if (oldest.completeCycle <= cycles_) {
            inflight_.pop_front();
        } else if (outside_window || inflight_.size() >= params_.mshrs) {
            // Stall until the blocking access returns.
            totalCycles_ += oldest.completeCycle - cycles_;
            cycles_ = oldest.completeCycle;
            inflight_.pop_front();
        } else {
            break;
        }
    }

    const double lat = latencyOf(level);
    if (lat > 0.0)
        inflight_.push_back({totalInstructions_, cycles_ + lat});
}

void
CpuModel::drain()
{
    if (!inflight_.empty()) {
        double last = cycles_;
        for (const Outstanding &o : inflight_)
            last = std::max(last, o.completeCycle);
        totalCycles_ += last - cycles_;
        cycles_ = last;
        inflight_.clear();
    }
}

void
CpuModel::clearStats()
{
    cycles_ = 0.0;
    instructions_ = 0;
    // In-flight accesses keep absolute completion cycles; rebase them
    // so the measured region starts at cycle zero.
    if (!inflight_.empty()) {
        double base = inflight_.front().completeCycle;
        for (Outstanding &o : inflight_)
            o.completeCycle = std::max(0.0, o.completeCycle - base);
    }
}

} // namespace gippr
