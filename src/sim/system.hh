/**
 * @file
 * Whole-system simulation: CPU trace -> hierarchy -> CPU model.
 */

#ifndef GIPPR_SIM_SYSTEM_HH_
#define GIPPR_SIM_SYSTEM_HH_

#include "cache/hierarchy.hh"
#include "sim/cpu_model.hh"
#include "trace/simpoint.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Result of simulating one trace segment under one LLC policy. */
struct SimResult
{
    double ipc = 0.0;
    uint64_t instructions = 0;
    double cycles = 0.0;
    /** LLC demand misses in the measured region. */
    uint64_t llcMisses = 0;
    /** LLC demand misses per kilo-instruction. */
    double llcMpki = 0.0;
    /** Full LLC statistics for the measured region. */
    CacheStats llcStats;
};

/** System-level simulation parameters. */
struct SystemParams
{
    HierarchyConfig hier;
    CpuParams cpu;
    /** Fraction of each trace used to warm caches before measuring. */
    double warmupFraction = 1.0 / 3.0;
};

/**
 * Simulate @p cpu_trace end to end with @p llc_policy in the LLC
 * (L1/L2 use true LRU, as in the paper's CMP$im setup).
 */
SimResult simulateTrace(const Trace &cpu_trace,
                        const PolicyFactory &llc_policy,
                        const SystemParams &params);

/**
 * Simulate every simpoint of @p workload and combine per-simpoint IPC
 * and MPKI with the SimPoint weights (the paper's per-benchmark
 * reporting rule).
 */
SimResult simulateWorkload(const Workload &workload,
                           const PolicyFactory &llc_policy,
                           const SystemParams &params);

/** A PolicyFactory building true LRU (for L1/L2 and baselines). */
PolicyFactory lruFactory();

} // namespace gippr

#endif // GIPPR_SIM_SYSTEM_HH_
