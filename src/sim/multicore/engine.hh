/**
 * @file
 * The shared-LLC multi-core replay engine.
 *
 * runSharedLlc() is the multicore counterpart of fastpath's
 * ReplayEngine::replay: it merges N per-core LLC streams through one
 * deterministic Interleaver into one shared cache model (packed
 * SharedLlcModel or the scalar ScalarSharedLlc oracle, selected by
 * RunParams::backend), manages per-core warmup snapshots, drives the
 * optional utility repartitioner, replays each core's solo baseline
 * through the existing single-core engines, and derives the fairness
 * report.
 *
 * Determinism contract: for fixed streams and RunParams the result
 * is bit-identical across runs and across backends; with one core,
 * no partitioning and either duel scope the per-core ReplayStats are
 * bit-identical to fastpath::ReplayEngine::replay on the same trace
 * and warmup (tests/test_multicore_sim.cc).
 */

#ifndef GIPPR_SIM_MULTICORE_ENGINE_HH_
#define GIPPR_SIM_MULTICORE_ENGINE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "sim/fastpath/replay_spec.hh"
#include "sim/multicore/fairness.hh"
#include "sim/multicore/mix.hh"
#include "sim/multicore/partition.hh"
#include "sim/multicore/schedule.hh"
#include "sim/multicore/shared_model.hh"

namespace gippr::multicore
{

/** Which shared-LLC implementation replays the mix. */
enum class Backend
{
    Fast,   ///< packed SharedLlcModel
    Scalar, ///< ScalarSharedLlc reference
};

/** Parse "fast" or "scalar"; fatal otherwise. */
Backend parseBackend(const std::string &text);

/** Stable display name. */
const char *backendName(Backend backend);

/** Everything that shapes one shared-LLC run. */
struct RunParams
{
    CacheConfig llc = CacheConfig::benchLlc();
    fastpath::ReplaySpec policy;
    Schedule schedule = Schedule::RoundRobin;
    DuelScope duelScope = DuelScope::Global;
    PartitionConfig partition;
    LatencyModel latency;
    /** Leading fraction of every core's stream used as warmup. */
    double warmupFraction = 1.0 / 3.0;
    Backend backend = Backend::Fast;
    /** Replay per-core solo baselines and fill RunResult::fairness
     *  (skip for oracle runs that only compare shared stats). */
    bool computeSolo = true;
};

/** One core's outcome. */
struct CoreResult
{
    std::string workload;
    uint64_t weight = 1;
    /** Whole-trace instructions of the core's stream. */
    uint64_t instructions = 0;
    /** Instructions covered by the measured (post-warmup) window. */
    uint64_t measuredInstructions = 0;
    /** Shared-run statistics (per-core bank + duel state). */
    fastpath::ReplayStats stats;
    /** Solo-run statistics (same trace, same warmup boundary). */
    fastpath::ReplayStats solo;
};

/** One shared-LLC run's outcome. */
struct RunResult
{
    std::vector<CoreResult> cores;
    /** Sums of the per-core banks. */
    fastpath::CounterBank measured;
    fastpath::CounterBank total;
    FairnessReport fairness;
    /** Final per-core way counts (empty when unpartitioned). */
    std::vector<unsigned> wayCounts;
    /** Utility repartitions performed. */
    uint64_t repartitions = 0;
};

/** Replay @p streams through one shared LLC under @p params. */
RunResult runSharedLlc(const std::vector<CoreStream> &streams,
                       const RunParams &params);

/**
 * The single-core reference path of the bit-identity gate: replay
 * @p stream through the existing single-core ReplayEngine (scalar or
 * fast per params.backend) and package the result as a 1-core
 * RunResult — same warmup arithmetic, same fairness derivation, no
 * shared-model code anywhere on the path.  A 1-core runSharedLlc with
 * no partitioning must equal this bit-for-bit.
 */
RunResult runSingleCoreReference(const CoreStream &stream,
                                 const RunParams &params);

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_ENGINE_HH_
