/**
 * @file
 * Deterministic interleaving schedules for multi-programmed replay.
 *
 * The shared-LLC engine merges N per-core LLC streams into one global
 * access order.  That order must be a pure function of the schedule
 * and the stream lengths — no randomness, no timing — so scalar and
 * fastpath backends replay the identical interleaving and the
 * differential oracle can compare them bit-for-bit.
 *
 * Two schedules:
 *
 *  - RoundRobin: cores take strict turns, finished cores are skipped;
 *  - Weighted:   stride scheduling — each issue goes to the live core
 *                with the smallest virtual time (issued+1)/weight,
 *                compared exactly via integer cross-multiplication,
 *                ties broken by lowest core id.
 *
 * With one core both schedules degenerate to the single-core replay
 * order, which is what the 1-core bit-identity gate relies on.
 */

#ifndef GIPPR_SIM_MULTICORE_SCHEDULE_HH_
#define GIPPR_SIM_MULTICORE_SCHEDULE_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace gippr::multicore
{

/** Interleaving discipline. */
enum class Schedule
{
    RoundRobin,
    Weighted,
};

/** Parse "rr"/"round-robin" or "weighted"; fatal otherwise. */
Schedule parseSchedule(const std::string &text);

/** Stable display name. */
const char *scheduleName(Schedule sched);

/**
 * Stateful merge of N finite streams into one deterministic order.
 * next() returns the core issuing the next reference (advancing its
 * issue count), or -1 once every stream is exhausted.
 */
class Interleaver
{
  public:
    /**
     * @param sched    the discipline
     * @param lengths  per-core stream lengths
     * @param weights  per-core arrival weights (>= 1; only consulted
     *                 by the Weighted schedule)
     */
    Interleaver(Schedule sched, std::vector<uint64_t> lengths,
                std::vector<uint64_t> weights);

    /** Core id of the next issue, or -1 when all streams are done. */
    int next();

    /** References issued so far by @p core. */
    uint64_t issued(unsigned core) const { return issued_[core]; }

  private:
    Schedule sched_;
    std::vector<uint64_t> lengths_;
    std::vector<uint64_t> weights_;
    std::vector<uint64_t> issued_;
    unsigned cursor_ = 0; ///< round-robin position
};

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_SCHEDULE_HH_
