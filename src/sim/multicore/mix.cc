/**
 * @file
 * Mix parsing and per-core LLC stream construction.
 */

#include "sim/multicore/mix.hh"

#include <stdexcept>

#include "util/check.hh"
#include "util/log.hh"

namespace gippr::multicore
{

namespace
{

const WorkloadSpec *
findSpec(const std::vector<WorkloadSpec> &specs, const std::string &name)
{
    for (const auto &s : specs)
        if (s.name == name)
            return &s;
    return nullptr;
}

TenantSpec
parseTenant(const std::string &entry)
{
    TenantSpec t;
    auto colon = entry.find(':');
    if (colon == std::string::npos) {
        t.workload = entry;
    } else {
        t.workload = entry.substr(0, colon);
        try {
            t.weight = std::stoull(entry.substr(colon + 1));
        } catch (const std::exception &) {
            fatal("bad mix weight in entry: " + entry);
        }
    }
    if (t.workload.empty())
        fatal("empty workload name in mix entry: " + entry);
    if (t.weight == 0)
        fatal("mix weight must be >= 1: " + entry);
    return t;
}

} // namespace

const std::vector<MixSpec> &
presetMixes()
{
    // The first four are the historical bench mixes (ext_multicore);
    // kv-serving exercises the KV-cache multi-tenant family.
    static const std::vector<MixSpec> mixes = {
        {"thrash-heavy",
         {{"loop_thrash", 1},
          {"loop_thrash2x", 1},
          {"chase_medium", 1},
          {"stream_pure", 1}}},
        {"balanced",
         {{"loop_thrash", 1},
          {"zipf_hot", 1},
          {"hotcold_scan", 1},
          {"loop_fit", 1}}},
        {"reuse-heavy",
         {{"zipf_hot", 1},
          {"zipf_twophase", 1},
          {"loop_fit", 1},
          {"stencil_rows", 1}}},
        {"stream-polluted",
         {{"stream_pure", 1},
          {"stream_strided", 1},
          {"zipf_hot", 1},
          {"hotcold_stream", 1}}},
        {"kv-serving",
         {{"kv_zipf_4t", 2},
          {"kv_hot_tenant", 4},
          {"kv_churn", 1},
          {"kv_scan_victim", 1}}},
    };
    return mixes;
}

MixSpec
parseMixSpec(const std::string &text, unsigned cores)
{
    GIPPR_CHECK(cores >= 1);

    MixSpec mix;
    for (const MixSpec &m : presetMixes()) {
        if (m.name == text) {
            mix = m;
            break;
        }
    }
    if (mix.tenants.empty()) {
        mix.name = text;
        size_t pos = 0;
        while (pos <= text.size()) {
            size_t comma = text.find(',', pos);
            size_t end = comma == std::string::npos ? text.size() : comma;
            std::string entry = text.substr(pos, end - pos);
            if (entry.empty())
                fatal("empty entry in mix spec: " + text);
            mix.tenants.push_back(parseTenant(entry));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    if (mix.tenants.empty())
        fatal("empty mix spec: " + text);

    // Cycle shorter lists over the cores; truncate longer ones.
    std::vector<TenantSpec> tenants;
    tenants.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        tenants.push_back(mix.tenants[c % mix.tenants.size()]);
    mix.tenants = std::move(tenants);
    return mix;
}

std::vector<CoreStream>
buildCoreStreams(const MixSpec &mix, const SyntheticSuite &suite,
                 const HierarchyConfig &hier, LlcTraceCache *cache)
{
    LlcTraceCache local;
    LlcTraceCache &tc = cache ? *cache : local;

    std::vector<WorkloadSpec> kv;
    bool kv_built = false;
    std::vector<WorkloadSpec> ps;
    bool ps_built = false;

    std::vector<CoreStream> streams;
    streams.reserve(mix.tenants.size());
    for (const TenantSpec &t : mix.tenants) {
        const WorkloadSpec *spec = findSpec(suite.specs(), t.workload);
        if (spec == nullptr) {
            if (!kv_built) {
                kv = kvCacheFamily(suite.params());
                kv_built = true;
            }
            spec = findSpec(kv, t.workload);
        }
        if (spec == nullptr) {
            if (!ps_built) {
                ps = phaseShiftFamily(suite.params());
                ps_built = true;
            }
            spec = findSpec(ps, t.workload);
        }
        if (spec == nullptr)
            fatal("unknown workload in mix: " + t.workload);

        auto entries = tc.get(*spec, hier, nullptr);
        GIPPR_CHECK(!entries->empty());
        // First simpoint only, matching the historical bench mixes:
        // multi-programmed runs want one contiguous stream per core.
        const LlcTraceCache::Entry &e = entries->front();
        CoreStream cs;
        cs.workload = t.workload;
        cs.trace = e.demandTrace;
        cs.instructions = e.instructions;
        cs.weight = t.weight;
        streams.push_back(std::move(cs));
    }
    return streams;
}

} // namespace gippr::multicore
