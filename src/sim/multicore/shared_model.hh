/**
 * @file
 * Packed shared-LLC model for multi-programmed replay.
 *
 * SharedLlcModel is the fastpath backend of the multi-core engine:
 * one packed cache (flat tag/signature arrays, valid/dirty bitmasks,
 * one uint64 of PseudoLRU tree bits per set — the same layout as
 * fastpath::SoaCacheModel) shared by N cores, each of which carries
 * its own CounterBank and warmup snapshot.
 *
 * The per-access transition is a line-for-line mirror of
 * SoaCacheModel::accessImpl — same event order (counters, duel update
 * before victim selection, invalid-way fill in way order, writeback
 * conventions), same promotion/insertion deposits — extended along
 * two axes the single-core model cannot express:
 *
 *  - DuelScope: Global keeps one DGIPPR tournament exactly like the
 *    single-core model; PerCore gives every core its own rotated
 *    leader-set table and selector, so each tenant's duel bookkeeping
 *    votes on its own sampled sets and applies its own winner.
 *  - Way partitioning: per-core way masks restrict victim selection
 *    (QoS / UCP-style).  While every mask is full the model takes the
 *    exact unmasked victim path.
 *
 * With one core, no partitioning, and either duel scope (the PerCore
 * rotation is the identity for core 0), the transition reduces
 * bit-for-bit to SoaCacheModel — the 1-core identity gate
 * tests/test_multicore_sim.cc enforces against ReplayEngine::replay.
 */

#ifndef GIPPR_SIM_MULTICORE_SHARED_MODEL_HH_
#define GIPPR_SIM_MULTICORE_SHARED_MODEL_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "policies/set_dueling.hh"
#include "sim/fastpath/replay_spec.hh"
#include "sim/fastpath/soa_cache.hh"
#include "util/hot.hh"

namespace gippr::multicore
{

/** Where DGIPPR duel bookkeeping lives in a shared cache. */
enum class DuelScope
{
    Global,  ///< one tournament over all cores (single-core semantics)
    PerCore, ///< per-core leader tables, selectors and winners
};

/** Parse "global" or "per-core"; fatal otherwise. */
DuelScope parseDuelScope(const std::string &text);

/** Stable display name. */
const char *duelScopeName(DuelScope scope);

/**
 * Promotion/insertion vectors a spec's policy family applies —
 * SoaCacheModel's mapping (Lru/Lip synthesize their fixed vectors,
 * Plru needs none, IPV families use the spec's own).  Shared by the
 * packed and scalar shared-LLC backends.
 */
std::vector<Ipv> effectiveReplayIpvs(const fastpath::ReplaySpec &spec,
                                     unsigned ways);

/**
 * Rotation stride between per-core leader-set tables (PerCore scope):
 * core c's table is the base LeaderSets map evaluated at
 * (set + c * kLeaderSetRotate) mod sets.  Any odd constant
 * decorrelates the cores' sampled sets; core 0's rotation is zero so
 * a 1-core PerCore run matches the Global (and single-core) tables
 * exactly.  Both shared-LLC backends must use this same constant.
 */
constexpr uint64_t kLeaderSetRotate = 97;

/** N-core shared LLC over the packed fastpath state. */
class SharedLlcModel
{
  public:
    SharedLlcModel(const fastpath::ReplaySpec &spec,
                   const CacheConfig &config, unsigned cores,
                   DuelScope scope);

    /** Same coverage as the single-core packed model. */
    static bool supports(const fastpath::ReplaySpec &spec,
                         const CacheConfig &config)
    {
        return fastpath::SoaCacheModel::supports(spec, config);
    }

    /** Perform one access on behalf of @p core. */
    GIPPR_HOT void access(unsigned core, uint64_t byte_addr,
                          AccessType type);

    /** Snapshot @p core's counters (the warmup convention). */
    void markWarmup(unsigned core);

    /**
     * Restrict @p core's victim selection to the ways of @p mask
     * (must be a non-empty subset of the geometry's ways).  Lines
     * outside a core's mask persist until their owners evict them —
     * the standard way-partitioning discipline.
     */
    void setWayMask(unsigned core, uint64_t mask);

    uint64_t wayMask(unsigned core) const { return masks_[core]; }

    /**
     * @p core's statistics; duel fields mirror SoaCacheModel::stats()
     * (Global scope reports the shared tournament to every core).
     */
    fastpath::ReplayStats coreStats(unsigned core) const;

    unsigned cores() const { return static_cast<unsigned>(counters_.size()); }
    uint64_t sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }
    DuelScope duelScope() const { return scope_; }

    uint64_t setIndex(uint64_t byte_addr) const
    {
        return (byte_addr >> blockShift_) & (sets_ - 1);
    }

    uint64_t tagOf(uint64_t byte_addr) const
    {
        return byte_addr >> (blockShift_ + setShift_);
    }

    /** True when an access by @p core to @p set is a demand miss the
     *  shadow monitors should sample (line absent). */
    GIPPR_HOT bool wouldMiss(unsigned core, uint64_t set,
                             uint64_t tag) const;

  private:
    enum class Family : uint8_t
    {
        Recency,
        Plru,
        TreeIpv,
    };

    unsigned duelIndexOf(unsigned core) const
    {
        return scope_ == DuelScope::PerCore ? core : 0;
    }

    unsigned ipvIndexFor(unsigned core, uint64_t set) const;
    int findWay(uint64_t base, uint64_t tag, uint64_t valid) const;
    unsigned unmaskedVictim(uint64_t set, uint64_t base) const;
    unsigned maskedVictim(uint64_t set, uint64_t base,
                          uint64_t mask) const;

    // Geometry.
    uint64_t sets_;
    unsigned assoc_;
    unsigned blockShift_;
    unsigned setShift_;
    uint64_t wayMask_;

    // Policy.
    Family family_;
    bool duel_ = false;
    DuelScope scope_;
    std::vector<std::vector<uint8_t>> promo_;
    std::vector<uint8_t> insert_;

    // Packed state (SoaCacheModel layout).
    std::vector<uint64_t> tags_;
    std::vector<uint8_t> sig_;
    std::vector<uint64_t> valid_;
    std::vector<uint64_t> dirty_;
    std::vector<uint64_t> tree_;
    std::vector<uint8_t> pos_;

    std::shared_ptr<const fastpath::TreeTables> tables_;
    const uint64_t *clearMask_ = nullptr;
    const uint64_t *deposit_ = nullptr;
    const uint8_t *victimLut_ = nullptr;

    /**
     * Duel state, one slot for Global scope, one per core for
     * PerCore.  owners_[d][set] is the leading vector of @p set in
     * duel domain d (PerCore domains use the base leader map rotated
     * by a per-core offset; domain 0's rotation is the identity).
     */
    std::vector<std::vector<int8_t>> owners_;
    std::vector<TournamentSelector> selectors_;
    std::vector<unsigned> winner_;
    std::vector<std::vector<uint64_t>> leaderMisses_;

    // QoS way masks.
    std::vector<uint64_t> masks_;
    bool partitioned_ = false;

    // Per-core counters + warmup snapshots.
    std::vector<fastpath::CounterBank> counters_;
    std::vector<fastpath::CounterBank> warmupBase_;
};

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_SHARED_MODEL_HH_
