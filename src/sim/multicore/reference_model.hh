/**
 * @file
 * Scalar reference model for the shared-LLC differential oracle.
 *
 * ScalarSharedLlc implements the same N-core shared cache semantics
 * as SharedLlcModel but over the production scalar data structures —
 * PlruTree / RecencyStack per set, LeaderSets + TournamentSelector
 * for dueling — with none of the packed-state tricks.  The two are
 * developed against the same written semantics but share no state
 * layout, which is what makes the lock-step scalar-vs-fast oracle in
 * tests/test_multicore_sim.cc meaningful for interleaved streams
 * (the same discipline PR 3 established for single-core replay).
 *
 * It deliberately exposes the exact interface of SharedLlcModel so
 * the engine's replay loop can be templated over either backend.
 */

#ifndef GIPPR_SIM_MULTICORE_REFERENCE_MODEL_HH_
#define GIPPR_SIM_MULTICORE_REFERENCE_MODEL_HH_

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "core/plru_tree.hh"
#include "policies/recency_stack.hh"
#include "policies/set_dueling.hh"
#include "sim/fastpath/replay_spec.hh"
#include "sim/multicore/shared_model.hh"

namespace gippr::multicore
{

/** Scalar N-core shared LLC (oracle for SharedLlcModel). */
class ScalarSharedLlc
{
  public:
    ScalarSharedLlc(const fastpath::ReplaySpec &spec,
                    const CacheConfig &config, unsigned cores,
                    DuelScope scope);

    void access(unsigned core, uint64_t byte_addr, AccessType type);
    void markWarmup(unsigned core);
    void setWayMask(unsigned core, uint64_t mask);
    uint64_t wayMask(unsigned core) const { return masks_[core]; }
    fastpath::ReplayStats coreStats(unsigned core) const;

    unsigned cores() const
    {
        return static_cast<unsigned>(counters_.size());
    }

    uint64_t sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }

    uint64_t setIndex(uint64_t byte_addr) const;
    uint64_t tagOf(uint64_t byte_addr) const;

  private:
    enum class Family : uint8_t
    {
        Recency,
        Plru,
        TreeIpv,
    };

    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    unsigned duelIndexOf(unsigned core) const
    {
        return scope_ == DuelScope::PerCore ? core : 0;
    }

    unsigned ipvIndexFor(unsigned core, uint64_t set) const;
    int findWay(uint64_t set, uint64_t tag) const;
    unsigned victimWay(unsigned core, uint64_t set) const;

    CacheConfig config_;
    uint64_t sets_;
    unsigned assoc_;

    Family family_;
    bool duel_ = false;
    DuelScope scope_;
    std::vector<Ipv> ipvs_;

    std::vector<Line> lines_;          // sets * assoc
    std::vector<RecencyStack> stacks_; // Recency family
    std::vector<PlruTree> trees_;      // tree families

    std::vector<std::vector<int>> owners_;
    std::vector<TournamentSelector> selectors_;
    std::vector<unsigned> winner_;
    std::vector<std::vector<uint64_t>> leaderMisses_;

    std::vector<uint64_t> masks_;
    uint64_t fullMask_;
    bool partitioned_ = false;

    std::vector<fastpath::CounterBank> counters_;
    std::vector<fastpath::CounterBank> warmupBase_;
};

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_REFERENCE_MODEL_HH_
