/**
 * @file
 * Interference and fairness metrics for shared-LLC runs.
 *
 * Multi-programmed LLC studies report how much each tenant suffers
 * from sharing relative to running alone.  The multicore engine
 * replays LLC-level traces (no full CPU model in the loop), so
 * per-core performance comes from the standard analytic latency
 * model:
 *
 *   cycles = instructions * baseCpi
 *          + demandHits   * hitCycles
 *          + demandMisses * missCycles
 *
 * with constants mirroring sim/cpu_model.hh's CpuParams (width 4 ->
 * baseCpi 0.25, LLC hit 35 cycles, memory 200 cycles).  Because the
 * solo and shared runs replay the identical per-core trace with the
 * identical warmup boundary, every stream-determined quantity
 * (instructions, demand accesses) cancels in the ratios and the
 * metrics isolate the one thing sharing changes: demand misses.
 *
 * Conventions (matching sim/multicore's legacy system simulator):
 *  - weighted speedup = mean over cores of sharedIpc / soloIpc;
 *  - throughput       = sum of shared IPCs;
 *  - slowdown_i       = soloIpc_i / sharedIpc_i (>= 1 when sharing
 *                       hurts), maxSlowdown = max over cores;
 *  - MPKI_i           = 1000 * demandMisses_i / instructions_i.
 */

#ifndef GIPPR_SIM_MULTICORE_FAIRNESS_HH_
#define GIPPR_SIM_MULTICORE_FAIRNESS_HH_

#include <cstdint>
#include <vector>

#include "sim/fastpath/replay_spec.hh"

namespace gippr::multicore
{

/** Analytic per-core latency model (CpuParams' constants). */
struct LatencyModel
{
    /** Base cycles per instruction absent LLC activity (1/width). */
    double baseCpi = 0.25;
    /** Cycles per LLC demand hit. */
    double hitCycles = 35.0;
    /** Cycles per LLC demand miss (memory access). */
    double missCycles = 200.0;
};

/** Model cycles for @p instructions covered by @p bank's window. */
double modelCycles(const LatencyModel &model, uint64_t instructions,
                   const fastpath::CounterBank &bank);

/** Model IPC (instructions / modelCycles). */
double modelIpc(const LatencyModel &model, uint64_t instructions,
                const fastpath::CounterBank &bank);

/** One core's fairness figures. */
struct CoreFairness
{
    double soloIpc = 0.0;
    double sharedIpc = 0.0;
    /** soloIpc / sharedIpc (>= 1 when sharing hurts). */
    double slowdown = 0.0;
    /** Demand misses per kilo-instruction in the shared run. */
    double mpki = 0.0;
};

/** Whole-mix fairness figures. */
struct FairnessReport
{
    std::vector<CoreFairness> cores;
    /** Mean over cores of sharedIpc / soloIpc. */
    double weightedSpeedup = 0.0;
    /** Sum of shared IPCs. */
    double throughput = 0.0;
    double maxSlowdown = 0.0;
    double meanSlowdown = 0.0;
};

/**
 * Compute fairness from aligned per-core vectors: measured-window
 * instruction counts plus the measured banks of the shared and solo
 * runs (same trace, same warmup boundary).
 */
FairnessReport
computeFairness(const LatencyModel &model,
                const std::vector<uint64_t> &instructions,
                const std::vector<fastpath::CounterBank> &shared_banks,
                const std::vector<fastpath::CounterBank> &solo_banks);

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_FAIRNESS_HH_
