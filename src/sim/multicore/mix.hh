/**
 * @file
 * Multi-programmed workload mixes for the shared-LLC simulator.
 *
 * A MixSpec names the workload each core (tenant) replays plus an
 * optional arrival weight consumed by the weighted interleaving
 * schedule.  Mixes come from three sources, all deterministic:
 *
 *  - preset names ("thrash-heavy", "balanced", "reuse-heavy",
 *    "stream-polluted", "kv-serving") matching the bench mixes;
 *  - explicit comma-separated workload lists, optionally with
 *    ":<weight>" suffixes ("loop_thrash:2,zipf_hot");
 *  - any workload of the synthetic suite, of the KV-cache
 *    multi-tenant family (workloads/suite.hh's kvCacheFamily) or of
 *    the phase-shift family (phaseShiftFamily).
 *
 * buildCoreStreams() materializes each member workload, filters it
 * through the private L1+L2 (true LRU, as everywhere) and returns the
 * demand-only LLC trace every core feeds into the shared LLC —
 * exactly the stream the single-core miss experiments replay, which
 * is what makes the 1-core bit-identity gate meaningful.
 */

#ifndef GIPPR_SIM_MULTICORE_MIX_HH_
#define GIPPR_SIM_MULTICORE_MIX_HH_

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/trace_cache.hh"
#include "workloads/suite.hh"

namespace gippr::multicore
{

/** One tenant of a mix: a workload name plus its arrival weight. */
struct TenantSpec
{
    std::string workload;
    /** Relative arrival rate under the weighted schedule (>= 1). */
    uint64_t weight = 1;
};

/** A named multi-programmed mix. */
struct MixSpec
{
    std::string name;
    std::vector<TenantSpec> tenants;
};

/** The bench preset mixes (4 tenants each), in stable order. */
const std::vector<MixSpec> &presetMixes();

/**
 * Resolve @p text into a mix for @p cores cores: a preset name, or a
 * comma-separated list of "workload[:weight]" entries.  Lists shorter
 * than @p cores are cycled; longer lists are truncated.  Throws (via
 * fatal) on empty mixes or weight 0.
 */
MixSpec parseMixSpec(const std::string &text, unsigned cores);

/** One core's input stream: a demand-only LLC trace plus metadata. */
struct CoreStream
{
    std::string workload;
    std::shared_ptr<const Trace> trace;
    /** Instructions of the originating CPU segment. */
    uint64_t instructions = 0;
    /** Arrival weight copied from the TenantSpec. */
    uint64_t weight = 1;
};

/**
 * Materialize + L1/L2-filter the mix's workloads (first simpoint of
 * each, like the bench mixes) into per-core LLC streams.  Workload
 * names resolve against @p suite first, then against the KV-cache and
 * phase-shift families built from the suite's params.  @p cache, when
 * non-null, memoizes the filtered traces across calls.
 */
std::vector<CoreStream> buildCoreStreams(const MixSpec &mix,
                                         const SyntheticSuite &suite,
                                         const HierarchyConfig &hier,
                                         LlcTraceCache *cache);

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_MIX_HH_
