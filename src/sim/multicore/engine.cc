/**
 * @file
 * Shared-LLC run driver.
 */

#include "sim/multicore/engine.hh"

#include "cache/replay.hh"
#include "sim/fastpath/engine.hh"
#include "sim/multicore/reference_model.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr::multicore
{

namespace
{

/** Instructions covered by the post-warmup window of a stream. */
uint64_t
measuredInstructionsOf(uint64_t instructions, size_t length,
                       size_t warmup)
{
    if (length == 0)
        return 0;
    const auto span = static_cast<unsigned __int128>(instructions) *
                      (length - warmup);
    return static_cast<uint64_t>(span / length);
}

/**
 * The shared replay loop, templated over the two model backends
 * (identical interface, disjoint implementations).
 */
template <class Model>
void
runLoop(Model &model, const std::vector<CoreStream> &streams,
        const RunParams &params, const std::vector<size_t> &warmups,
        UtilityMonitor *monitor, RunResult &result)
{
    const unsigned cores = static_cast<unsigned>(streams.size());
    std::vector<uint64_t> lengths(cores);
    std::vector<uint64_t> weights(cores);
    for (unsigned c = 0; c < cores; ++c) {
        lengths[c] = streams[c].trace->size();
        weights[c] = streams[c].weight;
    }

    Interleaver il(params.schedule, lengths, weights);
    std::vector<size_t> cursor(cores, 0);
    uint64_t tick = 0;
    int c;
    while ((c = il.next()) >= 0) {
        const auto core = static_cast<unsigned>(c);
        const size_t i = cursor[core]++;
        if (i == warmups[core])
            model.markWarmup(core);
        const MemRecord &r = (*streams[core].trace)[i];
        const AccessType type = recordType(r);
        model.access(core, r.addr, type);

        if (monitor != nullptr) {
            if (type != AccessType::Writeback) {
                const uint64_t set = model.setIndex(r.addr);
                if (monitor->sampled(set))
                    monitor->observe(core, set, model.tagOf(r.addr));
            }
            if (++tick % params.partition.repartitionEvery == 0) {
                const std::vector<unsigned> counts =
                    monitor->allocate();
                const std::vector<uint64_t> masks =
                    masksFromCounts(counts, model.assoc());
                for (unsigned k = 0; k < cores; ++k)
                    model.setWayMask(k, masks[k]);
                monitor->decay();
                result.wayCounts = counts;
                ++result.repartitions;
            }
        }
    }
    // Streams fully consumed as warmup never snapped in the loop
    // (warmup == length), matching the single-core engines.
    for (unsigned k = 0; k < cores; ++k)
        if (warmups[k] == lengths[k])
            model.markWarmup(k);

    for (unsigned k = 0; k < cores; ++k)
        result.cores[k].stats = model.coreStats(k);
}

template <class Model>
void
runBackend(const std::vector<CoreStream> &streams,
           const RunParams &params, const std::vector<size_t> &warmups,
           RunResult &result)
{
    const unsigned cores = static_cast<unsigned>(streams.size());
    Model model(params.policy, params.llc, cores, params.duelScope);

    UtilityMonitor monitor(model.sets(), model.assoc(), cores,
                           params.partition.sampleEvery);
    UtilityMonitor *active = nullptr;
    switch (params.partition.mode) {
      case PartitionMode::None:
        break;
      case PartitionMode::Static: {
        const std::vector<uint64_t> masks =
            masksFromCounts(params.partition.staticWays, model.assoc());
        for (unsigned c = 0; c < cores; ++c)
            model.setWayMask(c, masks[c]);
        result.wayCounts = params.partition.staticWays;
        break;
      }
      case PartitionMode::Utility: {
        // Start from an even split; the monitor refines it.
        const std::vector<unsigned> counts =
            evenSplit(cores, model.assoc());
        const std::vector<uint64_t> masks =
            masksFromCounts(counts, model.assoc());
        for (unsigned c = 0; c < cores; ++c)
            model.setWayMask(c, masks[c]);
        result.wayCounts = counts;
        active = &monitor;
        break;
      }
    }

    runLoop(model, streams, params, warmups, active, result);
}

} // namespace

Backend
parseBackend(const std::string &text)
{
    if (text == "fast")
        return Backend::Fast;
    if (text == "scalar")
        return Backend::Scalar;
    fatal("unknown multicore backend (want fast|scalar): " + text);
}

const char *
backendName(Backend backend)
{
    return backend == Backend::Scalar ? "scalar" : "fast";
}

RunResult
runSharedLlc(const std::vector<CoreStream> &streams,
             const RunParams &params)
{
    GIPPR_CHECK(!streams.empty());
    GIPPR_CHECK(params.warmupFraction >= 0.0 &&
                params.warmupFraction <= 1.0);
    GIPPR_CHECK(SharedLlcModel::supports(params.policy, params.llc));
    for (const CoreStream &s : streams)
        GIPPR_CHECK(s.trace != nullptr);

    const unsigned cores = static_cast<unsigned>(streams.size());
    std::vector<size_t> warmups(cores);
    for (unsigned c = 0; c < cores; ++c)
        warmups[c] = static_cast<size_t>(
            static_cast<double>(streams[c].trace->size()) *
            params.warmupFraction);

    RunResult result;
    result.cores.resize(cores);
    for (unsigned c = 0; c < cores; ++c) {
        CoreResult &cr = result.cores[c];
        cr.workload = streams[c].workload;
        cr.weight = streams[c].weight;
        cr.instructions = streams[c].instructions;
        cr.measuredInstructions = measuredInstructionsOf(
            streams[c].instructions, streams[c].trace->size(),
            warmups[c]);
    }

    if (params.backend == Backend::Fast)
        runBackend<SharedLlcModel>(streams, params, warmups, result);
    else
        runBackend<ScalarSharedLlc>(streams, params, warmups, result);

    for (const CoreResult &cr : result.cores) {
        result.measured += cr.stats.measured;
        result.total += cr.stats.total;
    }

    if (params.computeSolo) {
        // Solo baselines: the identical trace and warmup boundary
        // through the existing single-core engines, using the same
        // backend family so oracle runs stay backend-pure.
        const fastpath::FastReplayEngine fast_engine(1);
        const fastpath::ScalarReplayEngine scalar_engine;
        const fastpath::ReplayEngine &engine =
            params.backend == Backend::Fast
                ? static_cast<const fastpath::ReplayEngine &>(
                      fast_engine)
                : scalar_engine;
        std::vector<uint64_t> instructions(cores);
        std::vector<fastpath::CounterBank> shared_banks(cores);
        std::vector<fastpath::CounterBank> solo_banks(cores);
        for (unsigned c = 0; c < cores; ++c) {
            CoreResult &cr = result.cores[c];
            cr.solo = engine.replay(params.policy, params.llc,
                                    *streams[c].trace, warmups[c]);
            instructions[c] = cr.measuredInstructions;
            shared_banks[c] = cr.stats.measured;
            solo_banks[c] = cr.solo.measured;
        }
        result.fairness = computeFairness(params.latency, instructions,
                                          shared_banks, solo_banks);
    }

    return result;
}

RunResult
runSingleCoreReference(const CoreStream &stream,
                       const RunParams &params)
{
    GIPPR_CHECK(stream.trace != nullptr);
    GIPPR_CHECK(params.partition.mode == PartitionMode::None);

    const size_t length = stream.trace->size();
    const auto warmup = static_cast<size_t>(
        static_cast<double>(length) * params.warmupFraction);

    RunResult result;
    result.cores.resize(1);
    CoreResult &cr = result.cores[0];
    cr.workload = stream.workload;
    cr.weight = stream.weight;
    cr.instructions = stream.instructions;
    cr.measuredInstructions =
        measuredInstructionsOf(stream.instructions, length, warmup);

    const fastpath::FastReplayEngine fast_engine(1);
    const fastpath::ScalarReplayEngine scalar_engine;
    const fastpath::ReplayEngine &engine =
        params.backend == Backend::Fast
            ? static_cast<const fastpath::ReplayEngine &>(fast_engine)
            : scalar_engine;
    cr.stats = engine.replay(params.policy, params.llc, *stream.trace,
                             warmup);
    cr.solo = cr.stats;
    result.measured += cr.stats.measured;
    result.total += cr.stats.total;
    if (params.computeSolo)
        result.fairness = computeFairness(
            params.latency, {cr.measuredInstructions},
            {cr.stats.measured}, {cr.solo.measured});
    return result;
}

} // namespace gippr::multicore
