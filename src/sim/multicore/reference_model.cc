/**
 * @file
 * Scalar shared-LLC reference implementation.
 */

#include "sim/multicore/reference_model.hh"

#include "util/check.hh"

namespace gippr::multicore
{

ScalarSharedLlc::ScalarSharedLlc(const fastpath::ReplaySpec &spec,
                                 const CacheConfig &config,
                                 unsigned cores, DuelScope scope)
    : config_(config), sets_(config.sets()), assoc_(config.assoc),
      scope_(scope),
      fullMask_(config.assoc == 64 ? ~uint64_t{0}
                                   : (uint64_t{1} << config.assoc) - 1)
{
    GIPPR_CHECK(cores >= 1);

    switch (spec.kind) {
      case fastpath::FastPolicyKind::Lru:
      case fastpath::FastPolicyKind::Lip:
      case fastpath::FastPolicyKind::Giplr:
        family_ = Family::Recency;
        break;
      case fastpath::FastPolicyKind::Plru:
        family_ = Family::Plru;
        break;
      case fastpath::FastPolicyKind::Gippr:
        family_ = Family::TreeIpv;
        break;
      case fastpath::FastPolicyKind::Dgippr:
        family_ = Family::TreeIpv;
        duel_ = true;
        break;
    }
    ipvs_ = effectiveReplayIpvs(spec, assoc_);

    lines_.assign(sets_ * assoc_, {});
    if (family_ == Family::Recency) {
        stacks_.assign(sets_, RecencyStack(assoc_));
    } else {
        trees_.assign(sets_, PlruTree(assoc_));
    }

    if (duel_) {
        const auto nvec = static_cast<unsigned>(spec.ipvs.size());
        const unsigned leaders =
            clampLeaders(sets_, nvec, spec.leaders);
        LeaderSets base(sets_, nvec, leaders);
        const unsigned domains =
            scope_ == DuelScope::PerCore ? cores : 1;
        owners_.resize(domains);
        winner_.resize(domains);
        leaderMisses_.assign(domains,
                             std::vector<uint64_t>(nvec, 0));
        selectors_.reserve(domains);
        for (unsigned d = 0; d < domains; ++d) {
            owners_[d].resize(sets_);
            for (uint64_t s = 0; s < sets_; ++s)
                owners_[d][s] =
                    base.owner((s + d * kLeaderSetRotate) % sets_);
            selectors_.emplace_back(nvec, spec.counterBits);
            winner_[d] = selectors_[d].winner();
        }
    }

    masks_.assign(cores, fullMask_);
    counters_.assign(cores, {});
    warmupBase_.assign(cores, {});
}

uint64_t
ScalarSharedLlc::setIndex(uint64_t byte_addr) const
{
    return config_.setIndex(byte_addr);
}

uint64_t
ScalarSharedLlc::tagOf(uint64_t byte_addr) const
{
    return config_.tag(byte_addr);
}

unsigned
ScalarSharedLlc::ipvIndexFor(unsigned core, uint64_t set) const
{
    if (!duel_)
        return 0;
    const unsigned d = duelIndexOf(core);
    const int owner = owners_[d][set];
    return owner != LeaderSets::kFollower ? static_cast<unsigned>(owner)
                                          : winner_[d];
}

int
ScalarSharedLlc::findWay(uint64_t set, uint64_t tag) const
{
    const uint64_t base = set * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
ScalarSharedLlc::victimWay(unsigned core, uint64_t set) const
{
    const uint64_t mask = masks_[core];
    if (!partitioned_) {
        return family_ == Family::Recency ? stacks_[set].lruWay()
                                          : trees_[set].findPlru();
    }
    // Highest recency position within the mask (see SharedLlcModel).
    unsigned best = 0;
    unsigned best_pos = 0;
    bool found = false;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (((mask >> w) & 1) == 0)
            continue;
        const unsigned p = family_ == Family::Recency
                               ? stacks_[set].position(w)
                               : trees_[set].position(w);
        if (!found || p > best_pos) {
            best = w;
            best_pos = p;
            found = true;
        }
    }
    GIPPR_DCHECK(found);
    return best;
}

void
ScalarSharedLlc::access(unsigned core, uint64_t byte_addr,
                        AccessType type)
{
    GIPPR_DCHECK(core < counters_.size());
    const uint64_t set = setIndex(byte_addr);
    const uint64_t tag = tagOf(byte_addr);
    const bool demand = type != AccessType::Writeback;
    const uint64_t base = set * assoc_;
    fastpath::CounterBank &bank = counters_[core];

    ++bank.accesses;
    bank.demandAccesses += demand;

    const int hit_way = findWay(set, tag);
    if (hit_way >= 0) {
        const unsigned way = static_cast<unsigned>(hit_way);
        ++bank.hits;
        if (type != AccessType::Load)
            lines_[base + way].dirty = true;
        if (demand) {
            switch (family_) {
              case Family::Recency: {
                RecencyStack &st = stacks_[set];
                st.moveTo(way,
                          ipvs_[0].promotion(st.position(way)));
                break;
              }
              case Family::Plru:
                trees_[set].promoteMru(way);
                break;
              case Family::TreeIpv: {
                const unsigned v = ipvIndexFor(core, set);
                PlruTree &tr = trees_[set];
                tr.setPosition(
                    way, ipvs_[v].promotion(tr.position(way)));
                break;
              }
            }
        }
        return;
    }

    // Miss: duel update before victim selection.
    bank.demandMisses += demand;
    if (duel_ && demand) {
        const unsigned d = duelIndexOf(core);
        const int owner = owners_[d][set];
        if (owner != LeaderSets::kFollower) {
            ++leaderMisses_[d][static_cast<unsigned>(owner)];
            selectors_[d].recordMiss(static_cast<unsigned>(owner));
            winner_[d] = selectors_[d].winner();
        }
    }

    // Fill: first invalid way within the core's mask, else victim.
    const uint64_t mask = masks_[core];
    int fill = -1;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (((mask >> w) & 1) != 0 && !lines_[base + w].valid) {
            fill = static_cast<int>(w);
            break;
        }
    }
    unsigned way;
    if (fill >= 0) {
        way = static_cast<unsigned>(fill);
    } else {
        way = victimWay(core, set);
        ++bank.evictions;
        bank.writebacks += lines_[base + way].dirty;
    }

    Line &l = lines_[base + way];
    l.tag = tag;
    l.valid = true;
    l.dirty = type != AccessType::Load;

    switch (family_) {
      case Family::Recency: {
        RecencyStack &st = stacks_[set];
        st.moveTo(way, assoc_ - 1);
        st.moveTo(way, ipvs_[0].insertion());
        break;
      }
      case Family::Plru:
        trees_[set].promoteMru(way);
        break;
      case Family::TreeIpv: {
        const unsigned v = ipvIndexFor(core, set);
        trees_[set].setPosition(way, ipvs_[v].insertion());
        break;
      }
    }
}

void
ScalarSharedLlc::markWarmup(unsigned core)
{
    warmupBase_[core] = counters_[core];
}

void
ScalarSharedLlc::setWayMask(unsigned core, uint64_t mask)
{
    GIPPR_CHECK(core < masks_.size());
    GIPPR_CHECK(mask != 0 && (mask & ~fullMask_) == 0);
    masks_[core] = mask;
    partitioned_ = false;
    for (uint64_t m : masks_)
        partitioned_ |= m != fullMask_;
}

fastpath::ReplayStats
ScalarSharedLlc::coreStats(unsigned core) const
{
    const fastpath::CounterBank &c = counters_[core];
    const fastpath::CounterBank &w = warmupBase_[core];
    fastpath::ReplayStats s;
    s.total = c;
    s.total.misses = c.accesses - c.hits;
    s.measured.accesses = c.accesses - w.accesses;
    s.measured.hits = c.hits - w.hits;
    s.measured.misses = s.measured.accesses - s.measured.hits;
    s.measured.evictions = c.evictions - w.evictions;
    s.measured.writebacks = c.writebacks - w.writebacks;
    s.measured.demandAccesses = c.demandAccesses - w.demandAccesses;
    s.measured.demandMisses = c.demandMisses - w.demandMisses;
    if (duel_) {
        const unsigned d = duelIndexOf(core);
        s.finalWinner = selectors_[d].winner();
        s.duelCounters = selectors_[d].counterValues();
        s.leaderMisses = leaderMisses_[d];
    }
    return s;
}

} // namespace gippr::multicore
