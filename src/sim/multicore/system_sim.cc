/**
 * @file
 * Multicore simulation implementation.
 */

#include "sim/multicore/system_sim.hh"

#include "policies/lru.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr
{

namespace
{

/** One core's private state. */
struct Core
{
    std::unique_ptr<SetAssocCache> l1;
    std::unique_ptr<SetAssocCache> l2;
    CpuModel cpu;
    const Trace *trace = nullptr;
    size_t cursor = 0;
    size_t warmup = 0;
    bool warmed = false;
    uint64_t llcAccesses = 0;

    bool done() const { return cursor >= trace->size(); }
};

} // namespace

double
MulticoreResult::throughput() const
{
    double s = 0.0;
    for (const auto &c : cores)
        s += c.ipc;
    return s;
}

double
MulticoreResult::weightedSpeedup(const std::vector<double> &baseline) const
{
    GIPPR_CHECK(baseline.size() == cores.size());
    double s = 0.0;
    for (size_t i = 0; i < cores.size(); ++i) {
        GIPPR_CHECK(baseline[i] > 0.0);
        s += cores[i].ipc / baseline[i];
    }
    return s / static_cast<double>(cores.size());
}

MulticoreResult
simulateMulticore(const std::vector<const Trace *> &traces,
                  const PolicyFactory &llc_policy,
                  const MulticoreParams &params)
{
    if (traces.empty())
        fatal("simulateMulticore: no traces");
    for (const Trace *t : traces)
        if (!t)
            fatal("simulateMulticore: null trace");

    SetAssocCache llc(params.hier.llc, llc_policy(params.hier.llc));

    std::vector<Core> cores(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        Core &c = cores[i];
        c.l1 = std::make_unique<SetAssocCache>(
            params.hier.l1,
            std::make_unique<LruPolicy>(params.hier.l1));
        c.l2 = std::make_unique<SetAssocCache>(
            params.hier.l2,
            std::make_unique<LruPolicy>(params.hier.l2));
        c.cpu = CpuModel(params.cpu);
        c.trace = traces[i];
        c.warmup = static_cast<size_t>(
            static_cast<double>(traces[i]->size()) *
            params.warmupFraction);
    }

    bool llc_cleared = false;

    auto step = [&](Core &core) {
        if (!core.warmed && core.cursor >= core.warmup) {
            core.warmed = true;
            core.cpu.clearStats();
            core.l1->clearStats();
            core.l2->clearStats();
            core.llcAccesses = 0;
            // Clear the shared LLC stats once, when the first core
            // enters its measured region (the shared stream has no
            // single warmup boundary).
            if (!llc_cleared) {
                llc.clearStats();
                llc_cleared = true;
            }
        }
        const MemRecord &rec = (*core.trace)[core.cursor++];
        const AccessType type =
            rec.isWrite ? AccessType::Store : AccessType::Load;

        HitLevel level;
        AccessResult r1 = core.l1->access(rec.addr, type, rec.pc);
        if (r1.hit) {
            level = HitLevel::L1;
        } else {
            if (r1.evictedBlock && r1.evictedDirty) {
                uint64_t wb = *r1.evictedBlock
                              << params.hier.l1.blockShift();
                AccessResult wbres =
                    core.l2->access(wb, AccessType::Writeback, 0);
                if (wbres.evictedBlock && wbres.evictedDirty) {
                    llc.access(*wbres.evictedBlock
                                   << params.hier.l2.blockShift(),
                               AccessType::Writeback, 0);
                }
            }
            AccessResult r2 = core.l2->access(rec.addr, type, rec.pc);
            if (r2.evictedBlock && r2.evictedDirty) {
                llc.access(*r2.evictedBlock
                               << params.hier.l2.blockShift(),
                           AccessType::Writeback, 0);
            }
            if (r2.hit) {
                level = HitLevel::L2;
            } else {
                ++core.llcAccesses;
                AccessResult r3 = llc.access(rec.addr, type, rec.pc);
                level = (r3.hit && !r3.bypassed) ? HitLevel::Llc
                                                 : HitLevel::Memory;
            }
        }
        core.cpu.step(rec.instGap, level);
    };

    // Next-event interleaving: the core with the smallest local cycle
    // count (among unfinished cores) advances.
    for (;;) {
        Core *next = nullptr;
        for (Core &c : cores) {
            if (c.done())
                continue;
            if (!next || c.cpu.totalCycles() < next->cpu.totalCycles())
                next = &c;
        }
        if (!next)
            break;
        step(*next);
    }

    MulticoreResult result;
    result.cores.resize(cores.size());
    for (size_t i = 0; i < cores.size(); ++i) {
        cores[i].cpu.drain();
        result.cores[i].ipc = cores[i].cpu.ipc();
        result.cores[i].instructions = cores[i].cpu.instructions();
        result.cores[i].cycles = cores[i].cpu.cycles();
        result.cores[i].llcAccesses = cores[i].llcAccesses;
    }
    result.llcStats = llc.stats();
    return result;
}

} // namespace gippr
