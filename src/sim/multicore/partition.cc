/**
 * @file
 * Way-partitioning implementation.
 */

#include "sim/multicore/partition.hh"

#include <algorithm>
#include <stdexcept>

#include "util/check.hh"
#include "util/log.hh"

namespace gippr::multicore
{

const char *
partitionModeName(PartitionMode mode)
{
    switch (mode) {
      case PartitionMode::None:
        return "none";
      case PartitionMode::Static:
        return "static";
      case PartitionMode::Utility:
        return "utility";
    }
    return "?";
}

PartitionConfig
parsePartition(const std::string &text, unsigned cores)
{
    PartitionConfig cfg;
    if (text.empty() || text == "none")
        return cfg;

    if (text.rfind("static:", 0) == 0) {
        cfg.mode = PartitionMode::Static;
        std::string list = text.substr(7);
        size_t pos = 0;
        while (pos <= list.size()) {
            size_t comma = list.find(',', pos);
            size_t end = comma == std::string::npos ? list.size() : comma;
            std::string entry = list.substr(pos, end - pos);
            try {
                cfg.staticWays.push_back(
                    static_cast<unsigned>(std::stoul(entry)));
            } catch (const std::exception &) {
                fatal("bad static partition entry: " + entry);
            }
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (cfg.staticWays.size() != cores)
            fatal("static partition needs one way count per core");
        for (unsigned w : cfg.staticWays)
            if (w == 0)
                fatal("static partition way counts must be >= 1");
        return cfg;
    }

    if (text == "utility" || text.rfind("utility:", 0) == 0) {
        cfg.mode = PartitionMode::Utility;
        if (text.size() > 8) {
            try {
                cfg.repartitionEvery = std::stoull(text.substr(8));
            } catch (const std::exception &) {
                fatal("bad utility repartition interval: " + text);
            }
            if (cfg.repartitionEvery == 0)
                fatal("utility repartition interval must be >= 1");
        }
        return cfg;
    }

    fatal("unknown partition spec (want none|static:...|utility): " +
          text);
}

std::vector<uint64_t>
masksFromCounts(const std::vector<unsigned> &counts, unsigned assoc)
{
    // Hard (always-on) validation: counts come straight from user
    // partition specs, and an overflowing sum would silently wrap the
    // leftover-way arithmetic below in builds without GIPPR_CHECK.
    if (counts.empty())
        fatal("way partition needs at least one count");
    unsigned total = 0;
    for (unsigned c : counts) {
        if (c < 1)
            fatal("way partition counts must be >= 1");
        total += c;
    }
    if (total > assoc)
        fatal("way partition counts sum to " + std::to_string(total) +
              " but the cache has " + std::to_string(assoc) + " ways");

    std::vector<uint64_t> masks(counts.size(), 0);
    unsigned way = 0;
    for (size_t core = 0; core < counts.size(); ++core) {
        unsigned n = counts[core];
        // Leftover ways join the last core so every way has an owner.
        if (core + 1 == counts.size())
            n += assoc - total;
        for (unsigned k = 0; k < n; ++k)
            masks[core] |= uint64_t{1} << (way + k);
        way += n;
    }
    return masks;
}

std::vector<unsigned>
evenSplit(unsigned cores, unsigned assoc)
{
    GIPPR_CHECK(cores >= 1 && cores <= assoc);
    std::vector<unsigned> counts(cores, assoc / cores);
    for (unsigned c = 0; c < assoc % cores; ++c)
        ++counts[c];
    return counts;
}

UtilityMonitor::UtilityMonitor(uint64_t sets, unsigned assoc,
                               unsigned cores, uint64_t sample_every)
    : assoc_(assoc), sampleEvery_(sample_every)
{
    GIPPR_CHECK(sample_every >= 1);
    GIPPR_CHECK(cores >= 1);
    sampledSets_ = (sets + sample_every - 1) / sample_every;
    GIPPR_CHECK(sampledSets_ >= 1);
    shadow_.resize(cores * sampledSets_);
    for (ShadowSet &s : shadow_)
        s.tags.reserve(assoc);
    hits_.assign(cores, std::vector<uint64_t>(assoc, 0));
    misses_.assign(cores, 0);
}

void
UtilityMonitor::observe(unsigned core, uint64_t set, uint64_t tag)
{
    GIPPR_DCHECK(sampled(set));
    ShadowSet &row =
        shadow_[core * sampledSets_ + set / sampleEvery_];
    auto it = std::find(row.tags.begin(), row.tags.end(), tag);
    if (it != row.tags.end()) {
        const auto pos =
            static_cast<unsigned>(it - row.tags.begin());
        ++hits_[core][pos];
        row.tags.erase(it);
        row.tags.insert(row.tags.begin(), tag);
        return;
    }
    ++misses_[core];
    if (row.tags.size() == assoc_)
        row.tags.pop_back();
    row.tags.insert(row.tags.begin(), tag);
}

std::vector<unsigned>
UtilityMonitor::allocate() const
{
    const auto cores = static_cast<unsigned>(hits_.size());
    GIPPR_CHECK(cores <= assoc_);
    std::vector<unsigned> counts(cores, 1);
    for (unsigned given = cores; given < assoc_; ++given) {
        unsigned best = 0;
        uint64_t best_gain = 0;
        bool found = false;
        for (unsigned c = 0; c < cores; ++c) {
            if (counts[c] >= assoc_)
                continue;
            // Marginal utility of the core's next way: the shadow
            // hits it would capture at that stack position.
            const uint64_t gain = hits_[c][counts[c]];
            if (!found || gain > best_gain) {
                best = c;
                best_gain = gain;
                found = true;
            }
        }
        GIPPR_CHECK(found);
        ++counts[best];
    }
    return counts;
}

uint64_t
UtilityMonitor::missesAt(unsigned core, unsigned ways) const
{
    uint64_t m = misses_[core];
    for (unsigned p = ways; p < assoc_; ++p)
        m += hits_[core][p];
    return m;
}

void
UtilityMonitor::decay()
{
    for (auto &h : hits_)
        for (uint64_t &v : h)
            v >>= 1;
    for (uint64_t &m : misses_)
        m >>= 1;
}

} // namespace gippr::multicore
