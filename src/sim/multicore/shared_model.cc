/**
 * @file
 * Shared-LLC packed model implementation.
 *
 * The access transition transcribes SoaCacheModel::accessImpl (the
 * reference, non-batched path) onto per-core counters, per-scope duel
 * domains and per-core way masks.  Where that model fuses table
 * lookups (promoDeposit_/insertDeposit_) this one composes the same
 * two loads — deposit_[way * assoc + promotion/insertion] — which is
 * the identical value by construction.
 */

#include "sim/multicore/shared_model.hh"

#include "util/bitops.hh"
#include "util/check.hh"
#include "util/log.hh"

namespace gippr::multicore
{

namespace
{

/** RecencyStack::moveTo on a packed position row. */
void
moveToPos(uint8_t *pos, unsigned assoc, unsigned way, unsigned to)
{
    const unsigned from = pos[way];
    if (to < from) {
        for (unsigned w = 0; w < assoc; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] + ((pos[w] >= to) & (pos[w] < from)));
    } else if (to > from) {
        for (unsigned w = 0; w < assoc; ++w)
            pos[w] = static_cast<uint8_t>(
                pos[w] - ((pos[w] > from) & (pos[w] <= to)));
    }
    pos[way] = static_cast<uint8_t>(to);
}

} // namespace

std::vector<Ipv>
effectiveReplayIpvs(const fastpath::ReplaySpec &spec, unsigned ways)
{
    switch (spec.kind) {
      case fastpath::FastPolicyKind::Lru:
        return {Ipv::lru(ways)};
      case fastpath::FastPolicyKind::Lip:
        return {Ipv::lruInsertion(ways)};
      case fastpath::FastPolicyKind::Plru:
        return {}; // promote-to-MRU needs no vector
      case fastpath::FastPolicyKind::Giplr:
      case fastpath::FastPolicyKind::Gippr:
      case fastpath::FastPolicyKind::Dgippr:
        return spec.ipvs;
    }
    return {};
}

DuelScope
parseDuelScope(const std::string &text)
{
    if (text == "global")
        return DuelScope::Global;
    if (text == "per-core" || text == "percore")
        return DuelScope::PerCore;
    fatal("unknown duel scope (want global|per-core): " + text);
}

const char *
duelScopeName(DuelScope scope)
{
    return scope == DuelScope::PerCore ? "per-core" : "global";
}

SharedLlcModel::SharedLlcModel(const fastpath::ReplaySpec &spec,
                               const CacheConfig &config, unsigned cores,
                               DuelScope scope)
    : sets_(config.sets()), assoc_(config.assoc),
      blockShift_(config.blockShift()), setShift_(config.setShift()),
      wayMask_(config.assoc == 64 ? ~uint64_t{0}
                                  : (uint64_t{1} << config.assoc) - 1),
      scope_(scope)
{
    GIPPR_CHECK(supports(spec, config));
    GIPPR_CHECK(cores >= 1);

    switch (spec.kind) {
      case fastpath::FastPolicyKind::Lru:
      case fastpath::FastPolicyKind::Lip:
      case fastpath::FastPolicyKind::Giplr:
        family_ = Family::Recency;
        break;
      case fastpath::FastPolicyKind::Plru:
        family_ = Family::Plru;
        break;
      case fastpath::FastPolicyKind::Gippr:
        family_ = Family::TreeIpv;
        break;
      case fastpath::FastPolicyKind::Dgippr:
        family_ = Family::TreeIpv;
        duel_ = true;
        break;
    }

    for (const Ipv &v : effectiveReplayIpvs(spec, assoc_)) {
        std::vector<uint8_t> row(assoc_);
        for (unsigned i = 0; i < assoc_; ++i)
            row[i] = static_cast<uint8_t>(v.promotion(i));
        promo_.push_back(std::move(row));
        insert_.push_back(static_cast<uint8_t>(v.insertion()));
    }

    tags_.assign(sets_ * assoc_, 0);
    sig_.assign(sets_ * assoc_, 0);
    valid_.assign(sets_, 0);
    dirty_.assign(sets_, 0);
    if (family_ == Family::Recency) {
        pos_.resize(sets_ * assoc_);
        for (uint64_t s = 0; s < sets_; ++s)
            for (unsigned w = 0; w < assoc_; ++w)
                pos_[s * assoc_ + w] = static_cast<uint8_t>(w);
    } else {
        tree_.assign(sets_, 0);
        tables_ = fastpath::TreeTables::forAssoc(assoc_);
        clearMask_ = tables_->clearMask.data();
        deposit_ = tables_->deposit.data();
        victimLut_ = tables_->victimLut.empty()
                         ? nullptr
                         : tables_->victimLut.data();
    }

    if (duel_) {
        const auto nvec = static_cast<unsigned>(spec.ipvs.size());
        const unsigned leaders =
            clampLeaders(sets_, nvec, spec.leaders);
        LeaderSets base(sets_, nvec, leaders);
        const unsigned domains =
            scope_ == DuelScope::PerCore ? cores : 1;
        owners_.resize(domains);
        winner_.resize(domains);
        leaderMisses_.assign(domains,
                             std::vector<uint64_t>(nvec, 0));
        selectors_.reserve(domains);
        for (unsigned d = 0; d < domains; ++d) {
            owners_[d].resize(sets_);
            for (uint64_t s = 0; s < sets_; ++s)
                owners_[d][s] = static_cast<int8_t>(
                    base.owner((s + d * kLeaderSetRotate) % sets_));
            selectors_.emplace_back(nvec, spec.counterBits);
            winner_[d] = selectors_[d].winner();
        }
    }

    masks_.assign(cores, wayMask_);
    counters_.assign(cores, {});
    warmupBase_.assign(cores, {});
}

unsigned
SharedLlcModel::ipvIndexFor(unsigned core, uint64_t set) const
{
    if (!duel_)
        return 0;
    const unsigned d = duelIndexOf(core);
    const int owner = owners_[d][set];
    return owner != LeaderSets::kFollower ? static_cast<unsigned>(owner)
                                          : winner_[d];
}

int
SharedLlcModel::findWay(uint64_t base, uint64_t tag,
                        uint64_t valid) const
{
    const uint64_t *tags = &tags_[base];
    uint64_t match = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        match |= uint64_t{tags[w] == tag} << w;
    match &= valid;
    return match != 0 ? static_cast<int>(countTrailingZeros(match))
                      : -1;
}

unsigned
SharedLlcModel::unmaskedVictim(uint64_t set, uint64_t base) const
{
    if (family_ == Family::Recency) {
        const uint8_t last = static_cast<uint8_t>(assoc_ - 1);
        const uint8_t *pos = &pos_[base];
        uint64_t match = 0;
        for (unsigned w = 0; w < assoc_; ++w)
            match |= uint64_t{pos[w] == last} << w;
        GIPPR_DCHECK(match != 0);
        return static_cast<unsigned>(countTrailingZeros(match));
    }
    return victimLut_ != nullptr
               ? victimLut_[tree_[set]]
               : fastpath::packedFindPlru(tree_[set], assoc_);
}

unsigned
SharedLlcModel::maskedVictim(uint64_t set, uint64_t base,
                             uint64_t mask) const
{
    // The way occupying the highest recency position within the mask;
    // positions are a permutation, so with a full mask this is
    // exactly the unmasked victim (position assoc-1 is both the LRU
    // slot and the leaf every PLRU bit points toward).
    unsigned best = 0;
    unsigned best_pos = 0;
    bool found = false;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (((mask >> w) & 1) == 0)
            continue;
        const unsigned p =
            family_ == Family::Recency
                ? pos_[base + w]
                : fastpath::packedPosition(tree_[set], assoc_, w);
        if (!found || p > best_pos) {
            best = w;
            best_pos = p;
            found = true;
        }
    }
    GIPPR_DCHECK(found);
    return best;
}

void
SharedLlcModel::access(unsigned core, uint64_t byte_addr,
                       AccessType type)
{
    GIPPR_DCHECK(core < counters_.size());
    const uint64_t set = setIndex(byte_addr);
    const uint64_t tag = tagOf(byte_addr);
    const bool demand = type != AccessType::Writeback;
    const uint64_t base = set * assoc_;
    const uint64_t valid = valid_[set];
    fastpath::CounterBank &bank = counters_[core];

    ++bank.accesses;
    bank.demandAccesses += demand;

    const int hit_way = findWay(base, tag, valid);
    if (hit_way >= 0) {
        const unsigned way = static_cast<unsigned>(hit_way);
        ++bank.hits;
        if (type != AccessType::Load)
            dirty_[set] |= uint64_t{1} << way;
        if (demand) {
            // Promotion (writeback hits never touch recency state).
            switch (family_) {
              case Family::Recency: {
                uint8_t *pos = &pos_[base];
                moveToPos(pos, assoc_, way, promo_[0][pos[way]]);
                break;
              }
              case Family::Plru:
                tree_[set] = (tree_[set] & ~clearMask_[way]) |
                             deposit_[way * assoc_];
                break;
              case Family::TreeIpv: {
                const unsigned v = ipvIndexFor(core, set);
                const unsigned i = fastpath::packedPosition(
                    tree_[set], assoc_, way);
                tree_[set] =
                    (tree_[set] & ~clearMask_[way]) |
                    deposit_[way * assoc_ + promo_[v][i]];
                break;
              }
            }
        }
        return;
    }

    // Miss: duel bookkeeping before victim selection, exactly like
    // the single-core models.
    bank.demandMisses += demand;
    if (duel_ && demand) {
        const unsigned d = duelIndexOf(core);
        const int owner = owners_[d][set];
        if (owner != LeaderSets::kFollower) {
            ++leaderMisses_[d][static_cast<unsigned>(owner)];
            selectors_[d].recordMiss(static_cast<unsigned>(owner));
            winner_[d] = selectors_[d].winner();
        }
    }

    // Fill: first invalid way (within the core's mask) in way order,
    // else the policy victim restricted to the mask.
    const uint64_t mask = masks_[core];
    const uint64_t free = ~valid & mask;
    unsigned way;
    if (free != 0) {
        way = static_cast<unsigned>(countTrailingZeros(free));
    } else {
        way = partitioned_ ? maskedVictim(set, base, mask)
                           : unmaskedVictim(set, base);
        ++bank.evictions;
        const bool evicted_dirty = (dirty_[set] >> way) & 1;
        bank.writebacks += evicted_dirty;
    }

    tags_[base + way] = tag;
    sig_[base + way] = static_cast<uint8_t>(tag);
    valid_[set] = valid | (uint64_t{1} << way);
    if (type != AccessType::Load)
        dirty_[set] |= uint64_t{1} << way;
    else
        dirty_[set] &= ~(uint64_t{1} << way);

    // Insertion.
    switch (family_) {
      case Family::Recency: {
        // Normalize through the LRU position, then move to V[k]
        // (GiplrPolicy::onInsert; identical to LruPolicy's direct
        // moveTo(way, 0) when the vector is all-zero).
        uint8_t *pos = &pos_[base];
        moveToPos(pos, assoc_, way, assoc_ - 1);
        moveToPos(pos, assoc_, way, insert_[0]);
        break;
      }
      case Family::Plru:
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     deposit_[way * assoc_];
        break;
      case Family::TreeIpv: {
        const unsigned v = ipvIndexFor(core, set);
        tree_[set] = (tree_[set] & ~clearMask_[way]) |
                     deposit_[way * assoc_ + insert_[v]];
        break;
      }
    }
}

void
SharedLlcModel::markWarmup(unsigned core)
{
    warmupBase_[core] = counters_[core];
}

void
SharedLlcModel::setWayMask(unsigned core, uint64_t mask)
{
    GIPPR_CHECK(core < masks_.size());
    GIPPR_CHECK(mask != 0 && (mask & ~wayMask_) == 0);
    masks_[core] = mask;
    partitioned_ = false;
    for (uint64_t m : masks_)
        partitioned_ |= m != wayMask_;
}

bool
SharedLlcModel::wouldMiss(unsigned core, uint64_t set,
                          uint64_t tag) const
{
    (void)core;
    return findWay(set * assoc_, tag, valid_[set]) < 0;
}

fastpath::ReplayStats
SharedLlcModel::coreStats(unsigned core) const
{
    const fastpath::CounterBank &c = counters_[core];
    const fastpath::CounterBank &w = warmupBase_[core];
    fastpath::ReplayStats s;
    s.total = c;
    s.total.misses = c.accesses - c.hits;
    s.measured.accesses = c.accesses - w.accesses;
    s.measured.hits = c.hits - w.hits;
    s.measured.misses = s.measured.accesses - s.measured.hits;
    s.measured.evictions = c.evictions - w.evictions;
    s.measured.writebacks = c.writebacks - w.writebacks;
    s.measured.demandAccesses = c.demandAccesses - w.demandAccesses;
    s.measured.demandMisses = c.demandMisses - w.demandMisses;
    if (duel_) {
        const unsigned d = duelIndexOf(core);
        s.finalWinner = selectors_[d].winner();
        s.duelCounters = selectors_[d].counterValues();
        s.leaderMisses = leaderMisses_[d];
    }
    return s;
}

} // namespace gippr::multicore
