/**
 * @file
 * Multi-core shared-LLC simulation (the paper's future-work item 4:
 * "we are actively researching extending it to multi-core").
 *
 * Each core owns a private L1D and L2 plus an interval CPU model and
 * replays its own trace; all cores share one LLC managed by the
 * policy under study.  Cores advance in next-event order (the core
 * with the smallest local cycle count steps next), which interleaves
 * the LLC access streams roughly as their relative speeds dictate —
 * a fast core under a friendly policy issues more LLC traffic per
 * unit time, exactly the feedback loop that makes shared-cache
 * policy studies interesting.
 *
 * Reported metrics follow the multi-programmed literature:
 * per-core IPC, aggregate throughput (sum of IPCs), and weighted
 * speedup (mean of per-core IPC ratios against a baseline run).
 */

#ifndef GIPPR_SIM_MULTICORE_SYSTEM_SIM_HH_
#define GIPPR_SIM_MULTICORE_SYSTEM_SIM_HH_

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "sim/cpu_model.hh"
#include "trace/trace.hh"

namespace gippr
{

/** Per-core outcome of a multicore run. */
struct CoreResult
{
    double ipc = 0.0;
    uint64_t instructions = 0;
    double cycles = 0.0;
    /** Demand accesses this core issued to the shared LLC. */
    uint64_t llcAccesses = 0;
};

/** Outcome of one multicore simulation. */
struct MulticoreResult
{
    std::vector<CoreResult> cores;
    /** Shared-LLC statistics over the measured region. */
    CacheStats llcStats;

    /** Sum of per-core IPCs. */
    double throughput() const;

    /**
     * Weighted speedup versus per-core baseline IPCs (mean of
     * ipc_i / baseline_i).  @pre baseline.size() == cores.size()
     */
    double weightedSpeedup(const std::vector<double> &baseline) const;
};

/** Multicore simulation parameters. */
struct MulticoreParams
{
    /** Geometry: l1/l2 are per-core private, llc is shared. */
    HierarchyConfig hier;
    CpuParams cpu;
    /** Fraction of each core's trace used as warmup. */
    double warmupFraction = 1.0 / 3.0;
};

/**
 * Run @p traces (one per core) against a shared LLC built by
 * @p llc_policy.  Cores with shorter traces simply finish early.
 *
 * @pre !traces.empty(), no null entries
 */
MulticoreResult
simulateMulticore(const std::vector<const Trace *> &traces,
                  const PolicyFactory &llc_policy,
                  const MulticoreParams &params);

} // namespace gippr

#endif // GIPPR_SIM_MULTICORE_SYSTEM_SIM_HH_
