/**
 * @file
 * Fairness metric implementation.
 */

#include "sim/multicore/fairness.hh"

#include <algorithm>

#include "util/check.hh"

namespace gippr::multicore
{

double
modelCycles(const LatencyModel &model, uint64_t instructions,
            const fastpath::CounterBank &bank)
{
    GIPPR_DCHECK(bank.demandMisses <= bank.demandAccesses);
    const uint64_t demand_hits = bank.demandAccesses - bank.demandMisses;
    return static_cast<double>(instructions) * model.baseCpi +
           static_cast<double>(demand_hits) * model.hitCycles +
           static_cast<double>(bank.demandMisses) * model.missCycles;
}

double
modelIpc(const LatencyModel &model, uint64_t instructions,
         const fastpath::CounterBank &bank)
{
    const double cycles = modelCycles(model, instructions, bank);
    return cycles > 0.0 ? static_cast<double>(instructions) / cycles
                        : 0.0;
}

FairnessReport
computeFairness(const LatencyModel &model,
                const std::vector<uint64_t> &instructions,
                const std::vector<fastpath::CounterBank> &shared_banks,
                const std::vector<fastpath::CounterBank> &solo_banks)
{
    GIPPR_CHECK(instructions.size() == shared_banks.size());
    GIPPR_CHECK(instructions.size() == solo_banks.size());
    GIPPR_CHECK(!instructions.empty());

    FairnessReport report;
    double speedup_sum = 0.0;
    double slowdown_sum = 0.0;
    for (size_t c = 0; c < instructions.size(); ++c) {
        CoreFairness f;
        f.soloIpc = modelIpc(model, instructions[c], solo_banks[c]);
        f.sharedIpc =
            modelIpc(model, instructions[c], shared_banks[c]);
        f.slowdown =
            f.sharedIpc > 0.0 ? f.soloIpc / f.sharedIpc : 0.0;
        f.mpki = instructions[c] > 0
                     ? 1000.0 *
                           static_cast<double>(
                               shared_banks[c].demandMisses) /
                           static_cast<double>(instructions[c])
                     : 0.0;
        speedup_sum += f.soloIpc > 0.0 ? f.sharedIpc / f.soloIpc : 0.0;
        slowdown_sum += f.slowdown;
        report.maxSlowdown = std::max(report.maxSlowdown, f.slowdown);
        report.throughput += f.sharedIpc;
        report.cores.push_back(f);
    }
    const double n = static_cast<double>(instructions.size());
    report.weightedSpeedup = speedup_sum / n;
    report.meanSlowdown = slowdown_sum / n;
    return report;
}

} // namespace gippr::multicore
