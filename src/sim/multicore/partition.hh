/**
 * @file
 * Way-partitioning / QoS knobs for the shared LLC.
 *
 * Two mechanisms, both acting through per-core way masks on the
 * shared models:
 *
 *  - Static: fixed per-core way counts from the command line
 *    ("--partition static:8,4,2,2"), turned into contiguous way
 *    ranges once at startup.
 *  - Utility: UCP-style repartitioning (Qureshi & Patt's utility
 *    monitors).  Each core owns a shadow fully-associative LRU tag
 *    directory over a strided sample of sets; hits are histogrammed
 *    by stack position, which yields the core's miss curve "misses
 *    it would take with w ways".  Every repartitionEvery accesses
 *    the engine greedily re-allocates ways by marginal utility
 *    (lookahead of one way, minimum one way per core) and halves the
 *    histograms so old phases decay.
 *
 * Everything is deterministic: sampling is by set-index stride and
 * allocation ties break toward the lower core id, so scalar and fast
 * backends repartition at the same access ticks with the same masks.
 */

#ifndef GIPPR_SIM_MULTICORE_PARTITION_HH_
#define GIPPR_SIM_MULTICORE_PARTITION_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace gippr::multicore
{

/** Partitioning discipline for a shared-LLC run. */
enum class PartitionMode
{
    None,    ///< free-for-all (no masks)
    Static,  ///< fixed per-core way counts
    Utility, ///< UCP-style periodic repartitioning
};

/** Stable display name. */
const char *partitionModeName(PartitionMode mode);

/** Partitioning knobs. */
struct PartitionConfig
{
    PartitionMode mode = PartitionMode::None;
    /** Per-core way counts (Static mode; must sum to <= assoc). */
    std::vector<unsigned> staticWays;
    /** Shared-cache accesses between utility repartitions. */
    uint64_t repartitionEvery = 256 * 1024;
    /** Set-index stride of the shadow monitors' sampled sets. */
    uint64_t sampleEvery = 32;
};

/**
 * Parse "none", "static:<w0>,<w1>,..." or "utility[:<every>]" for
 * @p cores cores; fatal on malformed specs.
 */
PartitionConfig parsePartition(const std::string &text, unsigned cores);

/**
 * Contiguous way masks from per-core way counts: core 0 gets ways
 * [0, n0), core 1 [n0, n0+n1), ...  Counts must be >= 1 each and sum
 * to <= assoc; any leftover ways join the last core's mask so the
 * whole cache stays allocatable.
 */
std::vector<uint64_t> masksFromCounts(const std::vector<unsigned> &counts,
                                      unsigned assoc);

/** Per-core way counts for an (almost) even split of @p assoc. */
std::vector<unsigned> evenSplit(unsigned cores, unsigned assoc);

/**
 * UCP utility monitor: per-core shadow LRU tag directories over
 * sampled sets, hit-position histograms and the greedy allocator.
 */
class UtilityMonitor
{
  public:
    UtilityMonitor(uint64_t sets, unsigned assoc, unsigned cores,
                   uint64_t sample_every);

    /** True when @p set belongs to the sampled stride. */
    bool sampled(uint64_t set) const { return set % sampleEvery_ == 0; }

    /**
     * Record one demand access by @p core (call only for sampled
     * sets).  Updates the core's shadow directory and histograms.
     */
    void observe(unsigned core, uint64_t set, uint64_t tag);

    /**
     * Greedy marginal-utility way allocation: every core starts at
     * one way; each remaining way goes to the core whose next way
     * captures the most shadow hits (ties to the lower core id).
     */
    std::vector<unsigned> allocate() const;

    /**
     * Shadow misses @p core would take with @p ways ways (its miss
     * curve evaluated at one point): shadow misses plus every shadow
     * hit at stack position >= ways.
     */
    uint64_t missesAt(unsigned core, unsigned ways) const;

    /** Halve all histograms (phase decay after a repartition). */
    void decay();

    const std::vector<uint64_t> &hitHistogram(unsigned core) const
    {
        return hits_[core];
    }

    uint64_t shadowMisses(unsigned core) const { return misses_[core]; }

  private:
    /** One core's shadow directory row for one sampled set: tags in
     *  recency order (MRU first). */
    struct ShadowSet
    {
        std::vector<uint64_t> tags; ///< MRU-first, size <= assoc
    };

    unsigned assoc_;
    uint64_t sampleEvery_;
    uint64_t sampledSets_;
    /** shadow_[core * sampledSets_ + sampledIndex]. */
    std::vector<ShadowSet> shadow_;
    /** hits_[core][stack position]. */
    std::vector<std::vector<uint64_t>> hits_;
    std::vector<uint64_t> misses_;
};

} // namespace gippr::multicore

#endif // GIPPR_SIM_MULTICORE_PARTITION_HH_
