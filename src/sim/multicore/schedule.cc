/**
 * @file
 * Interleaving schedule implementations.
 */

#include "sim/multicore/schedule.hh"

#include "util/check.hh"
#include "util/log.hh"

namespace gippr::multicore
{

Schedule
parseSchedule(const std::string &text)
{
    if (text == "rr" || text == "round-robin")
        return Schedule::RoundRobin;
    if (text == "weighted")
        return Schedule::Weighted;
    fatal("unknown schedule (want rr|weighted): " + text);
}

const char *
scheduleName(Schedule sched)
{
    switch (sched) {
      case Schedule::RoundRobin:
        return "rr";
      case Schedule::Weighted:
        return "weighted";
    }
    return "?";
}

Interleaver::Interleaver(Schedule sched, std::vector<uint64_t> lengths,
                         std::vector<uint64_t> weights)
    : sched_(sched), lengths_(std::move(lengths)),
      weights_(std::move(weights)), issued_(lengths_.size(), 0)
{
    GIPPR_CHECK(!lengths_.empty());
    GIPPR_CHECK(weights_.size() == lengths_.size());
    for (uint64_t w : weights_)
        GIPPR_CHECK(w >= 1);
}

int
Interleaver::next()
{
    const unsigned n = static_cast<unsigned>(lengths_.size());

    if (sched_ == Schedule::RoundRobin) {
        for (unsigned k = 0; k < n; ++k) {
            unsigned c = (cursor_ + k) % n;
            if (issued_[c] < lengths_[c]) {
                cursor_ = (c + 1) % n;
                ++issued_[c];
                return static_cast<int>(c);
            }
        }
        return -1;
    }

    // Weighted stride scheduling: issue to the live core with the
    // smallest virtual time (issued+1)/weight.  The comparison is
    // done by exact integer cross-multiplication (128-bit product) so
    // the order is identical on every platform; ties go to the lowest
    // core id by scan order.
    int best = -1;
    for (unsigned c = 0; c < n; ++c) {
        if (issued_[c] >= lengths_[c])
            continue;
        if (best < 0) {
            best = static_cast<int>(c);
            continue;
        }
        auto lhs = static_cast<unsigned __int128>(issued_[c] + 1) *
                   weights_[static_cast<unsigned>(best)];
        auto rhs = static_cast<unsigned __int128>(
                       issued_[static_cast<unsigned>(best)] + 1) *
                   weights_[c];
        if (lhs < rhs)
            best = static_cast<int>(c);
    }
    if (best >= 0)
        ++issued_[static_cast<unsigned>(best)];
    return best;
}

} // namespace gippr::multicore
