/**
 * @file
 * Suite-level experiment harness.
 *
 * Runs a list of named policies over the synthetic suite and collects
 * per-workload metrics, mirroring the paper's two evaluation modes:
 *
 *  - Miss experiments (Figures 10/11): replay each simpoint's filtered
 *    LLC trace under every policy (and optionally Belady MIN) and
 *    report MPKI, normalized to LRU.
 *  - Performance experiments (Figures 4/12/13): full-system simulation
 *    (hierarchy + interval CPU model) and report IPC speedup over LRU.
 *
 * Per-benchmark numbers are SimPoint-weighted means over simpoints;
 * suite summaries are geometric means, as in the paper.
 */

#ifndef GIPPR_SIM_EXPERIMENT_HH_
#define GIPPR_SIM_EXPERIMENT_HH_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/fastpath/engine.hh"
#include "sim/policy_zoo.hh"
#include "sim/system.hh"
#include "sim/trace_cache.hh"
#include "telemetry/metrics.hh"
#include "telemetry/report.hh"
#include "telemetry/timer.hh"
#include "util/table.hh"
#include "workloads/suite.hh"

namespace gippr
{

/** Experiment-wide knobs. */
struct ExperimentConfig
{
    SystemParams system;
    /** Worker threads (workload-level parallelism); 0 = hardware. */
    unsigned threads = 0;
    /** Append a Belady MIN column (miss experiments only). */
    bool includeMin = false;
    /**
     * Optional telemetry taps (both may be null).  With a registry
     * attached, every simulated LLC mirrors its hit/miss/bypass
     * counters into "llc.<policy>.*"; with timings, the harness
     * records per-phase wall-clock ("materialize", "llc_filter",
     * "replay", and the whole run).  Both are thread-safe and shared
     * across the worker pool.
     */
    telemetry::MetricRegistry *registry = nullptr;
    telemetry::PhaseTimings *timings = nullptr;
    /**
     * Replay engine for miss experiments.  Policies with a fastSpec
     * replay through it (backend per GIPPR_REPLAY_BACKEND when this is
     * the default engine); policies without one always use the scalar
     * simulator.  Null means defaultReplayEngine().
     */
    const fastpath::ReplayEngine *replayEngine = nullptr;
    /**
     * Optional memo of filtered LLC traces, shared across experiments
     * (see LlcTraceCache).  Null rebuilds traces per call, as before.
     */
    LlcTraceCache *traceCache = nullptr;
};

/** Raw per-workload metric values, one per column. */
struct WorkloadRow
{
    std::string workload;
    std::vector<double> values;
};

/** Result of one experiment over the suite. */
struct ExperimentResult
{
    /** Column names (policy names, plus "MIN" when included). */
    std::vector<std::string> columns;
    /** One row per workload, in suite order. */
    std::vector<WorkloadRow> rows;
    /** What the values are ("MPKI" or "IPC"). */
    std::string metric;

    /** Column index of @p name; throws if absent. */
    size_t columnIndex(const std::string &name) const;

    /**
     * Values of column @p col normalized to column @p base per row
     * (for MPKI: ratio; for IPC: speedup).
     */
    std::vector<double> normalized(size_t col, size_t base,
                                   bool speedup) const;

    /** Geometric mean of normalized(col, base). */
    double geomeanNormalized(size_t col, size_t base,
                             bool speedup) const;

    /**
     * Rows whose normalized value of @p col vs @p base exceeds
     * @p threshold (the paper's "memory-intensive subset": workloads
     * where DRRIP's speedup over LRU exceeds 1%).
     */
    std::vector<size_t> subsetWhere(size_t col, size_t base,
                                    bool speedup,
                                    double threshold) const;

    /**
     * Render a table: first column workload, then one column per
     * policy, normalized to @p base (plus a geomean footer row).
     * Rows are sorted ascending by @p sort_col 's normalized value
     * (the paper sorts its bar charts by DRRIP).
     */
    Table toNormalizedTable(size_t base, bool speedup,
                            std::optional<size_t> sort_col,
                            int precision = 4) const;

    /** Render raw metric values (no normalization). */
    Table toRawTable(int precision = 4) const;

    /** Raw values as a telemetry table (for RunReport artifacts). */
    telemetry::ResultTable toResultTable(const std::string &title) const;
};

/**
 * Miss experiment: LLC-trace replay per policy.
 * The suite's workloads are processed in parallel.
 */
ExperimentResult runMissExperiment(const SyntheticSuite &suite,
                                   const std::vector<PolicyDef> &policies,
                                   const ExperimentConfig &config);

/** Performance experiment: full-system IPC per policy. */
ExperimentResult runPerfExperiment(const SyntheticSuite &suite,
                                   const std::vector<PolicyDef> &policies,
                                   const ExperimentConfig &config);

/**
 * Performance experiment with per-workload policy lists (for WN1,
 * where each workload is evaluated under its own held-out vectors).
 * @p policies_for must return lists with names matching @p columns.
 */
ExperimentResult runPerfExperimentPerWorkload(
    const SyntheticSuite &suite,
    const std::vector<std::string> &columns,
    const std::function<std::vector<PolicyDef>(const std::string &)>
        &policies_for,
    const ExperimentConfig &config);

/**
 * Miss experiment with per-workload policy lists (for WN1 MPKI
 * figures).
 */
ExperimentResult runMissExperimentPerWorkload(
    const SyntheticSuite &suite,
    const std::vector<std::string> &columns,
    const std::function<std::vector<PolicyDef>(const std::string &)>
        &policies_for,
    const ExperimentConfig &config);

} // namespace gippr

#endif // GIPPR_SIM_EXPERIMENT_HH_
