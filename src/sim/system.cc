/**
 * @file
 * System simulation implementation.
 */

#include "sim/system.hh"

#include <memory>

#include "policies/lru.hh"
#include "util/stats.hh"

namespace gippr
{

PolicyFactory
lruFactory()
{
    return [](const CacheConfig &cfg) {
        return std::make_unique<LruPolicy>(cfg);
    };
}

SimResult
simulateTrace(const Trace &cpu_trace, const PolicyFactory &llc_policy,
              const SystemParams &params)
{
    Hierarchy hier(params.hier, lruFactory(), lruFactory(), llc_policy);
    CpuModel cpu(params.cpu);

    const size_t warmup = static_cast<size_t>(
        static_cast<double>(cpu_trace.size()) * params.warmupFraction);

    for (size_t i = 0; i < cpu_trace.size(); ++i) {
        if (i == warmup) {
            hier.clearStats();
            cpu.clearStats();
        }
        const MemRecord &r = cpu_trace[i];
        HitLevel level = hier.access(r.addr, r.isWrite, r.pc);
        cpu.step(r.instGap, level);
    }
    cpu.drain();

    SimResult result;
    result.ipc = cpu.ipc();
    result.instructions = cpu.instructions();
    result.cycles = cpu.cycles();
    result.llcStats = hier.llc().stats();
    result.llcMisses = result.llcStats.demandMisses;
    result.llcMpki = result.llcStats.mpki(result.instructions);
    return result;
}

SimResult
simulateWorkload(const Workload &workload,
                 const PolicyFactory &llc_policy,
                 const SystemParams &params)
{
    std::vector<double> ipcs, mpkis;
    SimResult combined;
    for (const Simpoint &sp : workload.simpoints()) {
        SimResult r = simulateTrace(*sp.trace, llc_policy, params);
        ipcs.push_back(r.ipc);
        mpkis.push_back(r.llcMpki);
        combined.instructions += r.instructions;
        combined.cycles += r.cycles;
        combined.llcMisses += r.llcMisses;
    }
    combined.ipc = workload.combine(ipcs);
    combined.llcMpki = workload.combine(mpkis);
    return combined;
}

} // namespace gippr
