/**
 * @file
 * Policy zoo implementation.
 */

#include "sim/policy_zoo.hh"

#include <memory>

#include "core/bypass_gippr.hh"
#include "core/dgippr.hh"
#include "core/giplr.hh"
#include "core/gippr.hh"
#include "core/rrip_ipv.hh"
#include "core/plru.hh"
#include "core/vectors.hh"
#include "policies/dip.hh"
#include "policies/fifo.hh"
#include "policies/lru.hh"
#include "policies/pdp.hh"
#include "policies/random.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "util/log.hh"

namespace gippr
{

PolicyDef
lruDef()
{
    return {"LRU",
            [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<LruPolicy>(cfg));
            },
            fastpath::lruSpec()};
}

PolicyDef
lipDef()
{
    return {"LIP",
            [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<GiplrPolicy>(
                        cfg, Ipv::lruInsertion(cfg.assoc)));
            },
            fastpath::lipSpec()};
}

PolicyDef
plruDef()
{
    return {"PLRU",
            [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<PlruPolicy>(cfg));
            },
            fastpath::plruSpec()};
}

PolicyDef
randomDef(uint64_t seed)
{
    return {"Random", [seed](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<RandomPolicy>(cfg, seed));
            },
            std::nullopt};
}

PolicyDef
fifoDef()
{
    return {"FIFO", [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<FifoPolicy>(cfg));
            },
            std::nullopt};
}

PolicyDef
dipDef(uint64_t seed)
{
    return {"DIP", [seed](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<DipPolicy>(cfg, 32, 32, seed));
            },
            std::nullopt};
}

PolicyDef
srripDef()
{
    return {"SRRIP", [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    makeSrrip(cfg));
            },
            std::nullopt};
}

PolicyDef
brripDef(uint64_t seed)
{
    return {"BRRIP", [seed](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    makeBrrip(cfg, 2, seed));
            },
            std::nullopt};
}

PolicyDef
drripDef(uint64_t seed)
{
    return {"DRRIP", [seed](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    makeDrrip(cfg, 2, 32, seed));
            },
            std::nullopt};
}

PolicyDef
pdpDef()
{
    return {"PDP", [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<PdpPolicy>(cfg));
            },
            std::nullopt};
}

PolicyDef
shipDef()
{
    return {"SHiP", [](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<ShipPolicy>(cfg));
            },
            std::nullopt};
}

PolicyDef
giplrDef(const std::string &name, const Ipv &ipv)
{
    return {name,
            [ipv](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<GiplrPolicy>(cfg, ipv));
            },
            fastpath::giplrSpec(ipv)};
}

PolicyDef
gipprDef(const std::string &name, const Ipv &ipv)
{
    return {name,
            [ipv](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<GipprPolicy>(cfg, ipv));
            },
            fastpath::gipprSpec(ipv)};
}

PolicyDef
dgipprDef(const std::string &name, std::vector<Ipv> ipvs,
          unsigned leaders)
{
    return {name,
            [ipvs, leaders](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<DgipprPolicy>(cfg, ipvs, leaders));
            },
            fastpath::dgipprSpec(ipvs, leaders)};
}

PolicyDef
bypassGipprDef(const std::string &name, const Ipv &ipv, uint64_t seed)
{
    return {name, [ipv, seed](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<BypassGipprPolicy>(cfg, ipv, 32,
                                                        32, 11, seed));
            },
            std::nullopt};
}

PolicyDef
rripIpvDef(const std::string &name, const Ipv &ipv)
{
    return {name, [ipv](const CacheConfig &cfg) {
                return std::unique_ptr<ReplacementPolicy>(
                    std::make_unique<RripIpvPolicy>(cfg, ipv, 2));
            },
            std::nullopt};
}

PolicyDef
policyByName(const std::string &text)
{
    if (text == "LRU")
        return lruDef();
    if (text == "LIP")
        return lipDef();
    if (text == "PLRU")
        return plruDef();
    if (text == "GIPLR")
        return giplrDef("GIPLR", local_vectors::giplr());
    if (text == "GIPPR")
        return gipprDef("GIPPR", local_vectors::gippr());
    if (text == "Random")
        return randomDef();
    if (text == "FIFO")
        return fifoDef();
    if (text == "DIP")
        return dipDef();
    if (text == "SRRIP")
        return srripDef();
    if (text == "BRRIP")
        return brripDef();
    if (text == "DRRIP")
        return drripDef();
    if (text == "PDP")
        return pdpDef();
    if (text == "SHiP")
        return shipDef();
    if (text == "DGIPPR2")
        return dgipprDef("2-DGIPPR", local_vectors::dgippr2());
    if (text == "DGIPPR4")
        return dgipprDef("4-DGIPPR", local_vectors::dgippr4());
    if (text == "DGIPPR8")
        return dgipprDef("8-DGIPPR", local_vectors::dgippr8());
    if (text == "BGIPPR")
        return bypassGipprDef("B-GIPPR", local_vectors::gippr());
    if (text == "RRIPIPV")
        return rripIpvDef("RRIP-IPV", RripIpvPolicy::srripVector());
    auto colon = text.find(':');
    if (colon != std::string::npos) {
        std::string kind = text.substr(0, colon);
        Ipv ipv = Ipv::parse(text.substr(colon + 1));
        if (kind == "GIPLR")
            return giplrDef(text, ipv);
        if (kind == "GIPPR")
            return gipprDef(text, ipv);
        if (kind == "BGIPPR")
            return bypassGipprDef(text, ipv);
        if (kind == "RRIPIPV")
            return rripIpvDef(text, ipv);
    }
    fatal("unknown policy name: " + text);
}

} // namespace gippr
