/**
 * @file
 * Interval-style out-of-order CPU model.
 *
 * Stands in for the paper's CMP$im configuration (4-wide, 8-stage,
 * 128-entry instruction window, 200-cycle DRAM).  The model charges
 * issue bandwidth for the instruction gaps between memory references
 * and tracks outstanding long-latency accesses: an access can start as
 * soon as issue reaches it, but the window stalls when the oldest
 * outstanding access falls more than the ROB size behind — giving the
 * first-order memory-level-parallelism behaviour that distinguishes
 * overlapping misses from serialized ones.  A finite MSHR pool bounds
 * outstanding misses.
 *
 * This is the fidelity class the paper itself uses: CMP$im is "accurate
 * to within 4% of a detailed cycle-accurate simulator", and the GA
 * fitness model ignores MLP entirely.
 */

#ifndef GIPPR_SIM_CPU_MODEL_HH_
#define GIPPR_SIM_CPU_MODEL_HH_

#include <cstdint>
#include <deque>

#include "cache/hierarchy.hh"

namespace gippr
{

/** CPU model parameters (defaults follow the paper's Section 4.5). */
struct CpuParams
{
    /** Issue width, instructions per cycle. */
    unsigned width = 4;
    /** Instruction window (ROB) size. */
    unsigned robSize = 128;
    /** Outstanding-miss registers. */
    unsigned mshrs = 16;
    /** Extra cycles for an L2 hit (beyond pipelined L1). */
    double latL2 = 12.0;
    /** Extra cycles for an LLC hit. */
    double latLlc = 35.0;
    /** Extra cycles for DRAM (the paper's 200-cycle latency). */
    double latMemory = 200.0;
};

/** Accumulated timing state for one simulated segment. */
class CpuModel
{
  public:
    explicit CpuModel(CpuParams params = {});

    /**
     * Account one memory reference that hit at @p level after
     * @p inst_gap instructions of issue.
     */
    void step(uint32_t inst_gap, HitLevel level);

    /** Retire every outstanding access (end of segment). */
    void drain();

    /** Zero counters but keep in-flight state (post-warmup). */
    void clearStats();

    uint64_t instructions() const { return instructions_; }
    double cycles() const { return cycles_; }

    /**
     * Monotonic cycle count since construction — unaffected by
     * clearStats().  Schedulers (e.g. the multicore next-event loop)
     * must use this, not cycles(), or a post-warmup core appears to
     * be "behind" and gets a huge unfair solo burst.
     */
    double totalCycles() const { return totalCycles_; }

    double
    ipc() const
    {
        return cycles_ > 0.0
                   ? static_cast<double>(instructions_) / cycles_
                   : 0.0;
    }

  private:
    /** One outstanding long-latency access. */
    struct Outstanding
    {
        uint64_t instIndex;   ///< instruction count when issued
        double completeCycle; ///< cycle its data returns
    };

    double latencyOf(HitLevel level) const;

    CpuParams params_;
    double cycles_ = 0.0;
    double totalCycles_ = 0.0;       // never reset
    uint64_t instructions_ = 0;
    uint64_t totalInstructions_ = 0; // includes pre-clearStats work
    std::deque<Outstanding> inflight_;
};

} // namespace gippr

#endif // GIPPR_SIM_CPU_MODEL_HH_
