/**
 * @file
 * Text-table and CSV rendering for the benchmark harness.
 *
 * Every figure/table bench prints its series both as an aligned,
 * human-readable table (what the paper's bar charts show) and as CSV
 * suitable for replotting.
 */

#ifndef GIPPR_UTIL_TABLE_HH_
#define GIPPR_UTIL_TABLE_HH_

#include <ostream>
#include <string>
#include <vector>

namespace gippr
{

/** Column-aligned table with a header row and typed cells. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; cells are appended with add(). */
    Table &newRow();

    /** Append a string cell to the current row. */
    Table &add(const std::string &cell);

    /** Append a numeric cell with @p precision decimal places. */
    Table &add(double value, int precision = 3);

    /** Append an integer cell. */
    Table &add(uint64_t value);
    Table &add(unsigned value);
    Table &add(int value);

    size_t rows() const { return rows_.size(); }
    size_t columns() const { return headers_.size(); }

    /** Cell accessor (row-major, header excluded). */
    const std::string &cell(size_t row, size_t col) const;

    /** Header of column @p col. */
    const std::string &header(size_t col) const;

    /** Render aligned text to @p os. */
    void print(std::ostream &os) const;

    /** Render CSV (header + rows) to @p os. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gippr

#endif // GIPPR_UTIL_TABLE_HH_
