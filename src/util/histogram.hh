/**
 * @file
 * Bounded integer histogram.
 *
 * Used by the PDP reuse-distance sampler and by workload-characterization
 * tooling (stack-distance profiles).  Values at or beyond the bound are
 * accumulated in a final overflow bucket.
 */

#ifndef GIPPR_UTIL_HISTOGRAM_HH_
#define GIPPR_UTIL_HISTOGRAM_HH_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gippr
{

/** Histogram over [0, buckets), plus an overflow bucket. */
class Histogram
{
  public:
    /** @param buckets number of in-range buckets (>= 1) */
    explicit Histogram(size_t buckets);

    /** Record one observation of @p value. */
    void add(uint64_t value, uint64_t count = 1);

    /** Count in bucket @p i (i == buckets() means overflow). */
    uint64_t bucket(size_t i) const;

    /** Number of in-range buckets. */
    size_t buckets() const { return counts_.size() - 1; }

    /** Total observations including overflow. */
    uint64_t total() const { return total_; }

    /** Observations that landed in the overflow bucket. */
    uint64_t overflow() const { return counts_.back(); }

    /** Sum of counts in buckets [0, limit] (no overflow). */
    uint64_t cumulative(size_t limit) const;

    /** Sum of value*count over buckets [0, limit] (no overflow). */
    uint64_t weightedCumulative(size_t limit) const;

    /** Reset all counts to zero. */
    void clear();

    /** Halve every bucket (aging, as PDP's sampler does per epoch). */
    void decay();

    /** Render as "v0 v1 ... overflow" for debugging. */
    std::string toString() const;

  private:
    std::vector<uint64_t> counts_; // last element = overflow
    uint64_t total_ = 0;
};

} // namespace gippr

#endif // GIPPR_UTIL_HISTOGRAM_HH_
