/**
 * @file
 * Small bit-manipulation helpers used across the cache and policy models.
 */

#ifndef GIPPR_UTIL_BITOPS_HH_
#define GIPPR_UTIL_BITOPS_HH_

#include <cassert>
#include <cstdint>

namespace gippr
{

/** Return true iff @p x is a (nonzero) power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Floor of log base 2.  floorLog2(1) == 0, floorLog2(16) == 4.
 *
 * @pre x > 0
 */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log base 2.  ceilLog2(1) == 0, ceilLog2(9) == 4. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return (x <= 1) ? 0 : floorLog2(x - 1) + 1;
}

/** Extract bit @p i (0 = LSB) of @p x. */
constexpr unsigned
getBit(uint64_t x, unsigned i)
{
    return (x >> i) & 1;
}

/** Return @p x with bit @p i set to @p v (v must be 0 or 1). */
constexpr uint64_t
setBit(uint64_t x, unsigned i, unsigned v)
{
    return (x & ~(uint64_t{1} << i)) | (uint64_t{v & 1} << i);
}

/** Mask of the @p n low bits. */
constexpr uint64_t
lowMask(unsigned n)
{
    return (n >= 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

} // namespace gippr

#endif // GIPPR_UTIL_BITOPS_HH_
