/**
 * @file
 * Small bit-manipulation helpers used across the cache and policy models.
 */

#ifndef GIPPR_UTIL_BITOPS_HH_
#define GIPPR_UTIL_BITOPS_HH_

#include <bit>
#include <cstdint>

namespace gippr
{

/** Return true iff @p x is a (nonzero) power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Floor of log base 2.  floorLog2(1) == 0, floorLog2(16) == 4.
 *
 * @pre x > 0
 */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log base 2.  ceilLog2(1) == 0, ceilLog2(9) == 4. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return (x <= 1) ? 0 : floorLog2(x - 1) + 1;
}

/** Extract bit @p i (0 = LSB) of @p x. */
constexpr unsigned
getBit(uint64_t x, unsigned i)
{
    return (x >> i) & 1;
}

/** Return @p x with bit @p i set to @p v (v must be 0 or 1). */
constexpr uint64_t
setBit(uint64_t x, unsigned i, unsigned v)
{
    return (x & ~(uint64_t{1} << i)) | (uint64_t{v & 1} << i);
}

/** Mask of the @p n low bits. */
constexpr uint64_t
lowMask(unsigned n)
{
    return (n >= 64) ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Number of set bits in @p x. */
constexpr unsigned
popcount64(uint64_t x)
{
    unsigned n = 0;
    while (x != 0) {
        x &= x - 1;
        ++n;
    }
    return n;
}

/** Index of the lowest set bit of @p x.  @pre x != 0 */
constexpr unsigned
countTrailingZeros(uint64_t x)
{
    return static_cast<unsigned>(std::countr_zero(x));
}

// Compile-time self-tests: every helper is constexpr, so its whole
// truth table (at the interesting boundary points) is checkable here
// at zero runtime cost.
static_assert(isPow2(1) && isPow2(2) && isPow2(256));
static_assert(!isPow2(0) && !isPow2(3) && !isPow2(255));
static_assert(floorLog2(1) == 0 && floorLog2(2) == 1);
static_assert(floorLog2(15) == 3 && floorLog2(16) == 4);
static_assert(floorLog2(~uint64_t{0}) == 63);
static_assert(ceilLog2(1) == 0 && ceilLog2(2) == 1);
static_assert(ceilLog2(9) == 4 && ceilLog2(16) == 4 && ceilLog2(17) == 5);
static_assert(getBit(0b1010, 1) == 1 && getBit(0b1010, 2) == 0);
static_assert(getBit(uint64_t{1} << 63, 63) == 1);
static_assert(setBit(0b1010, 0, 1) == 0b1011);
static_assert(setBit(0b1010, 1, 0) == 0b1000);
static_assert(setBit(0, 63, 1) == uint64_t{1} << 63);
static_assert(lowMask(0) == 0 && lowMask(1) == 1);
static_assert(lowMask(4) == 0xf && lowMask(64) == ~uint64_t{0});
static_assert(popcount64(0) == 0 && popcount64(0b1011) == 3);
static_assert(popcount64(~uint64_t{0}) == 64);
static_assert(countTrailingZeros(1) == 0 && countTrailingZeros(0b1000) == 3);
static_assert(countTrailingZeros(uint64_t{1} << 63) == 63);

} // namespace gippr

#endif // GIPPR_UTIL_BITOPS_HH_
