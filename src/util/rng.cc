/**
 * @file
 * xoshiro256** engine and Zipf sampler implementations.
 */

#include "util/check.hh"
#include "util/rng.hh"

#include <cmath>

namespace gippr
{

namespace
{

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro256** must not be seeded with all-zero state; SplitMix64
    // cannot produce four zero outputs in a row, so assert only.
    GIPPR_CHECK(s_[0] || s_[1] || s_[2] || s_[3]);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    GIPPR_CHECK(bound > 0);
    // Debiased modulo via rejection on the low range.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    GIPPR_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextGeometric(double p)
{
    GIPPR_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<uint64_t>(std::floor(std::log(u) /
                                            std::log1p(-p)));
}

Rng
Rng::split()
{
    // Derive an independent child seed from two successive outputs.
    uint64_t a = next();
    uint64_t b = next();
    return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

std::array<uint64_t, 4>
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const std::array<uint64_t, 4> &state)
{
    GIPPR_CHECK(state[0] || state[1] || state[2] || state[3]);
    for (size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    GIPPR_CHECK(n_ > 0);
    GIPPR_CHECK(theta_ >= 0.0);
    // Rejection-inversion constants (Hörmann & Derflinger 1996).
    hImaxPlus1_ = h(static_cast<double>(n_) + 0.5);
    hX0_ = h(0.5) - (theta_ == 1.0
                     ? std::log(1.0)  // == 0; unified below
                     : 1.0);
    // For theta == 1 the antiderivative changes form; recompute.
    if (theta_ == 1.0)
        hX0_ = h(0.5) - 1.0;
    s_ = 2.0 - hInv(h(2.5) - std::pow(2.0, -theta_));
}

double
ZipfSampler::h(double x) const
{
    // Antiderivative of x^-theta.
    if (theta_ == 1.0)
        return std::log(x);
    return std::pow(x, 1.0 - theta_) / (1.0 - theta_);
}

double
ZipfSampler::hInv(double x) const
{
    if (theta_ == 1.0)
        return std::exp(x);
    return std::pow((1.0 - theta_) * x, 1.0 / (1.0 - theta_));
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (theta_ == 0.0)
        return rng.nextBounded(n_);
    for (;;) {
        double u = hX0_ + rng.nextDouble() * (hImaxPlus1_ - hX0_);
        double x = hInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= h(kd + 0.5) - std::pow(kd, -theta_))
            return k - 1; // ranks are 0-based externally
    }
}

} // namespace gippr
