/**
 * @file
 * Table rendering implementation.
 */

#include "util/check.hh"
#include "util/table.hh"

#include <iomanip>
#include <sstream>

namespace gippr
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GIPPR_CHECK(!headers_.empty());
}

Table &
Table::newRow()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    GIPPR_CHECK(!rows_.empty());
    GIPPR_CHECK(rows_.back().size() < headers_.size());
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
}

Table &
Table::add(uint64_t value)
{
    return add(std::to_string(value));
}

Table &
Table::add(unsigned value)
{
    return add(std::to_string(value));
}

Table &
Table::add(int value)
{
    return add(std::to_string(value));
}

const std::string &
Table::cell(size_t row, size_t col) const
{
    GIPPR_CHECK(row < rows_.size());
    GIPPR_CHECK(col < rows_[row].size());
    return rows_[row][col];
}

const std::string &
Table::header(size_t col) const
{
    GIPPR_CHECK(col < headers_.size());
    return headers_[col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell_text =
                c < row.size() ? row[c] : std::string();
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << cell_text;
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            // Quote cells containing separators.
            if (row[c].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << row[c];
            }
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace gippr
