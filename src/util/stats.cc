/**
 * @file
 * Summary statistics implementation.
 */

#include "util/check.hh"
#include "util/stats.hh"

#include <algorithm>
#include <cmath>

namespace gippr
{

double
mean(const std::vector<double> &v)
{
    GIPPR_CHECK(!v.empty());
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    GIPPR_CHECK(!v.empty());
    double s = 0.0;
    for (double x : v) {
        GIPPR_CHECK(x > 0.0);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double
stddev(const std::vector<double> &v)
{
    GIPPR_CHECK(!v.empty());
    double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
minOf(const std::vector<double> &v)
{
    GIPPR_CHECK(!v.empty());
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    GIPPR_CHECK(!v.empty());
    return *std::max_element(v.begin(), v.end());
}

double
weightedMean(const std::vector<double> &v, const std::vector<double> &w)
{
    GIPPR_CHECK(v.size() == w.size());
    GIPPR_CHECK(!v.empty());
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
        GIPPR_CHECK(w[i] >= 0.0);
        num += v[i] * w[i];
        den += w[i];
    }
    GIPPR_CHECK(den > 0.0);
    return num / den;
}

double
median(std::vector<double> v)
{
    return percentile(std::move(v), 50.0);
}

double
percentile(std::vector<double> v, double pct)
{
    GIPPR_CHECK(!v.empty());
    GIPPR_CHECK(pct >= 0.0 && pct <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    double pos = pct / 100.0 * static_cast<double>(v.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    if (lo >= v.size() - 1)
        return v.back();
    double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

void
RunningStats::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace gippr
