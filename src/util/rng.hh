/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator (synthetic workload
 * generators, the Random replacement policy, BRRIP's bimodal throttle,
 * the genetic algorithm) draw from an explicitly seeded Rng so that
 * every experiment is reproducible run-to-run and across machines.
 * The engine is xoshiro256** (public domain, Blackman & Vigna), seeded
 * through SplitMix64.
 */

#ifndef GIPPR_UTIL_RNG_HH_
#define GIPPR_UTIL_RNG_HH_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gippr
{

/** xoshiro256** engine with convenience distributions. */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed in place. */
    void seed(uint64_t seed);

    /** Raw 64 random bits. */
    uint64_t next();

    /** UniformRandomBitGenerator interface. */
    uint64_t operator()() { return next(); }
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~uint64_t{0}; }

    /** Uniform integer in [0, bound).  @pre bound > 0 */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive.  @pre lo <= hi */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Geometric number of failures before first success,
     * success probability @p p.  @pre 0 < p <= 1
     */
    uint64_t nextGeometric(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independent child stream (for parallel search). */
    Rng split();

    /**
     * Raw engine state, for checkpointing: setState(state()) resumes
     * the stream exactly where it left off.  setState rejects the
     * all-zero state (invalid for xoshiro256**).
     */
    std::array<uint64_t, 4> state() const;
    void setState(const std::array<uint64_t, 4> &state);

  private:
    uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n) with exponent theta.
 *
 * Uses the rejection-inversion method of Hörmann & Derflinger, which
 * needs O(1) time per sample and no O(n) table, so it is usable for
 * address spaces of millions of blocks.
 */
class ZipfSampler
{
  public:
    /**
     * @param n      number of items (ranks 0..n-1, rank 0 most popular)
     * @param theta  skew; 0 = uniform, ~0.99 = classic YCSB-style skew
     */
    ZipfSampler(uint64_t n, double theta);

    /** Draw one rank. */
    uint64_t sample(Rng &rng) const;

    uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    uint64_t n_;
    double theta_;
    double hImaxPlus1_;
    double hX0_;
    double s_;
};

} // namespace gippr

#endif // GIPPR_UTIL_RNG_HH_
