/**
 * @file
 * Worker-thread loop implementation.
 */

#include "util/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gippr
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 4;
}

void
parallelFor(size_t n, unsigned threads,
            const std::function<void(size_t)> &body)
{
    if (threads <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::atomic<size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            size_t i = cursor.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };
    std::vector<std::thread> pool;
    unsigned count = static_cast<unsigned>(std::min<size_t>(threads, n));
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace gippr
