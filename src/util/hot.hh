/**
 * @file
 * GIPPR_HOT: the hot-kernel annotation.
 *
 * Marks the functions whose per-access cost IS the system's
 * throughput — the fastpath SoA kernels and the multicore
 * shared-model access path.  The macro does two jobs:
 *
 *  1. Compiler: expands to __attribute__((hot)) where supported, so
 *     the optimizer biases layout and inlining toward these paths.
 *  2. Analyzer: tools/analyze (gippr-analyze) treats every GIPPR_HOT
 *     function as a purity root — it and everything it transitively
 *     calls must be free of heap allocation, virtual dispatch,
 *     exceptions, locks, and I/O.  CI fails on violations, so a
 *     stray std::vector or mutex can no longer creep into a kernel
 *     unnoticed.
 *
 * Annotate the outermost per-access entry points (access, the batch
 * kernels, their helpers' annotations are optional — the analyzer
 * follows calls); do NOT annotate setup/teardown or stats paths,
 * which legitimately allocate.
 */

#ifndef GIPPR_UTIL_HOT_HH_
#define GIPPR_UTIL_HOT_HH_

#if defined(__GNUC__) || defined(__clang__)
#define GIPPR_HOT __attribute__((hot))
#else
#define GIPPR_HOT
#endif

#endif // GIPPR_UTIL_HOT_HH_
