/**
 * @file
 * Summary statistics used to aggregate per-benchmark results, following
 * the paper's reporting conventions (geometric-mean speedups, weighted
 * simpoint averages).
 */

#ifndef GIPPR_UTIL_STATS_HH_
#define GIPPR_UTIL_STATS_HH_

#include <cstddef>
#include <vector>

namespace gippr
{

/** Arithmetic mean.  @pre !v.empty() */
double mean(const std::vector<double> &v);

/**
 * Geometric mean; the paper's headline statistic for speedups.
 * @pre !v.empty() and all elements > 0
 */
double geomean(const std::vector<double> &v);

/** Population standard deviation.  @pre !v.empty() */
double stddev(const std::vector<double> &v);

/** Minimum / maximum.  @pre !v.empty() */
double minOf(const std::vector<double> &v);
double maxOf(const std::vector<double> &v);

/**
 * Weighted arithmetic mean, used to combine simpoints into a
 * per-benchmark figure with SimPoint-style weights.
 *
 * @pre v.size() == w.size(), weights nonnegative with positive sum
 */
double weightedMean(const std::vector<double> &v,
                    const std::vector<double> &w);

/** Median (of a copy; input not modified).  @pre !v.empty() */
double median(std::vector<double> v);

/** Percentile in [0,100] via linear interpolation.  @pre !v.empty() */
double percentile(std::vector<double> v, double pct);

/** Incremental mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    void add(double x);
    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace gippr

#endif // GIPPR_UTIL_STATS_HH_
