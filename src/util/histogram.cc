/**
 * @file
 * Bounded integer histogram implementation.
 */

#include "util/check.hh"
#include "util/histogram.hh"

#include <sstream>

namespace gippr
{

Histogram::Histogram(size_t buckets)
    : counts_(buckets + 1, 0)
{
    GIPPR_CHECK(buckets >= 1);
}

void
Histogram::add(uint64_t value, uint64_t count)
{
    size_t idx = value < buckets() ? static_cast<size_t>(value)
                                   : buckets();
    counts_[idx] += count;
    total_ += count;
}

uint64_t
Histogram::bucket(size_t i) const
{
    GIPPR_CHECK(i < counts_.size());
    return counts_[i];
}

uint64_t
Histogram::cumulative(size_t limit) const
{
    uint64_t s = 0;
    size_t hi = limit < buckets() ? limit : buckets() - 1;
    for (size_t i = 0; i <= hi; ++i)
        s += counts_[i];
    return s;
}

uint64_t
Histogram::weightedCumulative(size_t limit) const
{
    uint64_t s = 0;
    size_t hi = limit < buckets() ? limit : buckets() - 1;
    for (size_t i = 0; i <= hi; ++i)
        s += counts_[i] * static_cast<uint64_t>(i);
    return s;
}

void
Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
}

void
Histogram::decay()
{
    uint64_t new_total = 0;
    for (auto &c : counts_) {
        c >>= 1;
        new_total += c;
    }
    total_ = new_total;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    return os.str();
}

} // namespace gippr
