/**
 * @file
 * Runtime invariant checking macros.
 *
 * GIPPR_CHECK(expr) guards cheap, O(1) preconditions and state
 * invariants on the simulator's hot paths; GIPPR_DCHECK(expr) guards
 * expensive whole-structure validation (permutation scans, cross-model
 * comparisons) that would distort measured performance.  Both print
 * the failing expression with its source location and abort via
 * panic(), marking a simulator bug — never a user input error (those
 * go through fatal()).
 *
 * Both macros compile to nothing in release builds (NDEBUG) so the
 * bench numbers stay honest; debug builds enable them, and release
 * builds can force them back on with the GIPPR_ENABLE_CHECKS CMake
 * option (used by the sanitizer CI jobs so ASan/UBSan/TSan runs also
 * validate state transitions continuously).  When disabled the
 * condition is not evaluated, so check expressions must be free of
 * side effects.
 */

#ifndef GIPPR_UTIL_CHECK_HH_
#define GIPPR_UTIL_CHECK_HH_

#include <sstream>
#include <string>

#include "util/log.hh"

#if !defined(NDEBUG) || defined(GIPPR_FORCE_CHECKS)
#define GIPPR_CHECKS_ENABLED 1
#else
#define GIPPR_CHECKS_ENABLED 0
#endif

namespace gippr::detail
{

/** Assemble the failure message and abort through panic(). */
[[noreturn]] inline void
checkFailed(const char *file, int line, const char *kind, const char *expr)
{
    std::ostringstream os;
    os << kind << " failed at " << file << ":" << line << ": " << expr;
    panic(os.str());
}

} // namespace gippr::detail

#if GIPPR_CHECKS_ENABLED

/** Cheap invariant: active in debug and forced-check builds. */
#define GIPPR_CHECK(expr)                                                   \
    do {                                                                    \
        if (!(expr))                                                        \
            ::gippr::detail::checkFailed(__FILE__, __LINE__,                \
                                         "GIPPR_CHECK", #expr);             \
    } while (0)

/** Expensive validation: same gate, reserved for O(k)+ scans. */
#define GIPPR_DCHECK(expr)                                                  \
    do {                                                                    \
        if (!(expr))                                                        \
            ::gippr::detail::checkFailed(__FILE__, __LINE__,                \
                                         "GIPPR_DCHECK", #expr);            \
    } while (0)

#else

/*
 * Disabled form: sizeof keeps the expression parsed (so variables used
 * only in checks don't trip -Wunused and bit-rot silently) without
 * evaluating it.
 */
#define GIPPR_CHECK(expr)                                                   \
    static_cast<void>(sizeof((expr) ? 1 : 0))
#define GIPPR_DCHECK(expr)                                                  \
    static_cast<void>(sizeof((expr) ? 1 : 0))

#endif // GIPPR_CHECKS_ENABLED

#endif // GIPPR_UTIL_CHECK_HH_
