/**
 * @file
 * Minimal leveled logging for library and harness code.
 *
 * Follows the gem5 convention of separating user-facing status
 * (inform/warn) from internal invariant failures (panic).  panic()
 * aborts; it marks simulator bugs, never user input errors.
 */

#ifndef GIPPR_UTIL_LOG_HH_
#define GIPPR_UTIL_LOG_HH_

#include <cstdint>
#include <string>

namespace gippr
{

enum class LogLevel : uint8_t { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

/** Set the global verbosity threshold (default Info). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Informational status message (suppressed at Warn/Quiet). */
void inform(const std::string &msg);

/** Warning about degraded but continuable behaviour. */
void warn(const std::string &msg);

/** Debug chatter (suppressed unless level == Debug). */
void debug(const std::string &msg);

/** Internal invariant violation: print and abort. */
[[noreturn]] void panic(const std::string &msg);

/**
 * Unrecoverable user/configuration error: print and throw
 * std::runtime_error so harnesses can exit cleanly.
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace gippr

#endif // GIPPR_UTIL_LOG_HH_
