/**
 * @file
 * Saturating counters, the basic state element of adaptive policies.
 *
 * Two flavours are provided:
 *  - SatCounter: unsigned, saturates at [0, 2^bits - 1]. Used for RRPVs,
 *    PDP per-line protecting distances, SHiP signature counters.
 *  - DuelCounter: signed-style up/down counter over [0, 2^bits - 1] with
 *    a midpoint threshold, as used for set-dueling PSEL counters.
 */

#ifndef GIPPR_UTIL_SAT_COUNTER_HH_
#define GIPPR_UTIL_SAT_COUNTER_HH_

#include <cstdint>

#include "util/check.hh"

namespace gippr
{

/** Unsigned saturating counter of configurable width (1..31 bits). */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, uint32_t initial = 0)
        : max_((uint32_t{1} << bits) - 1), value_(initial)
    {
        GIPPR_CHECK(bits >= 1 && bits <= 31);
        GIPPR_CHECK(initial <= max_);
    }

    uint32_t value() const { return value_; }
    uint32_t maxValue() const { return max_; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == 0; }

    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    void
    set(uint32_t v)
    {
        GIPPR_CHECK(v <= max_);
        value_ = v;
    }

  private:
    uint32_t max_;
    uint32_t value_;
};

/**
 * Set-dueling PSEL counter.
 *
 * Counts up on misses attributed to policy A's leader sets and down on
 * policy B's; the follower sets use policy B while the counter is in
 * the upper half (A is missing more), and A otherwise.  Initialized to
 * the midpoint so neither policy starts with an advantage.
 */
class DuelCounter
{
  public:
    explicit DuelCounter(unsigned bits = 11)
        : counter_(bits, uint32_t{1} << (bits - 1))
    {
        GIPPR_CHECK(bits >= 2);
    }

    /** A leader-set miss for policy A. */
    void missA() { counter_.increment(); }
    /** A leader-set miss for policy B. */
    void missB() { counter_.decrement(); }

    /**
     * True when followers should use policy B (i.e. A has accumulated
     * more leader misses than B).
     */
    bool
    preferB() const
    {
        return counter_.value() >= (counter_.maxValue() / 2 + 1);
    }

    uint32_t raw() const { return counter_.value(); }

  private:
    SatCounter counter_;
};

} // namespace gippr

#endif // GIPPR_UTIL_SAT_COUNTER_HH_
