/**
 * @file
 * Shared worker-thread loop.
 *
 * The one parallelism scheme the repo uses everywhere (experiment
 * harness, GA population evaluation): a pool of threads pulling
 * indices off a shared atomic cursor.  Work items must be independent;
 * the body may be called concurrently from all workers.
 */

#ifndef GIPPR_UTIL_PARALLEL_HH_
#define GIPPR_UTIL_PARALLEL_HH_

#include <cstddef>
#include <functional>

namespace gippr
{

/**
 * Threads to actually use for @p requested (0 means "hardware
 * concurrency", with a fallback of 4 when that is unknown).
 */
unsigned resolveThreads(unsigned requested);

/**
 * Run @p body(i) for every i in [0, n), distributing indices over at
 * most @p threads workers (capped at n).  threads <= 1 runs inline.
 *
 * If a body throws, the first exception is captured, the remaining
 * work is cancelled (workers stop pulling new indices; in-flight
 * items finish), every worker is joined, and the exception is
 * rethrown on the calling thread — one failed worker can neither
 * hang the pool nor take down the process.
 */
void parallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)> &body);

} // namespace gippr

#endif // GIPPR_UTIL_PARALLEL_HH_
